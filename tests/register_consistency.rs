//! The register-count fix: MFS and MFSA report storage through one
//! definition (`hls_schedule::peak_live` over `signal_lifetimes`), so
//! `ScheduleStats::registers` always equals the data path's
//! `CostReport::reg_count` for the same schedule.

use moveframe_hls::benchmarks::examples;
use moveframe_hls::prelude::*;

fn mfsa_config(e: &examples::Example) -> MfsaConfig {
    let config = MfsaConfig::new(e.mfsa_cs, Library::ncr_like());
    let config = match e.clock() {
        Some(clock) => config.with_chaining(clock),
        None => config,
    };
    match e.latency_for(e.mfsa_cs) {
        Some(l) => config.with_latency(l),
        None => config,
    }
}

/// `ScheduleStats` (the MFS reporting path) and `CostReport` (the MFSA
/// data-path) agree on every Table-2 schedule.
#[test]
fn stats_registers_match_datapath_reg_count() {
    for e in examples::all() {
        let out = mfsa::schedule(&e.dfg, &e.spec, &mfsa_config(&e))
            .unwrap_or_else(|err| panic!("ex{}: {err}", e.id));
        let stats = ScheduleStats::compute(&e.dfg, &out.schedule, &e.spec);
        assert_eq!(
            stats.registers, out.cost.reg_count,
            "ex{} ({}): ScheduleStats and CostReport disagree on registers",
            e.id, e.name
        );
    }
}

/// Pins the diffeq example's register count on both paths (Table 2
/// reports REG = 9 for example 4 at T = 8).
#[test]
fn diffeq_register_count_is_pinned() {
    let e = examples::ex4();
    assert_eq!(e.mfsa_cs, 8);

    // MFSA path: data-path register file.
    let out = mfsa::schedule(&e.dfg, &e.spec, &mfsa_config(&e)).expect("diffeq MFSA");
    assert_eq!(out.cost.reg_count, 9, "diffeq MFSA REG drifted");
    let mfsa_stats = ScheduleStats::compute(&e.dfg, &out.schedule, &e.spec);
    assert_eq!(mfsa_stats.registers, 9, "diffeq MFSA ScheduleStats drifted");

    // MFS path at the same time constraint, same counting rule. MFS
    // schedules the graph differently (no ALU sharing pressure), so its
    // peak-live count is lower; what matters is that it is stable.
    let config = MfsConfig::time_constrained(8);
    let outcome = mfs::schedule(&e.dfg, &e.spec, &config).expect("diffeq MFS");
    let mfs_stats = ScheduleStats::compute(&e.dfg, &outcome.schedule, &e.spec);
    assert_eq!(mfs_stats.registers, 6, "diffeq MFS register count drifted");
}
