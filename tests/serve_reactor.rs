//! The reactor's connection state machine, exercised over real
//! sockets: keep-alive reuse, pipelined ordering, connection survival
//! across error responses, byte-at-a-time request arrival, idle and
//! slow-loris eviction, `/batch`, drain with pipelined requests in
//! flight, and the disk tier across restarts (including a truncated
//! entry, which must cost exactly one recompute).

mod common;

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use moveframe_hls::prelude::*;

const DIFFEQ_JOB: &[u8] = br#"{"benchmark":"diffeq","cs":4}"#;

/// Writes one request without closing the connection, leaving it
/// eligible for keep-alive reuse.
fn send(stream: &mut TcpStream, method: &str, path: &str, body: &[u8]) {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
}

/// Reads exactly one `Content-Length`-framed response off the stream,
/// leaving any pipelined successor bytes unread.
fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    // Head, one byte at a time, until the blank line.
    while !raw.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => raw.push(byte[0]),
            Ok(_) => panic!("EOF inside response head: {raw:?}"),
            Err(e) => panic!("read head: {e}"),
        }
    }
    let head = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable head: {head:?}"));
    let len: usize = head
        .to_ascii_lowercase()
        .split("content-length:")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no content-length: {head:?}"));
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).expect("read body");
    (status, String::from_utf8_lossy(&body).into_owned())
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream
}

/// Blocks until the peer closes the connection (or fails the test
/// after `patience`). Distinguishes eviction from a stuck socket.
fn assert_peer_closes(stream: &mut TcpStream, patience: Duration) {
    stream
        .set_read_timeout(Some(patience))
        .expect("read timeout");
    let mut buf = [0u8; 64];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(_) => continue, // unread response bytes; keep draining
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                panic!("server kept the connection past {patience:?}")
            }
            // A reset also proves the server dropped the connection.
            Err(_) => return,
        }
    }
}

#[test]
fn keep_alive_reuses_one_connection() {
    let server = common::start(common::ephemeral_config());
    let mut stream = connect(server.local_addr());

    for _ in 0..3 {
        send(&mut stream, "GET", "/healthz", b"");
        let (status, body) = read_response(&mut stream);
        assert_eq!((status, body.as_str()), (200, "ok\n"));
    }

    let m = server.app().metrics_snapshot();
    assert_eq!(m.counter("serve.conns.accepted"), 1);
    assert_eq!(m.counter("serve.keepalive.reused"), 2);

    server.shutdown();
    server.join();
}

#[test]
fn pipelined_responses_keep_request_order() {
    let server = common::start(common::ephemeral_config());
    let mut stream = connect(server.local_addr());

    // Three distinguishable requests in one burst, no reads between:
    // the compute job in the middle must not let the cheap probes
    // overtake it.
    let mut burst = Vec::new();
    burst.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
    burst.extend_from_slice(
        format!(
            "POST /schedule HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            DIFFEQ_JOB.len()
        )
        .as_bytes(),
    );
    burst.extend_from_slice(DIFFEQ_JOB);
    burst.extend_from_slice(b"GET /metrics HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
    stream.write_all(&burst).expect("write burst");

    let (status, body) = read_response(&mut stream);
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert!(body.contains("csteps"), "{body}");
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert!(body.contains("serve_requests"), "{body}");

    assert!(
        server
            .app()
            .metrics_snapshot()
            .counter("serve.pipeline.pipelined")
            >= 1
    );

    server.shutdown();
    server.join();
}

#[test]
fn connection_survives_a_400() {
    let server = common::start(common::ephemeral_config());
    let mut stream = connect(server.local_addr());

    send(
        &mut stream,
        "POST",
        "/schedule",
        br#"{"benchmark":"diffeq","cs":4,"chain":0}"#,
    );
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 400, "{body}");

    // A well-formed request with a bad payload poisons nothing: the
    // same connection keeps serving.
    send(&mut stream, "GET", "/healthz", b"");
    assert_eq!(read_response(&mut stream).0, 200);

    server.shutdown();
    server.join();
}

#[test]
fn connection_survives_a_429() {
    let server = common::start(ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..common::ephemeral_config()
    });
    let addr = server.local_addr();

    // Saturate: one job computing, one in the single queue slot.
    let pin_body = common::pin_job(1500);
    let pin = std::thread::spawn(move || common::post(addr, "/schedule", &pin_body));
    std::thread::sleep(Duration::from_millis(150));
    let queued = std::thread::spawn(move || common::post(addr, "/schedule", DIFFEQ_JOB));
    std::thread::sleep(Duration::from_millis(150));

    let mut stream = connect(addr);
    send(&mut stream, "GET", "/healthz", b"");
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 429, "{body}");

    // 429 is the *request* shed, not the connection: once the pool
    // drains, the very same socket serves again.
    assert_eq!(pin.join().expect("pin client").0, 200);
    assert_eq!(queued.join().expect("queued client").0, 200);
    send(&mut stream, "GET", "/healthz", b"");
    assert_eq!(read_response(&mut stream).0, 200);

    server.shutdown();
    server.join();
}

#[test]
fn connection_survives_a_504() {
    let server = common::start(common::ephemeral_config());
    let mut stream = connect(server.local_addr());

    // An uncached point with a zero deadline overruns before the
    // worker finishes (warm hits answer inline and never race one).
    send(
        &mut stream,
        "POST",
        "/schedule",
        br#"{"benchmark":"diffeq","cs":5,"deadline_ms":0}"#,
    );
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 504, "{body}");

    send(&mut stream, "GET", "/healthz", b"");
    assert_eq!(read_response(&mut stream).0, 200);

    server.shutdown();
    server.join();
}

#[test]
fn split_headers_arrive_one_byte_at_a_time() {
    let server = common::start(common::ephemeral_config());
    let mut stream = connect(server.local_addr());

    let mut raw = Vec::new();
    raw.extend_from_slice(
        format!(
            "POST /schedule HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            DIFFEQ_JOB.len()
        )
        .as_bytes(),
    );
    raw.extend_from_slice(DIFFEQ_JOB);
    // One byte per write, with enough flushes and yields that the
    // reactor observes many partial reads across many ticks.
    for (i, &b) in raw.iter().enumerate() {
        stream.write_all(&[b]).expect("write byte");
        stream.flush().expect("flush");
        if i % 8 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("csteps"), "{body}");

    server.shutdown();
    server.join();
}

#[test]
fn idle_connections_are_evicted() {
    let server = common::start(ServeConfig {
        idle_timeout_ms: 100,
        ..common::ephemeral_config()
    });
    let mut stream = connect(server.local_addr());

    // Prove the connection was live and quiet (response fully read),
    // then let it sit past the idle bound.
    send(&mut stream, "GET", "/healthz", b"");
    assert_eq!(read_response(&mut stream).0, 200);
    assert_peer_closes(&mut stream, Duration::from_secs(5));
    assert!(
        server
            .app()
            .metrics_snapshot()
            .counter("serve.timeouts.idle")
            >= 1
    );

    server.shutdown();
    server.join();
}

#[test]
fn slow_loris_partial_requests_are_cut() {
    let server = common::start(ServeConfig {
        read_timeout_ms: 100,
        ..common::ephemeral_config()
    });
    let mut stream = connect(server.local_addr());

    // A head that never completes: the read timeout, not the (longer)
    // idle timeout, must cut it off.
    stream.write_all(b"GET /heal").expect("write partial");
    stream.flush().expect("flush");
    assert_peer_closes(&mut stream, Duration::from_secs(5));
    assert!(
        server
            .app()
            .metrics_snapshot()
            .counter("serve.timeouts.read")
            >= 1
    );

    server.shutdown();
    server.join();
}

#[test]
fn batch_answers_over_a_socket() {
    let server = common::start(common::ephemeral_config());
    let mut stream = connect(server.local_addr());

    send(
        &mut stream,
        "POST",
        "/batch?benchmark=diffeq",
        br#"[{"cs":4},{"cs":6},{"cs":1}]"#,
    );
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 200, "{body}");
    // Item order is request order; the infeasible cs=1 item fails
    // alone without failing the batch.
    let cs4 = body.find("@T4").expect("cs=4 item");
    let cs6 = body.find("@T6").expect("cs=6 item");
    let err = body.find("\"error\"").expect("infeasible item");
    assert!(cs4 < cs6 && cs6 < err, "{body}");

    // The batch's connection stays reusable, and its items warmed the
    // cache for single-job requests.
    send(&mut stream, "POST", "/schedule", DIFFEQ_JOB);
    assert_eq!(read_response(&mut stream).0, 200);
    let m = server.app().metrics_snapshot();
    assert_eq!(m.counter("serve.batch.requests"), 1);
    assert_eq!(m.counter("serve.jobs.warm"), 1);

    server.shutdown();
    server.join();
}

#[test]
fn shutdown_answers_pipelined_requests_in_flight() {
    let server = common::start(ServeConfig {
        workers: 1,
        ..common::ephemeral_config()
    });
    let mut stream = connect(server.local_addr());

    // A slow compute with a cheap probe pipelined behind it, then
    // shutdown while both are in flight.
    let pin_body = common::pin_job(1500);
    let mut burst = Vec::new();
    burst.extend_from_slice(
        format!(
            "POST /schedule HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            pin_body.len()
        )
        .as_bytes(),
    );
    burst.extend_from_slice(&pin_body);
    burst.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
    stream.write_all(&burst).expect("write burst");
    std::thread::sleep(Duration::from_millis(150));

    server.shutdown();

    // Drain answers both admitted requests, in order.
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("csteps"), "{body}");
    let (status, body) = read_response(&mut stream);
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    server.join();
}

/// A scratch cache directory unique to this test binary run.
fn cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mfhls-serve-disk-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The on-disk entry files under `dir` (any format version).
fn entries(dir: &PathBuf) -> Vec<PathBuf> {
    let mut found = Vec::new();
    for sub in std::fs::read_dir(dir).expect("cache dir") {
        let sub = sub.expect("dir entry").path();
        if sub.is_dir() {
            for f in std::fs::read_dir(&sub).expect("version dir") {
                let f = f.expect("file entry").path();
                if f.extension().is_some_and(|e| e == "pm") {
                    found.push(f);
                }
            }
        }
    }
    found
}

#[test]
fn restart_serves_from_the_disk_tier() {
    let dir = cache_dir("restart");
    let config = || ServeConfig {
        cache_dir: Some(dir.clone()),
        ..common::ephemeral_config()
    };

    let first = {
        let server = common::start(config());
        let (status, body) = common::post(server.local_addr(), "/schedule", DIFFEQ_JOB);
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            server
                .app()
                .metrics_snapshot()
                .counter("serve.cache.disk.writes"),
            1
        );
        server.shutdown();
        server.join();
        body
    };

    // A fresh daemon, empty memory tier: the answer comes off disk,
    // byte-identical, without recomputing.
    let server = common::start(config());
    let (status, body) = common::post(server.local_addr(), "/schedule", DIFFEQ_JOB);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, first, "disk-tier answer must be byte-identical");
    let m = server.app().metrics_snapshot();
    assert_eq!(m.counter("serve.cache.disk.hits"), 1);
    assert_eq!(m.counter("serve.jobs.cold"), 0);

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_disk_entries_recompute_once() {
    let dir = cache_dir("truncated");
    let config = || ServeConfig {
        cache_dir: Some(dir.clone()),
        ..common::ephemeral_config()
    };

    let first = {
        let server = common::start(config());
        let (status, body) = common::post(server.local_addr(), "/schedule", DIFFEQ_JOB);
        assert_eq!(status, 200, "{body}");
        server.shutdown();
        server.join();
        body
    };

    // Tear the entry the way a crashed write never could: in place.
    let files = entries(&dir);
    assert_eq!(files.len(), 1, "{files:?}");
    let full = std::fs::read(&files[0]).expect("entry");
    std::fs::write(&files[0], &full[..full.len() / 2]).expect("truncate");

    let server = common::start(config());
    let addr = server.local_addr();
    let (status, body) = common::post(addr, "/schedule", DIFFEQ_JOB);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, first, "recomputed answer must match the original");
    let m = server.app().metrics_snapshot();
    assert_eq!(m.counter("serve.cache.disk.corrupt"), 1);
    assert_eq!(m.counter("serve.jobs.cold"), 1, "exactly one recompute");

    // The recompute repaired the entry: the same daemon answers warm,
    // and the file is whole again for the next restart.
    let (status, second) = common::post(addr, "/schedule", DIFFEQ_JOB);
    assert_eq!(status, 200);
    assert_eq!(second, first);
    assert_eq!(
        server.app().metrics_snapshot().counter("serve.jobs.warm"),
        1
    );
    assert_eq!(std::fs::read(&files[0]).expect("repaired entry"), full);

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
