//! Differential verification of memory-aware synthesis: the reference
//! interpreter and the cycle-accurate RTL simulator must agree — on
//! every output value *and* on the final contents of every array — for
//! the memory benchmark kernels across seeds and port counts, under
//! both MFS and MFSA.

use moveframe_hls::mem::check_port_safety;
use moveframe_hls::prelude::*;
use moveframe_hls::{benchmarks::memory, mem, sim};

/// Seeds the acceptance criteria ask for.
const SEEDS: std::ops::Range<u64> = 0..8;

fn mfsa_differential(dfg: &hls_dfg::Dfg, cs: u32) {
    let spec = TimingSpec::uniform_single_cycle();
    let out = mfsa::schedule(dfg, &spec, &MfsaConfig::new(cs, Library::ncr_like()))
        .unwrap_or_else(|e| panic!("{}: mfsa failed: {e}", dfg.name()));
    assert!(
        check_port_safety(dfg, &out.schedule).unwrap().is_empty(),
        "{}: MFSA schedule violates port safety",
        dfg.name()
    );
    for seed in SEEDS {
        let inputs = random_inputs(dfg, seed);
        let mismatches = check_equivalence(dfg, &out.schedule, &out.datapath, &spec, &inputs)
            .unwrap_or_else(|e| panic!("{}: sim failed: {e}", dfg.name()));
        assert!(
            mismatches.is_empty(),
            "{} seed {seed}: interpreter/RTL divergence: {mismatches:?}",
            dfg.name()
        );
    }
}

fn mfs_differential(dfg: &hls_dfg::Dfg, cs: u32) {
    let spec = TimingSpec::uniform_single_cycle();
    let out = mfs::schedule(dfg, &spec, &MfsConfig::time_constrained(cs))
        .unwrap_or_else(|e| panic!("{}: mfs failed: {e}", dfg.name()));
    assert!(
        check_port_safety(dfg, &out.schedule).unwrap().is_empty(),
        "{}: MFS schedule violates port safety",
        dfg.name()
    );
}

#[test]
fn array_fir_interpreter_matches_rtl_across_seeds_and_ports() {
    for ports in [1, 2, 4] {
        let dfg = memory::array_fir(8, ports);
        mfsa_differential(&dfg, 28);
    }
}

#[test]
fn matvec_interpreter_matches_rtl_across_seeds_and_ports() {
    for ports in [1, 2, 4] {
        let dfg = memory::matvec(3, ports);
        mfsa_differential(&dfg, 24);
    }
}

#[test]
fn mfs_schedules_memory_benchmarks_port_safely() {
    for ports in [1, 2, 4] {
        mfs_differential(&memory::array_fir(8, ports), 28);
        mfs_differential(&memory::matvec(3, ports), 24);
    }
}

#[test]
fn final_memory_state_matches_the_interpreter() {
    // check_equivalence already compares final memories; this test pins
    // the property explicitly by running both sides by hand.
    let dfg = memory::array_fir(4, 2);
    let spec = TimingSpec::uniform_single_cycle();
    let out = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(16, Library::ncr_like())).unwrap();
    let ctl = Controller::generate(&dfg, &out.schedule, &out.datapath, &spec).unwrap();
    for seed in SEEDS {
        let inputs = random_inputs(&dfg, seed);
        let (_, expected_memory) = sim::interpret_with_memory(&dfg, &inputs).unwrap();
        let outcome = simulate(&dfg, &out.schedule, &out.datapath, &ctl, &spec, &inputs).unwrap();
        assert_eq!(
            expected_memory, outcome.final_memory,
            "seed {seed}: final array contents diverge"
        );
        // The fill phase really wrote the streamed coefficients.
        let c = dfg.memory().array_by_name("c").unwrap().id();
        assert!(
            outcome.final_memory[&c].iter().any(|&v| v != 0),
            "seed {seed}: coefficient array left untouched"
        );
    }
}

#[test]
fn port_pressure_never_exceeds_the_bank_limit() {
    for ports in [1, 2, 4] {
        let dfg = memory::matvec(3, ports);
        let spec = TimingSpec::uniform_single_cycle();
        let out = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(24, Library::ncr_like())).unwrap();
        let pressure = mem::port_pressure(&dfg, &out.schedule).unwrap();
        for bank in dfg.memory().banks() {
            assert!(
                pressure.peak(bank.id()) <= bank.ports(),
                "{} ports={} peak={}",
                dfg.name(),
                bank.ports(),
                pressure.peak(bank.id())
            );
        }
    }
}
