//! Property-based tests over randomly generated data-flow graphs: the
//! core invariants of the move-frame algorithms hold for *every* input,
//! not just the curated benchmarks.

use proptest::prelude::*;

use moveframe_hls::benchmarks::generate::{generate, GeneratorConfig};
use moveframe_hls::prelude::*;
use moveframe_hls::rtl::regalloc::{left_edge, peak_live, signal_lifetimes};

/// A strategy over generator configurations: small-to-medium layered
/// DAGs with mixed operators.
fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (1u64..1000, 1usize..6, 1usize..7, 2usize..6, 0u32..100).prop_map(
        |(seed, layers, width, inputs, locality)| GeneratorConfig {
            seed,
            layers,
            width,
            inputs,
            locality_pct: locality,
            ..GeneratorConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mfs_schedules_verify_for_any_graph(config in config_strategy(), slack in 0u32..4) {
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let t = cp + slack;
        let outcome = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(t)).unwrap();
        prop_assert!(outcome.schedule.is_complete());
        let v = verify(&dfg, &outcome.schedule, &spec, VerifyOptions::default());
        prop_assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn mfs_respects_any_satisfiable_resource_limit(config in config_strategy()) {
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        // Budget: whatever an unconstrained run used; re-running with
        // those numbers as hard limits must succeed and stay within.
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let free = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(cp + 2)).unwrap();
        let mut config2 = MfsConfig::time_constrained(cp + 2);
        for (class, n) in free.fu_counts() {
            config2 = config2.with_fu_limit(class, n);
        }
        let constrained = mfs::schedule(&dfg, &spec, &config2).unwrap();
        for (class, n) in constrained.fu_counts() {
            prop_assert!(n <= free.fu_counts()[&class], "class {class} exceeded its budget");
        }
    }

    #[test]
    fn mfsa_datapaths_verify_for_any_graph(config in config_strategy()) {
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let out = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(cp + 2, Library::ncr_like()))
            .unwrap();
        let v = verify(&dfg, &out.schedule, &spec, VerifyOptions::default());
        prop_assert!(v.is_empty(), "schedule: {v:?}");
        let rv = verify_datapath(&dfg, &out.schedule, &out.datapath, &spec);
        prop_assert!(rv.is_empty(), "datapath: {rv:?}");
        // Cost is reproducible.
        let recomputed = CostReport::compute(&out.datapath, &Library::ncr_like());
        prop_assert_eq!(recomputed, out.cost);
    }

    #[test]
    fn left_edge_is_optimal_for_any_schedule(config in config_strategy()) {
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let out = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(cp + 3)).unwrap();
        let lifetimes = signal_lifetimes(&dfg, &out.schedule, &spec);
        let alloc = left_edge(&lifetimes);
        prop_assert_eq!(alloc.register_count(), peak_live(&lifetimes));
        // No register holds overlapping spans.
        for (_, spans) in alloc.iter() {
            for (i, a) in spans.iter().enumerate() {
                for b in &spans[i + 1..] {
                    prop_assert!(!a.overlaps(b));
                }
            }
        }
    }

    #[test]
    fn two_cycle_ops_occupy_consecutive_steps(config in config_strategy()) {
        let dfg = generate(&config);
        let spec = TimingSpec::two_cycle_multiply();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let out = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(cp + 2)).unwrap();
        let v = verify(&dfg, &out.schedule, &spec, VerifyOptions::default());
        prop_assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn functional_pipelining_respects_any_latency(
        config in config_strategy(),
        latency in 1u32..5,
    ) {
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let t = (cp + 2).max(latency);
        let mfs_config = MfsConfig::time_constrained(t).with_latency(latency);
        let out = mfs::schedule(&dfg, &spec, &mfs_config).unwrap();
        let opts = VerifyOptions { latency: Some(latency), ..Default::default() };
        let v = verify(&dfg, &out.schedule, &spec, opts);
        prop_assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn mfs_units_never_beat_the_averaging_lower_bound(config in config_strategy()) {
        // ⌈N_j / cs⌉ is a lower bound on any schedule's unit count.
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let t = cp + 1;
        let out = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(t)).unwrap();
        let counts = out.fu_counts();
        for (class, n) in dfg.class_counts() {
            let bound = (n as u32).div_ceil(t);
            prop_assert!(
                counts[&class] >= bound,
                "class {class}: {} units below the ⌈N/cs⌉ = {bound} bound",
                counts[&class]
            );
        }
    }
}

#[test]
fn proptest_regression_seed_smoke() {
    // A fixed medium-size case kept outside proptest for fast CI runs.
    let config = GeneratorConfig::sized(80, 7);
    let dfg = generate(&config);
    let spec = TimingSpec::uniform_single_cycle();
    let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
    let out = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(cp + 2)).unwrap();
    assert!(verify(&dfg, &out.schedule, &spec, VerifyOptions::default()).is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn plain_mobility_priority_never_produces_invalid_schedules(
        config in config_strategy(),
    ) {
        // The ablation rule does not guarantee predecessors place first.
        // It may legitimately FAIL (a successor scheduled early can pin
        // its predecessor into an empty window — the very reason the
        // paper orders by ALAP step), but when it succeeds the schedule
        // must be valid.
        use moveframe_hls::schedule::PriorityRule;
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let mfs_config = MfsConfig::time_constrained(cp + 2)
            .with_priority_rule(PriorityRule::PlainMobility);
        match mfs::schedule(&dfg, &spec, &mfs_config) {
            Ok(out) => {
                let v = verify(&dfg, &out.schedule, &spec, VerifyOptions::default());
                prop_assert!(v.is_empty(), "{v:?}");
            }
            Err(MoveFrameError::NoPosition { .. }) => {
                // The paper's rule must succeed where the ablation fails.
                let paper = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(cp + 2));
                prop_assert!(paper.is_ok(), "paper rule must not share the deadlock");
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    #[test]
    fn lazy_columns_reach_the_same_feasibility(config in config_strategy()) {
        // Starting current_j at 1 must still find a schedule (with more
        // restarts), and never use more units than ASAP would.
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let balanced = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(cp + 1)).unwrap();
        let lazy = mfs::schedule(
            &dfg,
            &spec,
            &MfsConfig::time_constrained(cp + 1).with_lazy_columns(),
        )
        .unwrap();
        let v = verify(&dfg, &lazy.schedule, &spec, VerifyOptions::default());
        prop_assert!(v.is_empty(), "{v:?}");
        prop_assert!(lazy.reschedule_count >= balanced.reschedule_count);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn branchy_graphs_schedule_and_share_units(seed in 1u64..400) {
        let cfg = GeneratorConfig {
            seed,
            layers: 3,
            width: 6,
            branch_pct: 100,
            ..Default::default()
        };
        let dfg = generate(&cfg);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let out = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(cp + 1)).unwrap();
        let v = verify(&dfg, &out.schedule, &spec, VerifyOptions::default());
        prop_assert!(v.is_empty(), "{v:?}");
        // The same graph with exclusivity erased (rebuilt without
        // branches) can never need FEWER units.
        let flat_cfg = GeneratorConfig { branch_pct: 0, ..cfg };
        let flat = generate(&flat_cfg);
        let flat_out =
            mfs::schedule(&flat, &spec, &MfsConfig::time_constrained(cp + 1));
        if let Ok(flat_out) = flat_out {
            let shared: u32 = out.fu_counts().values().sum();
            let unshared: u32 = flat_out.fu_counts().values().sum();
            prop_assert!(shared <= unshared,
                "exclusivity must not increase units ({shared} vs {unshared})");
        }
    }

    #[test]
    fn branchy_graphs_synthesise_with_mfsa(seed in 1u64..200) {
        let cfg = GeneratorConfig {
            seed,
            layers: 3,
            width: 4,
            branch_pct: 60,
            ..Default::default()
        };
        let dfg = generate(&cfg);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let out = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(cp + 2, Library::ncr_like()))
            .unwrap();
        let v = verify(&dfg, &out.schedule, &spec, VerifyOptions::default());
        prop_assert!(v.is_empty(), "{v:?}");
        let rv = verify_datapath(&dfg, &out.schedule, &out.datapath, &spec);
        prop_assert!(rv.is_empty(), "{rv:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dfg_text_format_round_trips_generated_graphs(config in config_strategy()) {
        let dfg = generate(&config);
        let text = dfg.to_text().expect("generated graphs are expressible");
        let reparsed = parse_dfg(&text).unwrap();
        prop_assert_eq!(&reparsed, &dfg);
        // And the round trip is a fixed point.
        prop_assert_eq!(reparsed.to_text().unwrap(), text);
    }

    #[test]
    fn branchy_text_format_round_trips(seed in 1u64..300) {
        let cfg = GeneratorConfig {
            seed,
            layers: 3,
            width: 5,
            branch_pct: 70,
            ..Default::default()
        };
        let dfg = generate(&cfg);
        let text = dfg.to_text().expect("expressible");
        let reparsed = parse_dfg(&text).unwrap();
        prop_assert_eq!(&reparsed, &dfg);
        // Exclusivity relations survive the round trip.
        for a in dfg.node_ids() {
            for b in dfg.node_ids() {
                prop_assert_eq!(
                    dfg.mutually_exclusive(a, b),
                    reparsed.mutually_exclusive(a, b)
                );
            }
        }
    }
}

#[test]
fn proptest_regression_seed_461_narrow_dag() {
    // Triaged from `property_tests.proptest-regressions`: proptest once
    // shrank a failure to this narrow 4×3 DAG (seed 461, 4 inputs,
    // locality 34 %). Kept as a directed case so the exact graph runs
    // on every CI pass, shim or real proptest alike.
    let config = GeneratorConfig {
        seed: 461,
        layers: 4,
        width: 3,
        inputs: 4,
        locality_pct: 34,
        ..GeneratorConfig::default()
    };
    let dfg = generate(&config);
    let spec = TimingSpec::uniform_single_cycle();
    let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
    for slack in 0..4 {
        let out = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(cp + slack)).unwrap();
        assert!(out.schedule.is_complete());
        let v = verify(&dfg, &out.schedule, &spec, VerifyOptions::default());
        assert!(v.is_empty(), "slack {slack}: {v:?}");
    }
    let out = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(cp + 2, Library::ncr_like())).unwrap();
    assert!(verify(&dfg, &out.schedule, &spec, VerifyOptions::default()).is_empty());
    assert!(verify_datapath(&dfg, &out.schedule, &out.datapath, &spec).is_empty());
    let lifetimes = signal_lifetimes(&dfg, &out.schedule, &spec);
    assert_eq!(
        left_edge(&lifetimes).register_count(),
        peak_live(&lifetimes)
    );
}
