//! Concurrency guarantees: answers under parallel load are
//! byte-identical to serial execution, the cache computes each unique
//! job exactly once, and a deadline overrun (504) never poisons the
//! worker pool or the cache.

mod common;

use std::collections::BTreeMap;
use std::time::Duration;

use moveframe_hls::prelude::*;

/// A mixed workload: both algorithms, several benchmarks and
/// constraints, plus an inline DFG body.
fn jobs() -> Vec<&'static str> {
    vec![
        r#"{"benchmark":"diffeq","alg":"mfs","cs":4}"#,
        r#"{"benchmark":"diffeq","alg":"mfs","cs":6}"#,
        r#"{"benchmark":"diffeq","alg":"mfsa","cs":4}"#,
        r#"{"benchmark":"ar","alg":"mfs","cs":8}"#,
        r#"{"benchmark":"fir","alg":"mfs","cs":12,"limit":"mul:2"}"#,
        r#"{"dfg":"input a, b\nop p = mul(a, b)\nop q = add(p, b)","cs":2}"#,
    ]
}

#[test]
fn concurrent_answers_match_serial_execution() {
    // Serial baseline on its own daemon (cold cache throughout).
    let serial = common::start(common::ephemeral_config());
    let addr = serial.local_addr();
    let mut expected: BTreeMap<&str, String> = BTreeMap::new();
    for job in jobs() {
        let (status, body) = common::post(addr, "/schedule", job.as_bytes());
        assert_eq!(status, 200, "serial {job}: {body}");
        expected.insert(job, body);
    }
    serial.shutdown();
    serial.join();

    // Fresh daemon, cold cache, hammered from N client threads with
    // rotated job orders so identical jobs race each other.
    let server = common::start(common::ephemeral_config());
    let addr = server.local_addr();
    let threads = 4;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            std::thread::spawn(move || {
                let jobs = jobs();
                let n = jobs.len();
                (0..n)
                    .map(|i| {
                        let job = jobs[(i + t) % n];
                        (job, common::post(addr, "/schedule", job.as_bytes()))
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut total = 0;
    for handle in handles {
        for (job, (status, body)) in handle.join().expect("client thread") {
            assert_eq!(status, 200, "concurrent {job}: {body}");
            assert_eq!(&body, &expected[job], "answer drifted under load: {job}");
            total += 1;
        }
    }
    assert_eq!(total, threads * jobs().len());

    // Exactly-once computation: every duplicate was a cache hit.
    let m = server.app().metrics_snapshot();
    let unique = jobs().len() as u64;
    assert_eq!(m.counter("serve.cache.results.misses"), unique);
    assert_eq!(m.counter("serve.cache.results.hits"), total as u64 - unique);

    server.shutdown();
    server.join();
}

#[test]
fn deadline_overrun_is_504_and_does_not_poison_the_pool() {
    let server = common::start(ServeConfig {
        workers: 2,
        ..common::ephemeral_config()
    });
    let addr = server.local_addr();

    // deadline_ms=0 expires before the first scheduler checkpoint.
    let expired = r#"{"benchmark":"ewf","alg":"mfsa","cs":18,"deadline_ms":0}"#;
    let (status, body) = common::post(addr, "/schedule", expired.as_bytes());
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("deadline"), "{body}");

    // The same job without a deadline must compute fresh (the
    // cancelled attempt is forgotten, not cached) and succeed.
    let live = r#"{"benchmark":"ewf","alg":"mfsa","cs":18}"#;
    let (status, body) = common::post(addr, "/schedule", live.as_bytes());
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"total_cost\":"), "{body}");

    // And the pool still serves ordinary traffic afterwards.
    for _ in 0..3 {
        let (status, _) = common::post(addr, "/schedule", br#"{"benchmark":"diffeq","cs":4}"#);
        assert_eq!(status, 200);
    }
    assert_eq!(
        server
            .app()
            .metrics_snapshot()
            .counter("serve.jobs.deadline"),
        1
    );

    server.shutdown();
    server.join();
}

#[test]
fn default_deadline_applies_when_the_request_has_none() {
    // A server-wide 0ms default: everything times out...
    let server = common::start(ServeConfig {
        default_deadline_ms: Some(0),
        ..common::ephemeral_config()
    });
    let addr = server.local_addr();
    let (status, _) = common::post(addr, "/schedule", br#"{"benchmark":"diffeq","cs":4}"#);
    assert_eq!(status, 504);
    // ...unless the request overrides with a generous deadline.
    let (status, body) = common::post(
        addr,
        "/schedule",
        br#"{"benchmark":"diffeq","cs":4,"deadline_ms":60000}"#,
    );
    assert_eq!(status, 200, "{body}");
    server.shutdown();
    server.join();
}

#[test]
fn healthz_stays_responsive_while_jobs_compute() {
    let server = common::start(ServeConfig {
        workers: 2,
        ..common::ephemeral_config()
    });
    let addr = server.local_addr();
    let worker = std::thread::spawn(move || {
        common::post(
            addr,
            "/schedule",
            br#"{"benchmark":"dct8","alg":"mfsa","cs":12}"#,
        )
    });
    // Probe while the job runs; with a second worker this never queues
    // behind the compute.
    std::thread::sleep(Duration::from_millis(20));
    let (status, _) = common::get(addr, "/healthz");
    assert_eq!(status, 200);
    let (status, body) = worker.join().expect("job thread");
    assert!(status == 200 || status == 422, "dct8 job: {status} {body}");
    server.shutdown();
    server.join();
}
