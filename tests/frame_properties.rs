//! Property tests for the frame algebra of §3.2: for every operation at
//! its scheduling moment the move frame satisfies
//! `MF = PF − (RF ∪ FF ∪ AF)` — it lies inside the primary frame, never
//! touches the redundant columns, the dependency-forbidden steps, or
//! the access-conflict steps of a fully-occupied memory bank — and the
//! move loop's local rescheduling terminates within its column budget.

use proptest::prelude::*;

use moveframe_hls::benchmarks::generate::{generate, GeneratorConfig};
use moveframe_hls::benchmarks::memory;
use moveframe_hls::mem::{check_port_safety, port_pressure};
use moveframe_hls::moveframe::FrameSnapshot;
use moveframe_hls::prelude::*;

/// The same layered-DAG strategy as `property_tests.rs`.
fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (1u64..1000, 1usize..6, 1usize..7, 2usize..6, 0u32..100).prop_map(
        |(seed, layers, width, inputs, locality)| GeneratorConfig {
            seed,
            layers,
            width,
            inputs,
            locality_pct: locality,
            ..GeneratorConfig::default()
        },
    )
}

/// Schedules with frame recording on and returns the final pass's
/// snapshots plus the outcome.
fn schedule_recorded(
    dfg: &Dfg,
    spec: &TimingSpec,
    t: u32,
) -> (
    Vec<FrameSnapshot>,
    moveframe_hls::moveframe::mfs::MfsOutcome,
) {
    let config = MfsConfig::time_constrained(t).with_frame_recording();
    let outcome = mfs::schedule(dfg, spec, &config).expect("feasible time constraint");
    (outcome.snapshots.clone(), outcome)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn move_frames_stay_inside_the_primary_frame(
        config in config_strategy(),
        slack in 0u32..4,
    ) {
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let (snapshots, _) = schedule_recorded(&dfg, &spec, cp + slack);
        prop_assert_eq!(snapshots.len(), dfg.node_count());
        for snap in &snapshots {
            let (asap, alap) = snap.primary;
            prop_assert!(asap <= alap);
            for p in &snap.movable {
                // MF ⊆ PF: inside the time range and the column budget.
                prop_assert!(
                    p.step >= asap && p.step <= alap,
                    "node {:?}: step {} outside PF [{}, {}]",
                    snap.node, p.step.get(), asap.get(), alap.get()
                );
                prop_assert!(
                    p.fu.get() >= 1 && p.fu.get() <= snap.max_fu,
                    "node {:?}: column {} outside [1, {}]",
                    snap.node, p.fu.get(), snap.max_fu
                );
            }
        }
    }

    #[test]
    fn move_frames_never_touch_the_redundant_frame(config in config_strategy()) {
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let (snapshots, _) = schedule_recorded(&dfg, &spec, cp + 1);
        for snap in &snapshots {
            // RF = columns (current_j, max_j]: invisible to the frame.
            prop_assert!(snap.current_fu <= snap.max_fu);
            for p in &snap.movable {
                prop_assert!(
                    p.fu.get() <= snap.current_fu,
                    "node {:?}: column {} is in RF (current_j = {})",
                    snap.node, p.fu.get(), snap.current_fu
                );
            }
        }
    }

    #[test]
    fn move_frames_never_touch_the_forbidden_frame(
        config in config_strategy(),
        slack in 0u32..3,
    ) {
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let (snapshots, _) = schedule_recorded(&dfg, &spec, cp + slack);
        for snap in &snapshots {
            // FF = dependency-excluded steps below `earliest_feasible`
            // or above `latest_feasible`.
            for p in &snap.movable {
                prop_assert!(
                    p.step >= snap.earliest_feasible && p.step <= snap.latest_feasible,
                    "node {:?}: step {} is in FF (feasible [{}, {}])",
                    snap.node, p.step.get(),
                    snap.earliest_feasible.get(), snap.latest_feasible.get()
                );
            }
        }
    }

    #[test]
    fn committed_moves_respect_predecessor_precedence(
        config in config_strategy(),
        slack in 0u32..4,
    ) {
        let dfg = generate(&config);
        let spec = TimingSpec::two_cycle_multiply();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let (_, outcome) = schedule_recorded(&dfg, &spec, cp + slack);
        prop_assert!(outcome.schedule.is_complete());
        let v = verify(&dfg, &outcome.schedule, &spec, VerifyOptions::default());
        prop_assert!(v.is_empty(), "{v:?}");
        for node in dfg.node_ids() {
            let start = outcome.schedule.start(node).expect("complete schedule");
            for &p in dfg.preds(node) {
                let pf = outcome
                    .schedule
                    .finish(p, &dfg, &spec)
                    .expect("complete schedule");
                prop_assert!(
                    start > pf,
                    "{:?} starts at {} but its predecessor {:?} finishes at {}",
                    node, start.get(), p, pf.get()
                );
            }
        }
    }

    #[test]
    fn local_rescheduling_terminates_within_the_column_budget(
        config in config_strategy(),
    ) {
        // Each empty frame either widens current_j toward max_j or grows
        // a derived max_j toward node_count + 1, so per class the bumps
        // are bounded by ~2 · (node_count + 2); termination is
        // structural, not lucky.
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let (_, outcome) = schedule_recorded(&dfg, &spec, cp);
        let classes = dfg.class_counts().len() as u32;
        let bound = classes * 2 * (dfg.node_count() as u32 + 2);
        prop_assert!(
            outcome.reschedule_count <= bound,
            "{} reschedules exceed the structural bound {}",
            outcome.reschedule_count, bound
        );
    }
}

/// Schedules a memory-bearing DFG with frame recording on, searching
/// upward from the dependency critical path for the first time
/// constraint the bank ports admit.
fn schedule_memory_recorded(
    dfg: &Dfg,
    spec: &TimingSpec,
    slack: u32,
) -> (
    Vec<FrameSnapshot>,
    moveframe_hls::moveframe::mfs::MfsOutcome,
) {
    let cp = CriticalPath::compute(dfg, spec).steps() as u32;
    for t in cp..cp + 64 {
        let config = MfsConfig::time_constrained(t + slack).with_frame_recording();
        if let Ok(outcome) = mfs::schedule(dfg, spec, &config) {
            return (outcome.snapshots.clone(), outcome);
        }
    }
    panic!("no feasible time constraint within cp + 64");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn move_frames_never_touch_the_access_conflict_frame(
        taps in 2usize..6,
        ports in 1u32..4,
        slack in 0u32..3,
    ) {
        let dfg = memory::array_fir(taps, ports);
        let spec = TimingSpec::uniform_single_cycle();
        let (snapshots, _) = schedule_memory_recorded(&dfg, &spec, slack);
        prop_assert_eq!(snapshots.len(), dfg.node_count());
        let mut saw_af = false;
        for snap in &snapshots {
            if !matches!(snap.class, FuClass::Mem(_)) {
                // AF is a memory-port notion; a fully-occupied step of an
                // ALU class is an ordinary resource conflict, not AF.
                prop_assert!(
                    snap.af_steps.is_empty(),
                    "node {:?}: non-memory class {:?} has AF {:?}",
                    snap.node, snap.class, snap.af_steps
                );
                continue;
            }
            saw_af |= !snap.af_steps.is_empty();
            for s in &snap.af_steps {
                // AF ⊆ the dependency-feasible range: it collects steps
                // excluded *solely* by port occupancy, so FF and AF are
                // disjoint by construction.
                prop_assert!(
                    *s >= snap.earliest_feasible && *s <= snap.latest_feasible,
                    "node {:?}: AF step {} outside the feasible range [{}, {}]",
                    snap.node, s.get(),
                    snap.earliest_feasible.get(), snap.latest_feasible.get()
                );
            }
            for p in &snap.movable {
                // MF ∩ AF = ∅: the move frame never offers a step whose
                // bank ports are all taken.
                prop_assert!(
                    !snap.af_steps.contains(&p.step),
                    "node {:?}: movable step {} is in AF {:?}",
                    snap.node, p.step.get(), snap.af_steps
                );
            }
        }
        if ports == 1 && slack == 0 {
            // At one port and zero slack the load phase is saturated, so
            // at least one access must have seen a port-conflict step.
            prop_assert!(saw_af, "expected a non-empty AF at ports=1");
        }
    }

    #[test]
    fn schedules_never_exceed_bank_port_counts(
        n in 2usize..5,
        ports in 1u32..4,
        slack in 0u32..3,
    ) {
        let dfg = memory::matvec(n, ports);
        let spec = TimingSpec::uniform_single_cycle();
        let (_, outcome) = schedule_memory_recorded(&dfg, &spec, slack);
        prop_assert!(outcome.schedule.is_complete());
        // The independent witness re-derives occupancy from the bound
        // schedule: no step oversubscribes a bank, no port is
        // double-booked, no binding names a port past the bank's count.
        let violations = check_port_safety(&dfg, &outcome.schedule)
            .expect("complete, port-bound schedule");
        prop_assert!(violations.is_empty(), "{violations:?}");
        let pressure = port_pressure(&dfg, &outcome.schedule)
            .expect("complete, port-bound schedule");
        for bank in dfg.memory().banks() {
            prop_assert!(
                pressure.peak(bank.id()) <= bank.ports(),
                "bank {} peak {} exceeds {} port(s)",
                bank.name(), pressure.peak(bank.id()), bank.ports()
            );
        }
    }
}
