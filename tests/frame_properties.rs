//! Property tests for the frame algebra of §3.2: for every operation at
//! its scheduling moment the move frame satisfies
//! `MF = PF − (RF ∪ FF)` — it lies inside the primary frame, never
//! touches the redundant columns or the dependency-forbidden steps —
//! and the move loop's local rescheduling terminates within its column
//! budget.

use proptest::prelude::*;

use moveframe_hls::benchmarks::generate::{generate, GeneratorConfig};
use moveframe_hls::moveframe::FrameSnapshot;
use moveframe_hls::prelude::*;

/// The same layered-DAG strategy as `property_tests.rs`.
fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (1u64..1000, 1usize..6, 1usize..7, 2usize..6, 0u32..100).prop_map(
        |(seed, layers, width, inputs, locality)| GeneratorConfig {
            seed,
            layers,
            width,
            inputs,
            locality_pct: locality,
            ..GeneratorConfig::default()
        },
    )
}

/// Schedules with frame recording on and returns the final pass's
/// snapshots plus the outcome.
fn schedule_recorded(
    dfg: &Dfg,
    spec: &TimingSpec,
    t: u32,
) -> (
    Vec<FrameSnapshot>,
    moveframe_hls::moveframe::mfs::MfsOutcome,
) {
    let config = MfsConfig::time_constrained(t).with_frame_recording();
    let outcome = mfs::schedule(dfg, spec, &config).expect("feasible time constraint");
    (outcome.snapshots.clone(), outcome)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn move_frames_stay_inside_the_primary_frame(
        config in config_strategy(),
        slack in 0u32..4,
    ) {
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let (snapshots, _) = schedule_recorded(&dfg, &spec, cp + slack);
        prop_assert_eq!(snapshots.len(), dfg.node_count());
        for snap in &snapshots {
            let (asap, alap) = snap.primary;
            prop_assert!(asap <= alap);
            for p in &snap.movable {
                // MF ⊆ PF: inside the time range and the column budget.
                prop_assert!(
                    p.step >= asap && p.step <= alap,
                    "node {:?}: step {} outside PF [{}, {}]",
                    snap.node, p.step.get(), asap.get(), alap.get()
                );
                prop_assert!(
                    p.fu.get() >= 1 && p.fu.get() <= snap.max_fu,
                    "node {:?}: column {} outside [1, {}]",
                    snap.node, p.fu.get(), snap.max_fu
                );
            }
        }
    }

    #[test]
    fn move_frames_never_touch_the_redundant_frame(config in config_strategy()) {
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let (snapshots, _) = schedule_recorded(&dfg, &spec, cp + 1);
        for snap in &snapshots {
            // RF = columns (current_j, max_j]: invisible to the frame.
            prop_assert!(snap.current_fu <= snap.max_fu);
            for p in &snap.movable {
                prop_assert!(
                    p.fu.get() <= snap.current_fu,
                    "node {:?}: column {} is in RF (current_j = {})",
                    snap.node, p.fu.get(), snap.current_fu
                );
            }
        }
    }

    #[test]
    fn move_frames_never_touch_the_forbidden_frame(
        config in config_strategy(),
        slack in 0u32..3,
    ) {
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let (snapshots, _) = schedule_recorded(&dfg, &spec, cp + slack);
        for snap in &snapshots {
            // FF = dependency-excluded steps below `earliest_feasible`
            // or above `latest_feasible`.
            for p in &snap.movable {
                prop_assert!(
                    p.step >= snap.earliest_feasible && p.step <= snap.latest_feasible,
                    "node {:?}: step {} is in FF (feasible [{}, {}])",
                    snap.node, p.step.get(),
                    snap.earliest_feasible.get(), snap.latest_feasible.get()
                );
            }
        }
    }

    #[test]
    fn committed_moves_respect_predecessor_precedence(
        config in config_strategy(),
        slack in 0u32..4,
    ) {
        let dfg = generate(&config);
        let spec = TimingSpec::two_cycle_multiply();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let (_, outcome) = schedule_recorded(&dfg, &spec, cp + slack);
        prop_assert!(outcome.schedule.is_complete());
        let v = verify(&dfg, &outcome.schedule, &spec, VerifyOptions::default());
        prop_assert!(v.is_empty(), "{v:?}");
        for node in dfg.node_ids() {
            let start = outcome.schedule.start(node).expect("complete schedule");
            for &p in dfg.preds(node) {
                let pf = outcome
                    .schedule
                    .finish(p, &dfg, &spec)
                    .expect("complete schedule");
                prop_assert!(
                    start > pf,
                    "{:?} starts at {} but its predecessor {:?} finishes at {}",
                    node, start.get(), p, pf.get()
                );
            }
        }
    }

    #[test]
    fn local_rescheduling_terminates_within_the_column_budget(
        config in config_strategy(),
    ) {
        // Each empty frame either widens current_j toward max_j or grows
        // a derived max_j toward node_count + 1, so per class the bumps
        // are bounded by ~2 · (node_count + 2); termination is
        // structural, not lucky.
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let (_, outcome) = schedule_recorded(&dfg, &spec, cp);
        let classes = dfg.class_counts().len() as u32;
        let bound = classes * 2 * (dfg.node_count() as u32 + 2);
        prop_assert!(
            outcome.reschedule_count <= bound,
            "{} reschedules exceed the structural bound {}",
            outcome.reschedule_count, bound
        );
    }
}
