//! End-to-end MFSA: every Table-2 configuration must yield a verified
//! schedule AND a structurally verified data path whose reported cost is
//! reproducible from the netlist.

use moveframe_hls::benchmarks::examples;
use moveframe_hls::prelude::*;

fn configs(e: &examples::Example, style: DesignStyle) -> MfsaConfig {
    let config = MfsaConfig::new(e.mfsa_cs, Library::ncr_like()).with_style(style);
    let config = match e.clock() {
        Some(clock) => config.with_chaining(clock),
        None => config,
    };
    match e.latency_for(e.mfsa_cs) {
        Some(l) => config.with_latency(l),
        None => config,
    }
}

#[test]
fn every_table2_cell_verifies() {
    for e in examples::all() {
        for style in [DesignStyle::Unrestricted, DesignStyle::NoSelfLoop] {
            let out = mfsa::schedule(&e.dfg, &e.spec, &configs(&e, style))
                .unwrap_or_else(|err| panic!("ex{} {style}: {err}", e.id));
            // Schedule-level constraints.
            let opts = VerifyOptions {
                clock: e.clock(),
                latency: e.latency_for(e.mfsa_cs),
            };
            let v = verify(&e.dfg, &out.schedule, &e.spec, opts);
            assert!(v.is_empty(), "ex{} {style}: {v:?}", e.id);
            // Netlist-level constraints.
            let rv = verify_datapath(&e.dfg, &out.schedule, &out.datapath, &e.spec);
            assert!(rv.is_empty(), "ex{} {style}: {rv:?}", e.id);
            // The reported cost is reproducible from the netlist.
            let recomputed = CostReport::compute(&out.datapath, &Library::ncr_like());
            assert_eq!(recomputed, out.cost, "ex{} {style}: cost drifted", e.id);
        }
    }
}

#[test]
fn style2_never_coallocates_dependent_ops() {
    for e in examples::all() {
        let out = mfsa::schedule(&e.dfg, &e.spec, &configs(&e, DesignStyle::NoSelfLoop))
            .unwrap_or_else(|err| panic!("ex{}: {err}", e.id));
        for alu in out.datapath.alus() {
            for (i, &a) in alu.ops.iter().enumerate() {
                for &b in &alu.ops[i + 1..] {
                    let related = e.dfg.preds(a).contains(&b) || e.dfg.succs(a).contains(&b);
                    assert!(
                        !related,
                        "ex{}: dependent ops {} and {} share {}",
                        e.id,
                        e.dfg.node(a).name(),
                        e.dfg.node(b).name(),
                        alu.id
                    );
                }
            }
        }
    }
}

#[test]
fn every_alu_supports_all_its_ops() {
    for e in examples::all() {
        let out = mfsa::schedule(&e.dfg, &e.spec, &configs(&e, DesignStyle::Unrestricted))
            .unwrap_or_else(|err| panic!("ex{}: {err}", e.id));
        for alu in out.datapath.alus() {
            for &op in &alu.ops {
                let kind = e.dfg.node(op).kind().op().expect("plain ops");
                assert!(alu.kind.supports(kind));
            }
        }
    }
}

#[test]
fn weighted_liapunov_trades_time_for_area() {
    // With the time term muted, the area of every example is at most
    // the balanced run's area (usually strictly smaller).
    for e in examples::all() {
        let balanced =
            mfsa::schedule(&e.dfg, &e.spec, &configs(&e, DesignStyle::Unrestricted)).unwrap();
        let config = configs(&e, DesignStyle::Unrestricted).with_weights(Weights {
            time: 0,
            alu: 1,
            mux: 1,
            reg: 1,
        });
        let cheap = mfsa::schedule(&e.dfg, &e.spec, &config).unwrap();
        assert!(
            cheap.cost.alu_area <= balanced.cost.alu_area,
            "ex{}: muting w_TIME increased ALU area ({} > {})",
            e.id,
            cheap.cost.alu_area,
            balanced.cost.alu_area
        );
    }
}

#[test]
fn register_counts_match_left_edge_lower_bound() {
    use moveframe_hls::rtl::regalloc::{left_edge, peak_live, signal_lifetimes};
    for e in examples::all() {
        let out = mfsa::schedule(&e.dfg, &e.spec, &configs(&e, DesignStyle::Unrestricted)).unwrap();
        let lifetimes = signal_lifetimes(&e.dfg, &out.schedule, &e.spec);
        let alloc = left_edge(&lifetimes);
        assert_eq!(
            alloc.register_count(),
            peak_live(&lifetimes),
            "ex{}: left-edge must meet the interval lower bound",
            e.id
        );
        assert_eq!(out.cost.reg_count, alloc.register_count());
    }
}
