//! Differential tests for the exploration engine's determinism
//! guarantee: the Pareto front and every per-point result are
//! **byte-identical** whatever the worker-thread count, and a cached
//! result always equals a fresh, uncached run.

use hls_bench::paper_points;
use moveframe_hls::benchmarks::examples;
use moveframe_hls::benchmarks::generate::{generate, GeneratorConfig};
use moveframe_hls::explore::{explore, Algorithm, DesignPoint, ExploreCache, Tier};
use moveframe_hls::prelude::*;

/// The full per-example grid: the paper points plus the baseline
/// schedulers at every sweep constraint.
fn full_grid(e: &examples::Example) -> Vec<DesignPoint> {
    let mut points = paper_points(e);
    for &t in &e.time_constraints {
        for alg in [Algorithm::List, Algorithm::Fds, Algorithm::Anneal] {
            points.push(DesignPoint::new(alg, t));
        }
    }
    points
}

/// Asserts threads=1 and threads=8 agree byte-for-byte on `dfg`.
fn assert_thread_invariant(dfg: &Dfg, spec: &TimingSpec, points: &[DesignPoint], what: &str) {
    let serial = explore(dfg, spec, points, ExploreOptions { threads: 1 });
    let parallel = explore(dfg, spec, points, ExploreOptions { threads: 8 });
    assert_eq!(
        serial.front_json(),
        parallel.front_json(),
        "{what}: front diverged across thread counts"
    );
    assert_eq!(serial.results.len(), parallel.results.len());
    for (a, b) in serial.results.iter().zip(&parallel.results) {
        assert_eq!(a.outcome, b.outcome, "{what}: {}", a.label);
        assert_eq!(a.label, b.label);
        assert_eq!(a.index, b.index);
    }
    // Counter totals are deterministic too (exactly-once computation);
    // only the *.ns histograms may differ.
    for name in [
        "explore.points",
        "explore.cache.miss",
        "explore.cache.hit",
        "explore.frames.computed",
        "explore.frames.reused",
        "explore.errors",
    ] {
        assert_eq!(
            serial.metrics.counter(name),
            parallel.metrics.counter(name),
            "{what}: counter {name} diverged"
        );
    }
}

#[test]
fn paper_examples_are_thread_invariant() {
    for e in examples::all() {
        let points = full_grid(&e);
        assert_thread_invariant(&e.dfg, &e.spec, &points, &format!("ex{}", e.id));
    }
}

#[test]
fn random_dfgs_are_thread_invariant() {
    for seed in [3u64, 47, 461, 900] {
        let config = GeneratorConfig {
            seed,
            layers: 4,
            width: 4,
            inputs: 4,
            ..GeneratorConfig::default()
        };
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let mut points = Vec::new();
        for alg in [Algorithm::Mfs, Algorithm::List, Algorithm::Fds] {
            for t in cp..cp + 3 {
                points.push(DesignPoint::new(alg, t));
            }
        }
        points.push(DesignPoint::new(Algorithm::Mfsa, cp + 1));
        // An infeasible point must fail identically on every thread count.
        points.push(DesignPoint::new(Algorithm::Mfs, cp - 1));
        assert_thread_invariant(&dfg, &spec, &points, &format!("seed {seed}"));
    }
}

#[test]
fn cached_results_equal_fresh_uncached_runs() {
    for e in examples::all() {
        let points = full_grid(&e);
        let engine = Engine::new();
        let cold = engine.explore(&e.dfg, &e.spec, &points, ExploreOptions { threads: 2 });
        let warm = engine.explore(&e.dfg, &e.spec, &points, ExploreOptions { threads: 2 });
        // The warm pass answered everything from the cache…
        assert_eq!(
            warm.metrics.counter("explore.cache.hit"),
            points.len() as u64,
            "ex{}",
            e.id
        );
        assert_eq!(warm.metrics.counter("explore.cache.miss"), 0);
        // …and each cached result equals a fresh, uncached run.
        let fresh = Engine::new().explore(&e.dfg, &e.spec, &points, ExploreOptions { threads: 1 });
        for ((c, w), f) in cold.results.iter().zip(&warm.results).zip(&fresh.results) {
            assert_eq!(c.outcome, w.outcome, "ex{} {}", e.id, c.label);
            assert_eq!(w.outcome, f.outcome, "ex{} {}", e.id, w.label);
        }
        assert_eq!(cold.front_json(), warm.front_json());
        assert_eq!(warm.front_json(), fresh.front_json());
    }
}

#[test]
fn cache_is_content_addressed_not_identity_addressed() {
    // Structurally identical graphs with different names share cache
    // entries; a structural change misses.
    let build = |name: &str, flip: bool| {
        let mut b = DfgBuilder::new(name);
        let x = b.input(if flip { "p" } else { "x" });
        let y = b.input("y");
        let m = b.op("m", OpKind::Mul, &[x, y]).unwrap();
        b.op("a", OpKind::Add, &[m, y]).unwrap();
        b.finish().unwrap()
    };
    let cache = ExploreCache::new();
    let spec = TimingSpec::uniform_single_cycle();
    let a = moveframe_hls::explore::dfg_fingerprint(&build("first", false), &spec);
    let b = moveframe_hls::explore::dfg_fingerprint(&build("second", true), &spec);
    assert_eq!(a, b, "renaming must not change the fingerprint");
    let (_, tier) = cache.result(a, 1, || Err("placeholder".into()));
    assert_eq!(tier, Tier::Cold);
    let (_, tier) = cache.result(b, 1, || unreachable!("must hit"));
    assert_eq!(
        tier,
        Tier::Hot,
        "same structure + same point must hit the cache"
    );
}
