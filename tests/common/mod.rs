//! Shared helpers for the `serve` integration tests: a minimal
//! blocking HTTP/1.1 client over `TcpStream` and an ephemeral-port
//! server launcher. Each test crate compiles its own copy, so not
//! every helper is used everywhere.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use moveframe_hls::prelude::*;

/// A [`ServeConfig`] bound to an ephemeral port so parallel test
/// binaries never collide.
pub fn ephemeral_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    }
}

/// Starts a daemon with no access log.
pub fn start(config: ServeConfig) -> Server {
    Server::start(config, Box::new(NullSink)).expect("server starts")
}

/// Sends one HTTP/1.1 request and returns `(status, body)`.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

pub fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(addr, "GET", path, b"")
}

pub fn post(addr: SocketAddr, path: &str, body: &[u8]) -> (u16, String) {
    request(addr, "POST", path, body)
}

/// A single `/schedule` job heavy enough to pin one worker for most of
/// a second in debug builds: the canonical `gen:` scaling workload,
/// inlined as DFG text. Under the reactor only *compute* occupies a
/// worker — a mute connection pins nothing — so tests that need a busy
/// pool send this.
pub fn pin_job(ops: usize) -> Vec<u8> {
    use moveframe_hls::benchmarks::generate::{generate, scaling_workload};
    let dfg = generate(&scaling_workload(ops));
    let text = dfg.to_text().expect("generated DFG renders to text");
    let mut body = String::from("{\"dfg\":\"");
    for c in text.chars() {
        match c {
            '"' => body.push_str("\\\""),
            '\\' => body.push_str("\\\\"),
            '\n' => body.push_str("\\n"),
            c => body.push(c),
        }
    }
    body.push_str("\",\"alg\":\"mfsa\",\"cs\":40}");
    body.into_bytes()
}
