//! Golden-table regression tests: the reconstructed Tables 1 and 2 of
//! the paper (as documented in `EXPERIMENTS.md`) pinned as fixtures and
//! regenerated **through the exploration engine**, so any drift in the
//! schedulers, the cost model, or the engine plumbing fails loudly.

use hls_bench::{table1_engine, table2_engine};
use moveframe_hls::prelude::*;

/// Table 1 fixture: (example, T, FU mix, local reschedulings).
const TABLE1: &[(u8, u32, &str, u32)] = &[
    (1, 4, "**,++,-,&,|,=", 2),
    (1, 5, "*,+,-,&,|,=", 0),
    (2, 4, "+,--", 1),
    (3, 4, "***,+,-,>", 2),
    (3, 6, "*,+,-,>", 0),
    (3, 8, "*,+,-,>", 0),
    (4, 8, "*,+,-,<", 0),
    (4, 9, "*,+,-,<", 0),
    (4, 13, "*,+,-,<", 0),
    (5, 9, "***,++,--", 4),
    (5, 10, "***,++,-", 3),
    (5, 13, "**,+,-", 0),
    (6, 17, "*,++", 0),
    (6, 19, "*,++", 0),
    (6, 21, "*,++", 0),
];

/// Table 2 fixture: (example, style, ALUs, cost, REG, MUX, MUXin).
const TABLE2: &[(u8, u8, &str, u64, usize, usize, usize)] = &[
    (1, 1, "(&|),(*),(+*),(+-),(+-=>)", 59551, 8, 7, 17),
    (1, 2, "(&),(*),(+*),(+-),(+-=>),(|)", 59762, 8, 5, 14),
    (2, 1, "2(+),2(-)", 16005, 4, 5, 10),
    (2, 2, "2(+),2(-)", 16005, 4, 5, 10),
    (3, 1, "(*),(+*),(+-*),(+>),(-)", 74135, 6, 4, 8),
    (3, 2, "(*),(+),(+*),(+-*),(+->)", 74838, 6, 5, 10),
    (4, 1, "2(*),(+*),(+-*),(+-<)", 96782, 9, 6, 15),
    (4, 2, "2(*),2(+-*),(+),(<)", 97820, 9, 6, 13),
    (5, 1, "4(*),4(+-*)", 194149, 20, 16, 51),
    (5, 2, "4(*),4(+-*)", 194287, 20, 16, 52),
    (6, 1, "3(+*),(+)", 88592, 16, 8, 40),
    (6, 2, "4(+*),(+)", 108079, 16, 8, 35),
];

#[test]
fn table1_matches_the_golden_fixture_via_the_engine() {
    let rows = table1_engine(&Engine::new(), 4);
    assert_eq!(rows.len(), TABLE1.len(), "row count drifted");
    for (row, &(example, t, mix, reschedules)) in rows.iter().zip(TABLE1) {
        assert_eq!((row.example, row.t), (example, t), "row order drifted");
        assert_eq!(row.mix, mix, "ex{example} T={t}: FU mix drifted");
        assert_eq!(
            row.reschedules, reschedules,
            "ex{example} T={t}: reschedule count drifted"
        );
    }
}

#[test]
fn table2_matches_the_golden_fixture_via_the_engine() {
    let rows = table2_engine(&Engine::new(), 4);
    assert_eq!(rows.len(), TABLE2.len(), "row count drifted");
    for (row, &(example, style, alus, cost, reg, mux, muxin)) in rows.iter().zip(TABLE2) {
        assert_eq!(
            (row.example, row.style),
            (example, style),
            "row order drifted"
        );
        assert_eq!(row.alus, alus, "ex{example} style {style}: ALU set drifted");
        assert_eq!(row.cost, cost, "ex{example} style {style}: cost drifted");
        assert_eq!(
            (row.reg, row.mux, row.muxin),
            (reg, mux, muxin),
            "ex{example} style {style}: REG/MUX/MUXin drifted"
        );
    }
}

#[test]
fn golden_tables_are_thread_invariant() {
    // The fixtures above ran at 4 threads; a serial regeneration must
    // produce the identical tables.
    let serial1 = table1_engine(&Engine::new(), 1);
    let parallel1 = table1_engine(&Engine::new(), 8);
    for (a, b) in serial1.iter().zip(&parallel1) {
        assert_eq!(
            (a.example, a.t, &a.mix, a.reschedules),
            (b.example, b.t, &b.mix, b.reschedules)
        );
    }
    let serial2 = table2_engine(&Engine::new(), 1);
    let parallel2 = table2_engine(&Engine::new(), 8);
    for (a, b) in serial2.iter().zip(&parallel2) {
        assert_eq!(
            (a.example, a.style, &a.alus, a.cost, a.reg, a.mux, a.muxin),
            (b.example, b.style, &b.alus, b.cost, b.reg, b.mux, b.muxin)
        );
    }
}
