//! Cross-checks between MFS and the baseline schedulers: all four
//! algorithms must agree on feasibility and the shared verifier, and
//! MFS must be competitive on the quality metric it optimises.

use moveframe_hls::baselines::{
    alap_schedule, anneal_schedule, asap_schedule, force_directed_schedule, list_schedule,
    AnnealParams,
};
use moveframe_hls::benchmarks::examples::{self, Feature};
use moveframe_hls::prelude::*;

fn plain_examples() -> Vec<examples::Example> {
    examples::all()
        .into_iter()
        .filter(|e| matches!(e.feature, Feature::SingleCycle | Feature::TwoCycleMultiply))
        .collect()
}

fn total_units(counts: &std::collections::BTreeMap<FuClass, u32>) -> u32 {
    counts.values().sum()
}

#[test]
fn all_baselines_produce_verified_schedules() {
    let lib = Library::ncr_like();
    for e in plain_examples() {
        let t = *e.time_constraints.last().unwrap();
        for (name, sched) in [
            ("asap", asap_schedule(&e.dfg, &e.spec, t).unwrap()),
            ("alap", alap_schedule(&e.dfg, &e.spec, t).unwrap()),
            ("fds", force_directed_schedule(&e.dfg, &e.spec, t).unwrap()),
            (
                "anneal",
                anneal_schedule(&e.dfg, &e.spec, t, &lib, &AnnealParams::default())
                    .unwrap()
                    .0,
            ),
        ] {
            let v = verify(&e.dfg, &sched, &e.spec, VerifyOptions::default());
            assert!(v.is_empty(), "ex{} {name}: {v:?}", e.id);
        }
    }
}

#[test]
fn mfs_is_at_least_as_lean_as_asap_and_alap() {
    for e in plain_examples() {
        for &t in &e.time_constraints {
            let mfs_units = total_units(
                &mfs::schedule(&e.dfg, &e.spec, &MfsConfig::time_constrained(t))
                    .unwrap()
                    .fu_counts(),
            );
            let asap_units = total_units(&asap_schedule(&e.dfg, &e.spec, t).unwrap().fu_counts());
            let alap_units = total_units(&alap_schedule(&e.dfg, &e.spec, t).unwrap().fu_counts());
            assert!(
                mfs_units <= asap_units.min(alap_units),
                "ex{} T={t}: MFS {mfs_units} vs ASAP {asap_units}/ALAP {alap_units}",
                e.id
            );
        }
    }
}

#[test]
fn mfs_matches_fds_within_one_unit_per_class() {
    // Both are balancing time-constrained schedulers; on these small
    // graphs they should land within one unit of each other per class.
    for e in plain_examples() {
        for &t in &e.time_constraints {
            let mfs_counts = mfs::schedule(&e.dfg, &e.spec, &MfsConfig::time_constrained(t))
                .unwrap()
                .fu_counts();
            let fds_counts = force_directed_schedule(&e.dfg, &e.spec, t)
                .unwrap()
                .fu_counts();
            for (&class, &n) in &mfs_counts {
                let f = fds_counts.get(&class).copied().unwrap_or(0);
                assert!(
                    n <= f + 1,
                    "ex{} T={t} class {class}: MFS {n} vs FDS {f}",
                    e.id
                );
            }
        }
    }
}

#[test]
fn list_schedule_meets_mfs_unit_budget() {
    // Resource duality: giving the list scheduler MFS's unit counts, it
    // must finish within the same time constraint (both are feasible
    // witnesses of the same design point).
    for e in plain_examples() {
        let t = *e.time_constraints.last().unwrap();
        let budget = mfs::schedule(&e.dfg, &e.spec, &MfsConfig::time_constrained(t))
            .unwrap()
            .fu_counts();
        let sched = list_schedule(&e.dfg, &e.spec, &budget, t)
            .unwrap_or_else(|err| panic!("ex{}: list failed with MFS budget: {err}", e.id));
        let v = verify(&e.dfg, &sched, &e.spec, VerifyOptions::default());
        assert!(v.is_empty(), "ex{}: {v:?}", e.id);
    }
}

#[test]
fn resource_constrained_mfs_agrees_with_list_on_length() {
    // With the same single-adder budget, resource-constrained MFS and
    // list scheduling should produce comparable schedule lengths.
    let mut b = DfgBuilder::new("ladder");
    let x = b.input("x");
    for i in 0..5 {
        b.op(&format!("a{i}"), OpKind::Add, &[x, x]).unwrap();
    }
    let dfg = b.finish().unwrap();
    let spec = TimingSpec::uniform_single_cycle();
    let limits = [(FuClass::Op(OpKind::Add), 1u32)].into_iter().collect();
    let list = list_schedule(&dfg, &spec, &limits, 10).unwrap();
    let list_len = dfg
        .node_ids()
        .filter_map(|n| list.finish(n, &dfg, &spec))
        .map(|c| c.get())
        .max()
        .unwrap();
    let config = MfsConfig::resource_constrained(10).with_fu_limit(FuClass::Op(OpKind::Add), 1);
    let mfs_out = mfs::schedule(&dfg, &spec, &config).unwrap();
    let mfs_len = mfs_out.steps_used(&dfg, &spec);
    assert_eq!(list_len, 5);
    assert_eq!(mfs_len, 5);
}
