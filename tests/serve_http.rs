//! End-to-end daemon tests over real sockets: endpoints, warm-cache
//! reuse, queue backpressure, and graceful drain-and-shutdown.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use moveframe_hls::prelude::*;

const DIFFEQ_JOB: &[u8] = br#"{"benchmark":"diffeq","cs":4}"#;

#[test]
fn endpoints_answer_over_a_real_socket() {
    let server = common::start(common::ephemeral_config());
    let addr = server.local_addr();

    let (status, body) = common::get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, body) = common::get(addr, "/");
    assert_eq!(status, 200);
    assert!(body.contains("POST /schedule"), "{body}");

    assert_eq!(common::get(addr, "/nothing-here").0, 404);
    assert_eq!(common::post(addr, "/healthz", b"").0, 405);

    let (status, body) = common::get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("# TYPE serve_requests counter"), "{body}");

    server.shutdown();
    server.join();
}

#[test]
fn repeat_requests_hit_the_warm_cache() {
    let server = common::start(common::ephemeral_config());
    let addr = server.local_addr();

    let (status, first) = common::post(addr, "/schedule", DIFFEQ_JOB);
    assert_eq!(status, 200, "{first}");
    let (status, second) = common::post(addr, "/schedule", DIFFEQ_JOB);
    assert_eq!(status, 200);
    assert_eq!(first, second, "warm answer must be byte-identical");

    let m = server.app().metrics_snapshot();
    assert_eq!(m.counter("serve.jobs.cold"), 1);
    assert_eq!(m.counter("serve.jobs.warm"), 1);
    assert_eq!(m.counter("serve.cache.results.hits"), 1);
    assert_eq!(m.counter("serve.cache.results.misses"), 1);

    server.shutdown();
    server.join();
}

#[test]
fn overload_answers_429_and_the_pool_recovers() {
    let server = common::start(ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..common::ephemeral_config()
    });
    let addr = server.local_addr();

    // Pin the single worker on a long cold job, then fill the one
    // queue slot with an ordinary job behind it. (Mute connections no
    // longer pin anything: the reactor admits *requests*, not
    // connections, so only compute occupies a worker.)
    let pin_body = common::pin_job(1500);
    let pin = std::thread::spawn(move || common::post(addr, "/schedule", &pin_body));
    std::thread::sleep(Duration::from_millis(150));
    let queued = std::thread::spawn(move || common::post(addr, "/schedule", DIFFEQ_JOB));
    std::thread::sleep(Duration::from_millis(150));

    // The queue is full: the reactor must answer 429 inline, without
    // involving (or waiting for) a worker.
    let (status, body) = common::get(addr, "/healthz");
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("queue"), "{body}");

    // Backpressure sheds nothing that was admitted: the pinned batch
    // and the queued job both complete, and the pool keeps serving.
    let (status, body) = pin.join().expect("pin client");
    assert_eq!(status, 200, "{body}");
    let (status, _) = queued.join().expect("queued client");
    assert_eq!(status, 200);
    let (status, _) = common::get(addr, "/healthz");
    assert_eq!(status, 200, "pool did not recover after overload");
    assert!(
        server
            .app()
            .metrics_snapshot()
            .counter("serve.queue.rejected")
            >= 1
    );

    server.shutdown();
    server.join();
}

/// Regression: `chain=0` used to reach `ClockPeriod::new` and panic in
/// the worker; with no panic isolation each such request permanently
/// killed one worker. It must answer 400, and firing more of them than
/// there are workers must leave the pool fully serviceable.
#[test]
fn chain_zero_is_400_and_never_kills_a_worker() {
    let server = common::start(ServeConfig {
        workers: 2,
        ..common::ephemeral_config()
    });
    let addr = server.local_addr();

    for _ in 0..4 {
        let (status, body) = common::post(
            addr,
            "/schedule",
            br#"{"benchmark":"diffeq","cs":4,"chain":0}"#,
        );
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("chain"), "{body}");
    }
    let (status, body) = common::post(addr, "/schedule", DIFFEQ_JOB);
    assert_eq!(status, 200, "pool degraded after chain=0 battery: {body}");
    assert_eq!(server.app().metrics_snapshot().counter("serve.panics"), 0);

    server.shutdown();
    server.join();
}

/// Pulls an integer field out of the one-line JSON stats body.
fn stat(body: &str, key: &str) -> u32 {
    body.split(&format!("\"{key}\":"))
        .nth(1)
        .unwrap_or_else(|| panic!("{body} has no {key}"))
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect(key)
}

/// The iterate-tuned registry variants answer over a real socket and
/// `iterate=N` round-trips: the label carries the knob and the refined
/// objective is never worse than the one-shot answer.
#[test]
fn iterate_variants_round_trip_over_a_socket() {
    let server = common::start(common::ephemeral_config());
    let addr = server.local_addr();

    for (name, cs) in [("diffeq_iter", 6), ("fir_iter", 8), ("ewf_iter", 19)] {
        let oneshot = format!(r#"{{"benchmark":"{name}","alg":"mfs","cs":{cs}}}"#);
        let refined = format!(r#"{{"benchmark":"{name}","alg":"mfs","cs":{cs},"iterate":4}}"#);
        let (status, one) = common::post(addr, "/schedule", oneshot.as_bytes());
        assert_eq!(status, 200, "{name}: {one}");
        let (status, re) = common::post(addr, "/schedule", refined.as_bytes());
        assert_eq!(status, 200, "{name}: {re}");
        assert!(re.contains("iter=4"), "{name}: {re}");
        let before = (stat(&one, "csteps"), stat(&one, "registers"));
        let after = (stat(&re, "csteps"), stat(&re, "registers"));
        assert!(after <= before, "{name}: {after:?} vs {before:?}");
    }

    // The refined answer is deterministic: a repeat request is
    // byte-identical (warm cache or not).
    let job: &[u8] = br#"{"benchmark":"fir_iter","alg":"mfs","cs":8,"iterate":4}"#;
    let (_, first) = common::post(addr, "/schedule", job);
    let (_, second) = common::post(addr, "/schedule", job);
    assert_eq!(first, second);

    server.shutdown();
    server.join();
}

#[test]
fn shutdown_drains_admitted_requests() {
    let server = common::start(ServeConfig {
        workers: 1,
        queue_cap: 4,
        ..common::ephemeral_config()
    });
    let addr = server.local_addr();

    // Pin the worker on a long cold job, then get a complete request
    // admitted into the queue behind it.
    let pin_body = common::pin_job(1500);
    let pin = std::thread::spawn(move || common::post(addr, "/schedule", &pin_body));
    std::thread::sleep(Duration::from_millis(150));
    let mut queued = TcpStream::connect(addr).expect("connect");
    queued
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("write");
    std::thread::sleep(Duration::from_millis(150));

    // Shutdown stops admission but must answer what was admitted —
    // the in-flight batch and the queued probe both.
    server.shutdown();
    let mut raw = Vec::new();
    std::io::Read::read_to_end(&mut queued, &mut raw).expect("read");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(text.ends_with("ok\n"), "{text}");
    let (status, body) = pin.join().expect("pin client");
    assert_eq!(status, 200, "in-flight batch dropped by drain: {body}");

    server.join();

    // After join the listener is gone.
    assert!(TcpStream::connect(addr).is_err(), "listener still up");
}
