//! Malformed-input battery: every broken `.dfg` text must surface as a
//! typed [`DfgError`] from the parser and as an HTTP 400 from a live
//! `hls-serve` daemon — never as a panic, a hang, or a 5xx.

mod common;

use moveframe_hls::dfg::DfgError;
use moveframe_hls::prelude::*;

/// Rough shape of the expected parser error, so the battery pins the
/// *category* of each failure without over-fitting message text.
enum Expect {
    Parse,
    UnknownSignal,
    Duplicate,
    Empty,
    UnknownArray,
    UnknownBank,
    IndexOutOfRange,
    BadPortCount,
    /// Any error is fine; the case exists for the 400 side.
    AnyError,
}

fn cases() -> Vec<(&'static str, &'static str, Expect)> {
    vec![
        (
            "undeclared operand",
            "input a\nop q = add(a, missing)\n",
            Expect::UnknownSignal,
        ),
        (
            "forward reference",
            "input a\nop p = add(q, a)\nop q = add(p, a)\n",
            Expect::UnknownSignal,
        ),
        ("wrong arity", "input a\nop q = add(a)\n", Expect::Parse),
        (
            "unknown op kind",
            "input a, b\nop q = frobnicate(a, b)\n",
            Expect::Parse,
        ),
        (
            "missing close paren",
            "input a, b\nop q = add(a, b\n",
            Expect::Parse,
        ),
        (
            "missing op name",
            "input a, b\nop add(a, b)\n",
            Expect::Parse,
        ),
        (
            "duplicate input",
            "input a\ninput a\nop q = inc(a)\n",
            Expect::Duplicate,
        ),
        (
            "duplicate op name",
            "input a, b\nop q = add(a, b)\nop q = mul(a, b)\n",
            Expect::AnyError,
        ),
        ("no operations", "input a, b\n", Expect::Empty),
        ("empty text", "", Expect::Empty),
        ("free-form garbage", "garbage !!\n", Expect::Parse),
        (
            "bad constant value",
            "input a\nconst k = many\nop q = add(a, k)\n",
            Expect::Parse,
        ),
        (
            "bad branch annotation",
            "input a, b\nop q = add(a, b) @branch(zero)\n",
            Expect::Parse,
        ),
        (
            "load index past the array bound",
            "input v\nbank ram(ports=1)\narray a[4] @ ram\nstore a[0] = v\nload x = a[9]\n",
            Expect::IndexOutOfRange,
        ),
        (
            "negative store index",
            "input v\narray a[4] @ m(ports=1)\nstore a[-1] = v\n",
            Expect::IndexOutOfRange,
        ),
        (
            "load from an undeclared array",
            "input i\narray a[4] @ m(ports=1)\nload v = nope[i]\n",
            Expect::UnknownArray,
        ),
        (
            "store to an undeclared array",
            "input i, v\nstore ghost[i] = v\n",
            Expect::UnknownArray,
        ),
        (
            "array bound to an undeclared bank",
            "input i, v\narray a[4] @ missing\nstore a[i] = v\n",
            Expect::UnknownBank,
        ),
        (
            "bank with zero ports",
            "input i\nbank ram(ports=0)\narray a[4] @ ram\nload v = a[i]\n",
            Expect::BadPortCount,
        ),
        (
            "implicit bank with zero ports",
            "input i\narray a[4] @ m(ports=0)\nload v = a[i]\n",
            Expect::BadPortCount,
        ),
        (
            "load index signal never declared",
            "input v\narray a[4] @ m(ports=1)\nload x = a[j]\n",
            Expect::UnknownSignal,
        ),
        (
            "conflicting implicit port counts",
            "input i\narray a[4] @ m(ports=2)\narray b[4] @ m(ports=1)\nload v = a[i]\n",
            Expect::Parse,
        ),
    ]
}

#[test]
fn parser_reports_typed_errors_without_panicking() {
    for (name, text, expect) in cases() {
        let err = parse_dfg(text).unwrap_err();
        let ok = match expect {
            Expect::Parse => matches!(err, DfgError::Parse { .. }),
            Expect::UnknownSignal => matches!(err, DfgError::UnknownSignal(_)),
            Expect::Duplicate => matches!(err, DfgError::DuplicateName(_)),
            Expect::Empty => matches!(err, DfgError::Empty),
            Expect::UnknownArray => matches!(err, DfgError::UnknownArray(_)),
            Expect::UnknownBank => matches!(err, DfgError::UnknownBank(_)),
            Expect::IndexOutOfRange => matches!(err, DfgError::IndexOutOfRange { .. }),
            Expect::BadPortCount => matches!(err, DfgError::BadPortCount(_)),
            Expect::AnyError => true,
        };
        assert!(ok, "{name}: unexpected error {err:?}");
        assert!(!err.to_string().is_empty(), "{name}: blank message");
    }
}

#[test]
fn server_answers_400_for_every_malformed_input() {
    let server = common::start(common::ephemeral_config());
    let addr = server.local_addr();
    for (name, text, _) in cases() {
        let (status, body) = common::post(addr, "/schedule?cs=4", text.as_bytes());
        assert_eq!(status, 400, "{name}: {body}");
        assert!(body.starts_with("{\"error\":\""), "{name}: {body}");
    }
    // Malformed inputs must not degrade the daemon: a valid request
    // straight after the battery still schedules.
    let (status, body) = common::post(addr, "/schedule", br#"{"benchmark":"diffeq","cs":4}"#);
    assert_eq!(status, 200, "{body}");
    server.shutdown();
    server.join();
}

#[test]
fn malformed_json_jobs_are_400_too() {
    let server = common::start(common::ephemeral_config());
    let addr = server.local_addr();
    for (name, body) in [
        ("broken JSON", "{broken"),
        ("nested value", r#"{"benchmark":"diffeq","cs":{"n":4}}"#),
        ("unknown benchmark", r#"{"benchmark":"nope","cs":4}"#),
        (
            "dfg and benchmark",
            r#"{"dfg":"input a","benchmark":"diffeq","cs":4}"#,
        ),
        ("neither dfg nor benchmark", r#"{"cs":4}"#),
        ("missing cs", r#"{"benchmark":"diffeq"}"#),
        (
            "bad deadline",
            r#"{"benchmark":"diffeq","cs":4,"deadline_ms":"soon"}"#,
        ),
    ] {
        let (status, reply) = common::post(addr, "/schedule", body.as_bytes());
        assert_eq!(status, 400, "{name}: {reply}");
    }
    server.shutdown();
    server.join();
}
