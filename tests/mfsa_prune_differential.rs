//! Differential verification of the pruned MFSA branch-and-bound
//! against the exhaustive oracle.
//!
//! The pruned loop (`moveframe::mfsa::schedule`) cuts candidates whose
//! Liapunov lower bound already loses to the incumbent; the oracle
//! (`moveframe::mfsa::ExhaustiveMfsa`) scores every candidate the old
//! way. Pruning is only sound if it is *invisible*: byte-identical
//! schedules, allocations, traces and committed moves, with every
//! skipped candidate accounted for by a prune counter. This suite pins
//! that contract across random DAGs (seeds × shape × constraint mix ×
//! styles × weights), the Table-2 examples with chaining and
//! pipelining, and the memory benchmarks with 1/2/4-port banks.

use std::collections::HashSet;

use hls_benchmarks::generate::{generate, scaling_workload, GeneratorConfig};
use moveframe::mfsa::ExhaustiveMfsa;
use moveframe_hls::benchmarks::{examples, memory};
use moveframe_hls::prelude::*;
use proptest::prelude::*;

/// One instrumented run: outcome, final counters and captured events.
struct Run {
    outcome: mfsa::MfsaOutcome,
    metrics: Metrics,
    events: Vec<TraceEvent>,
}

fn run(dfg: &hls_dfg::Dfg, spec: &TimingSpec, config: &MfsaConfig, pruned: bool) -> Run {
    let mut sink = MemorySink::new();
    let mut metrics = Metrics::new();
    let outcome = {
        let mut instr = Instrument::new(&mut sink, &mut metrics);
        if pruned {
            mfsa::schedule_traced(dfg, spec, config, &mut instr)
        } else {
            ExhaustiveMfsa::schedule_traced(dfg, spec, config, &mut instr)
        }
        .unwrap_or_else(|e| panic!("{}: mfsa failed: {e}", dfg.name()))
    };
    Run {
        outcome,
        metrics,
        events: sink.into_events(),
    }
}

/// Asserts the full equivalence contract between a pruned and an
/// exhaustive run of the same problem.
fn assert_equivalent(dfg: &hls_dfg::Dfg, spec: &TimingSpec, config: &MfsaConfig) {
    let config = config.clone().with_trace();
    let pruned = run(dfg, spec, &config, true);
    let oracle = run(dfg, spec, &config, false);
    let name = dfg.name();

    // The outcome must be byte-identical.
    assert_eq!(
        pruned.outcome.schedule, oracle.outcome.schedule,
        "{name}: schedules diverge"
    );
    assert_eq!(
        hls_bench::scaling::fingerprint(&pruned.outcome.schedule),
        hls_bench::scaling::fingerprint(&oracle.outcome.schedule),
        "{name}: fingerprints diverge"
    );
    assert_eq!(
        pruned.outcome.allocation, oracle.outcome.allocation,
        "{name}: allocations diverge"
    );
    assert_eq!(
        pruned.outcome.cost, oracle.outcome.cost,
        "{name}: cost reports diverge"
    );
    assert_eq!(
        pruned.outcome.trace, oracle.outcome.trace,
        "{name}: iteration traces diverge"
    );

    // The committed-move event streams must match exactly, and every
    // candidate the pruned loop *did* score must also have been scored
    // (with the same energy) by the oracle — pruning may only remove
    // evaluations, never alter or invent them.
    let commits = |r: &Run| -> Vec<TraceEvent> {
        r.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::MoveCommitted { .. }))
            .cloned()
            .collect()
    };
    assert_eq!(
        commits(&pruned),
        commits(&oracle),
        "{name}: committed moves diverge"
    );
    let energies = |r: &Run| -> Vec<(u32, (u32, u32), u64)> {
        r.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::EnergyEvaluated { op, pos, v } => Some((*op, *pos, *v)),
                _ => None,
            })
            .collect()
    };
    let oracle_set: HashSet<_> = energies(&oracle).into_iter().collect();
    for ev in energies(&pruned) {
        assert!(
            oracle_set.contains(&ev),
            "{name}: pruned loop scored {ev:?}, which the oracle never saw"
        );
    }

    // Counter accounting: nothing is silently skipped.
    let c = |r: &Run, n: &str| r.metrics.counter(n);
    let p_evals = c(&pruned, "mfsa.energy_evaluations");
    let o_evals = c(&oracle, "mfsa.energy_evaluations");
    assert!(
        p_evals <= o_evals,
        "{name}: pruned evals {p_evals} > exhaustive {o_evals}"
    );
    assert_eq!(
        c(&pruned, "mfsa.steps.feasible"),
        c(&oracle, "mfsa.steps.feasible"),
        "{name}: the loops disagree on the feasible-step count"
    );
    assert_eq!(
        c(&pruned, "mfsa.steps.feasible"),
        c(&pruned, "mfsa.steps.expanded") + c(&pruned, "mfsa.prune.cut_steps"),
        "{name}: feasible steps != expanded + cut"
    );
    assert_eq!(
        c(&pruned, "mfsa.bound.evals"),
        p_evals + c(&pruned, "mfsa.prune.cut_instances"),
        "{name}: bound evals != full evals + instance cuts"
    );
    // The oracle never prunes: its bound evals are its full evals.
    assert_eq!(c(&oracle, "mfsa.bound.evals"), o_evals);
    assert_eq!(c(&oracle, "mfsa.prune.cut_steps"), 0);
    assert_eq!(c(&oracle, "mfsa.prune.cut_instances"), 0);
    assert_eq!(
        c(&pruned, "mfsa.moves_committed"),
        c(&oracle, "mfsa.moves_committed"),
        "{name}: committed-move counts diverge"
    );
}

/// The weight presets the sweep exercises: the paper default, a
/// time-indifferent mix (f_TIME ≡ 0, so the wholesale step cut never
/// helps and correctness rests on the instance-level bound), and a
/// register-heavy mix.
fn weight_presets() -> [Weights; 3] {
    [
        Weights::default(),
        Weights {
            time: 0,
            alu: 1,
            mux: 1,
            reg: 1,
        },
        Weights {
            time: 1,
            alu: 1,
            mux: 1,
            reg: 4,
        },
    ]
}

proptest! {
    #[test]
    fn pruned_matches_exhaustive_on_random_dags(
        seed in 0u64..1_000_000,
        layers in 2usize..7,
        width in 1usize..7,
        branchy in 0u32..2,
        slack in 0u32..6,
        style_bit in 0u32..2,
        weight_idx in 0usize..3,
    ) {
        let dfg = generate(&GeneratorConfig {
            seed,
            layers,
            width,
            branch_pct: branchy * 40,
            ..GeneratorConfig::default()
        });
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec);
        let style = if style_bit == 0 {
            DesignStyle::Unrestricted
        } else {
            DesignStyle::NoSelfLoop
        };
        let config = MfsaConfig::new(cp.steps() as u32 + slack, Library::ncr_like())
            .with_style(style)
            .with_weights(weight_presets()[weight_idx]);
        assert_equivalent(&dfg, &spec, &config);
    }
}

#[test]
fn every_table2_config_matches_exhaustive() {
    // The curated examples cover chaining (clocked specs), functional
    // pipelining (latency) and multicycle operators.
    for e in examples::all() {
        for style in [DesignStyle::Unrestricted, DesignStyle::NoSelfLoop] {
            let config = MfsaConfig::new(e.mfsa_cs, Library::ncr_like()).with_style(style);
            let config = match e.clock() {
                Some(clock) => config.with_chaining(clock),
                None => config,
            };
            let config = match e.latency_for(e.mfsa_cs) {
                Some(l) => config.with_latency(l),
                None => config,
            };
            assert_equivalent(&e.dfg, &e.spec, &config);
        }
    }
}

#[test]
fn memory_benchmarks_match_exhaustive_across_ports() {
    let spec = TimingSpec::uniform_single_cycle();
    for ports in [1, 2, 4] {
        assert_equivalent(
            &memory::array_fir(8, ports),
            &spec,
            &MfsaConfig::new(28, Library::ncr_like()),
        );
        assert_equivalent(
            &memory::matvec(3, ports),
            &spec,
            &MfsaConfig::new(24, Library::ncr_like()),
        );
    }
}

#[test]
fn pruning_cuts_most_evaluations_on_the_scaling_workload() {
    // The acceptance bar is a ≥10× reduction at 5k nodes (checked by
    // BENCH_core.json); this in-tree guard pins a 4× floor at a size
    // small enough for CI.
    let dfg = generate(&scaling_workload(512));
    let spec = TimingSpec::uniform_single_cycle();
    let cp = CriticalPath::compute(&dfg, &spec);
    let config = MfsaConfig::new(cp.steps() as u32 + 8, Library::ncr_like());
    let pruned = run(&dfg, &spec, &config, true);
    let oracle = run(&dfg, &spec, &config, false);
    assert_eq!(pruned.outcome.schedule, oracle.outcome.schedule);
    let p = pruned.metrics.counter("mfsa.energy_evaluations");
    let o = oracle.metrics.counter("mfsa.energy_evaluations");
    assert!(p * 4 <= o, "expected >=4x eval reduction, got {o} -> {p}");
    assert!(
        pruned.metrics.counter("mfsa.prune.cut_steps") > 0,
        "the step-level cut never fired"
    );
    assert!(
        pruned.metrics.counter("mfsa.prune.cut_instances") > 0,
        "the instance-level cut never fired"
    );
}

/// Pinned from the random sweep: a branchy graph where a mutually
/// exclusive sibling makes an occupied instance reusable in the same
/// step — the instance-level bound must not cut it, because mux reuse
/// makes the full energy *equal* to the incumbent's only at a later
/// tie-break component.
#[test]
fn branchy_graph_with_zero_time_weight_pins_tie_breaks() {
    let dfg = generate(&GeneratorConfig {
        seed: 7,
        layers: 4,
        width: 6,
        branch_pct: 100,
        ..GeneratorConfig::default()
    });
    let spec = TimingSpec::uniform_single_cycle();
    let cp = CriticalPath::compute(&dfg, &spec);
    for weights in weight_presets() {
        let config =
            MfsaConfig::new(cp.steps() as u32 + 3, Library::ncr_like()).with_weights(weights);
        assert_equivalent(&dfg, &spec, &config);
    }
}
