//! End-to-end MFS over the paper's six examples: every sweep point of
//! Table 1 must produce a schedule that the independent verifier
//! accepts, including the chaining / functional / structural pipelining
//! features.

use moveframe_hls::benchmarks::examples::{self, Feature};
use moveframe_hls::prelude::*;

/// Dispatches one (example, T) run exactly as the Table-1 harness does,
/// but keeps the graph/schedule pair so it can be verified.
fn run_and_verify(e: &examples::Example, t: u32) {
    let mut config = MfsConfig::time_constrained(t);
    let mut opts = VerifyOptions::default();
    if let Some(clock) = e.clock() {
        config = config.with_chaining(clock);
        opts.clock = Some(clock);
    }
    if let Some(latency) = e.latency_for(t) {
        config = config.with_latency(latency);
        opts.latency = Some(latency);
    }
    match &e.feature {
        Feature::StructuralPipelining(ops) => {
            let (expanded, report, outcome) = schedule_structural(&e.dfg, &e.spec, &config, ops)
                .unwrap_or_else(|err| panic!("ex{} T={t}: {err}", e.id));
            assert!(report.count() > 0, "ex{}: nothing was pipelined", e.id);
            let v = verify(&expanded, &outcome.schedule, &e.spec, opts);
            assert!(v.is_empty(), "ex{} T={t}: {v:?}", e.id);
        }
        _ => {
            let outcome = mfs::schedule(&e.dfg, &e.spec, &config)
                .unwrap_or_else(|err| panic!("ex{} T={t}: {err}", e.id));
            let v = verify(&e.dfg, &outcome.schedule, &e.spec, opts);
            assert!(v.is_empty(), "ex{} T={t}: {v:?}", e.id);
        }
    }
}

#[test]
fn every_table1_cell_verifies() {
    for e in examples::all() {
        for &t in &e.time_constraints {
            run_and_verify(&e, t);
        }
    }
}

#[test]
fn tightest_constraint_is_the_critical_path() {
    // One step below the tightest sweep point must fail for the
    // examples whose tightest T equals the critical path.
    let e = examples::ex6();
    let cp = CriticalPath::compute(&e.dfg, &e.spec);
    assert_eq!(cp.steps(), 17);
    let config = MfsConfig::time_constrained(16);
    assert!(mfs::schedule(&e.dfg, &e.spec, &config).is_err());
}

#[test]
fn unit_counts_decrease_along_each_sweep() {
    // Within one example, a looser time constraint never needs more
    // total units (the monotone trade-off of Table 1).
    for e in examples::all() {
        if matches!(e.feature, Feature::FunctionalPipelining(_)) {
            // Latency changes with T there; not comparable.
            continue;
        }
        let mut last_total = u32::MAX;
        for &t in &e.time_constraints {
            let mut config = MfsConfig::time_constrained(t);
            if let Some(clock) = e.clock() {
                config = config.with_chaining(clock);
            }
            let total: u32 = match &e.feature {
                Feature::StructuralPipelining(ops) => {
                    let (_, _, out) = schedule_structural(&e.dfg, &e.spec, &config, ops).unwrap();
                    pipelined_fu_counts(&out).values().sum()
                }
                _ => mfs::schedule(&e.dfg, &e.spec, &config)
                    .unwrap()
                    .fu_counts()
                    .values()
                    .sum(),
            };
            assert!(
                total <= last_total,
                "ex{}: units grew from {last_total} to {total} at T={t}",
                e.id
            );
            last_total = total;
        }
    }
}

#[test]
fn hierarchical_loop_scheduling_end_to_end() {
    // An outer accumulation loop around the diffeq body.
    let mut b = DfgBuilder::new("looped");
    let x = b.input("x");
    let n = b.input("n");
    b.begin_loop("iterate", 6);
    let t1 = b.op("t1", OpKind::Mul, &[x, x]).unwrap();
    let t2 = b.op("t2", OpKind::Add, &[t1, x]).unwrap();
    let t3 = b.op("t3", OpKind::Mul, &[t2, x]).unwrap();
    b.end_loop();
    let cmp = b.op("cmp", OpKind::Lt, &[t3, n]).unwrap();
    b.op("out", OpKind::Add, &[cmp, x]).unwrap();
    let dfg = b.finish().unwrap();
    let spec = TimingSpec::uniform_single_cycle();
    let out = schedule_hierarchical(&dfg, &spec, 9, MfsConfig::time_constrained).unwrap();
    assert_eq!(out.levels.len(), 1);
    let v = verify(
        &out.levels[0].body,
        &out.levels[0].outcome.schedule,
        &spec,
        VerifyOptions::default(),
    );
    assert!(v.is_empty(), "{v:?}");
    let v = verify(
        &out.top_dfg,
        &out.top.schedule,
        &spec,
        VerifyOptions::default(),
    );
    assert!(v.is_empty(), "{v:?}");
    // The folded loop occupies 6 consecutive steps of the outer
    // schedule.
    let sup = out.top_dfg.node_by_name("iterate").unwrap();
    let start = out.top.schedule.start(sup).unwrap();
    let finish = out.top.schedule.finish(sup, &out.top_dfg, &spec).unwrap();
    assert_eq!(finish.get() - start.get() + 1, 6);
}
