//! Observability contract tests: the instrumented schedulers emit a
//! monotone committed-energy trajectory (the paper's Liapunov descent)
//! and never perturb the result they observe.

use moveframe_hls::benchmarks::classic;
use moveframe_hls::prelude::*;

/// MFS on the paper's Figure-1 differential-equation example at cs = 6:
/// within each scheduling pass, every committed move lowers (or keeps)
/// the system Liapunov energy. A local rescheduling grows the unit
/// capacity, which changes the Liapunov function itself, so the
/// trajectory restarts at each [`TraceEvent::LocalReschedule`].
#[test]
fn mfs_committed_energy_is_monotone_non_increasing() {
    let dfg = classic::diffeq();
    let spec = TimingSpec::uniform_single_cycle();
    let config = MfsConfig::time_constrained(6);

    let mut sink = MemorySink::new();
    let mut metrics = Metrics::new();
    let outcome = mfs::schedule_traced(
        &dfg,
        &spec,
        &config,
        &mut Instrument::new(&mut sink, &mut metrics),
    )
    .expect("diffeq schedules at cs=6");
    assert!(outcome.schedule.is_complete());

    let mut passes: Vec<Vec<u64>> = vec![Vec::new()];
    for event in sink.events() {
        match event {
            TraceEvent::LocalReschedule { .. } => passes.push(Vec::new()),
            TraceEvent::MoveCommitted {
                system_v: Some(v), ..
            } => passes.last_mut().unwrap().push(*v),
            _ => {}
        }
    }
    let final_pass = passes.last().unwrap();
    assert_eq!(
        final_pass.len(),
        dfg.node_ids().count(),
        "the final pass commits one move per operation"
    );
    for energies in &passes {
        assert!(
            energies.windows(2).all(|w| w[1] <= w[0]),
            "system Liapunov energy must be non-increasing within a pass: {energies:?}"
        );
    }
    // The final pass commits one move per operation node.
    let ops = dfg.node_ids().count() as u64;
    assert!(metrics.counter("mfs.moves_committed") >= ops);
    assert!(metrics.counter("mfs.frames_computed") >= ops);
    assert!(metrics.counter("mfs.energy_evaluations") >= ops);
}

/// Instrumentation is observation only: a run through a [`NullSink`]
/// (and through a recording [`MemorySink`]) is bit-identical to the
/// plain `mfs::schedule` entry point.
#[test]
fn mfs_instrumented_run_matches_uninstrumented() {
    let dfg = classic::diffeq();
    let spec = TimingSpec::uniform_single_cycle();
    for cs in [4, 6, 8] {
        let config = MfsConfig::time_constrained(cs);
        let plain = mfs::schedule(&dfg, &spec, &config).expect("plain run");

        let mut null = NullSink;
        let mut metrics = Metrics::new();
        let nulled = mfs::schedule_traced(
            &dfg,
            &spec,
            &config,
            &mut Instrument::new(&mut null, &mut metrics),
        )
        .expect("NullSink run");

        let mut mem = MemorySink::new();
        let mut metrics = Metrics::new();
        let recorded = mfs::schedule_traced(
            &dfg,
            &spec,
            &config,
            &mut Instrument::new(&mut mem, &mut metrics),
        )
        .expect("MemorySink run");

        for traced in [&nulled, &recorded] {
            assert_eq!(traced.schedule, plain.schedule, "cs={cs}");
            assert_eq!(traced.grids, plain.grids, "cs={cs}");
            assert_eq!(traced.reschedule_count, plain.reschedule_count, "cs={cs}");
        }
        assert!(!mem.events().is_empty());
    }
}

/// Same contract for MFSA: tracing does not change the schedule,
/// allocation or cost, and the candidate counters line up with the
/// recorded evaluation events.
#[test]
fn mfsa_instrumented_run_matches_uninstrumented() {
    let dfg = classic::diffeq();
    let spec = TimingSpec::uniform_single_cycle();
    let config = MfsaConfig::new(4, Library::ncr_like());
    let plain = mfsa::schedule(&dfg, &spec, &config).expect("plain MFSA run");

    let mut mem = MemorySink::new();
    let mut metrics = Metrics::new();
    let traced = mfsa::schedule_traced(
        &dfg,
        &spec,
        &config,
        &mut Instrument::new(&mut mem, &mut metrics),
    )
    .expect("traced MFSA run");

    assert_eq!(traced.schedule, plain.schedule);
    assert_eq!(traced.allocation, plain.allocation);
    assert_eq!(traced.cost, plain.cost);

    let evaluations = mem
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::EnergyEvaluated { .. }))
        .count() as u64;
    assert_eq!(metrics.counter("mfsa.energy_evaluations"), evaluations);
    let ops = dfg.node_ids().count() as u64;
    assert_eq!(metrics.counter("mfsa.moves_committed"), ops);
    assert_eq!(
        metrics.counter("mfsa.reuse_moves")
            + metrics.counter("mfsa.upgrade_moves")
            + metrics.counter("mfsa.new_instances"),
        ops
    );
}

/// The profiler obeys the same write-only sink contract as every other
/// sink: a run observed by [`Profiler`] is bit-identical to the plain
/// entry points, and the attribution it derives is complete — every
/// counted energy evaluation lands on a specific node and a specific
/// control step.
#[test]
fn profiled_run_matches_unprofiled_and_attributes_every_evaluation() {
    use moveframe_hls::benchmarks::generate::{generate, scaling_workload};
    let spec = TimingSpec::uniform_single_cycle();

    // MFS on the canonical scaling workload (the shape `mfhls profile
    // gen:OPS` reports on).
    let dfg = generate(&scaling_workload(200));
    let config = MfsConfig::time_constrained(40);
    let plain = mfs::schedule(&dfg, &spec, &config).expect("plain run");
    let mut profiler = Profiler::new();
    let mut metrics = Metrics::new();
    let profiled = mfs::schedule_traced(
        &dfg,
        &spec,
        &config,
        &mut Instrument::new(&mut profiler, &mut metrics),
    )
    .expect("profiled run");
    assert_eq!(profiled.schedule, plain.schedule);
    assert_eq!(profiled.grids, plain.grids);
    assert_eq!(profiled.reschedule_count, plain.reschedule_count);

    let report = ProfileReport::build(&profiler, &metrics, 20);
    assert_eq!(
        report.counted_evals,
        metrics.counter("mfs.energy_evaluations")
    );
    assert_eq!(report.attributed_evals, report.counted_evals);
    assert!(report.coverage_pct >= 95.0, "{}", report.coverage_pct);
    let by_node: u64 = profiler.nodes().values().map(|l| l.energy_evals).sum();
    let by_step: u64 = profiler.steps().values().map(|l| l.energy_evals).sum();
    assert_eq!(by_node, report.counted_evals);
    assert_eq!(by_step, report.counted_evals);

    // Same contract for MFSA, including allocation and cost.
    let dfg = classic::diffeq();
    let config = MfsaConfig::new(4, Library::ncr_like());
    let plain = mfsa::schedule(&dfg, &spec, &config).expect("plain MFSA run");
    let mut profiler = Profiler::new();
    let mut metrics = Metrics::new();
    let profiled = mfsa::schedule_traced(
        &dfg,
        &spec,
        &config,
        &mut Instrument::new(&mut profiler, &mut metrics),
    )
    .expect("profiled MFSA run");
    assert_eq!(profiled.schedule, plain.schedule);
    assert_eq!(profiled.allocation, plain.allocation);
    assert_eq!(profiled.cost, plain.cost);
    let report = ProfileReport::build(&profiler, &metrics, 20);
    assert_eq!(
        report.counted_evals,
        metrics.counter("mfsa.energy_evaluations")
    );
    assert_eq!(report.attributed_evals, report.counted_evals);
}

/// Hotspot rankings break every tie on the node index, so two profiled
/// runs of the same design render identical reports once the
/// machine-local wall-clock fields are stripped.
#[test]
fn profile_reports_are_deterministic_across_runs() {
    use moveframe_hls::benchmarks::generate::{generate, scaling_workload};
    // Drops the `"total_ns":N` values — the one nondeterministic field
    // in the JSON report.
    fn strip_wall_clock(json: &str) -> String {
        let mut out = String::with_capacity(json.len());
        let mut rest = json;
        while let Some(at) = rest.find("\"total_ns\":") {
            let tail = &rest[at + "\"total_ns\":".len()..];
            let digits = tail.chars().take_while(char::is_ascii_digit).count();
            out.push_str(&rest[..at]);
            out.push_str("\"total_ns\":0");
            rest = &tail[digits..];
        }
        out.push_str(rest);
        out
    }
    let run = || {
        let dfg = generate(&scaling_workload(200));
        let spec = TimingSpec::uniform_single_cycle();
        let mut profiler = Profiler::new();
        let mut metrics = Metrics::new();
        mfs::schedule_traced(
            &dfg,
            &spec,
            &MfsConfig::time_constrained(40),
            &mut Instrument::new(&mut profiler, &mut metrics),
        )
        .expect("profiled run");
        ProfileReport::build(&profiler, &metrics, 20).to_json()
    };
    let json_a = strip_wall_clock(&run());
    let json_b = strip_wall_clock(&run());
    assert_eq!(json_a, json_b);
    assert!(json_a.contains("\"hotspots\":[{\"op\":"));
    assert!(json_a.contains("\"coverage_pct\":100.000"));
}

/// The JSONL and Chrome exports of a recorded run are well-formed.
#[test]
fn exports_are_well_formed() {
    let dfg = classic::diffeq();
    let spec = TimingSpec::uniform_single_cycle();
    let mut sink = MemorySink::new();
    let mut metrics = Metrics::new();
    mfs::schedule_traced(
        &dfg,
        &spec,
        &MfsConfig::time_constrained(6),
        &mut Instrument::new(&mut sink, &mut metrics),
    )
    .expect("diffeq schedules at cs=6");

    for event in sink.events() {
        let json = event.to_json();
        assert!(
            json.starts_with("{\"event\":\"") && json.ends_with('}'),
            "{json}"
        );
    }
    let chrome = chrome_trace(sink.events().iter());
    assert!(chrome.starts_with('{') && chrome.ends_with('}'));
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("mfs.move_loop"));
}
