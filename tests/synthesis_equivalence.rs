//! Functional equivalence of synthesis results: for every MFSA run, the
//! generated (data path + controller) must compute exactly the values
//! the behavioural graph describes — on the curated examples and on
//! random graphs with random input vectors.

use proptest::prelude::*;

use moveframe_hls::benchmarks::examples;
use moveframe_hls::benchmarks::generate::{generate, GeneratorConfig};
use moveframe_hls::prelude::*;

fn mfsa_config(e: &examples::Example, style: DesignStyle) -> MfsaConfig {
    let config = MfsaConfig::new(e.mfsa_cs, Library::ncr_like()).with_style(style);
    let config = match e.clock() {
        Some(clock) => config.with_chaining(clock),
        None => config,
    };
    match e.latency_for(e.mfsa_cs) {
        Some(l) => config.with_latency(l),
        None => config,
    }
}

#[test]
fn every_example_synthesis_is_semantics_preserving() {
    for e in examples::all() {
        for style in [DesignStyle::Unrestricted, DesignStyle::NoSelfLoop] {
            let out = mfsa::schedule(&e.dfg, &e.spec, &mfsa_config(&e, style)).unwrap();
            for seed in [1u64, 2, 3] {
                let inputs = random_inputs(&e.dfg, seed);
                let mismatches =
                    check_equivalence(&e.dfg, &out.schedule, &out.datapath, &e.spec, &inputs)
                        .unwrap_or_else(|err| panic!("ex{} {style} seed {seed}: {err}", e.id));
                assert!(
                    mismatches.is_empty(),
                    "ex{} {style} seed {seed}: {mismatches:?}",
                    e.id
                );
            }
        }
    }
}

#[test]
fn controllers_of_all_examples_verify() {
    for e in examples::all() {
        let out =
            mfsa::schedule(&e.dfg, &e.spec, &mfsa_config(&e, DesignStyle::Unrestricted)).unwrap();
        let controller =
            Controller::generate(&e.dfg, &out.schedule, &out.datapath, &e.spec).unwrap();
        let v = verify_controller(&e.dfg, &out.schedule, &out.datapath, &controller, &e.spec);
        assert!(v.is_empty(), "ex{}: {v:?}", e.id);
        // The microcode listing covers every state.
        let listing = controller.render(&e.dfg);
        assert_eq!(controller.state_count() as u32, e.mfsa_cs);
        assert!(listing.contains(&format!("{} state(s)", e.mfsa_cs)));
    }
}

#[test]
fn interpreter_matches_simulator_on_the_quickstart_program() {
    let dfg = parse_dfg(
        "input x0, x1, c0, c1
         op p0 = mul(x0, c0)
         op p1 = mul(x1, c1)
         op s = add(p0, p1)
         op d = sub(p0, p1)
         op m = and(s, d)",
    )
    .unwrap();
    let spec = TimingSpec::uniform_single_cycle();
    let out = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(3, Library::ncr_like())).unwrap();
    for seed in 0..10u64 {
        let inputs = random_inputs(&dfg, seed);
        let mismatches =
            check_equivalence(&dfg, &out.schedule, &out.datapath, &spec, &inputs).unwrap();
        assert!(mismatches.is_empty(), "seed {seed}: {mismatches:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_graphs_synthesise_equivalently(
        seed in 1u64..500,
        layers in 1usize..5,
        width in 1usize..6,
        slack in 0u32..3,
        input_seed in 0u64..8,
    ) {
        let config = GeneratorConfig {
            seed,
            layers,
            width,
            inputs: 4,
            ..GeneratorConfig::default()
        };
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let out = mfsa::schedule(
            &dfg,
            &spec,
            &MfsaConfig::new(cp + 1 + slack, Library::ncr_like()),
        )
        .unwrap();
        let inputs = random_inputs(&dfg, input_seed);
        let mismatches =
            check_equivalence(&dfg, &out.schedule, &out.datapath, &spec, &inputs).unwrap();
        prop_assert!(mismatches.is_empty(), "{mismatches:?}");
    }

    #[test]
    fn random_multicycle_graphs_synthesise_equivalently(
        seed in 1u64..200,
        input_seed in 0u64..4,
    ) {
        let config = GeneratorConfig { seed, layers: 3, width: 4, inputs: 3, ..Default::default() };
        let dfg = generate(&config);
        let spec = TimingSpec::two_cycle_multiply();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let out = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(cp + 2, Library::ncr_like()))
            .unwrap();
        let inputs = random_inputs(&dfg, input_seed);
        let mismatches =
            check_equivalence(&dfg, &out.schedule, &out.datapath, &spec, &inputs).unwrap();
        prop_assert!(mismatches.is_empty(), "{mismatches:?}");
    }
}

#[test]
fn extended_benchmarks_synthesise_equivalently() {
    use moveframe_hls::benchmarks::classic;
    let spec = TimingSpec::uniform_single_cycle();
    for (dfg, cs) in [
        (classic::dct8(), 6u32),
        (classic::bandpass(), 7),
        (classic::fir(8), 5),
    ] {
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        assert!(cp <= cs, "{}: cp {cp} > {cs}", dfg.name());
        let out = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(cs, Library::ncr_like()))
            .unwrap_or_else(|e| panic!("{}: {e}", dfg.name()));
        let v = verify(&dfg, &out.schedule, &spec, VerifyOptions::default());
        assert!(v.is_empty(), "{}: {v:?}", dfg.name());
        for seed in [11u64, 12] {
            let inputs = random_inputs(&dfg, seed);
            let mismatches =
                check_equivalence(&dfg, &out.schedule, &out.datapath, &spec, &inputs).unwrap();
            assert!(mismatches.is_empty(), "{}: {mismatches:?}", dfg.name());
        }
    }
}

#[test]
fn verilog_emission_covers_extended_benchmarks() {
    use moveframe_hls::benchmarks::classic;
    use moveframe_hls::control::emit_verilog;
    let spec = TimingSpec::uniform_single_cycle();
    for (dfg, cs) in [(classic::dct8(), 6u32), (classic::bandpass(), 7)] {
        let out = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(cs, Library::ncr_like())).unwrap();
        let controller = Controller::generate(&dfg, &out.schedule, &out.datapath, &spec).unwrap();
        let v = emit_verilog(&dfg, &out.schedule, &out.datapath, &controller, &spec).unwrap();
        assert!(v.contains("module"));
        assert!(v.contains("endmodule"));
        // One output port per design output.
        let outputs = dfg
            .signals()
            .filter(|(sid, s)| {
                matches!(s.source(), moveframe_hls::dfg::SignalSource::Node(_))
                    && dfg.consumers(*sid).is_empty()
            })
            .count();
        assert_eq!(v.matches("output wire [WIDTH-1:0]").count(), outputs);
    }
}
