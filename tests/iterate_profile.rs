//! Determinism contract behind `mfhls synth --iterate-profile`: the
//! extraction hints derived from a profiler ledger of a fixed run are
//! byte-stable, and the hinted refinement is itself deterministic, so
//! profile-guided synthesis never turns a reproducible flow flaky.

use moveframe_hls::benchmarks::examples;
use moveframe_hls::benchmarks::generate::{generate, GeneratorConfig};
use moveframe_hls::prelude::*;

/// Same top-K the `mfhls` binary uses.
const TOP: usize = 8;

/// One profiled MFSA pass: the outcome plus the hotspot-derived
/// extraction hints, exactly as `--iterate-profile` computes them.
fn profiled_pass(
    dfg: &Dfg,
    spec: &TimingSpec,
    config: &MfsaConfig,
) -> (mfsa::MfsaOutcome, Vec<NodeId>) {
    let mut profiler = Profiler::new();
    let mut metrics = Metrics::new();
    let out = mfsa::schedule_traced(
        dfg,
        spec,
        config,
        &mut Instrument::new(&mut profiler, &mut metrics),
    )
    .expect("feasible example constraint");
    let hints = profiler
        .hotspots(TOP)
        .iter()
        .map(|h| NodeId::from_index(h.op as usize))
        .collect();
    (out, hints)
}

#[test]
fn hints_from_a_fixed_profile_are_byte_stable() {
    for e in examples::all() {
        let config = MfsaConfig::new(e.mfsa_cs, Library::ncr_like());
        let (_, first) = profiled_pass(&e.dfg, &e.spec, &config);
        let (_, second) = profiled_pass(&e.dfg, &e.spec, &config);
        assert_eq!(
            format!("{first:?}"),
            format!("{second:?}"),
            "ex{}: hint derivation must be reproducible",
            e.id
        );
        assert!(
            !first.is_empty(),
            "ex{}: a traced run attributes work",
            e.id
        );
        // Every hint names a real node of the profiled graph.
        for h in &first {
            assert!(
                h.index() < e.dfg.node_count(),
                "ex{}: hint {h:?} out of range",
                e.id
            );
        }
    }
}

#[test]
fn hinted_refinement_is_deterministic() {
    let dfg = generate(&GeneratorConfig {
        seed: 97,
        layers: 5,
        width: 4,
        inputs: 4,
        ..GeneratorConfig::default()
    });
    let spec = TimingSpec::uniform_single_cycle();
    let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
    let library = Library::ncr_like();
    let config = MfsaConfig::new(cp + 4, library.clone());

    let mut rendered = Vec::new();
    for _ in 0..2 {
        let (mut out, hints) = profiled_pass(&dfg, &spec, &config);
        let iterate = IterateConfig::new(2).with_hints(hints);
        let mut sink = NullSink;
        let mut metrics = Metrics::new();
        refine_mfsa(
            &dfg,
            &spec,
            &library,
            &mut out,
            &iterate,
            &mut Instrument::new(&mut sink, &mut metrics),
        )
        .expect("refinement on a feasible schedule");
        rendered.push((
            render_schedule(&dfg, &out.schedule, &spec),
            out.cost.total(),
        ));
    }
    assert_eq!(
        rendered[0], rendered[1],
        "profile-guided refinement must be byte-stable"
    );
}
