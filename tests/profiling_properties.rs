//! Property tests for the profiling layer: log-bucket histograms merge
//! deterministically for *any* sharding of a sample stream, and the
//! profiler's write-only contract holds for *any* generated graph.

use proptest::prelude::*;

use moveframe_hls::benchmarks::generate::{generate, GeneratorConfig};
use moveframe_hls::prelude::*;
use moveframe_hls::telemetry::Histogram;

/// A strategy over generator configurations: small-to-medium layered
/// DAGs with mixed operators.
fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (1u64..1000, 1usize..6, 1usize..7, 2usize..6, 0u32..100).prop_map(
        |(seed, layers, width, inputs, locality)| GeneratorConfig {
            seed,
            layers,
            width,
            inputs,
            locality_pct: locality,
            ..GeneratorConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting a sample stream into contiguous shards, recording each
    /// shard into its own histogram and merging is bit-identical to one
    /// histogram observing every sample — for any split points. This is
    /// the property that makes `/metrics` percentiles deterministic
    /// across worker counts.
    #[test]
    fn histogram_shard_merge_equals_single_sink(
        samples in proptest::collection::vec(0u64..1 << 62, 0..200),
        cut_seeds in proptest::collection::vec(0usize..1000, 0..6),
    ) {
        let mut single = Histogram::new();
        for &s in &samples {
            single.observe(s);
        }

        let mut cuts: Vec<usize> = cut_seeds.iter().map(|&c| c % (samples.len() + 1)).collect();
        cuts.push(0);
        cuts.push(samples.len());
        cuts.sort_unstable();
        let mut merged = Histogram::new();
        for pair in cuts.windows(2) {
            let mut shard = Histogram::new();
            for &s in &samples[pair[0]..pair[1]] {
                shard.observe(s);
            }
            merged.merge(&shard);
        }

        prop_assert_eq!(&merged, &single);
        prop_assert_eq!(merged.cumulative_buckets(), single.cumulative_buckets());
        prop_assert_eq!(merged.count(), samples.len() as u64);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), single.quantile(q));
        }
    }

    /// Quantiles come from the fixed power-of-two buckets: for any
    /// sample set, the reported quantile is a bucket boundary that
    /// lower-bounds the true quantile sample by at most one power of
    /// two.
    #[test]
    fn histogram_quantiles_bracket_the_true_sample(
        raw in proptest::collection::vec(0u64..1 << 32, 1..100),
    ) {
        let mut h = Histogram::new();
        for &s in &raw {
            h.observe(s);
        }
        let mut samples = raw.clone();
        samples.sort_unstable();
        for (q, idx) in [(0.5, samples.len().div_ceil(2) - 1), (1.0, samples.len() - 1)] {
            let truth = samples[idx];
            let reported = h.quantile(q);
            prop_assert!(reported <= truth, "q={q}: {reported} > {truth}");
            prop_assert!(
                truth == 0 || reported >= (truth + 1).next_power_of_two() / 4,
                "q={q}: {reported} more than one bucket below {truth}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The profiler is observation only for *any* generated graph: the
    /// profiled schedule is bit-identical to the plain one, and every
    /// counted energy evaluation is attributed to a specific node.
    #[test]
    fn profiler_contract_holds_for_any_graph(config in config_strategy(), slack in 0u32..4) {
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let mfs_config = MfsConfig::time_constrained(cp + slack);
        let plain = mfs::schedule(&dfg, &spec, &mfs_config).unwrap();

        let mut profiler = Profiler::new();
        let mut metrics = Metrics::new();
        let profiled = mfs::schedule_traced(
            &dfg,
            &spec,
            &mfs_config,
            &mut Instrument::new(&mut profiler, &mut metrics),
        )
        .unwrap();

        prop_assert_eq!(&profiled.schedule, &plain.schedule);
        prop_assert_eq!(profiled.reschedule_count, plain.reschedule_count);
        let report = ProfileReport::build(&profiler, &metrics, 10);
        prop_assert_eq!(report.counted_evals, metrics.counter("mfs.energy_evaluations"));
        prop_assert_eq!(report.attributed_evals, report.counted_evals);
        prop_assert!(report.coverage_pct >= 95.0, "coverage {}", report.coverage_pct);
        let by_node: u64 = profiler.nodes().values().map(|l| l.energy_evals).sum();
        prop_assert_eq!(by_node, report.counted_evals);
    }
}
