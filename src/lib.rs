//! # moveframe-hls
//!
//! A complete Rust implementation of **Move Frame Scheduling (MFS)** and
//! **Move Frame Scheduling-Allocation (MFSA)** — Nourani &
//! Papachristou, *"Move Frame Scheduling and Mixed Scheduling-Allocation
//! for the Automated Synthesis of Digital Systems"*, DAC 1992 — together
//! with every substrate the algorithms need: a data-flow-graph
//! representation, a cell library and cost model, ASAP/ALAP analysis and
//! schedule verification, an RTL data-path builder, classic baseline
//! schedulers and the DAC-era benchmark set.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name for the examples and integration tests.
//!
//! ```
//! use moveframe_hls::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dfg = parse_dfg(
//!     "input a, b, c
//!      op p = mul(a, b)
//!      op q = add(p, c)",
//! )?;
//! let spec = TimingSpec::uniform_single_cycle();
//! let schedule = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(2))?;
//! assert!(schedule.schedule.is_complete());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hls_baselines as baselines;
pub use hls_benchmarks as benchmarks;
pub use hls_celllib as celllib;
pub use hls_control as control;
pub use hls_dfg as dfg;
pub use hls_explore as explore;
pub use hls_iterate as iterate;
pub use hls_mem as mem;
pub use hls_partition as partition;
pub use hls_prof as prof;
pub use hls_rtl as rtl;
pub use hls_schedule as schedule;
pub use hls_serve as serve;
pub use hls_sim as sim;
pub use hls_telemetry as telemetry;
pub use moveframe;

/// Convenience re-exports for examples and quick starts.
pub mod prelude {
    pub use hls_celllib::{
        AluKind, Area, ClockPeriod, Delay, Library, LibraryBuilder, MuxCost, OpKind, OpTiming,
        TimingSpec,
    };
    pub use hls_control::{verify_controller, Controller};
    pub use hls_dfg::{parse_dfg, CriticalPath, Dfg, DfgBuilder, FuClass, NodeId, OpMix};
    pub use hls_explore::{
        parse_grid, Algorithm, DesignPoint, Engine, ExploreOptions, ExploreReport,
    };
    pub use hls_iterate::{extract_region, refine, refine_mfsa, IterateConfig, IterateOutcome};
    pub use hls_mem::{
        access_bindings, bank_usage, check_port_safety, port_pressure, AccessBinding, BankUsage,
        MemError, PortPressure, PortViolation,
    };
    pub use hls_partition::{synth_sharded, ShardAlg, ShardedConfig, ShardedOutcome};
    pub use hls_prof::{ProfileReport, Profiler};
    pub use hls_rtl::{verify_datapath, AluAllocation, CostReport, Datapath};
    pub use hls_schedule::{
        render_schedule, verify, verify_traced, CStep, Schedule, ScheduleStats, TimeFrames,
        VerifyOptions,
    };
    pub use hls_serve::{ServeConfig, Server};
    pub use hls_sim::{check_equivalence, interpret, random_inputs, simulate};
    pub use hls_telemetry::{
        chrome_trace, Instrument, JsonlSink, MemorySink, Metrics, NullSink, TraceEvent, TraceSink,
    };
    pub use moveframe::loops::schedule_hierarchical;
    pub use moveframe::mfs::{self, MfsConfig};
    pub use moveframe::mfsa::{self, DesignStyle, MfsaConfig, Weights};
    pub use moveframe::pipeline::{
        pipelined_fu_counts, schedule_structural, schedule_structural_traced, schedule_two_instance,
    };
    pub use moveframe::{CancelToken, MfsObjective, MoveFrameError};
}
