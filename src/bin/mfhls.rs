//! `mfhls` — the moveframe-hls command-line front end.
//!
//! `mfhls help` lists the subcommands; `mfhls help <subcommand>` prints
//! that subcommand's flags. The summary:
//!
//! ```text
//! mfhls info <file.dfg> [--dot]
//! mfhls schedule <file.dfg> --cs N [--resource] [--limit OP=N]...
//!                [--chain CLOCK] [--latency L] [--two-cycle-mul]
//!                [--svg FILE] [telemetry flags]
//! mfhls synth (<file.dfg> | gen:OPS) --cs N [--style2] [--weights T,A,M,R]
//!             [--lib FILE.lib] [--two-cycle-mul] [--iterate N] [--microcode]
//!             [--verilog] [--testbench] [--check] [--svg FILE] [--vcd FILE]
//!             [--shard N|auto [--shard-alg mfs|mfsa] [--threads N]]
//!             [telemetry flags]
//! mfhls explore <file.dfg> (--grid FILE.grid | --cs N[,M...] [--alg A[,B...]])
//!               [--limit OP=N]... [--chain CLOCK] [--latency L] [--style2]
//!               [--weights T,A,M,R] [--two-cycle-mul] [--threads N]
//!               [--emit front.json] [--metrics] [-q]
//! mfhls profile (<file.dfg> | gen:OPS) [--cs N] [--alg mfs|mfsa]
//!               [--top K] [--json] [--two-cycle-mul] [-q]
//! mfhls serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!             [--cache-cap N] [--cache-dir DIR] [--deadline-ms N]
//!             [--keep-alive on|off] [--idle-timeout-ms N]
//!             [--read-timeout-ms N] [--pipeline-depth N] [--force-poll]
//!             [--access-log FILE] [-q]
//! ```
//!
//! Telemetry flags (schedule & synth): `--trace FILE.jsonl` streams the
//! scheduler's trace events as JSON Lines, `--chrome-trace FILE.json`
//! writes the phase spans as a Chrome/Perfetto flame chart,
//! `--metrics` prints the counter/histogram report, `-v` adds a phase
//! timing summary on stderr, `-q` silences routine output.
//!
//! Reads the textual DFG format (see `hls-dfg`), schedules with MFS or
//! synthesises with MFSA against the built-in NCR-like library, and
//! prints schedules, data paths, cost reports, microcode or Verilog.

use std::process::ExitCode;

use moveframe_hls::control::{emit_testbench, emit_verilog};
use moveframe_hls::prelude::*;

/// Observability options shared by `schedule` and `synth`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Telemetry {
    /// Write trace events as JSON Lines to this file.
    trace: Option<String>,
    /// Print the metrics report after the run.
    metrics: bool,
    /// Write phase spans as a Chrome/Perfetto trace to this file.
    chrome: Option<String>,
    /// Extra diagnostics on stderr.
    verbose: bool,
    /// Silence routine stdout output.
    quiet: bool,
}

impl Telemetry {
    /// Whether any option needs the scheduler's event stream.
    fn wants_events(&self) -> bool {
        self.trace.is_some() || self.chrome.is_some()
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Command {
    Help {
        topic: Option<String>,
    },
    Info {
        file: String,
        dot: bool,
    },
    Schedule {
        file: String,
        cs: u32,
        resource: bool,
        limits: Vec<(OpKind, u32)>,
        chain: Option<u32>,
        latency: Option<u32>,
        two_cycle_mul: bool,
        json: bool,
        svg: Option<String>,
        tel: Telemetry,
    },
    Synth {
        file: String,
        /// Monolithic mode: the MFSA time constraint (required).
        /// Sharded mode: an optional global control-step ceiling.
        cs: Option<u32>,
        style2: bool,
        weights: Option<[u32; 4]>,
        lib: Option<String>,
        two_cycle_mul: bool,
        json: bool,
        microcode: bool,
        verilog: bool,
        testbench: bool,
        check: bool,
        svg: Option<String>,
        vcd: Option<String>,
        /// `Some(n)` switches to sharded synthesis (`0` = auto shard
        /// count from the node count).
        shard: Option<usize>,
        /// Per-shard scheduler in sharded mode.
        shard_alg: Algorithm,
        /// Shard-pool worker threads (0 = all cores); output is
        /// identical for every value.
        threads: usize,
        /// Feedback-guided refinement iterations after the one-shot
        /// schedule (0 = plain one-shot).
        iterate: u32,
        /// Tap the one-shot pass with the attribution profiler and
        /// seed the refinement's extraction hints from its top node
        /// hotspots.
        iterate_profile: bool,
        tel: Telemetry,
    },
    Explore {
        file: String,
        grid: Option<String>,
        algs: Vec<Algorithm>,
        cs_list: Vec<u32>,
        limits: Vec<(OpKind, u32)>,
        chain: Option<u32>,
        latency: Option<u32>,
        style2: bool,
        weights: Option<[u32; 4]>,
        two_cycle_mul: bool,
        threads: usize,
        emit: Option<String>,
        iterate: u32,
        tel: Telemetry,
    },
    Profile {
        file: String,
        cs: Option<u32>,
        alg: Algorithm,
        top: usize,
        json: bool,
        two_cycle_mul: bool,
        quiet: bool,
    },
    Serve {
        config: ServeConfig,
        access_log: Option<String>,
        quiet: bool,
    },
}

/// The subcommands, in help order.
const SUBCOMMANDS: &[&str] = &["info", "schedule", "synth", "explore", "profile", "serve"];

/// Control-step slack `mfhls profile` adds above the critical path when
/// `--cs` is omitted — the same margin the `core_scaling` benchmark
/// uses, so a default profile observes the benchmark's frame widths.
const PROFILE_SLACK: u32 = 8;

/// How many of the hottest nodes `--iterate-profile` turns into
/// extraction hints. Hotspots are totally ordered (energy evaluations
/// descending, node index ascending), so a fixed cutoff is
/// deterministic.
const ITERATE_PROFILE_TOP: usize = 8;

/// Forwards the trace stream to the telemetry sink the user asked for
/// while the attribution profiler taps it for `--iterate-profile`.
struct TeeSink<'a> {
    main: &'a mut dyn TraceSink,
    tap: &'a mut Profiler,
}

impl TraceSink for TeeSink<'_> {
    fn record(&mut self, event: TraceEvent) {
        if self.main.enabled() {
            self.main.record(event.clone());
        }
        self.tap.record(event);
    }
}

/// The hottest profiled nodes as extraction hints, hottest first.
fn hotspot_hints(profiler: &Profiler, top: usize) -> Vec<NodeId> {
    profiler
        .hotspots(top)
        .iter()
        .map(|h| NodeId::from_index(h.op as usize))
        .collect()
}

fn usage() -> String {
    "usage: mfhls <subcommand> [args]\n\
     \n\
     subcommands:\n\
     \x20 info      inspect a .dfg file (operator mix, critical path, memory decls)\n\
     \x20 schedule  MFS move-frame scheduling (time- or resource-constrained)\n\
     \x20 synth     MFSA mixed scheduling-allocation down to RTL\n\
     \x20 explore   parallel design-space exploration over algorithms and budgets\n\
     \x20 profile   deterministic cost attribution and hotspot report\n\
     \x20 serve     synthesis-as-a-service HTTP daemon\n\
     \n\
     run `mfhls help <subcommand>` for that subcommand's flags.\n\
     `mfhls --version` prints the version."
        .to_string()
}

/// Detailed usage for one subcommand (`mfhls help <sub>`).
fn usage_for(sub: &str) -> Option<String> {
    let text = match sub {
        "info" => {
            "usage: mfhls info <file.dfg> [--dot]\n\
             \n\
             Prints the graph's operator mix, node/signal counts, critical path\n\
             (single-cycle and 2-cycle-multiply timing) and, for memory-aware\n\
             designs, the declared banks and arrays.\n\
             \n\
             flags:\n\
             \x20 --dot    also print the graph in Graphviz DOT format"
        }
        "schedule" => {
            "usage: mfhls schedule <file.dfg> --cs N [flags]\n\
             \n\
             Move-frame scheduling (MFS). Accepts memory-aware .dfg files:\n\
             loads/stores are scheduled against their bank's port count.\n\
             \n\
             flags:\n\
             \x20 --cs N            time constraint in control steps (required)\n\
             \x20 --resource        resource-constrained mode (--cs is the budget)\n\
             \x20 --limit OP=N      cap the unit count of one operator class\n\
             \x20 --chain CLOCK     enable operator chaining under this clock period\n\
             \x20 --latency L       loop pipelining initiation interval\n\
             \x20 --two-cycle-mul   use the 2-cycle-multiply timing profile\n\
             \x20 --json            print the canonical stats JSON line instead of text\n\
             \x20 --svg FILE        render the schedule as an SVG\n\
             \n\
             telemetry:\n\
             \x20 --trace FILE.jsonl scheduler trace events as JSON Lines\n\
             \x20 --chrome-trace F   phase spans for chrome://tracing / Perfetto\n\
             \x20 --metrics          print the counter/histogram report\n\
             \x20 -v|--verbose       phase timing summary on stderr\n\
             \x20 -q|--quiet         silence routine output"
        }
        "synth" => {
            "usage: mfhls synth (<file.dfg> | gen:OPS) --cs N [flags]\n\
             \n\
             Mixed scheduling-allocation (MFSA): schedule, bind ALUs/registers/\n\
             muxes and report costs. Memory-aware designs get per-bank port\n\
             binding, address/data muxing and Verilog memory instantiation.\n\
             `gen:OPS` synthesises the canonical scaling workload of roughly\n\
             OPS operations.\n\
             \n\
             With --iterate N the one-shot result is refined by up to N\n\
             extract/re-schedule rounds (bottleneck subgraph extraction +\n\
             constrained re-scheduling splices); every accepted splice is\n\
             re-verified and the (csteps, registers) objective only ever\n\
             improves. N = 0 is byte-identical to the one-shot schedule.\n\
             \n\
             With --shard the design is cut into weakly-coupled shards,\n\
             scheduled in parallel and stitched back into one verified\n\
             schedule — the path for 100k–1M-node graphs a monolithic run\n\
             cannot finish. Output is bit-identical for any --threads value;\n\
             --cs becomes an optional global control-step ceiling and the\n\
             data-path flags (--microcode/--verilog/...) do not apply.\n\
             \n\
             flags:\n\
             \x20 --cs N            time constraint in control steps (required;\n\
             \x20                   with --shard: optional global ceiling)\n\
             \x20 --shard N|auto    sharded synthesis with N shards (auto = from\n\
             \x20                   the node count, ~16k nodes per shard)\n\
             \x20 --shard-alg A     per-shard scheduler: mfs|mfsa (default mfsa)\n\
             \x20 --threads N       shard-pool worker threads (0 = all cores)\n\
             \x20 --style2          no-self-loop design style (paper style 2)\n\
             \x20 --weights T,A,M,R Liapunov weight vector\n\
             \x20 --lib FILE.lib    use a custom cell library\n\
             \x20 --two-cycle-mul   use the 2-cycle-multiply timing profile\n\
             \x20 --iterate N       feedback-guided refinement rounds (0 = one-shot)\n\
             \x20 --iterate-profile seed the refinement's extraction hints from the\n\
             \x20                   one-shot pass's profiler hotspots (needs --iterate)\n\
             \x20 --json            print the canonical stats JSON line instead of text\n\
             \x20 --microcode       print the control-word listing\n\
             \x20 --verilog         emit synthesisable Verilog\n\
             \x20 --testbench       emit a self-checking Verilog testbench\n\
             \x20 --check           run the interpreter-vs-RTL equivalence check\n\
             \x20 --svg FILE        render the schedule as an SVG\n\
             \x20 --vcd FILE        simulate seed 0 and write a VCD waveform\n\
             \n\
             telemetry:\n\
             \x20 --trace FILE.jsonl scheduler trace events as JSON Lines\n\
             \x20 --chrome-trace F   phase spans for chrome://tracing / Perfetto\n\
             \x20 --metrics          print the counter/histogram report\n\
             \x20 -v|--verbose       phase timing summary on stderr\n\
             \x20 -q|--quiet         silence routine output"
        }
        "explore" => {
            "usage: mfhls explore <file.dfg> (--grid FILE | --cs N[,M...]) [flags]\n\
             \n\
             Schedules many design points in parallel and reports the Pareto\n\
             front. Memory-aware designs work with mfs, mfsa and list; the\n\
             port-unaware baselines (asap, fds, anneal) report a typed error\n\
             per point.\n\
             \n\
             flags:\n\
             \x20 --grid FILE       read the point grid from a file\n\
             \x20 --cs N[,M...]     time constraints to sweep\n\
             \x20 --alg A[,B...]    algorithms: mfs,mfsa,list,fds,anneal (default mfs)\n\
             \x20 --limit OP=N      cap the unit count of one operator class\n\
             \x20 --chain CLOCK     enable operator chaining under this clock period\n\
             \x20 --latency L       loop pipelining initiation interval\n\
             \x20 --style2          no-self-loop design style for mfsa points\n\
             \x20 --weights T,A,M,R Liapunov weight vector for mfsa points\n\
             \x20 --two-cycle-mul   use the 2-cycle-multiply timing profile\n\
             \x20 --iterate N       refinement rounds for the --alg/--cs points\n\
             \x20 --threads N       worker threads (0 = all cores)\n\
             \x20 --emit FILE       write the Pareto front as JSON\n\
             \x20 --metrics         print the engine's metrics report\n\
             \x20 -q|--quiet        silence routine output"
        }
        "profile" => {
            "usage: mfhls profile (<file.dfg> | gen:OPS) [flags]\n\
             \n\
             Runs one scheduling pass with the attribution profiler attached\n\
             and prints where the scheduler's work went: per-node and per-step\n\
             energy-evaluation hotspots, per-phase wall time, bounds fast-path\n\
             vs boundary-walk counts and reuse-memo hit rates. The report is\n\
             deterministic for a given design, and profiling never changes the\n\
             schedule (the profiler is a write-only trace sink).\n\
             \n\
             `gen:OPS` profiles the canonical scaling workload of roughly OPS\n\
             operations — the same graphs BENCH_core.json measures.\n\
             `gen:clustered:OPS` profiles the canonical clustered workload —\n\
             the same graphs BENCH_partition.json measures.\n\
             \n\
             flags:\n\
             \x20 --cs N            time constraint (default: critical path + 8)\n\
             \x20 --alg mfs|mfsa    which kernel to profile (default mfs)\n\
             \x20 --top K           hotspot rows to keep (default 20)\n\
             \x20 --json            print the machine-readable report\n\
             \x20 --two-cycle-mul   use the 2-cycle-multiply timing profile\n\
             \x20 -q|--quiet        suppress the stderr progress line"
        }
        "serve" => {
            "usage: mfhls serve [flags]\n\
             \n\
             Synthesis-as-a-service HTTP daemon. POST jobs name a built-in\n\
             benchmark (including the memory kernels array_fir/matvec) or\n\
             carry an inline .dfg; answers are the same JSON the --json CLI\n\
             modes print. `POST /batch` takes a JSON array of jobs and\n\
             answers one ordered array. Connections are keep-alive with\n\
             bounded pipelining; `--cache-dir` adds an on-disk result tier\n\
             that survives restarts.\n\
             \n\
             flags:\n\
             \x20 --addr HOST:PORT      listen address\n\
             \x20 --workers N           scheduler worker threads\n\
             \x20 --queue-cap N         bounded job-queue length\n\
             \x20 --cache-cap N         warm schedule-cache capacity\n\
             \x20 --cache-dir DIR       on-disk result cache (restart-warm)\n\
             \x20 --deadline-ms N       default per-job deadline\n\
             \x20 --keep-alive on|off   HTTP keep-alive (default on)\n\
             \x20 --idle-timeout-ms N   evict idle keep-alive conns (5000)\n\
             \x20 --read-timeout-ms N   slow-loris partial-request bound (5000)\n\
             \x20 --pipeline-depth N    max in-flight requests per conn (8)\n\
             \x20 --force-poll          use poll(2) even where epoll exists\n\
             \x20 --access-log FILE     append JSONL access records to FILE\n\
             \x20 -q|--quiet            silence startup/shutdown chatter"
        }
        _ => return None,
    };
    Some(text.to_string())
}

/// The flags each subcommand accepts (drives scoped unknown-flag
/// errors: a flag that exists elsewhere names its proper subcommand).
fn allowed_flags(sub: &str) -> &'static [&'static str] {
    match sub {
        "info" => &["--dot"],
        "schedule" => &[
            "--cs",
            "--resource",
            "--limit",
            "--chain",
            "--latency",
            "--two-cycle-mul",
            "--json",
            "--svg",
            "--trace",
            "--chrome-trace",
            "--metrics",
            "-v",
            "--verbose",
            "-q",
            "--quiet",
        ],
        "synth" => &[
            "--cs",
            "--style2",
            "--weights",
            "--lib",
            "--two-cycle-mul",
            "--iterate",
            "--iterate-profile",
            "--json",
            "--microcode",
            "--verilog",
            "--testbench",
            "--check",
            "--svg",
            "--vcd",
            "--shard",
            "--shard-alg",
            "--threads",
            "--trace",
            "--chrome-trace",
            "--metrics",
            "-v",
            "--verbose",
            "-q",
            "--quiet",
        ],
        "explore" => &[
            "--grid",
            "--cs",
            "--alg",
            "--limit",
            "--chain",
            "--latency",
            "--style2",
            "--weights",
            "--two-cycle-mul",
            "--iterate",
            "--threads",
            "--emit",
            "--metrics",
            "-q",
            "--quiet",
        ],
        "profile" => &[
            "--cs",
            "--alg",
            "--top",
            "--json",
            "--two-cycle-mul",
            "-q",
            "--quiet",
        ],
        "serve" => &[
            "--addr",
            "--workers",
            "--queue-cap",
            "--cache-cap",
            "--cache-dir",
            "--deadline-ms",
            "--keep-alive",
            "--idle-timeout-ms",
            "--read-timeout-ms",
            "--pipeline-depth",
            "--force-poll",
            "--access-log",
            "-q",
            "--quiet",
        ],
        _ => &[],
    }
}

/// A scoped unknown-flag error: names the subcommand, and if the flag
/// belongs to other subcommands, points there.
fn unknown_flag(sub: &str, flag: &str) -> String {
    let owners: Vec<&str> = SUBCOMMANDS
        .iter()
        .filter(|s| allowed_flags(s).contains(&flag))
        .copied()
        .collect();
    let hint = if owners.is_empty() {
        String::new()
    } else {
        format!(" (a `{}` flag)", owners.join("`/`"))
    };
    format!("unknown {sub} flag `{flag}`{hint}; see `mfhls help {sub}`")
}

/// Parses the `serve` subcommand's flags (no input file: the daemon
/// receives designs over HTTP).
fn parse_serve<'a, I: Iterator<Item = &'a String>>(mut it: I) -> Result<Command, String> {
    let mut config = ServeConfig::default();
    let mut access_log = None;
    let mut quiet = false;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => config.addr = it.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                config.workers = v.parse().map_err(|_| "invalid --workers value")?;
            }
            "--queue-cap" => {
                let v = it.next().ok_or("--queue-cap needs a value")?;
                config.queue_cap = v.parse().map_err(|_| "invalid --queue-cap value")?;
            }
            "--cache-cap" => {
                let v = it.next().ok_or("--cache-cap needs a value")?;
                config.cache_cap = v.parse().map_err(|_| "invalid --cache-cap value")?;
            }
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a directory path")?;
                config.cache_dir = Some(v.into());
            }
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms needs a value")?;
                config.default_deadline_ms =
                    Some(v.parse().map_err(|_| "invalid --deadline-ms value")?);
            }
            "--keep-alive" => {
                config.keep_alive = match it.next().ok_or("--keep-alive needs on|off")?.as_str() {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    _ => return Err("invalid --keep-alive value (want on|off)".into()),
                };
            }
            "--idle-timeout-ms" => {
                let v = it.next().ok_or("--idle-timeout-ms needs a value")?;
                config.idle_timeout_ms =
                    v.parse().map_err(|_| "invalid --idle-timeout-ms value")?;
            }
            "--read-timeout-ms" => {
                let v = it.next().ok_or("--read-timeout-ms needs a value")?;
                config.read_timeout_ms =
                    v.parse().map_err(|_| "invalid --read-timeout-ms value")?;
            }
            "--pipeline-depth" => {
                let v = it.next().ok_or("--pipeline-depth needs a value")?;
                let depth: usize = v.parse().map_err(|_| "invalid --pipeline-depth value")?;
                if depth == 0 {
                    return Err("--pipeline-depth must be at least 1".into());
                }
                config.pipeline_depth = depth;
            }
            "--force-poll" => config.force_poll = true,
            "--access-log" => {
                let v = it.next().ok_or("--access-log needs a file path")?;
                access_log = Some(v.clone());
            }
            "-q" | "--quiet" => quiet = true,
            other => return Err(unknown_flag("serve", other)),
        }
    }
    Ok(Command::Serve {
        config,
        access_log,
        quiet,
    })
}

fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().peekable();
    let sub = it.next().ok_or_else(usage)?;
    if sub == "help" {
        return Ok(Command::Help {
            topic: it.next().cloned(),
        });
    }
    if !SUBCOMMANDS.contains(&sub.as_str()) {
        return Err(format!("unknown subcommand `{sub}`\n{}", usage()));
    }
    if sub == "serve" {
        return parse_serve(it);
    }
    let file = it.next().ok_or("missing input file")?.clone();
    let mut cs_list: Vec<u32> = Vec::new();
    let mut resource = false;
    let mut limits = Vec::new();
    let mut chain = None;
    let mut latency = None;
    let mut two_cycle_mul = false;
    let mut json = false;
    let mut style2 = false;
    let mut weights = None;
    let mut lib = None;
    let mut microcode = false;
    let mut verilog = false;
    let mut testbench = false;
    let mut check = false;
    let mut dot = false;
    let mut svg = None;
    let mut vcd = None;
    let mut grid = None;
    let mut algs: Vec<Algorithm> = Vec::new();
    let mut threads = 0usize;
    let mut threads_set = false;
    let mut shard: Option<usize> = None;
    let mut shard_alg: Option<Algorithm> = None;
    let mut emit = None;
    let mut top = 20usize;
    let mut iterate = 0u32;
    let mut iterate_profile = false;
    let mut tel = Telemetry::default();
    while let Some(flag) = it.next() {
        if !allowed_flags(sub).contains(&flag.as_str()) {
            return Err(unknown_flag(sub, flag));
        }
        match flag.as_str() {
            "--cs" => {
                let v = it.next().ok_or("--cs needs a value")?;
                cs_list = v
                    .split(',')
                    .map(|p| p.parse::<u32>().map_err(|_| "invalid --cs value"))
                    .collect::<Result<_, _>>()?;
            }
            "--resource" => resource = true,
            "--limit" => {
                let v = it.next().ok_or("--limit needs OP=N")?;
                let (op, n) = v.split_once('=').ok_or("--limit needs OP=N")?;
                let op: OpKind = op.parse().map_err(|e| format!("{e}"))?;
                let n: u32 = n.parse().map_err(|_| "invalid --limit count")?;
                limits.push((op, n));
            }
            "--chain" => {
                let v = it.next().ok_or("--chain needs a clock period")?;
                chain = Some(v.parse::<u32>().map_err(|_| "invalid clock period")?);
            }
            "--latency" => {
                let v = it.next().ok_or("--latency needs a value")?;
                latency = Some(v.parse::<u32>().map_err(|_| "invalid latency")?);
            }
            "--two-cycle-mul" => two_cycle_mul = true,
            "--json" => json = true,
            "--style2" => style2 = true,
            "--weights" => {
                let v = it.next().ok_or("--weights needs T,A,M,R")?;
                let parts: Vec<u32> = v
                    .split(',')
                    .map(|p| p.parse::<u32>().map_err(|_| "invalid weight"))
                    .collect::<Result<_, _>>()?;
                if parts.len() != 4 {
                    return Err("--weights needs exactly four values".into());
                }
                weights = Some([parts[0], parts[1], parts[2], parts[3]]);
            }
            "--lib" => {
                let v = it.next().ok_or("--lib needs a file path")?;
                lib = Some(v.clone());
            }
            "--microcode" => microcode = true,
            "--verilog" => verilog = true,
            "--testbench" => testbench = true,
            "--check" => check = true,
            "--dot" => dot = true,
            "--svg" => {
                let v = it.next().ok_or("--svg needs a file path")?;
                svg = Some(v.clone());
            }
            "--vcd" => {
                let v = it.next().ok_or("--vcd needs a file path")?;
                vcd = Some(v.clone());
            }
            "--grid" => {
                let v = it.next().ok_or("--grid needs a file path")?;
                grid = Some(v.clone());
            }
            "--alg" => {
                let v = it.next().ok_or("--alg needs a list of algorithms")?;
                algs = v
                    .split(',')
                    .map(|name| {
                        Algorithm::parse(name).ok_or_else(|| format!("unknown algorithm `{name}`"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                threads = v.parse::<usize>().map_err(|_| "invalid --threads value")?;
                threads_set = true;
            }
            "--shard" => {
                let v = it.next().ok_or("--shard needs a count or `auto`")?;
                shard = Some(if v == "auto" {
                    0
                } else {
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or("--shard needs a positive count or `auto`")?
                });
            }
            "--shard-alg" => {
                let v = it.next().ok_or("--shard-alg needs mfs or mfsa")?;
                shard_alg = Some(match v.as_str() {
                    "mfs" => Algorithm::Mfs,
                    "mfsa" => Algorithm::Mfsa,
                    other => return Err(format!("--shard-alg supports mfs|mfsa, not `{other}`")),
                });
            }
            "--emit" => {
                let v = it.next().ok_or("--emit needs a file path")?;
                emit = Some(v.clone());
            }
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                top = v.parse::<usize>().map_err(|_| "invalid --top value")?;
            }
            "--iterate" => {
                let v = it.next().ok_or("--iterate needs an iteration count")?;
                iterate = v.parse::<u32>().map_err(|_| "invalid --iterate value")?;
            }
            "--iterate-profile" => iterate_profile = true,
            "--trace" => {
                let v = it.next().ok_or("--trace needs a file path")?;
                tel.trace = Some(v.clone());
            }
            "--chrome-trace" => {
                let v = it.next().ok_or("--chrome-trace needs a file path")?;
                tel.chrome = Some(v.clone());
            }
            "--metrics" => tel.metrics = true,
            "-v" | "--verbose" => tel.verbose = true,
            "-q" | "--quiet" => tel.quiet = true,
            other => return Err(unknown_flag(sub, other)),
        }
    }
    let single_cs = |name: &str| -> Result<u32, String> {
        match cs_list[..] {
            [one] => Ok(one),
            [] => Err(format!("{name} requires --cs")),
            _ => Err(format!("{name} takes a single --cs value")),
        }
    };
    match sub.as_str() {
        "info" => Ok(Command::Info { file, dot }),
        "schedule" => Ok(Command::Schedule {
            file,
            cs: single_cs("schedule")?,
            resource,
            limits,
            chain,
            latency,
            two_cycle_mul,
            json,
            svg,
            tel,
        }),
        "synth" => {
            let cs = if shard.is_some() {
                // --cs becomes an optional global ceiling.
                match cs_list[..] {
                    [] => None,
                    [one] => Some(one),
                    _ => return Err("synth takes a single --cs value".into()),
                }
            } else {
                if shard_alg.is_some() {
                    return Err("--shard-alg requires --shard".into());
                }
                if threads_set {
                    return Err("synth --threads requires --shard".into());
                }
                Some(single_cs("synth")?)
            };
            if shard.is_some() {
                if json
                    || microcode
                    || verilog
                    || testbench
                    || check
                    || svg.is_some()
                    || vcd.is_some()
                {
                    return Err(
                        "--shard produces a verified schedule, not a data path; drop --json/--microcode/--verilog/--testbench/--check/--svg/--vcd"
                            .into(),
                    );
                }
                if style2 || weights.is_some() {
                    return Err("--shard does not support --style2/--weights".into());
                }
            }
            if iterate_profile {
                if iterate == 0 {
                    return Err("--iterate-profile requires --iterate N (with N ≥ 1)".into());
                }
                if shard.is_some() {
                    return Err("--iterate-profile is not supported with --shard".into());
                }
                if json {
                    return Err("--iterate-profile is not supported with --json".into());
                }
            }
            Ok(Command::Synth {
                file,
                cs,
                style2,
                weights,
                lib,
                two_cycle_mul,
                json,
                microcode,
                verilog,
                testbench,
                check,
                svg,
                vcd,
                shard,
                shard_alg: shard_alg.unwrap_or(Algorithm::Mfsa),
                threads,
                iterate,
                iterate_profile,
                tel,
            })
        }
        "explore" => {
            if grid.is_some() && (!algs.is_empty() || !cs_list.is_empty()) {
                return Err("use either --grid or --alg/--cs, not both".into());
            }
            if grid.is_none() && cs_list.is_empty() {
                return Err("explore requires --grid or --cs".into());
            }
            if tel.wants_events() {
                return Err("explore does not support --trace/--chrome-trace".into());
            }
            if grid.is_some() && iterate > 0 {
                return Err("set iterate per point in the grid file, not via --iterate".into());
            }
            Ok(Command::Explore {
                file,
                grid,
                algs,
                cs_list,
                limits,
                chain,
                latency,
                style2,
                weights,
                two_cycle_mul,
                threads,
                emit,
                iterate,
                tel,
            })
        }
        "profile" => {
            let alg = match algs[..] {
                [] => Algorithm::Mfs,
                [one @ (Algorithm::Mfs | Algorithm::Mfsa)] => one,
                [one] => {
                    return Err(format!(
                        "profile supports --alg mfs|mfsa, not `{}`",
                        one.name()
                    ))
                }
                _ => return Err("profile takes a single --alg value".into()),
            };
            let cs = match cs_list[..] {
                [] => None,
                [one] => Some(one),
                _ => return Err("profile takes a single --cs value".into()),
            };
            Ok(Command::Profile {
                file,
                cs,
                alg,
                top,
                json,
                two_cycle_mul,
                quiet: tel.quiet,
            })
        }
        other => Err(format!("unknown subcommand `{other}`\n{}", usage())),
    }
}

fn load(file: &str) -> Result<Dfg, String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    parse_dfg(&text).map_err(|e| format!("{file}: {e}"))
}

/// Loads a design for `profile` and `synth`: a `.dfg` file, `gen:OPS`
/// for the canonical scaling workload of roughly OPS operations (the
/// same graphs `BENCH_core.json` measures), or `gen:clustered:OPS` for
/// the canonical clustered workload (the same graphs
/// `BENCH_partition.json` measures — weakly-coupled regions sized to
/// the partitioner's automatic sharding).
fn load_design(file: &str) -> Result<Dfg, String> {
    let parse_ops = |ops: &str| -> Result<usize, String> {
        ops.parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("gen: needs a positive op count, got `{file}`"))
    };
    match file.strip_prefix("gen:") {
        Some(rest) => match rest.strip_prefix("clustered:") {
            Some(ops) => Ok(moveframe_hls::benchmarks::generate::generate_clustered(
                &moveframe_hls::benchmarks::generate::clustered_workload(parse_ops(ops)?),
            )),
            None => Ok(moveframe_hls::benchmarks::generate::generate(
                &moveframe_hls::benchmarks::generate::scaling_workload(parse_ops(rest)?),
            )),
        },
        None => load(file),
    }
}

fn spec_for(two_cycle_mul: bool, chained: bool) -> TimingSpec {
    if chained {
        TimingSpec::with_delays()
    } else if two_cycle_mul {
        TimingSpec::two_cycle_multiply()
    } else {
        TimingSpec::uniform_single_cycle()
    }
}

fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Help { topic } => match topic {
            None => {
                println!("{}", usage());
                Ok(())
            }
            Some(sub) => match usage_for(&sub) {
                Some(text) => {
                    println!("{text}");
                    Ok(())
                }
                None => Err(format!(
                    "no help for `{sub}`; subcommands: {}",
                    SUBCOMMANDS.join(", ")
                )),
            },
        },
        Command::Info { file, dot } => {
            let dfg = load(&file)?;
            let spec = TimingSpec::uniform_single_cycle();
            let cp = CriticalPath::compute(&dfg, &spec);
            println!(
                "{}: {} operation(s), {} signal(s)",
                dfg.name(),
                dfg.node_count(),
                dfg.signal_count()
            );
            println!("operator mix: {}", OpMix::of_graph(&dfg));
            for bank in dfg.memory().banks() {
                let arrays: Vec<String> = dfg
                    .memory()
                    .arrays_in_bank(bank.id())
                    .map(|a| format!("{}[{}]", a.name(), a.size()))
                    .collect();
                println!(
                    "memory bank {}: {} port(s), arrays: {}",
                    bank.name(),
                    bank.ports(),
                    arrays.join(", ")
                );
            }
            println!(
                "critical path: {} control step(s) (single-cycle)",
                cp.steps()
            );
            let cp2 = CriticalPath::compute(&dfg, &TimingSpec::two_cycle_multiply());
            println!(
                "critical path: {} control step(s) (2-cycle multiply)",
                cp2.steps()
            );
            if dot {
                println!("\n{}", dfg.to_dot());
            }
            Ok(())
        }
        Command::Schedule {
            file,
            cs,
            resource,
            limits,
            chain,
            latency,
            two_cycle_mul,
            json,
            svg,
            tel,
        } => {
            let dfg = load(&file)?;
            let spec = spec_for(two_cycle_mul, chain.is_some());
            if json {
                if resource {
                    return Err(
                        "--json supports time-constrained scheduling; drop --resource".into(),
                    );
                }
                if svg.is_some() {
                    return Err("--json and --svg are mutually exclusive".into());
                }
                let mut point = DesignPoint::new(Algorithm::Mfs, cs);
                for &(op, n) in &limits {
                    point.fu_limits.insert(FuClass::Op(op), n);
                }
                point.clock = chain;
                point.latency = latency;
                return run_point_json(&dfg, &spec, &point, &tel);
            }
            let mut config = if resource {
                MfsConfig::resource_constrained(cs)
            } else {
                MfsConfig::time_constrained(cs)
            };
            for &(op, n) in &limits {
                config = config.with_fu_limit(FuClass::Op(op), n);
            }
            if let Some(clock) = chain {
                config = config.with_chaining(ClockPeriod::new(clock));
            }
            if let Some(l) = latency {
                config = config.with_latency(l);
            }
            let opts = VerifyOptions {
                clock: chain.map(ClockPeriod::new),
                latency,
            };
            let mut mem = MemorySink::new();
            let mut null = NullSink;
            let mut metrics = Metrics::new();
            let (outcome, violations) = {
                let sink: &mut dyn TraceSink = if tel.wants_events() {
                    &mut mem
                } else {
                    &mut null
                };
                let mut instr = Instrument::new(sink, &mut metrics);
                let outcome = mfs::schedule_traced(&dfg, &spec, &config, &mut instr)
                    .map_err(|e| e.to_string())?;
                let violations = verify_traced(&dfg, &outcome.schedule, &spec, opts, &mut instr);
                if tel.verbose {
                    let stats =
                        ScheduleStats::compute_traced(&dfg, &outcome.schedule, &spec, &mut instr);
                    eprintln!(
                        "stats: peak concurrency {}, imbalance {:.2}",
                        stats.peak_concurrency(),
                        stats.imbalance()
                    );
                }
                (outcome, violations)
            };
            if !tel.quiet {
                print!("{}", render_schedule(&dfg, &outcome.schedule, &spec));
            }
            if let Some(path) = svg {
                let image = moveframe_hls::schedule::render_svg(&dfg, &outcome.schedule, &spec);
                std::fs::write(&path, image).map_err(|e| format!("cannot write {path}: {e}"))?;
                if !tel.quiet {
                    println!("wrote {path}");
                }
            }
            finish_telemetry(&tel, mem.events(), &metrics)?;
            if violations.is_empty() {
                if !tel.quiet {
                    println!(
                        "verified: ok ({} local rescheduling(s))",
                        outcome.reschedule_count
                    );
                }
                Ok(())
            } else {
                Err(format!(
                    "internal error: schedule failed verification: {violations:?}"
                ))
            }
        }
        Command::Synth {
            file,
            cs,
            style2,
            weights,
            lib,
            two_cycle_mul,
            json,
            microcode,
            verilog,
            testbench,
            check,
            svg,
            vcd,
            shard,
            shard_alg,
            threads,
            iterate,
            iterate_profile,
            tel,
        } => {
            let dfg = load_design(&file)?;
            let spec = spec_for(two_cycle_mul, false);
            if let Some(shards) = shard {
                return run_synth_sharded(
                    &dfg, &spec, shards, shard_alg, threads, cs, lib, iterate, &tel,
                );
            }
            let cs = cs.ok_or("synth requires --cs")?;
            if json {
                if lib.is_some()
                    || microcode
                    || verilog
                    || testbench
                    || check
                    || svg.is_some()
                    || vcd.is_some()
                {
                    return Err(
                        "--json prints the stats summary only; drop --lib/--microcode/--verilog/--testbench/--check/--svg/--vcd"
                            .into(),
                    );
                }
                let mut point = DesignPoint::new(Algorithm::Mfsa, cs);
                point.style = if style2 { 2 } else { 1 };
                point.weights = weights.map(|[t, a, m, r]| (t, a, m, r));
                point.iterate = iterate;
                return run_point_json(&dfg, &spec, &point, &tel);
            }
            let library = match lib {
                None => Library::ncr_like(),
                Some(path) => {
                    let text = std::fs::read_to_string(&path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?;
                    moveframe_hls::celllib::parse_library(&text)
                        .map_err(|e| format!("{path}: {e}"))?
                }
            };
            let mut config = MfsaConfig::new(cs, library.clone());
            if style2 {
                config = config.with_style(DesignStyle::NoSelfLoop);
            }
            if let Some([t, a, m, r]) = weights {
                config = config.with_weights(Weights {
                    time: t,
                    alu: a,
                    mux: m,
                    reg: r,
                });
            }
            let mut mem = MemorySink::new();
            let mut null = NullSink;
            let mut metrics = Metrics::new();
            let mut profiler = Profiler::new();
            let out = {
                // The one-shot pass: with --iterate-profile the
                // attribution profiler taps the event stream alongside
                // whatever sink the telemetry flags chose.
                let mut out = {
                    let sink: &mut dyn TraceSink = if tel.wants_events() {
                        &mut mem
                    } else {
                        &mut null
                    };
                    if iterate_profile {
                        let mut tee = TeeSink {
                            main: sink,
                            tap: &mut profiler,
                        };
                        let mut instr = Instrument::new(&mut tee, &mut metrics);
                        mfsa::schedule_traced(&dfg, &spec, &config, &mut instr)
                            .map_err(|e| e.to_string())?
                    } else {
                        let mut instr = Instrument::new(sink, &mut metrics);
                        mfsa::schedule_traced(&dfg, &spec, &config, &mut instr)
                            .map_err(|e| e.to_string())?
                    }
                };
                let sink: &mut dyn TraceSink = if tel.wants_events() {
                    &mut mem
                } else {
                    &mut null
                };
                let mut instr = Instrument::new(sink, &mut metrics);
                if iterate > 0 {
                    let mut iterate_config = IterateConfig::new(iterate);
                    if iterate_profile {
                        let hints = hotspot_hints(&profiler, ITERATE_PROFILE_TOP);
                        if !tel.quiet {
                            println!(
                                "iterate-profile: {} extraction hint(s) from the hottest nodes",
                                hints.len()
                            );
                        }
                        iterate_config = iterate_config.with_hints(hints);
                    }
                    let refined =
                        refine_mfsa(&dfg, &spec, &library, &mut out, &iterate_config, &mut instr)
                            .map_err(|e| e.to_string())?;
                    if !tel.quiet {
                        println!(
                            "iterate: {} round(s), {} splice(s) accepted, control steps {} -> {}, registers {} -> {}",
                            refined.iterations_run,
                            refined.splices_accepted,
                            refined.csteps_before,
                            refined.csteps_after,
                            refined.registers_before,
                            refined.registers_after,
                        );
                    }
                }
                if tel.verbose {
                    let stats =
                        ScheduleStats::compute_traced(&dfg, &out.schedule, &spec, &mut instr);
                    eprintln!(
                        "stats: peak concurrency {}, imbalance {:.2}",
                        stats.peak_concurrency(),
                        stats.imbalance()
                    );
                }
                out
            };
            if !tel.quiet {
                print!("{}", render_schedule(&dfg, &out.schedule, &spec));
                print!("{}", out.datapath);
                println!("{}", out.cost);
            }
            let controller = Controller::generate(&dfg, &out.schedule, &out.datapath, &spec)
                .map_err(|e| e.to_string())?;
            if microcode {
                print!("\n{}", controller.render(&dfg));
            }
            if check {
                let mut worst = 0usize;
                for seed in 0..8u64 {
                    let inputs = random_inputs(&dfg, seed);
                    let mismatches =
                        check_equivalence(&dfg, &out.schedule, &out.datapath, &spec, &inputs)
                            .map_err(|e| e.to_string())?;
                    worst = worst.max(mismatches.len());
                }
                if worst == 0 {
                    println!("equivalence check: ok (8 random vectors)");
                } else {
                    return Err(format!(
                        "equivalence check FAILED: {worst} mismatching op(s)"
                    ));
                }
            }
            if verilog {
                let v = emit_verilog(&dfg, &out.schedule, &out.datapath, &controller, &spec)
                    .map_err(|e| e.to_string())?;
                println!("\n{v}");
            }
            if testbench {
                let inputs = random_inputs(&dfg, 0);
                let values = interpret(&dfg, &inputs).map_err(|e| e.to_string())?;
                let expected: std::collections::BTreeMap<_, _> = dfg
                    .signals()
                    .filter(|(sid, s)| {
                        matches!(s.source(), moveframe_hls::dfg::SignalSource::Node(_))
                            && dfg.consumers(*sid).is_empty()
                    })
                    .map(|(sid, _)| (sid, values[&sid]))
                    .collect();
                let tb = emit_testbench(&dfg, &inputs, &expected).map_err(|e| e.to_string())?;
                println!("\n{tb}");
            }
            if let Some(path) = svg {
                let image = moveframe_hls::schedule::render_svg(&dfg, &out.schedule, &spec);
                std::fs::write(&path, image).map_err(|e| format!("cannot write {path}: {e}"))?;
                if !tel.quiet {
                    println!("wrote {path}");
                }
            }
            if let Some(path) = vcd {
                let inputs = random_inputs(&dfg, 0);
                let sim = simulate(
                    &dfg,
                    &out.schedule,
                    &out.datapath,
                    &controller,
                    &spec,
                    &inputs,
                )
                .map_err(|e| e.to_string())?;
                let dump = moveframe_hls::sim::write_vcd(&dfg, &out.datapath, &sim);
                std::fs::write(&path, dump).map_err(|e| format!("cannot write {path}: {e}"))?;
                if !tel.quiet {
                    println!("wrote {path} (inputs from seed 0)");
                }
            }
            finish_telemetry(&tel, mem.events(), &metrics)?;
            Ok(())
        }
        Command::Explore {
            file,
            grid,
            algs,
            cs_list,
            limits,
            chain,
            latency,
            style2,
            weights,
            two_cycle_mul,
            threads,
            emit,
            iterate,
            tel,
        } => {
            let dfg = load(&file)?;
            let points = match grid {
                Some(path) => {
                    let text = std::fs::read_to_string(&path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?;
                    parse_grid(&text).map_err(|e| format!("{path}: {e}"))?
                }
                None => {
                    let algs = if algs.is_empty() {
                        vec![Algorithm::Mfs]
                    } else {
                        algs
                    };
                    let mut points = Vec::new();
                    for &alg in &algs {
                        for &cs in &cs_list {
                            let mut p = DesignPoint::new(alg, cs);
                            for &(op, n) in &limits {
                                p.fu_limits.insert(FuClass::Op(op), n);
                            }
                            p.clock = chain;
                            p.latency = latency;
                            p.style = if style2 { 2 } else { 1 };
                            p.weights = weights.map(|[t, a, m, r]| (t, a, m, r));
                            p.iterate = iterate;
                            points.push(p);
                        }
                    }
                    points
                }
            };
            let chained = points.iter().any(|p| p.clock.is_some());
            let spec = spec_for(two_cycle_mul, chained);
            let report = Engine::new().explore(&dfg, &spec, &points, ExploreOptions { threads });
            if !tel.quiet {
                print!("{}", report.render_text());
            }
            if let Some(path) = emit {
                let mut json = report.front_json();
                json.push('\n');
                std::fs::write(&path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
                if !tel.quiet {
                    println!("wrote {path}");
                }
            }
            if tel.metrics {
                print!("{}", report.metrics.render_text());
            }
            let errors = report.results.iter().filter(|r| r.outcome.is_err()).count();
            if errors == report.results.len() {
                return Err("every design point failed to schedule".into());
            }
            Ok(())
        }
        Command::Profile {
            file,
            cs,
            alg,
            top,
            json,
            two_cycle_mul,
            quiet,
        } => {
            let dfg = load_design(&file)?;
            let spec = spec_for(two_cycle_mul, false);
            let cs = match cs {
                Some(cs) => cs,
                None => CriticalPath::compute(&dfg, &spec).steps() as u32 + PROFILE_SLACK,
            };
            if !quiet {
                eprintln!(
                    "profiling {} ({} op(s)) with {} at {cs} control step(s)",
                    dfg.name(),
                    dfg.node_count(),
                    alg.name()
                );
            }
            let mut profiler = Profiler::new();
            let mut metrics = Metrics::new();
            {
                let mut instr = Instrument::new(&mut profiler, &mut metrics);
                match alg {
                    Algorithm::Mfs => {
                        mfs::schedule_traced(
                            &dfg,
                            &spec,
                            &MfsConfig::time_constrained(cs),
                            &mut instr,
                        )
                        .map_err(|e| e.to_string())?;
                    }
                    Algorithm::Mfsa => {
                        mfsa::schedule_traced(
                            &dfg,
                            &spec,
                            &MfsaConfig::new(cs, Library::ncr_like()),
                            &mut instr,
                        )
                        .map_err(|e| e.to_string())?;
                    }
                    other => {
                        return Err(format!("profile does not support --alg {}", other.name()))
                    }
                }
            }
            let report = ProfileReport::build(&profiler, &metrics, top);
            if json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render_text());
            }
            Ok(())
        }
        Command::Serve {
            config,
            access_log,
            quiet,
        } => {
            let sink: Box<dyn TraceSink + Send> = match &access_log {
                Some(path) => {
                    let file = std::fs::File::create(path)
                        .map_err(|e| format!("cannot create {path}: {e}"))?;
                    Box::new(JsonlSink::new(file))
                }
                None if quiet => Box::new(NullSink),
                None => Box::new(JsonlSink::new(std::io::stderr())),
            };
            let server =
                Server::start(config, sink).map_err(|e| format!("cannot start server: {e}"))?;
            if !quiet {
                eprintln!("mfhls serve: listening on http://{}", server.local_addr());
                eprintln!("mfhls serve: SIGINT/SIGTERM drains and exits");
            }
            moveframe_hls::serve::signal::install();
            while !moveframe_hls::serve::signal::triggered() {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            if !quiet {
                eprintln!("mfhls serve: shutdown signal received, draining");
            }
            server.shutdown();
            server.join();
            Ok(())
        }
    }
}

/// Runs sharded synthesis (`synth --shard`): partition → parallel
/// per-shard scheduling → merge & stitch → verify. `ceiling` is the
/// optional `--cs` value, enforced against the achieved horizon —
/// after the optional `--iterate` refinement, which can only lower it.
#[allow(clippy::too_many_arguments)]
fn run_synth_sharded(
    dfg: &Dfg,
    spec: &TimingSpec,
    shards: usize,
    alg: Algorithm,
    threads: usize,
    ceiling: Option<u32>,
    lib: Option<String>,
    iterate: u32,
    tel: &Telemetry,
) -> Result<(), String> {
    let shard_alg = match alg {
        Algorithm::Mfs => ShardAlg::Mfs,
        Algorithm::Mfsa => {
            let library = match lib {
                None => Library::ncr_like(),
                Some(path) => {
                    let text = std::fs::read_to_string(&path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?;
                    moveframe_hls::celllib::parse_library(&text)
                        .map_err(|e| format!("{path}: {e}"))?
                }
            };
            ShardAlg::Mfsa(library)
        }
        other => {
            return Err(format!(
                "--shard-alg supports mfs|mfsa, not `{}`",
                other.name()
            ))
        }
    };
    let config = ShardedConfig::new(shards, shard_alg).with_threads(threads);
    let mut mem = MemorySink::new();
    let mut null = NullSink;
    let mut metrics = Metrics::new();
    let (out, refined) = {
        let sink: &mut dyn TraceSink = if tel.wants_events() {
            &mut mem
        } else {
            &mut null
        };
        let mut instr = Instrument::new(sink, &mut metrics);
        let mut out = synth_sharded(dfg, spec, &config, &mut instr).map_err(|e| e.to_string())?;
        let refined = if iterate > 0 {
            let refined = refine(
                dfg,
                spec,
                &out.schedule,
                &IterateConfig::new(iterate),
                &mut instr,
            )
            .map_err(|e| e.to_string())?;
            out.schedule = refined.schedule.clone();
            out.csteps = refined.csteps_after;
            Some(refined)
        } else {
            None
        };
        (out, refined)
    };
    metrics.merge(&out.shard_metrics);
    if let Some(ceiling) = ceiling {
        if out.csteps > ceiling {
            return Err(format!(
                "sharded schedule needs {} control steps, above the --cs ceiling {ceiling}",
                out.csteps
            ));
        }
    }
    if !tel.quiet {
        let requested = if shards == 0 {
            "auto".to_string()
        } else {
            shards.to_string()
        };
        println!(
            "sharded synthesis ({}): {} nodes in {} shards (requested {requested})",
            config.alg.name(),
            dfg.node_count(),
            out.shards,
        );
        println!(
            "  cut edges {}, boundary nodes {}, refine moves {}",
            out.cut_edges, out.boundary_nodes, out.refine_moves
        );
        println!(
            "  stitch moves {}, telescoped steps saved {}",
            out.stitch_moves, out.telescoped_saved
        );
        if let Some(r) = &refined {
            println!(
                "  iterate: {} round(s), {} splice(s) accepted, control steps {} -> {}",
                r.iterations_run, r.splices_accepted, r.csteps_before, r.csteps_after
            );
        }
        let ceiling_note = ceiling
            .map(|c| format!(" (ceiling {c})"))
            .unwrap_or_default();
        println!(
            "  control steps {}{ceiling_note}, schedule verified",
            out.csteps
        );
    }
    if tel.verbose {
        eprintln!("shard budgets: {:?}", out.shard_csteps);
    }
    finish_telemetry(tel, mem.events(), &metrics)
}

/// Schedules one design point through the exploration engine (the same
/// path `mfhls serve` uses) and prints the canonical JSON stats line,
/// so CLI and daemon answers are byte-identical.
fn run_point_json(
    dfg: &Dfg,
    spec: &TimingSpec,
    point: &DesignPoint,
    tel: &Telemetry,
) -> Result<(), String> {
    if tel.wants_events() {
        return Err("--json does not support --trace/--chrome-trace".into());
    }
    let mut null = NullSink;
    let mut metrics = Metrics::new();
    let (outcome, _warm) = {
        let mut instr = Instrument::new(&mut null, &mut metrics);
        Engine::new().schedule_point(dfg, spec, point, &CancelToken::never(), &mut instr)
    };
    let m = outcome?;
    print!("{}", moveframe_hls::serve::point_json(point, &m));
    if tel.metrics {
        print!("{}", metrics.render_text());
    }
    Ok(())
}

/// Writes/prints the requested telemetry artifacts after a run.
fn finish_telemetry(
    tel: &Telemetry,
    events: &[TraceEvent],
    metrics: &Metrics,
) -> Result<(), String> {
    if let Some(path) = &tel.trace {
        let mut out = String::new();
        for e in events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))?;
        if !tel.quiet {
            println!("wrote {path} ({} event(s))", events.len());
        }
    }
    if let Some(path) = &tel.chrome {
        std::fs::write(path, chrome_trace(events.iter()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !tel.quiet {
            println!("wrote {path} (load in chrome://tracing or Perfetto)");
        }
    }
    if tel.metrics {
        print!("{}", metrics.render_text());
    }
    if tel.verbose {
        for (name, h) in metrics.histograms() {
            if let Some(phase) = name
                .strip_prefix("phase.")
                .and_then(|n| n.strip_suffix(".ns"))
            {
                eprintln!(
                    "phase {phase}: {:.3} ms over {} call(s)",
                    h.sum() as f64 / 1e6,
                    h.count()
                );
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if args[0] == "--version" || args[0] == "-V" {
        println!("mfhls {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    match parse_args(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Command, String> {
        let args: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        parse_args(&args)
    }

    #[test]
    fn parses_info() {
        assert_eq!(
            parse(&["info", "x.dfg", "--dot"]).unwrap(),
            Command::Info {
                file: "x.dfg".into(),
                dot: true
            }
        );
    }

    #[test]
    fn parses_schedule_with_all_flags() {
        let c = parse(&[
            "schedule",
            "x.dfg",
            "--cs",
            "5",
            "--resource",
            "--limit",
            "mul=2",
            "--limit",
            "+=1",
            "--chain",
            "100",
            "--latency",
            "2",
            "--two-cycle-mul",
        ])
        .unwrap();
        match c {
            Command::Schedule {
                cs,
                resource,
                limits,
                chain,
                latency,
                two_cycle_mul,
                ..
            } => {
                assert_eq!(cs, 5);
                assert!(resource);
                assert_eq!(limits, vec![(OpKind::Mul, 2), (OpKind::Add, 1)]);
                assert_eq!(chain, Some(100));
                assert_eq!(latency, Some(2));
                assert!(two_cycle_mul);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_synth_weights() {
        let c = parse(&[
            "synth",
            "x.dfg",
            "--cs",
            "4",
            "--weights",
            "0,1,2,3",
            "--check",
        ])
        .unwrap();
        match c {
            Command::Synth { weights, check, .. } => {
                assert_eq!(weights, Some([0, 1, 2, 3]));
                assert!(check);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn missing_cs_is_an_error() {
        assert!(parse(&["schedule", "x.dfg"]).unwrap_err().contains("--cs"));
        assert!(parse(&["synth", "x.dfg"]).unwrap_err().contains("--cs"));
    }

    #[test]
    fn parses_synth_shard() {
        // --shard N with an explicit algorithm and thread count; --cs
        // becomes optional.
        let c = parse(&[
            "synth",
            "gen:5000",
            "--shard",
            "4",
            "--shard-alg",
            "mfs",
            "--threads",
            "8",
        ])
        .unwrap();
        match c {
            Command::Synth {
                cs,
                shard,
                shard_alg,
                threads,
                ..
            } => {
                assert_eq!(cs, None);
                assert_eq!(shard, Some(4));
                assert_eq!(shard_alg, Algorithm::Mfs);
                assert_eq!(threads, 8);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // `auto` parses to 0; --cs is kept as the global ceiling.
        let c = parse(&["synth", "x.dfg", "--shard", "auto", "--cs", "40"]).unwrap();
        match c {
            Command::Synth {
                cs,
                shard,
                shard_alg,
                ..
            } => {
                assert_eq!(cs, Some(40));
                assert_eq!(shard, Some(0));
                assert_eq!(shard_alg, Algorithm::Mfsa);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Bad values and misuses are rejected with pointed errors.
        assert!(parse(&["synth", "x.dfg", "--shard", "0"])
            .unwrap_err()
            .contains("positive count or `auto`"));
        assert!(
            parse(&["synth", "x.dfg", "--cs", "4", "--shard-alg", "mfs"])
                .unwrap_err()
                .contains("requires --shard")
        );
        assert!(parse(&["synth", "x.dfg", "--cs", "4", "--threads", "2"])
            .unwrap_err()
            .contains("requires --shard"));
        assert!(parse(&["synth", "x.dfg", "--shard", "2", "--verilog"])
            .unwrap_err()
            .contains("drop --json"));
        assert!(parse(&["synth", "x.dfg", "--shard", "2", "--style2"])
            .unwrap_err()
            .contains("--style2"));
        assert!(
            parse(&["synth", "x.dfg", "--shard", "2", "--shard-alg", "list"])
                .unwrap_err()
                .contains("mfs|mfsa")
        );
    }

    #[test]
    fn parses_synth_iterate() {
        let c = parse(&["synth", "x.dfg", "--cs", "12", "--iterate", "3"]).unwrap();
        match c {
            Command::Synth { cs, iterate, .. } => {
                assert_eq!(cs, Some(12));
                assert_eq!(iterate, 3);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Composes with --shard; bad counts are pointed errors.
        let c = parse(&["synth", "gen:5000", "--shard", "2", "--iterate", "1"]).unwrap();
        match c {
            Command::Synth { iterate, shard, .. } => {
                assert_eq!(iterate, 1);
                assert_eq!(shard, Some(2));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&["synth", "x.dfg", "--cs", "4", "--iterate", "x"])
            .unwrap_err()
            .contains("--iterate"));
        // In explore, --iterate applies to --alg/--cs points only; grid
        // files carry their own per-point key.
        assert!(
            parse(&["explore", "x.dfg", "--grid", "g.toml", "--iterate", "2"])
                .unwrap_err()
                .contains("grid file")
        );
        // --iterate belongs to synth and explore, not schedule.
        assert!(parse(&["schedule", "x.dfg", "--cs", "4", "--iterate", "2"])
            .unwrap_err()
            .contains("unknown schedule flag"));
    }

    #[test]
    fn parses_synth_iterate_profile() {
        let c = parse(&[
            "synth",
            "x.dfg",
            "--cs",
            "12",
            "--iterate",
            "2",
            "--iterate-profile",
        ])
        .unwrap();
        match c {
            Command::Synth {
                iterate,
                iterate_profile,
                ..
            } => {
                assert_eq!(iterate, 2);
                assert!(iterate_profile);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Hints only steer the refinement loop, so the flag is
        // meaningless without --iterate.
        assert!(
            parse(&["synth", "x.dfg", "--cs", "12", "--iterate-profile"])
                .unwrap_err()
                .contains("requires --iterate")
        );
        // Sharded synthesis profiles per shard; not wired up.
        assert!(parse(&[
            "synth",
            "gen:5000",
            "--shard",
            "2",
            "--iterate",
            "1",
            "--iterate-profile"
        ])
        .unwrap_err()
        .contains("--shard"));
        // The JSON point report has no hint field yet.
        assert!(parse(&[
            "synth",
            "x.dfg",
            "--cs",
            "12",
            "--iterate",
            "1",
            "--iterate-profile",
            "--json"
        ])
        .unwrap_err()
        .contains("--json"));
        // And it stays a synth-only flag.
        assert!(
            parse(&["schedule", "x.dfg", "--cs", "4", "--iterate-profile"])
                .unwrap_err()
                .contains("unknown schedule flag")
        );
    }

    #[test]
    fn synth_iterate_end_to_end() {
        let dir = std::env::temp_dir().join("mfhls-iterate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.dfg");
        std::fs::write(
            &path,
            "input a, b\nop p = mul(a, b)\nop q = add(p, b)\nop r = add(a, b)\n",
        )
        .unwrap();
        // Monolithic MFSA with refinement at a padded budget.
        run(Command::Synth {
            file: path.to_string_lossy().to_string(),
            cs: Some(6),
            style2: false,
            weights: None,
            lib: None,
            two_cycle_mul: false,
            json: false,
            microcode: false,
            verilog: false,
            testbench: false,
            check: true,
            svg: None,
            vcd: None,
            shard: None,
            shard_alg: Algorithm::Mfsa,
            threads: 0,
            iterate: 3,
            iterate_profile: true,
            tel: Telemetry {
                quiet: true,
                ..Telemetry::default()
            },
        })
        .unwrap();
        // Sharded synthesis with post-stitch refinement.
        run(Command::Synth {
            file: "gen:800".to_string(),
            cs: None,
            style2: false,
            weights: None,
            lib: None,
            two_cycle_mul: false,
            json: false,
            microcode: false,
            verilog: false,
            testbench: false,
            check: false,
            svg: None,
            vcd: None,
            shard: Some(3),
            shard_alg: Algorithm::Mfs,
            threads: 2,
            iterate: 2,
            iterate_profile: false,
            tel: Telemetry {
                quiet: true,
                ..Telemetry::default()
            },
        })
        .unwrap();
    }

    #[test]
    fn synth_shard_end_to_end() {
        let base = Command::Synth {
            file: "gen:800".to_string(),
            cs: None,
            style2: false,
            weights: None,
            lib: None,
            two_cycle_mul: false,
            json: false,
            microcode: false,
            verilog: false,
            testbench: false,
            check: false,
            svg: None,
            vcd: None,
            shard: Some(3),
            shard_alg: Algorithm::Mfs,
            threads: 2,
            iterate: 0,
            iterate_profile: false,
            tel: Telemetry {
                quiet: true,
                ..Telemetry::default()
            },
        };
        run(base.clone()).unwrap();
        // An impossible ceiling is a pointed error, not a panic.
        let err = match base {
            Command::Synth {
                file,
                shard,
                shard_alg,
                threads,
                tel,
                ..
            } => run(Command::Synth {
                file,
                cs: Some(1),
                style2: false,
                weights: None,
                lib: None,
                two_cycle_mul: false,
                json: false,
                microcode: false,
                verilog: false,
                testbench: false,
                check: false,
                svg: None,
                vcd: None,
                shard,
                shard_alg,
                threads,
                iterate: 0,
                iterate_profile: false,
                tel,
            })
            .unwrap_err(),
            _ => unreachable!(),
        };
        assert!(err.contains("ceiling"), "{err}");
    }

    #[test]
    fn help_subcommand_parses_and_runs() {
        assert_eq!(parse(&["help"]).unwrap(), Command::Help { topic: None });
        assert_eq!(
            parse(&["help", "synth"]).unwrap(),
            Command::Help {
                topic: Some("synth".into())
            }
        );
        run(Command::Help { topic: None }).unwrap();
        for sub in SUBCOMMANDS {
            run(Command::Help {
                topic: Some(sub.to_string()),
            })
            .unwrap();
        }
        let err = run(Command::Help {
            topic: Some("bogus".into()),
        })
        .unwrap_err();
        assert!(err.contains("bogus") && err.contains("schedule"), "{err}");
    }

    #[test]
    fn every_subcommand_has_help_and_flag_coverage() {
        for sub in SUBCOMMANDS {
            let text = usage_for(sub).unwrap();
            // Every allowed flag appears in its subcommand's help text.
            for flag in allowed_flags(sub) {
                let named = flag.trim_start_matches('-');
                assert!(
                    text.contains(flag) || text.contains(named),
                    "help for `{sub}` is missing `{flag}`"
                );
            }
        }
        assert!(usage_for("bogus").is_none());
    }

    #[test]
    fn unknown_flags_are_scoped_to_the_subcommand() {
        // A flag valid elsewhere names its proper subcommand.
        let err = parse(&["schedule", "x.dfg", "--cs", "4", "--verilog"]).unwrap_err();
        assert!(err.contains("unknown schedule flag"), "{err}");
        assert!(err.contains("`synth`"), "{err}");
        assert!(err.contains("mfhls help schedule"), "{err}");
        // A flag valid nowhere gets no cross-reference.
        let err = parse(&["synth", "x.dfg", "--cs", "4", "--frobnicate"]).unwrap_err();
        assert!(err.contains("unknown synth flag"), "{err}");
        assert!(!err.contains("(a `"), "{err}");
        // info rejects scheduling flags.
        let err = parse(&["info", "x.dfg", "--cs", "4"]).unwrap_err();
        assert!(err.contains("unknown info flag"), "{err}");
        assert!(err.contains("`schedule`"), "{err}");
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(parse(&["schedule", "x.dfg", "--cs", "4", "--bogus"])
            .unwrap_err()
            .contains("--bogus"));
        assert!(parse(&["frobnicate", "x.dfg"])
            .unwrap_err()
            .contains("frobnicate"));
        assert!(parse(&["schedule", "x.dfg", "--cs", "four"])
            .unwrap_err()
            .contains("invalid"));
        assert!(parse(&["synth", "x.dfg", "--cs", "4", "--weights", "1,2"])
            .unwrap_err()
            .contains("four values"));
    }

    #[test]
    fn end_to_end_on_a_temp_file() {
        let dir = std::env::temp_dir().join("mfhls-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("toy.dfg");
        std::fs::write(&file, "input a, b\nop p = mul(a, b)\nop q = add(p, b)\n").unwrap();
        let path = file.to_string_lossy().to_string();
        run(Command::Info {
            file: path.clone(),
            dot: false,
        })
        .unwrap();
        run(Command::Schedule {
            file: path.clone(),
            cs: 2,
            resource: false,
            limits: vec![],
            chain: None,
            latency: None,
            two_cycle_mul: false,
            json: false,
            svg: Some(dir.join("toy.svg").to_string_lossy().to_string()),
            tel: Telemetry::default(),
        })
        .unwrap();
        assert!(dir.join("toy.svg").exists());
        run(Command::Synth {
            file: path.clone(),
            cs: Some(3),
            style2: true,
            weights: None,
            lib: None,
            two_cycle_mul: false,
            json: false,
            microcode: true,
            verilog: true,
            testbench: true,
            check: true,
            svg: None,
            vcd: Some(dir.join("toy.vcd").to_string_lossy().to_string()),
            shard: None,
            shard_alg: Algorithm::Mfsa,
            threads: 0,
            iterate: 0,
            iterate_profile: false,
            tel: Telemetry::default(),
        })
        .unwrap();
        assert!(dir.join("toy.vcd").exists());
        // With a custom library written next to the design.
        let lib_file = std::path::Path::new(&path).with_extension("lib");
        std::fs::write(&lib_file, Library::ncr_like().to_text()).unwrap();
        run(Command::Synth {
            file: path,
            cs: Some(3),
            style2: false,
            weights: None,
            lib: Some(lib_file.to_string_lossy().to_string()),
            two_cycle_mul: false,
            json: false,
            microcode: false,
            verilog: false,
            testbench: false,
            check: true,
            svg: None,
            vcd: None,
            shard: None,
            shard_alg: Algorithm::Mfsa,
            threads: 0,
            iterate: 0,
            iterate_profile: false,
            tel: Telemetry::default(),
        })
        .unwrap();
    }

    #[test]
    fn parses_explore() {
        let c = parse(&[
            "explore",
            "x.dfg",
            "--cs",
            "4,5,6",
            "--alg",
            "mfs,list",
            "--threads",
            "8",
            "--emit",
            "front.json",
        ])
        .unwrap();
        match c {
            Command::Explore {
                algs,
                cs_list,
                threads,
                emit,
                grid,
                ..
            } => {
                assert_eq!(algs, vec![Algorithm::Mfs, Algorithm::List]);
                assert_eq!(cs_list, vec![4, 5, 6]);
                assert_eq!(threads, 8);
                assert_eq!(emit.as_deref(), Some("front.json"));
                assert!(grid.is_none());
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&["explore", "x.dfg"]).unwrap_err().contains("--cs"));
        assert!(
            parse(&["explore", "x.dfg", "--grid", "g.toml", "--cs", "4"])
                .unwrap_err()
                .contains("not both")
        );
        assert!(parse(&["explore", "x.dfg", "--cs", "4", "--alg", "bogus"])
            .unwrap_err()
            .contains("bogus"));
        assert!(
            parse(&["schedule", "x.dfg", "--cs", "4,5"])
                .unwrap_err()
                .contains("single"),
            "schedule rejects cs lists"
        );
    }

    #[test]
    fn explore_end_to_end_with_a_grid_file() {
        let dir = std::env::temp_dir().join("mfhls-explore-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("toy.dfg");
        std::fs::write(&file, "input a, b\nop p = mul(a, b)\nop q = add(p, b)\n").unwrap();
        let grid = dir.join("toy.grid");
        std::fs::write(
            &grid,
            "[defaults]\nalgorithm = [\"mfs\", \"list\"]\ncs = [2, 3]\n",
        )
        .unwrap();
        let front = dir.join("front.json");
        run(Command::Explore {
            file: file.to_string_lossy().to_string(),
            grid: Some(grid.to_string_lossy().to_string()),
            algs: vec![],
            cs_list: vec![],
            limits: vec![],
            chain: None,
            latency: None,
            style2: false,
            weights: None,
            two_cycle_mul: false,
            threads: 2,
            emit: Some(front.to_string_lossy().to_string()),
            iterate: 0,
            tel: Telemetry {
                quiet: true,
                ..Telemetry::default()
            },
        })
        .unwrap();
        let json = std::fs::read_to_string(&front).unwrap();
        assert!(json.starts_with("{\"points\":4,"), "{json}");
        assert!(json.contains("\"front\":["));
    }

    #[test]
    fn parses_profile() {
        assert_eq!(
            parse(&["profile", "x.dfg"]).unwrap(),
            Command::Profile {
                file: "x.dfg".into(),
                cs: None,
                alg: Algorithm::Mfs,
                top: 20,
                json: false,
                two_cycle_mul: false,
                quiet: false,
            }
        );
        assert_eq!(
            parse(&[
                "profile", "gen:5000", "--cs", "40", "--alg", "mfsa", "--top", "5", "--json", "-q"
            ])
            .unwrap(),
            Command::Profile {
                file: "gen:5000".into(),
                cs: Some(40),
                alg: Algorithm::Mfsa,
                top: 5,
                json: true,
                two_cycle_mul: false,
                quiet: true,
            }
        );
        assert!(parse(&["profile", "x.dfg", "--alg", "fds"])
            .unwrap_err()
            .contains("mfs|mfsa"));
        assert!(parse(&["profile", "x.dfg", "--alg", "mfs,mfsa"])
            .unwrap_err()
            .contains("single --alg"));
        assert!(parse(&["profile", "x.dfg", "--cs", "4,5"])
            .unwrap_err()
            .contains("single --cs"));
        assert!(parse(&["profile", "x.dfg", "--top", "many"])
            .unwrap_err()
            .contains("invalid --top"));
        assert!(parse(&["profile", "x.dfg", "--verilog"])
            .unwrap_err()
            .contains("unknown profile flag"));
    }

    #[test]
    fn profile_end_to_end() {
        let dir = std::env::temp_dir().join("mfhls-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("toy.dfg");
        std::fs::write(&file, "input a, b\nop p = mul(a, b)\nop q = add(p, b)\n").unwrap();
        for alg in [Algorithm::Mfs, Algorithm::Mfsa] {
            run(Command::Profile {
                file: file.to_string_lossy().to_string(),
                cs: None,
                alg,
                top: 10,
                json: false,
                two_cycle_mul: false,
                quiet: true,
            })
            .unwrap();
        }
        // The generated-workload spelling works too, and bad operands
        // are rejected.
        run(Command::Profile {
            file: "gen:64".into(),
            cs: None,
            alg: Algorithm::Mfs,
            top: 3,
            json: true,
            two_cycle_mul: false,
            quiet: true,
        })
        .unwrap();
        assert!(load_design("gen:zero").unwrap_err().contains("positive"));
        assert!(load_design("gen:0").unwrap_err().contains("positive"));
    }

    #[test]
    fn parses_serve() {
        let c = parse(&[
            "serve",
            "--addr",
            "0.0.0.0:8080",
            "--workers",
            "3",
            "--queue-cap",
            "16",
            "--cache-cap",
            "100",
            "--cache-dir",
            "/tmp/mfhls-cache",
            "--deadline-ms",
            "250",
            "--keep-alive",
            "off",
            "--idle-timeout-ms",
            "900",
            "--read-timeout-ms",
            "700",
            "--pipeline-depth",
            "4",
            "--force-poll",
            "--access-log",
            "access.jsonl",
            "-q",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                config: ServeConfig {
                    addr: "0.0.0.0:8080".into(),
                    workers: 3,
                    queue_cap: 16,
                    cache_cap: 100,
                    cache_dir: Some("/tmp/mfhls-cache".into()),
                    default_deadline_ms: Some(250),
                    keep_alive: false,
                    idle_timeout_ms: 900,
                    read_timeout_ms: 700,
                    pipeline_depth: 4,
                    force_poll: true,
                    ..ServeConfig::default()
                },
                access_log: Some("access.jsonl".into()),
                quiet: true,
            }
        );
        // Bare `serve` is exactly the library defaults: the CLI adds
        // nothing of its own.
        match parse(&["serve"]).unwrap() {
            Command::Serve {
                config,
                access_log,
                quiet,
            } => {
                assert_eq!(config, ServeConfig::default());
                assert_eq!(access_log, None);
                assert!(!quiet);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&["serve", "--workers", "many"])
            .unwrap_err()
            .contains("invalid --workers"));
        assert!(parse(&["serve", "--keep-alive", "sometimes"])
            .unwrap_err()
            .contains("on|off"));
        assert!(parse(&["serve", "--pipeline-depth", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&["serve", "--cs", "4"])
            .unwrap_err()
            .contains("unknown serve flag"));
    }

    #[test]
    fn parses_json_flag() {
        match parse(&["schedule", "x.dfg", "--cs", "4", "--json"]).unwrap() {
            Command::Schedule { json, .. } => assert!(json),
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&["synth", "x.dfg", "--cs", "4", "--json"]).unwrap() {
            Command::Synth { json, .. } => assert!(json),
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn json_mode_rejects_conflicting_flags() {
        let dir = std::env::temp_dir().join("mfhls-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("toy.dfg");
        std::fs::write(&file, "input a, b\nop p = mul(a, b)\nop q = add(p, b)\n").unwrap();
        let path = file.to_string_lossy().to_string();
        let err = run(Command::Schedule {
            file: path.clone(),
            cs: 2,
            resource: true,
            limits: vec![],
            chain: None,
            latency: None,
            two_cycle_mul: false,
            json: true,
            svg: None,
            tel: Telemetry::default(),
        })
        .unwrap_err();
        assert!(err.contains("--resource"), "{err}");
        let err = run(Command::Synth {
            file: path.clone(),
            cs: Some(3),
            style2: false,
            weights: None,
            lib: None,
            two_cycle_mul: false,
            json: true,
            microcode: true,
            verilog: false,
            testbench: false,
            check: false,
            svg: None,
            vcd: None,
            shard: None,
            shard_alg: Algorithm::Mfsa,
            threads: 0,
            iterate: 0,
            iterate_profile: false,
            tel: Telemetry::default(),
        })
        .unwrap_err();
        assert!(err.contains("--microcode"), "{err}");
        // The happy path prints the stats JSON and succeeds.
        run(Command::Schedule {
            file: path.clone(),
            cs: 2,
            resource: false,
            limits: vec![],
            chain: None,
            latency: None,
            two_cycle_mul: false,
            json: true,
            svg: None,
            tel: Telemetry::default(),
        })
        .unwrap();
        run(Command::Synth {
            file: path,
            cs: Some(3),
            style2: false,
            weights: None,
            lib: None,
            two_cycle_mul: false,
            json: true,
            microcode: false,
            verilog: false,
            testbench: false,
            check: false,
            svg: None,
            vcd: None,
            shard: None,
            shard_alg: Algorithm::Mfsa,
            threads: 0,
            iterate: 0,
            iterate_profile: false,
            tel: Telemetry::default(),
        })
        .unwrap();
    }

    #[test]
    fn parses_telemetry_flags() {
        let c = parse(&[
            "synth",
            "x.dfg",
            "--cs",
            "4",
            "--trace",
            "out.jsonl",
            "--chrome-trace",
            "out.json",
            "--metrics",
            "-q",
        ])
        .unwrap();
        match c {
            Command::Synth { tel, .. } => {
                assert_eq!(tel.trace.as_deref(), Some("out.jsonl"));
                assert_eq!(tel.chrome.as_deref(), Some("out.json"));
                assert!(tel.metrics);
                assert!(tel.quiet);
                assert!(!tel.verbose);
                assert!(tel.wants_events());
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn telemetry_artifacts_are_written() {
        let dir = std::env::temp_dir().join("mfhls-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("toy.dfg");
        std::fs::write(&file, "input a, b\nop p = mul(a, b)\nop q = add(p, b)\n").unwrap();
        let trace = dir.join("toy.jsonl");
        let chrome = dir.join("toy.trace.json");
        run(Command::Schedule {
            file: file.to_string_lossy().to_string(),
            cs: 3,
            resource: false,
            limits: vec![],
            chain: None,
            latency: None,
            two_cycle_mul: false,
            json: false,
            svg: None,
            tel: Telemetry {
                trace: Some(trace.to_string_lossy().to_string()),
                chrome: Some(chrome.to_string_lossy().to_string()),
                metrics: true,
                verbose: false,
                quiet: true,
            },
        })
        .unwrap();
        let jsonl = std::fs::read_to_string(&trace).unwrap();
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            assert!(
                line.starts_with("{\"event\":\"") && line.ends_with('}'),
                "{line}"
            );
        }
        assert!(jsonl.contains("\"event\":\"move_committed\""));
        let chrome_json = std::fs::read_to_string(&chrome).unwrap();
        assert!(chrome_json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(chrome_json.contains("\"name\":\"mfs.move_loop\""));
    }
}
