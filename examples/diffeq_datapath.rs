//! Mixed scheduling-allocation on the HAL differential-equation
//! benchmark: MFSA builds the full RTL data path (multifunction ALUs,
//! registers, multiplexers) and prices it in µm².
//!
//! ```sh
//! cargo run --example diffeq_datapath
//! ```

use moveframe_hls::benchmarks::classic;
use moveframe_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfg = classic::diffeq();
    let spec = TimingSpec::uniform_single_cycle();
    let library = Library::ncr_like();

    println!("=== design style 1 (unrestricted RTL) ===");
    let config = MfsaConfig::new(6, library.clone()).with_trace();
    let style1 = mfsa::schedule(&dfg, &spec, &config)?;
    print!("{}", style1.datapath);
    println!("{}", style1.cost);

    // The Liapunov decisions behind the allocation:
    println!("\nper-operation Liapunov terms (time/alu/mux/reg):");
    for t in &style1.trace {
        println!(
            "  {:<4} -> {} on ALU{} (f = {} + {} + {} + {})",
            dfg.node(t.node).name(),
            t.step,
            t.instance,
            t.f_time,
            t.f_alu,
            t.f_mux,
            t.f_reg,
        );
    }

    println!("\n=== design style 2 (no ALU self-loop, self-testable) ===");
    let config = MfsaConfig::new(6, library.clone()).with_style(DesignStyle::NoSelfLoop);
    let style2 = mfsa::schedule(&dfg, &spec, &config)?;
    print!("{}", style2.datapath);
    println!("{}", style2.cost);
    let overhead = 100.0
        * (style2.cost.total().as_u64() as f64 - style1.cost.total().as_u64() as f64)
        / style1.cost.total().as_u64() as f64;
    println!("style-2 overhead: {overhead:+.1} %");

    // Both data paths verify structurally.
    for (label, out) in [("style 1", &style1), ("style 2", &style2)] {
        let v = verify_datapath(&dfg, &out.schedule, &out.datapath, &spec);
        assert!(v.is_empty(), "{label}: {v:?}");
    }
    println!("\nboth data paths verified");

    // Graphviz output for the style-1 data path:
    println!("\n--- DOT (style 1) ---\n{}", style1.datapath.to_dot(&dfg));
    Ok(())
}
