//! Mutually exclusive operations (paper §5.1): operations in different
//! arms of a conditional share functional units and control steps, and
//! duplicated computations are hoisted out of the conditional.
//!
//! ```sh
//! cargo run --example conditional_sharing
//! ```

use moveframe_hls::dfg::transform::prune_shared_branch_ops;
use moveframe_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // if (sel) { big = (a+b)*(a-b); out = big + a }
    // else     { alt = (a+b)*c;      out = alt - b }
    // Both arms compute a+b — a shared operation.
    let mut b = DfgBuilder::new("conditional");
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let branch = b.begin_branch();
    b.enter_arm(branch, 0);
    let t_sum = b.op("t_sum", OpKind::Add, &[a, bb])?;
    let t_diff = b.op("t_diff", OpKind::Sub, &[a, bb])?;
    let t_big = b.op("t_big", OpKind::Mul, &[t_sum, t_diff])?;
    let _t_out = b.op("t_out", OpKind::Add, &[t_big, a])?;
    b.exit_arm();
    b.enter_arm(branch, 1);
    let e_sum = b.op("e_sum", OpKind::Add, &[a, bb])?;
    let e_alt = b.op("e_alt", OpKind::Mul, &[e_sum, c])?;
    let _e_out = b.op("e_out", OpKind::Sub, &[e_alt, bb])?;
    b.exit_arm();
    let dfg = b.finish()?;
    let spec = TimingSpec::uniform_single_cycle();

    println!("before pruning: {} operations", dfg.node_count());
    let (pruned, report) = prune_shared_branch_ops(&dfg)?;
    println!(
        "after pruning:  {} operations ({} duplicate(s) removed: {:?})\n",
        pruned.node_count(),
        report.removed_count(),
        report.merged,
    );

    // Schedule the pruned graph: exclusive ops share units.
    let outcome = mfs::schedule(&pruned, &spec, &MfsConfig::time_constrained(3))?;
    print!("{}", render_schedule(&pruned, &outcome.schedule, &spec));
    let mix: OpMix = outcome
        .fu_counts()
        .into_iter()
        .map(|(cl, n)| (cl, n as usize))
        .collect();
    println!("\nfunctional units: {{{mix}}}");
    println!("note: one multiplier serves both arms — t_big and e_alt are");
    println!("mutually exclusive and may occupy the same unit in the same step.");

    let v = verify(&pruned, &outcome.schedule, &spec, VerifyOptions::default());
    assert!(v.is_empty());
    println!("\nverified: no violations");
    Ok(())
}
