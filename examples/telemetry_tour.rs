//! A tour of the observability layer: run instrumented MFS and MFSA on
//! the paper's Figure-1 example, watch the Liapunov energy descend,
//! and export every artifact the CLI offers (`--trace`, `--metrics`,
//! `--chrome-trace`) from library code.
//!
//! ```sh
//! cargo run --example telemetry_tour
//! ```

use std::fs;

use moveframe_hls::benchmarks::classic;
use moveframe_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfg = classic::diffeq();
    let spec = TimingSpec::uniform_single_cycle();

    // 1. Record everything: a MemorySink keeps the typed events, the
    //    Metrics registry aggregates counters and histograms.
    let mut sink = MemorySink::new();
    let mut metrics = Metrics::new();
    let outcome = mfs::schedule_traced(
        &dfg,
        &spec,
        &MfsConfig::time_constrained(6),
        &mut Instrument::new(&mut sink, &mut metrics),
    )?;
    println!(
        "MFS scheduled {} ops into {} steps ({} events recorded)",
        dfg.node_ids().count(),
        outcome.schedule.control_steps(),
        sink.events().len()
    );

    // 2. The paper's claim, measured: each committed move lowers the
    //    system Liapunov energy (monotone within a scheduling pass).
    println!("committed-energy trajectory: {:?}", sink.system_energies());

    // 3. Counters tell you how much work the scheduler did.
    for name in [
        "mfs.frames_computed",
        "mfs.energy_evaluations",
        "mfs.moves_committed",
        "mfs.local_reschedules",
    ] {
        println!("  {name} = {}", metrics.counter(name));
    }

    // 4. Export: one JSON object per event (the CLI's `--trace`), and a
    //    Chrome trace_event file for chrome://tracing or Perfetto.
    let jsonl: String = sink.events().iter().map(|e| e.to_json() + "\n").collect();
    fs::write("telemetry_tour.jsonl", jsonl)?;
    fs::write(
        "telemetry_tour.chrome.json",
        chrome_trace(sink.events().iter()),
    )?;
    println!("wrote telemetry_tour.jsonl + telemetry_tour.chrome.json");

    // 5. MFSA shares the same instrumentation surface; merge its
    //    metrics into the same registry for a combined report.
    let mut null = NullSink; // counters only, zero event overhead
    mfsa::schedule_traced(
        &dfg,
        &spec,
        &MfsaConfig::new(4, Library::ncr_like()),
        &mut Instrument::new(&mut null, &mut metrics),
    )?;
    println!("\ncombined report:\n{}", metrics.render_text());
    Ok(())
}
