//! Bring your own cell library: MFSA allocates against "the cell
//! library given by the user" (paper §6) — build one programmatically,
//! load one from text, or restrict the built-in library, and watch the
//! allocation change.
//!
//! ```sh
//! cargo run --example custom_library
//! ```

use moveframe_hls::benchmarks::classic;
use moveframe_hls::celllib::parse_library;
use moveframe_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfg = classic::diffeq();
    let spec = TimingSpec::uniform_single_cycle();

    // 1. The built-in NCR-like library.
    let ncr = Library::ncr_like();
    let base = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(6, ncr.clone()))?;
    println!(
        "ncr-like     : {:<32} {}",
        base.datapath.alu_signature(),
        base.cost
    );

    // 2. Restricted: single-function ALUs only — no merging possible.
    let singles = ncr.restricted(|alu| alu.function_count() == 1);
    let single_out = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(6, singles))?;
    println!(
        "singles-only : {:<32} {}",
        single_out.datapath.alu_signature(),
        single_out.cost
    );

    // 3. A custom library from text: cheap multipliers (say, a
    //    multiplier-rich FPGA-like fabric).
    let fpga_like = parse_library(
        "library fpga-like
         fu + 900
         fu - 900
         fu * 2100     # hard DSP blocks make multiplies cheap
         fu < 700
         alu add (+) 900
         alu sub (-) 900
         alu mul (*) 2100
         alu cmp (<) 700
         alu dsp (+,-,*) auto
         mux 0 0 260 360 450 : 90
         reg 450",
    )?;
    let fpga_out = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(6, fpga_like.clone()))?;
    println!(
        "fpga-like    : {:<32} {}",
        fpga_out.datapath.alu_signature(),
        fpga_out.cost
    );

    // With cheap multipliers the design is an order of magnitude
    // smaller, and merging into the (+-*) "dsp" cell dominates.
    assert!(fpga_out.cost.total() < base.cost.total());

    // 4. Libraries round-trip through their text form.
    let text = fpga_like.to_text();
    let reparsed = parse_library(&text)?;
    assert_eq!(reparsed.alus().len(), fpga_like.alus().len());
    println!("\nfpga-like library in its text form:\n{text}");
    Ok(())
}
