//! Design-space exploration of the elliptic-wave-filter benchmark: the
//! paper's example 6 sweep (T = 17/19/21 with a 2-cycle multiplier),
//! extended with MFSA cost points and a comparison against the
//! force-directed baseline.
//!
//! ```sh
//! cargo run --example ewf_design_space
//! ```

use std::collections::BTreeSet;

use moveframe_hls::baselines::force_directed_schedule;
use moveframe_hls::benchmarks::classic;
use moveframe_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfg = classic::ewf();
    let spec = TimingSpec::two_cycle_multiply();
    let pipelined: BTreeSet<OpKind> = [OpKind::Mul].into_iter().collect();
    let cp = CriticalPath::compute(&dfg, &spec);
    println!(
        "EWF: {} ops, critical path {} steps (2-cycle multiplier)\n",
        dfg.node_count(),
        cp.steps()
    );

    println!(
        "{:<5} {:<22} {:<22} {:>12}",
        "T", "MFS (pipelined mult)", "FDS baseline", "MFSA cost"
    );
    for t in [17u32, 18, 19, 21, 23] {
        // MFS with a structurally pipelined multiplier (the paper's "S").
        let config = MfsConfig::time_constrained(t);
        let (_, _, mfs_out) = schedule_structural(&dfg, &spec, &config, &pipelined)?;
        let mfs_mix: OpMix = pipelined_fu_counts(&mfs_out)
            .into_iter()
            .map(|(c, n)| (c, n as usize))
            .collect();

        // Force-directed baseline (plain 2-cycle multiplier).
        let fds = force_directed_schedule(&dfg, &spec, t)?;
        let fds_mix: OpMix = fds
            .fu_counts()
            .into_iter()
            .map(|(c, n)| (c, n as usize))
            .collect();

        // MFSA cost point.
        let mfsa_out = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(t, Library::ncr_like()))?;

        println!(
            "{:<5} {:<22} {:<22} {:>9} um2",
            t,
            format!("{{{mfs_mix}}}"),
            format!("{{{fds_mix}}}"),
            mfsa_out.cost.total().as_u64(),
        );
    }

    println!("\nlower T = more parallel hardware; the knee of the curve is the");
    println!("cost/performance trade-off the paper's Tables 1-2 tabulate.");
    Ok(())
}
