//! Quickstart: describe a behaviour, schedule it with MFS, inspect the
//! result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use moveframe_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A behaviour in the textual DFG format: three taps of a tiny
    // filter followed by a threshold test.
    let dfg = parse_dfg(
        "dfg quickstart
         input x0, x1, x2, c0, c1, c2, threshold
         op p0 = mul(x0, c0)
         op p1 = mul(x1, c1)
         op p2 = mul(x2, c2)
         op s0 = add(p0, p1)
         op s1 = add(s0, p2)
         op hit = gt(s1, threshold)",
    )?;

    println!(
        "behaviour `{}`: {} operations",
        dfg.name(),
        dfg.node_count()
    );
    let spec = TimingSpec::uniform_single_cycle();
    let cp = CriticalPath::compute(&dfg, &spec);
    println!("critical path: {} control steps\n", cp.steps());

    // Schedule under a 4-step time constraint.
    let outcome = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(4))?;
    print!("{}", render_schedule(&dfg, &outcome.schedule, &spec));

    // The schedule is independently verifiable.
    let violations = verify(&dfg, &outcome.schedule, &spec, VerifyOptions::default());
    assert!(violations.is_empty());
    println!("\nverified: no violations");

    // Tighter time costs more hardware; looser time costs less.
    for t in [3, 4, 6] {
        let out = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(t))?;
        let mix: OpMix = out
            .fu_counts()
            .into_iter()
            .map(|(c, n)| (c, n as usize))
            .collect();
        println!("T = {t}: functional units {{{mix}}}");
    }
    Ok(())
}
