//! Functional pipelining (loop folding): schedule a filter body so that
//! successive loop initiations overlap every `L` steps — the paper's
//! §5.5.2 two-instance construction.
//!
//! ```sh
//! cargo run --example pipelined_filter
//! ```

use moveframe_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The loop body: a biquad-like section.
    let mut b = DfgBuilder::new("biquad");
    let x = b.input("x");
    let w1 = b.input("w1");
    let w2 = b.input("w2");
    let (a1, a2, b1, b2) = (b.input("a1"), b.input("a2"), b.input("b1"), b.input("b2"));
    let m1 = b.op("m1", OpKind::Mul, &[w1, a1])?;
    let m2 = b.op("m2", OpKind::Mul, &[w2, a2])?;
    let s1 = b.op("s1", OpKind::Add, &[m1, m2])?;
    let w0 = b.op("w0", OpKind::Add, &[x, s1])?;
    let m3 = b.op("m3", OpKind::Mul, &[w1, b1])?;
    let m4 = b.op("m4", OpKind::Mul, &[w2, b2])?;
    let s2 = b.op("s2", OpKind::Add, &[m3, m4])?;
    let _y = b.op("y", OpKind::Add, &[w0, s2])?;
    let body = b.finish()?;
    let spec = TimingSpec::uniform_single_cycle();
    let cs = 4;

    println!(
        "loop body: {} ops, scheduled in {cs} steps\n",
        body.node_count()
    );
    let note = "(throughput = 1 result / L steps)";
    println!("{:<9} {:<20} {note}", "latency", "units");
    for latency in [4u32, 2, 1] {
        let out = schedule_two_instance(&body, &spec, cs, latency)?;
        let mix: OpMix = out
            .fu_counts()
            .into_iter()
            .map(|(c, n)| (c, n as usize))
            .collect();
        println!("L = {latency:<6}{{{mix}}}");
        // The doubled schedule materialises two overlapping initiations
        // and passes verification with explicit instances:
        let v = verify(
            &out.doubled,
            &out.doubled_schedule,
            &spec,
            VerifyOptions::default(),
        );
        assert!(v.is_empty());
    }

    println!("\nL = 1 runs a new initiation every step: every operation needs");
    println!("its own unit. L = cs is ordinary (non-overlapped) scheduling.");

    // Show the overlapped schedule at L = 2.
    let out = schedule_two_instance(&body, &spec, cs, 2)?;
    println!(
        "\noverlapped double schedule at L = 2 (partition boundary d = {}):",
        out.partition_boundary
    );
    print!(
        "{}",
        render_schedule(&out.doubled, &out.doubled_schedule, &spec)
    );
    Ok(())
}
