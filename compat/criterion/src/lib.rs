//! A tiny, offline stand-in for the subset of the
//! [`criterion`](https://docs.rs/criterion/0.5) API this workspace's
//! benches use: [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`Throughput`], [`black_box`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The build container has no crates.io access, so the real crate cannot
//! be fetched. This shim actually *runs* the benchmarks: each target is
//! warmed up once, then timed for `sample_size` samples, and the
//! min/median/max wall-clock times are printed — enough to compare
//! schedulers and spot regressions, without criterion's statistics,
//! HTML reports or baselines.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation (recorded, reported as elements/sec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let sample_size = self.sample_size;
        run_one("", &id.into(), sample_size, None, f);
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benches with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_one(&self.name, &id.into(), self.sample_size, self.throughput, f);
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        run_one(
            &self.name,
            &id.into(),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
    }

    /// Ends the group (a no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if bencher.samples.is_empty() {
        println!("{full:<48} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = bencher.samples[bencher.samples.len() - 1];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            format!("  {:.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            format!("  {:.0} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{full:<48} median {median:>12?}  [min {min:?}, max {max:?}]{rate}");
}

/// Declares a group of benchmark targets, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::core::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn group_runs_targets() {
        benches();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("mfs", "ewf").to_string(), "mfs/ewf");
        assert_eq!(BenchmarkId::from_parameter(128).to_string(), "128");
    }
}
