//! A tiny, offline stand-in for the subset of the
//! [`proptest`](https://docs.rs/proptest/1) API this workspace uses:
//! range and tuple strategies, [`Strategy::prop_map`], the [`proptest!`]
//! macro with an optional `#![proptest_config(...)]` attribute, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! The build container has no crates.io access, so the real crate cannot
//! be fetched. Differences from real proptest, by design:
//!
//! * cases are generated from a fixed per-test seed (the hash of the
//!   test name), so runs are fully deterministic;
//! * there is **no shrinking** — a failing case is reported verbatim;
//! * `proptest-regressions` files are ignored.
//!
//! Every property in this workspace only relies on "N generated cases
//! all pass", which this shim preserves.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

pub mod strategy {
    //! Strategy trait and combinators (subset).

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree: sampling draws a
    /// single value and failures are not shrunk.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The output of [`Strategy::prop_map`].
    #[derive(Debug, Clone, Copy)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Collection strategies (subset: `vec` with a `Range<usize>` size).

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// The output of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration and failure reporting (subset).

    /// Why a test case failed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// A `prop_assert!` fired.
        Fail(String),
        /// The case was rejected (unused by this workspace, kept for
        /// API familiarity).
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
            }
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        /// 64 cases, overridable through the `PROPTEST_CASES`
        /// environment variable exactly like real proptest — CI jobs
        /// use it to pin the differential suites' case budget.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&c| c > 0)
                .unwrap_or(64);
            Config { cases }
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    /// Real proptest re-exports the config under this name.
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Deterministic per-test RNG: seeded from the test's name so adding or
/// reordering sibling tests never changes a property's cases.
pub fn deterministic_rng(test_name: &str) -> StdRng {
    use rand::SeedableRng;
    // FNV-1a over the name; stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs its body once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::deterministic_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let case_desc = || {
                        let mut s = ::std::string::String::new();
                        $(s.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));)+
                        s
                    };
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}:\n{}\ninputs:\n{}",
                            stringify!($name), case + 1, config.cases, e, case_desc()
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tuple_strategy() -> impl Strategy<Value = (u64, usize)> {
        (1u64..10, 0usize..3)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 5u32..9, y in 0i64..=0) {
            prop_assert!((5..9).contains(&x));
            prop_assert_eq!(y, 0);
        }

        #[test]
        fn mapped_tuples_work(pair in tuple_strategy().prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(pair.0 >= 2 && pair.0 < 20);
            prop_assert!(pair.1 < 3);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(s in 1u8..3) {
            prop_assert!(s == 1 || s == 2);
        }
    }

    #[test]
    fn failures_name_the_case() {
        let rng = &mut crate::deterministic_rng("x");
        let v = Strategy::sample(&(0u8..1), rng);
        assert_eq!(v, 0);
    }
}
