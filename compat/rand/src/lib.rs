//! A tiny, dependency-free, offline stand-in for the subset of the
//! [`rand`](https://docs.rs/rand/0.8) 0.8 API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer ranges and [`Rng::gen`] for `f64`/`bool`/integers.
//!
//! The container this workspace builds in has no crates.io access, so
//! the real crate cannot be fetched; this shim keeps every consumer
//! (annealing baseline, workload generator, simulator input vectors)
//! deterministic and compiling. The generator is xoshiro256** seeded via
//! SplitMix64 — statistically strong for test workloads, but **not**
//! the same stream as the real `StdRng` (ChaCha12): code must not rely
//! on exact values, only on determinism, which is all the workspace
//! tests assert.

#![forbid(unsafe_code)]

/// Low-level entropy source, mirroring `rand_core::RngCore` minus the
/// fill APIs the workspace never touches.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (fixed bytes in the real crate).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` (the only constructor the
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut sm = SplitMix64 { state };
        for chunk in bytes.chunks_mut(8) {
            let v = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seeds the main generator and breaks up low-entropy seeds.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A sample from the full "standard" distribution of `T`: uniform
    /// `[0, 1)` for floats, uniform over all values for integers and
    /// `bool`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

/// Types with a "standard" distribution (`Rng::gen`).
pub trait Standard {
    /// Draws one sample.
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self;
}

impl Standard for f64 {
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Lemire-style unbiased bounded sample in `[0, span)`; `span > 0`.
fn bounded(rng: &mut impl RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Rejection sampling over the widest integer keeps every integer
    // type unbiased with one code path (performance is irrelevant here).
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide <= zone {
            return wide % span;
        }
    }
}

/// Types with a uniform sampler, mirroring
/// `rand::distributions::uniform::SampleUniform`. A single blanket
/// [`SampleRange`] impl hangs off this trait so integer-literal
/// inference behaves exactly like the real crate's.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample in `[lo, hi]`.
    fn sample_inclusive<G: RngCore>(lo: Self, hi: Self, rng: &mut G) -> Self;

    /// The value directly below `x` (to express `lo..hi` via
    /// `lo..=hi-1`).
    fn pred(x: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(self.start, T::pred(self.end), rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, rng)
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<G: RngCore>(lo: Self, hi: Self, rng: &mut G) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                (lo as $wide).wrapping_add(bounded(rng, span) as $wide) as $t
            }

            fn pred(x: Self) -> Self {
                x - 1
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// The named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Deterministic per seed; *not* stream-compatible with the real
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-1000..=1000);
            assert!((-1000..=1000).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let z: u32 = rng.gen_range(5..6);
            assert_eq!(z, 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
