//! # hls-iterate — feedback-guided iterative scheduling
//!
//! The paper's MFS/MFSA are one-shot global schedulers: they commit a
//! schedule in a single pass and never look back. This crate closes the
//! loop, following the extract/re-solve discipline of subgraph-based
//! iterative scheduling (ISDC): after a full schedule exists,
//!
//! 1. **Extract** ([`extract_region`]) — identify the bottleneck
//!    subgraph: the critical-path cone (tight-edge closure of the
//!    horizon finishers), accesses on port-saturated memory banks, and
//!    any caller-supplied hotspot hints. Everything outside the region
//!    is frozen.
//! 2. **Re-schedule** (`splice`) — vacate the region from the dense
//!    scheduler state and re-place it under the *achieved* horizon
//!    using the [`moveframe::BoundsCache`] vacate→probe machinery (the
//!    same path hls-partition's stitcher uses). A compression splice
//!    takes the earliest improving positions; a register re-timing
//!    splice drifts producers toward their consumers.
//! 3. **Accept or roll back** — a splice is committed only if the full
//!    schedule verifier and [`hls_mem::check_port_safety`] pass **and**
//!    the `(csteps, registers)` objective strictly improves
//!    lexicographically. Otherwise the candidate is discarded.
//! 4. **Converge** ([`refine`]) — repeat for a fixed iteration ladder,
//!    stopping early the first time an iteration commits nothing.
//!
//! Every step is a pure function of the DFG, spec and baseline
//! schedule: ordered containers throughout, no randomness, no
//! wall-clock dependence — `--iterate N` output is bit-identical for
//! any worker-thread count, and `N = 0` returns the baseline untouched.
//!
//! ```
//! use hls_benchmarks::classic::diffeq;
//! use hls_celllib::TimingSpec;
//! use hls_iterate::{refine, IterateConfig};
//! use hls_telemetry::{Instrument, Metrics, NullSink};
//! use moveframe::mfs::{self, MfsConfig};
//!
//! let dfg = diffeq();
//! let spec = TimingSpec::uniform_single_cycle();
//! let base = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(8)).unwrap();
//! let mut sink = NullSink;
//! let mut metrics = Metrics::new();
//! let mut instr = Instrument::new(&mut sink, &mut metrics);
//! let out = refine(&dfg, &spec, &base.schedule, &IterateConfig::new(3), &mut instr).unwrap();
//! assert!(out.csteps_after <= out.csteps_before);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod extract;
mod splice;

use hls_celllib::{ClockPeriod, Library, TimingSpec};
use hls_dfg::{Dfg, NodeId};
use hls_rtl::{CostReport, Datapath};
use hls_schedule::{verify_traced, Schedule, ScheduleStats, UnitId, VerifyOptions};
use hls_telemetry::Instrument;
use moveframe::mfsa::MfsaOutcome;

pub use extract::{extract_region, Region};
use splice::Direction;

/// Errors of the refine loop.
#[derive(Debug)]
pub enum IterateError {
    /// The baseline uses a feature the splice kernels cannot preserve
    /// (functional pipelining, incomplete schedules).
    Unsupported(String),
    /// An internal invariant violation; always a bug.
    Internal(String),
}

impl std::fmt::Display for IterateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IterateError::Unsupported(why) => write!(f, "iterate unsupported: {why}"),
            IterateError::Internal(why) => write!(f, "internal iterate error: {why}"),
        }
    }
}

impl std::error::Error for IterateError {}

/// Configuration of one [`refine`] run.
#[derive(Debug, Clone, Default)]
pub struct IterateConfig {
    /// Iteration ladder length (`0` = return the baseline untouched).
    pub iterations: u32,
    /// Chaining clock the baseline was scheduled under, if any.
    pub clock: Option<ClockPeriod>,
    /// Functional-pipelining latency — unsupported; `Some` is rejected
    /// with [`IterateError::Unsupported`].
    pub latency: Option<u32>,
    /// Region size cap for the bottleneck extraction.
    pub max_region: usize,
    /// Sweep cap inside each splice.
    pub max_sweeps: usize,
    /// Extra extraction seeds (e.g. LocalReschedule hotspots harvested
    /// from telemetry or profiler ledgers).
    pub hint_nodes: Vec<NodeId>,
}

impl IterateConfig {
    /// A config running `iterations` rounds at the default region cap
    /// (256) and sweep cap (4).
    pub fn new(iterations: u32) -> IterateConfig {
        IterateConfig {
            iterations,
            clock: None,
            latency: None,
            max_region: 256,
            max_sweeps: 4,
            hint_nodes: Vec::new(),
        }
    }

    /// Sets the chaining clock.
    pub fn with_clock(mut self, clock: ClockPeriod) -> IterateConfig {
        self.clock = Some(clock);
        self
    }

    /// Adds extraction hint nodes.
    pub fn with_hints(mut self, hints: Vec<NodeId>) -> IterateConfig {
        self.hint_nodes = hints;
        self
    }
}

/// The result of a [`refine`] run.
#[derive(Debug, Clone)]
pub struct IterateOutcome {
    /// The refined (or untouched) schedule; always verified.
    pub schedule: Schedule,
    /// Achieved control steps before refinement.
    pub csteps_before: u32,
    /// Achieved control steps after refinement.
    pub csteps_after: u32,
    /// Peak simultaneously-live values before refinement.
    pub registers_before: usize,
    /// Peak simultaneously-live values after refinement.
    pub registers_after: usize,
    /// Iterations actually run (≤ the configured ladder).
    pub iterations_run: u32,
    /// Splices committed (verifier + port safety + strict improvement).
    pub splices_accepted: u32,
    /// Splices discarded (no improvement or a failed check).
    pub splices_rejected: u32,
    /// Node moves committed inside candidate splices (including moves
    /// of splices that were later rolled back).
    pub moves: u64,
}

impl IterateOutcome {
    /// Whether any splice was committed.
    pub fn improved(&self) -> bool {
        self.splices_accepted > 0
    }
}

/// The `(csteps, registers)` objective, compared lexicographically.
fn objective(
    dfg: &Dfg,
    spec: &TimingSpec,
    clock: Option<ClockPeriod>,
    schedule: &Schedule,
) -> (u32, usize) {
    let csteps = splice::achieved_horizon(dfg, spec, clock, schedule);
    let registers = ScheduleStats::compute(dfg, schedule, spec).registers;
    (csteps, registers)
}

/// Whether a candidate splice passes the full verifier and the memory
/// port-safety check.
fn splice_is_sound(
    dfg: &Dfg,
    spec: &TimingSpec,
    clock: Option<ClockPeriod>,
    candidate: &Schedule,
    instr: &mut Instrument<'_>,
) -> bool {
    let options = VerifyOptions {
        latency: None,
        clock,
    };
    let violations = verify_traced(dfg, candidate, spec, options, instr);
    if !violations.is_empty() {
        return false;
    }
    matches!(hls_mem::check_port_safety(dfg, candidate), Ok(v) if v.is_empty())
}

/// Runs the extract → re-schedule → accept loop on `baseline`.
///
/// The baseline must be complete; FU-bound schedules (MFS, the
/// baselines) get the move-frame splice, ALU-bound schedules (MFSA) the
/// allocation-preserving slide splice. Deterministic: the result is a
/// pure function of `(dfg, spec, baseline, config)`.
pub fn refine(
    dfg: &Dfg,
    spec: &TimingSpec,
    baseline: &Schedule,
    config: &IterateConfig,
    instr: &mut Instrument<'_>,
) -> Result<IterateOutcome, IterateError> {
    if config.latency.is_some() {
        return Err(IterateError::Unsupported(
            "functional pipelining (latency) — the splice kernels cannot preserve the \
             initiation-interval wrap"
                .into(),
        ));
    }
    if !baseline.is_complete() {
        return Err(IterateError::Unsupported(
            "incomplete baseline schedule".into(),
        ));
    }
    let alu_bound = baseline
        .iter()
        .any(|(_, s)| matches!(s.unit, UnitId::Alu { .. }));

    let mut current = baseline.clone();
    let (csteps_before, registers_before) = objective(dfg, spec, config.clock, &current);
    let mut best = (csteps_before, registers_before);
    let mut iterations_run = 0u32;
    let mut splices_accepted = 0u32;
    let mut splices_rejected = 0u32;
    let mut moves = 0u64;

    for _ in 0..config.iterations {
        let region = instr.span("iterate.extract", |_| {
            extract_region(
                dfg,
                spec,
                config.clock,
                &current,
                &config.hint_nodes,
                config.max_region,
            )
        });
        if region.nodes.is_empty() {
            break;
        }
        instr.inc("iterate.region_nodes", region.nodes.len() as u64);
        instr.inc("iterate.region_critical", region.critical as u64);
        instr.inc("iterate.region_port_hot", region.port_hot as u64);
        iterations_run += 1;
        let mut improved = false;

        for (direction, span_name) in [
            (Direction::Earlier, "iterate.splice.compress"),
            (Direction::Later, "iterate.splice.retime"),
        ] {
            let mut candidate = current.clone();
            let splice_moves = instr.span(span_name, |_| {
                if alu_bound {
                    Ok(splice::sweep_alu(
                        dfg,
                        spec,
                        config.clock,
                        &mut candidate,
                        &region.nodes,
                        direction,
                        config.max_sweeps,
                    ))
                } else {
                    splice::sweep_fu(
                        dfg,
                        spec,
                        config.clock,
                        &mut candidate,
                        &region.nodes,
                        direction,
                        config.max_sweeps,
                    )
                }
            })?;
            if splice_moves == 0 {
                continue;
            }
            moves += splice_moves;
            instr.inc("iterate.moves", splice_moves);
            let sound = instr.span("iterate.accept", |i| {
                splice_is_sound(dfg, spec, config.clock, &candidate, i)
            });
            let cand_obj = objective(dfg, spec, config.clock, &candidate);
            if sound && cand_obj < best {
                current = candidate;
                best = cand_obj;
                splices_accepted += 1;
                instr.inc("iterate.splices.accepted", 1);
                improved = true;
            } else {
                splices_rejected += 1;
                instr.inc("iterate.splices.rejected", 1);
            }
        }
        instr.inc("iterate.iterations", 1);
        if !improved {
            break;
        }
    }

    let (csteps_after, registers_after) = best;
    instr.inc(
        "iterate.csteps_saved",
        u64::from(csteps_before - csteps_after),
    );
    instr.inc(
        "iterate.registers_saved",
        registers_before.saturating_sub(registers_after) as u64,
    );
    Ok(IterateOutcome {
        schedule: current,
        csteps_before,
        csteps_after,
        registers_before,
        registers_after,
        iterations_run,
        splices_accepted,
        splices_rejected,
        moves,
    })
}

/// Refines an MFSA outcome in place: runs [`refine`] on its schedule
/// and, if any splice landed, rebuilds the data path and Table-2 cost
/// report from the refined schedule. The allocation is untouched — the
/// slide splice preserves every instance and port binding.
pub fn refine_mfsa(
    dfg: &Dfg,
    spec: &TimingSpec,
    library: &Library,
    outcome: &mut MfsaOutcome,
    config: &IterateConfig,
    instr: &mut Instrument<'_>,
) -> Result<IterateOutcome, IterateError> {
    let result = refine(dfg, spec, &outcome.schedule, config, instr)?;
    if result.improved() {
        outcome.schedule = result.schedule.clone();
        outcome.datapath = Datapath::build(dfg, &outcome.schedule, &outcome.allocation, spec)
            .map_err(|e| IterateError::Internal(format!("datapath rebuild: {e}")))?;
        outcome.cost = CostReport::compute(&outcome.datapath, library);
    }
    Ok(result)
}
