//! Bottleneck extraction: carve the subgraph worth re-scheduling.
//!
//! Three evidence sources feed the region, mirroring the feedback
//! signals the telemetry substrate already collects:
//!
//! 1. **Critical cone** — every operation finishing at the achieved
//!    horizon, closed backwards over *tight* dependency edges (zero
//!    slack between producer finish and consumer start). These are the
//!    operations whose placement pins the schedule length.
//! 2. **Port-saturated banks** — memory accesses on banks whose peak
//!    per-step demand meets the declared port count (the steps PR 4's
//!    access-conflict frames carve out). Compressing around them frees
//!    AF steps for the rest of the graph.
//! 3. **Caller hints** — e.g. LocalReschedule hotspots harvested from
//!    an MFS run's frame snapshots or profiler ledgers.
//!
//! The region is capped at [`crate::IterateConfig::max_region`] nodes
//! with a deterministic breadth-first expansion (seeds and frontier
//! both visited in node-index order), and returned in topological
//! order — the sweep order of both splice kernels. Boundary nodes
//! (everything outside the region) stay frozen: the splice kernels
//! never vacate them, they only constrain the re-placement through the
//! [`moveframe::BoundsCache`] bounds.

use std::collections::VecDeque;

use hls_celllib::{ClockPeriod, TimingSpec};
use hls_dfg::{Dfg, FuClass, NodeId};
use hls_schedule::Schedule;

use crate::splice::effective_cycles;

/// The extracted bottleneck region.
#[derive(Debug, Clone)]
pub struct Region {
    /// Region nodes in topological order (the splice sweep order).
    pub nodes: Vec<NodeId>,
    /// How many nodes the critical-cone closure contributed.
    pub critical: usize,
    /// How many nodes the port-saturation source contributed.
    pub port_hot: usize,
    /// How many caller hint nodes were admitted.
    pub hinted: usize,
}

/// Per-node start/finish steps of a complete schedule, plus the
/// achieved horizon. Clock-multicycled operations span their effective
/// `⌈delay/T⌉` steps.
pub(crate) fn spans(
    dfg: &Dfg,
    spec: &TimingSpec,
    clock: Option<ClockPeriod>,
    schedule: &Schedule,
) -> (Vec<u32>, Vec<u32>, u32) {
    let n = dfg.node_count();
    let mut start = vec![0u32; n];
    let mut finish = vec![0u32; n];
    let mut horizon = 0u32;
    for (node, slot) in schedule.iter() {
        let cycles = effective_cycles(dfg, spec, clock, node);
        start[node.index()] = slot.step.get();
        finish[node.index()] = slot.step.finish(cycles).get();
        horizon = horizon.max(finish[node.index()]);
    }
    (start, finish, horizon)
}

/// Carves the bottleneck region of `schedule`. See the module docs.
pub fn extract_region(
    dfg: &Dfg,
    spec: &TimingSpec,
    clock: Option<ClockPeriod>,
    schedule: &Schedule,
    hints: &[NodeId],
    max_region: usize,
) -> Region {
    let n = dfg.node_count();
    let (start, finish, horizon) = spans(dfg, spec, clock, schedule);

    let mut in_region = vec![false; n];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    let mut admitted = 0usize;
    let admit = |id: NodeId,
                 in_region: &mut Vec<bool>,
                 queue: &mut VecDeque<NodeId>,
                 admitted: &mut usize|
     -> bool {
        if *admitted >= max_region || in_region[id.index()] {
            return false;
        }
        in_region[id.index()] = true;
        queue.push_back(id);
        *admitted += 1;
        true
    };

    // Source 1 seeds: horizon finishers, in index order.
    let mut critical = 0usize;
    for id in dfg.node_ids() {
        if finish[id.index()] == horizon && admit(id, &mut in_region, &mut queue, &mut admitted) {
            critical += 1;
        }
    }

    // Source 2: accesses on port-saturated banks, in index order.
    let mut port_hot = 0usize;
    if let Ok(pressure) = hls_mem::port_pressure(dfg, schedule) {
        let saturated: Vec<bool> = dfg
            .memory()
            .banks()
            .iter()
            .map(|b| pressure.peak(b.id()) >= b.ports())
            .collect();
        if saturated.iter().any(|&s| s) {
            for id in dfg.node_ids() {
                if let FuClass::Mem(bank) = dfg.node(id).kind().fu_class() {
                    if saturated[bank.index()]
                        && admit(id, &mut in_region, &mut queue, &mut admitted)
                    {
                        port_hot += 1;
                    }
                }
            }
        }
    }

    // Source 3: caller hints (e.g. LocalReschedule hotspots).
    let mut hinted = 0usize;
    let mut sorted_hints: Vec<NodeId> = hints.to_vec();
    sorted_hints.sort();
    sorted_hints.dedup();
    for id in sorted_hints {
        if id.index() < n && admit(id, &mut in_region, &mut queue, &mut admitted) {
            hinted += 1;
        }
    }

    // Close the seed set backwards over tight edges: a predecessor with
    // no slack against an in-region consumer joins the cone.
    while let Some(node) = queue.pop_front() {
        let s = start[node.index()];
        let mut tight: Vec<NodeId> = dfg
            .preds(node)
            .iter()
            .copied()
            .filter(|p| finish[p.index()] + 1 >= s)
            .collect();
        tight.sort();
        for p in tight {
            admit(p, &mut in_region, &mut queue, &mut admitted);
        }
    }

    let nodes: Vec<NodeId> = dfg
        .topo_order()
        .iter()
        .copied()
        .filter(|id| in_region[id.index()])
        .collect();
    Region {
        nodes,
        critical,
        port_hot,
        hinted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;
    use hls_dfg::{DfgBuilder, SignalSource};
    use hls_schedule::{CStep, FuIndex, Slot, UnitId};

    fn node_of(dfg: &Dfg, sig: hls_dfg::SignalId) -> NodeId {
        match dfg.signal(sig).source() {
            SignalSource::Node(n) => n,
            _ => unreachable!(),
        }
    }

    fn place(sched: &mut Schedule, dfg: &Dfg, n: NodeId, step: u32, fu: u32) {
        sched.assign(
            n,
            Slot {
                step: CStep::new(step),
                unit: UnitId::Fu {
                    class: dfg.node(n).kind().fu_class(),
                    index: FuIndex::new(fu),
                },
            },
        );
    }

    #[test]
    fn cone_follows_tight_edges_and_skips_slack() {
        // chain a -> b -> d (tight), plus c with 2 steps of slack.
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let a = b.op("a", OpKind::Add, &[x, x]).unwrap();
        let bb = b.op("b", OpKind::Add, &[a, x]).unwrap();
        let c = b.op("c", OpKind::Add, &[x, x]).unwrap();
        let d = b.op("d", OpKind::Add, &[bb, c]).unwrap();
        let dfg = b.finish().unwrap();
        let (a, bb, c, d) = (
            node_of(&dfg, a),
            node_of(&dfg, bb),
            node_of(&dfg, c),
            node_of(&dfg, d),
        );
        let spec = TimingSpec::uniform_single_cycle();
        let mut sched = Schedule::new(&dfg, 3);
        place(&mut sched, &dfg, a, 1, 1);
        place(&mut sched, &dfg, bb, 2, 1);
        place(&mut sched, &dfg, c, 1, 2);
        place(&mut sched, &dfg, d, 3, 1);
        let region = extract_region(&dfg, &spec, None, &sched, &[], 64);
        assert_eq!(region.critical, 1, "only d finishes at the horizon");
        assert!(region.nodes.contains(&d));
        assert!(region.nodes.contains(&bb), "tight predecessor joins");
        assert!(region.nodes.contains(&a), "tightness is transitive");
        assert!(
            !region.nodes.contains(&c),
            "c has slack and stays frozen: {:?}",
            region.nodes
        );
    }

    #[test]
    fn saturated_bank_accesses_join_the_region() {
        let mut b = DfgBuilder::new("mem");
        let i = b.input("i");
        let bank = b.declare_bank("ram", 1);
        let arr = b.declare_array("buf", 16, bank);
        let l0 = b.load("l0", arr, i).unwrap();
        let l1 = b.load("l1", arr, i).unwrap();
        let s = b.op("s", OpKind::Add, &[l0, l1]).unwrap();
        let dfg = b.finish().unwrap();
        let (l0, l1, s) = (node_of(&dfg, l0), node_of(&dfg, l1), node_of(&dfg, s));
        let spec = TimingSpec::uniform_single_cycle();
        let mut sched = Schedule::new(&dfg, 3);
        place(&mut sched, &dfg, l0, 1, 1);
        place(&mut sched, &dfg, l1, 2, 1);
        place(&mut sched, &dfg, s, 3, 1);
        let region = extract_region(&dfg, &spec, None, &sched, &[], 64);
        assert!(region.port_hot > 0, "single-port bank is saturated");
        assert!(region.nodes.contains(&l0));
        assert!(region.nodes.contains(&l1));
    }

    #[test]
    fn region_cap_is_respected_deterministically() {
        let mut b = DfgBuilder::new("wide");
        let x = b.input("x");
        let mut outs = Vec::new();
        for i in 0..8 {
            outs.push(b.op(&format!("o{i}"), OpKind::Add, &[x, x]).unwrap());
        }
        let dfg = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let mut sched = Schedule::new(&dfg, 1);
        for (i, &o) in outs.iter().enumerate() {
            let n = node_of(&dfg, o);
            place(&mut sched, &dfg, n, 1, i as u32 + 1);
        }
        let a = extract_region(&dfg, &spec, None, &sched, &[], 3);
        let b2 = extract_region(&dfg, &spec, None, &sched, &[], 3);
        assert_eq!(a.nodes, b2.nodes, "capped extraction is deterministic");
        assert_eq!(a.nodes.len(), 3);
    }
}
