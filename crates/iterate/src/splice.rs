//! Constrained re-scheduling splices: vacate the region nodes from the
//! dense scheduler state and re-place them under the **achieved**
//! horizon — one control step tighter every time an iteration lands.
//!
//! Two kernels mirror the two binding worlds, exactly as
//! hls-partition's stitcher does:
//!
//! * [`sweep_fu`] (class-grid schedules, MFS and the baselines):
//!   vacate from the schedule, [`BoundsCache`] and occupancy grid, then
//!   re-frame with [`probe_move_frame`] — the vacate→re-frame contract
//!   `crates/core/tests/reframe.rs` pins, including chained offsets and
//!   the memory access-conflict frames.
//! * [`sweep_alu`] (ALU-bound schedules, MFSA): slide each region node
//!   along its *own* unit, preserving both the allocation and (for
//!   memory accesses) the port binding, using the same [`BoundsCache`]
//!   feasibility bounds. Sliding never lands a node on a scheduled
//!   neighbour's boundary step, so no new chaining is created and the
//!   clock budget cannot overflow.
//!
//! Both kernels sweep the region in topological order and repeat until
//! a fixpoint or the sweep cap; every data structure is ordered
//! (`BTreeMap`, index-sorted vectors), so the result is a pure function
//! of the inputs.

use std::collections::BTreeMap;

use hls_celllib::{ClockPeriod, Delay, TimingSpec};
use hls_dfg::{Dfg, FuClass, NodeId};
use hls_schedule::{chained_frames, CStep, Grid, Schedule, Slot, TimeFrames, UnitId};
use moveframe::{probe_move_frame, BoundsCache};

use crate::IterateError;

/// Columns the re-frame probe exposes per class — compression needs *a*
/// free column at a better step, not the full column space (same cap as
/// the partition stitcher).
const COLUMN_CAP: u32 = 64;

/// Which way a splice moves region nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Direction {
    /// Compression: earliest improving `(step, column)` — shortens the
    /// critical cone and frees access-conflict steps.
    Earlier,
    /// Register re-timing: latest feasible step at or below the
    /// horizon — producers drift toward their consumers, shrinking
    /// value lifetimes without touching the schedule length.
    Later,
}

/// True chain finish offsets of `schedule`, recomputed from scratch in
/// dependency (index) order — the recipe `bounds_stress.rs` pins
/// against [`BoundsCache::on_unassign`]'s incremental repair.
fn rebuild_offsets(
    dfg: &Dfg,
    spec: &TimingSpec,
    clock: Option<ClockPeriod>,
    bounds: &BoundsCache,
    schedule: &Schedule,
    offsets: &mut [Delay],
) {
    let chainable = |n: NodeId| {
        clock.is_some() && bounds.cycles(n) == 1 && dfg.node(n).kind().delay(spec).as_u32() > 0
    };
    for o in offsets.iter_mut() {
        *o = Delay::ZERO;
    }
    for q in dfg.node_ids() {
        let Some(start) = schedule.start(q) else {
            continue;
        };
        if !chainable(q) {
            continue;
        }
        let mut base = Delay::ZERO;
        for &p in dfg.preds(q) {
            if !chainable(p) {
                continue;
            }
            if let Some(ps) = schedule.start(p) {
                if ps.finish(bounds.cycles(p)) == start {
                    base = base.max(offsets[p.index()]);
                }
            }
        }
        offsets[q.index()] = base + dfg.node(q).kind().delay(spec);
    }
}

/// Effective cycle count of `node` under the (optional) clock: the
/// declared cycles, or `⌈delay/T⌉` for operations slower than the
/// clock — the same rule [`BoundsCache`] applies.
pub(crate) fn effective_cycles(
    dfg: &Dfg,
    spec: &TimingSpec,
    clock: Option<ClockPeriod>,
    node: NodeId,
) -> u8 {
    let kind = dfg.node(node).kind();
    let declared = kind.cycles(spec);
    match clock {
        None => declared,
        Some(t) => {
            let d = kind.delay(spec).as_u32();
            let derived = if d == 0 {
                1
            } else {
                d.div_ceil(t.as_u32()) as u8
            };
            declared.max(derived)
        }
    }
}

/// Achieved horizon: the last occupied (finish) control step, counting
/// clock-multicycled operations at their effective length.
pub(crate) fn achieved_horizon(
    dfg: &Dfg,
    spec: &TimingSpec,
    clock: Option<ClockPeriod>,
    schedule: &Schedule,
) -> u32 {
    schedule
        .iter()
        .map(|(n, s)| s.step.finish(effective_cycles(dfg, spec, clock, n)).get())
        .max()
        .unwrap_or(1)
}

/// Move-frame splice for class-grid schedules. Mutates `schedule` in
/// place and returns the number of committed moves.
pub(crate) fn sweep_fu(
    dfg: &Dfg,
    spec: &TimingSpec,
    clock: Option<ClockPeriod>,
    schedule: &mut Schedule,
    region: &[NodeId],
    direction: Direction,
    max_sweeps: usize,
) -> Result<u64, IterateError> {
    let horizon = achieved_horizon(dfg, spec, clock, schedule);
    let frames = match clock {
        Some(t) => chained_frames(dfg, spec, t, horizon)
            .map_err(|e| IterateError::Internal(format!("chained frames: {e}")))?
            .into_frames(),
        None => TimeFrames::compute(dfg, spec, horizon)
            .map_err(|e| IterateError::Internal(format!("frames: {e}")))?,
    };
    let mut bounds = BoundsCache::new(dfg, spec, clock);
    let mut offsets = vec![Delay::ZERO; dfg.node_count()];
    let mut grids: BTreeMap<FuClass, Grid> = schedule
        .fu_counts()
        .into_iter()
        .map(|(class, max_fu)| (class, Grid::new(class, horizon, max_fu.max(1))))
        .collect();
    for (node, slot) in schedule.iter() {
        let UnitId::Fu { class, index } = slot.unit else {
            return Err(IterateError::Internal(
                "fu splice on a non-Fu-bound schedule".into(),
            ));
        };
        grids
            .get_mut(&class)
            .expect("fu_counts covers every bound class")
            .occupy(node, slot.step, index, bounds.cycles(node));
    }
    for (node, slot) in schedule.iter().collect::<Vec<_>>() {
        bounds.on_assign(dfg, node, slot.step);
    }
    if clock.is_some() {
        rebuild_offsets(dfg, spec, clock, &bounds, schedule, &mut offsets);
    }

    // Re-place the *whole* region per sweep, not one node at a time: a
    // critical cone is tight by construction, so no single node can
    // move while its neighbours hold their slots — the region must be
    // vacated as a unit before any of it can shift. Earlier sweeps
    // re-place in dependency order (predecessors claim the earliest
    // cells first); Later sweeps in reverse (consumers anchor at the
    // horizon, producers drift toward them).
    let order: Vec<NodeId> = match direction {
        Direction::Earlier => region.to_vec(),
        Direction::Later => region.iter().rev().copied().collect(),
    };
    let mut moves = 0u64;
    for _ in 0..max_sweeps {
        let mut moved = false;
        let mut old: BTreeMap<NodeId, Slot> = BTreeMap::new();
        for &node in region {
            let slot = schedule.slot(node).expect("baseline schedule is complete");
            let UnitId::Fu { class, .. } = slot.unit else {
                unreachable!("checked above");
            };
            old.insert(node, slot);
            schedule.unassign(node);
            bounds.on_unassign(dfg, schedule, &mut offsets, node);
            grids
                .get_mut(&class)
                .expect("class grid exists")
                .vacate(node);
        }
        if clock.is_some() {
            rebuild_offsets(dfg, spec, clock, &bounds, schedule, &mut offsets);
        }
        for &node in &order {
            let prev = old[&node];
            let UnitId::Fu { class, index } = prev.unit else {
                unreachable!("checked above");
            };
            let cycles = bounds.cycles(node);
            let grid = grids.get_mut(&class).expect("class grid exists");
            let snapshot = probe_move_frame(
                dfg,
                spec,
                &frames,
                schedule,
                clock,
                &offsets,
                &bounds,
                node,
                grid,
                grid.max_fu().min(COLUMN_CAP),
            );
            let best = match direction {
                Direction::Earlier => snapshot.movable.iter().map(|p| (p.step, p.fu)).min(),
                Direction::Later => snapshot
                    .movable
                    .iter()
                    .map(|p| (p.step, p.fu))
                    .filter(|&(s, _)| s.finish(cycles).get() <= horizon)
                    .max_by_key(|&(s, f)| (s, std::cmp::Reverse(f))),
            };
            // A region node with no feasible cell means this direction
            // cannot re-place the subgraph — abandon the splice; the
            // caller discards the half-built candidate.
            let Some(best) = best else {
                return Ok(0);
            };
            schedule.assign(
                node,
                Slot {
                    step: best.0,
                    unit: UnitId::Fu {
                        class,
                        index: best.1,
                    },
                },
            );
            bounds.on_assign(dfg, node, best.0);
            grid.occupy(node, best.0, best.1, cycles);
            if clock.is_some() {
                rebuild_offsets(dfg, spec, clock, &bounds, schedule, &mut offsets);
            }
            if best != (prev.step, index) {
                moves += 1;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    Ok(moves)
}

/// Same-unit slide splice for ALU-bound schedules. Mutates `schedule`
/// in place and returns the number of committed moves.
pub(crate) fn sweep_alu(
    dfg: &Dfg,
    spec: &TimingSpec,
    clock: Option<ClockPeriod>,
    schedule: &mut Schedule,
    region: &[NodeId],
    direction: Direction,
    max_sweeps: usize,
) -> u64 {
    let horizon = achieved_horizon(dfg, spec, clock, schedule);
    let mut bounds = BoundsCache::new(dfg, spec, clock);
    for (node, slot) in schedule.iter().collect::<Vec<_>>() {
        bounds.on_assign(dfg, node, slot.step);
    }
    // Per-unit per-step occupant counts (counts, not flags: mutually
    // exclusive operations legitimately share a cell).
    let mut busy: BTreeMap<UnitId, Vec<u16>> = BTreeMap::new();
    for (node, slot) in schedule.iter() {
        let cells = busy.entry(slot.unit).or_default();
        for k in 0..bounds.cycles(node) as u32 {
            let s = (slot.step.get() + k) as usize;
            if cells.len() <= s {
                cells.resize(s + 1, 0);
            }
            cells[s] += 1;
        }
    }

    let mut offsets = vec![Delay::ZERO; dfg.node_count()];
    let mut moves = 0u64;
    for _ in 0..max_sweeps {
        let mut moved = false;
        for &node in region {
            let cur = schedule.slot(node).expect("baseline schedule is complete");
            let cycles = bounds.cycles(node) as u32;
            let cells = busy.get_mut(&cur.unit).expect("unit has occupants");
            for k in 0..cycles {
                cells[(cur.step.get() + k) as usize] -= 1;
            }
            schedule.unassign(node);
            bounds.on_unassign(dfg, schedule, &mut offsets, node);
            // Strict step separation from every scheduled neighbour:
            // start above the predecessors' finishes and finish below
            // the successors' starts, so the move can neither reorder
            // dependencies nor create a new combinational chain.
            let lower = bounds.pred_finish(node) + 1;
            let upper_start = bounds
                .succ_start(node)
                .saturating_sub(cycles)
                .min(horizon.saturating_sub(cycles.saturating_sub(1)));
            let free = |s: u32| {
                (0..cycles).all(|k| cells.get((s + k) as usize).copied().unwrap_or(0) == 0)
            };
            let target = match direction {
                Direction::Earlier => (lower..cur.step.get())
                    .find(|&s| free(s))
                    .map(CStep::new)
                    .unwrap_or(cur.step),
                Direction::Later => (cur.step.get() + 1..=upper_start.max(cur.step.get()))
                    .rev()
                    .find(|&s| free(s))
                    .map(CStep::new)
                    .unwrap_or(cur.step),
            };
            for k in 0..cycles {
                let s = (target.get() + k) as usize;
                if cells.len() <= s {
                    cells.resize(s + 1, 0);
                }
                cells[s] += 1;
            }
            schedule.assign(
                node,
                Slot {
                    step: target,
                    unit: cur.unit,
                },
            );
            bounds.on_assign(dfg, node, target);
            if target != cur.step {
                moves += 1;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    moves
}
