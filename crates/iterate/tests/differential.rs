//! Differential tests: the refine loop against one-shot scheduling.
//!
//! * `iterations = 0` must return the baseline bit-for-bit.
//! * Every refined schedule must still pass the full verifier and the
//!   memory port-safety check.
//! * A deliberately padded schedule must actually compress.
//! * MFSA refinement must preserve the allocation while rebuilding the
//!   data path and cost report consistently.

use hls_benchmarks::classic::{diffeq, ewf, fir};
use hls_celllib::{Library, OpKind, TimingSpec};
use hls_dfg::{CriticalPath, Dfg, DfgBuilder, NodeId, SignalSource};
use hls_iterate::{refine, refine_mfsa, IterateConfig};
use hls_schedule::{verify, CStep, FuIndex, Schedule, Slot, UnitId, VerifyOptions};
use hls_telemetry::{Instrument, Metrics, NullSink};
use moveframe::mfs::{self, MfsConfig};
use moveframe::mfsa::{self, MfsaConfig};

fn with_instr<T>(f: impl FnOnce(&mut Instrument<'_>) -> T) -> T {
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    let mut instr = Instrument::new(&mut sink, &mut metrics);
    f(&mut instr)
}

fn slots(dfg: &Dfg, s: &Schedule) -> Vec<(NodeId, CStep, String)> {
    dfg.node_ids()
        .map(|n| {
            let slot = s.slot(n).expect("complete");
            (n, slot.step, slot.unit.to_string())
        })
        .collect()
}

#[test]
fn zero_iterations_return_the_baseline_untouched() {
    let dfg = diffeq();
    let spec = TimingSpec::uniform_single_cycle();
    let base = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(6)).unwrap();
    let out =
        with_instr(|i| refine(&dfg, &spec, &base.schedule, &IterateConfig::new(0), i)).unwrap();
    assert_eq!(out.iterations_run, 0);
    assert_eq!(out.splices_accepted, 0);
    assert_eq!(out.moves, 0);
    assert_eq!(out.csteps_before, out.csteps_after);
    assert_eq!(
        slots(&dfg, &base.schedule),
        slots(&dfg, &out.schedule),
        "N = 0 must be byte-identical to one-shot"
    );
}

#[test]
fn refined_paper_benchmarks_stay_verified_and_never_regress() {
    let spec = TimingSpec::uniform_single_cycle();
    for (name, dfg) in [("diffeq", diffeq()), ("fir16", fir(16)), ("ewf", ewf())] {
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        for slack in [0, 2, 4] {
            let cs = cp + slack;
            let base = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(cs)).unwrap();
            let out =
                with_instr(|i| refine(&dfg, &spec, &base.schedule, &IterateConfig::new(4), i))
                    .unwrap();
            assert!(
                (out.csteps_after, out.registers_after)
                    <= (out.csteps_before, out.registers_before),
                "{name}@{cs}: objective regressed"
            );
            assert!(
                out.csteps_after >= cp,
                "{name}@{cs}: cannot beat the critical path"
            );
            let violations = verify(&dfg, &out.schedule, &spec, VerifyOptions::default());
            assert!(violations.is_empty(), "{name}@{cs}: {violations:?}");
            assert!(
                matches!(hls_mem::check_port_safety(&dfg, &out.schedule), Ok(v) if v.is_empty()),
                "{name}@{cs}: port safety"
            );
        }
    }
}

#[test]
fn a_padded_schedule_actually_compresses() {
    // a -> b is the critical chain; c is independent but parked at the
    // horizon, one grid column shared by all three. The compression
    // splice must pull c back to step 3.
    let mut b = DfgBuilder::new("pad");
    let x = b.input("x");
    let a = b.op("a", OpKind::Add, &[x, x]).unwrap();
    let bb = b.op("b", OpKind::Add, &[a, x]).unwrap();
    let c = b.op("c", OpKind::Add, &[x, x]).unwrap();
    let dfg = b.finish().unwrap();
    let node = |sig| match dfg.signal(sig).source() {
        SignalSource::Node(n) => n,
        _ => unreachable!(),
    };
    let (a, bb, c) = (node(a), node(bb), node(c));
    let spec = TimingSpec::uniform_single_cycle();
    let mut sched = Schedule::new(&dfg, 4);
    let place = |sched: &mut Schedule, n: NodeId, step: u32| {
        sched.assign(
            n,
            Slot {
                step: CStep::new(step),
                unit: UnitId::Fu {
                    class: dfg.node(n).kind().fu_class(),
                    index: FuIndex::new(1),
                },
            },
        );
    };
    place(&mut sched, a, 1);
    place(&mut sched, bb, 2);
    place(&mut sched, c, 4);
    let out = with_instr(|i| refine(&dfg, &spec, &sched, &IterateConfig::new(3), i)).unwrap();
    assert_eq!(out.csteps_before, 4);
    assert_eq!(out.csteps_after, 3, "c must compress into step 3");
    assert!(out.improved());
    assert_eq!(out.schedule.slot(c).unwrap().step, CStep::new(3));
}

#[test]
fn mfsa_refinement_preserves_the_allocation() {
    let spec = TimingSpec::uniform_single_cycle();
    let library = Library::ncr_like();
    for (name, dfg) in [("diffeq", diffeq()), ("ewf", ewf())] {
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let cs = cp + 3;
        let mut out = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(cs, library.clone())).unwrap();
        let signature_before = out.datapath.alu_signature();
        let res =
            with_instr(|i| refine_mfsa(&dfg, &spec, &library, &mut out, &IterateConfig::new(3), i))
                .unwrap();
        assert_eq!(
            out.datapath.alu_signature(),
            signature_before,
            "{name}: the slide splice must not change the ALU allocation"
        );
        let violations = verify(&dfg, &out.schedule, &spec, VerifyOptions::default());
        assert!(violations.is_empty(), "{name}: {violations:?}");
        if res.improved() {
            // The outcome's schedule and cost must reflect the refined
            // schedule, not the one-shot one.
            assert_eq!(
                slots(&dfg, &res.schedule),
                slots(&dfg, &out.schedule),
                "{name}: outcome schedule must be the refined one"
            );
        }
    }
}

#[test]
fn functional_pipelining_is_rejected_as_unsupported() {
    let dfg = diffeq();
    let spec = TimingSpec::uniform_single_cycle();
    let base = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(6)).unwrap();
    let mut config = IterateConfig::new(2);
    config.latency = Some(2);
    let err = with_instr(|i| refine(&dfg, &spec, &base.schedule, &config, i)).unwrap_err();
    assert!(err.to_string().contains("unsupported"), "{err}");
}
