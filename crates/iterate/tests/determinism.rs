//! Determinism: the refine loop is a pure function of
//! `(dfg, spec, baseline, config)` — repeated runs, cloned baselines
//! and generated workloads must all produce bit-identical schedules
//! and counters.

use hls_benchmarks::classic::{diffeq, ewf};
use hls_benchmarks::generate::{clustered_workload, generate_clustered};
use hls_celllib::{ClockPeriod, Library, TimingSpec};
use hls_dfg::{CriticalPath, Dfg};
use hls_iterate::{refine, IterateConfig, IterateOutcome};
use hls_schedule::Schedule;
use hls_telemetry::{Instrument, Metrics, NullSink};
use moveframe::mfs::{self, MfsConfig};
use moveframe::mfsa::{self, MfsaConfig};

fn run(dfg: &Dfg, spec: &TimingSpec, base: &Schedule, config: &IterateConfig) -> IterateOutcome {
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    let mut instr = Instrument::new(&mut sink, &mut metrics);
    refine(dfg, spec, base, config, &mut instr).unwrap()
}

/// FNV-1a over the `(node, step, unit)` triples — the same shape the
/// bench snapshots pin.
fn fingerprint(schedule: &Schedule) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    for (node, slot) in schedule.iter() {
        mix(&(node.index() as u64).to_le_bytes());
        mix(&slot.step.get().to_le_bytes());
        mix(slot.unit.to_string().as_bytes());
    }
    h
}

#[test]
fn repeated_runs_are_bit_identical() {
    let spec = TimingSpec::uniform_single_cycle();
    for dfg in [diffeq(), ewf()] {
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let base = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(cp + 3)).unwrap();
        let config = IterateConfig::new(4);
        let first = run(&dfg, &spec, &base.schedule, &config);
        for _ in 0..3 {
            let again = run(&dfg, &spec, &base.schedule, &config);
            assert_eq!(fingerprint(&first.schedule), fingerprint(&again.schedule));
            assert_eq!(first.csteps_after, again.csteps_after);
            assert_eq!(first.registers_after, again.registers_after);
            assert_eq!(first.splices_accepted, again.splices_accepted);
            assert_eq!(first.splices_rejected, again.splices_rejected);
            assert_eq!(first.moves, again.moves);
        }
    }
}

#[test]
fn chained_runs_are_bit_identical() {
    let dfg = diffeq();
    let spec = TimingSpec::with_delays();
    let clock = ClockPeriod::new(100);
    let config = MfsConfig::time_constrained(8).with_chaining(clock);
    let base = mfs::schedule(&dfg, &spec, &config).unwrap();
    let iter_config = IterateConfig::new(3).with_clock(clock);
    let first = run(&dfg, &spec, &base.schedule, &iter_config);
    let again = run(&dfg, &spec, &base.schedule, &iter_config);
    assert_eq!(fingerprint(&first.schedule), fingerprint(&again.schedule));
    assert_eq!(first.moves, again.moves);
}

#[test]
fn mfsa_runs_are_bit_identical() {
    let dfg = ewf();
    let spec = TimingSpec::uniform_single_cycle();
    let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
    let out = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(cp + 3, Library::ncr_like())).unwrap();
    let config = IterateConfig::new(3);
    let first = run(&dfg, &spec, &out.schedule, &config);
    let again = run(&dfg, &spec, &out.schedule, &config);
    assert_eq!(fingerprint(&first.schedule), fingerprint(&again.schedule));
    assert_eq!(first.splices_accepted, again.splices_accepted);
}

#[test]
fn generated_clustered_workload_is_stable() {
    // The shape CI byte-diffs through the CLI at 30k nodes; here a
    // scaled-down witness proves the library layer is already stable.
    let dfg = generate_clustered(&clustered_workload(2_000));
    let spec = TimingSpec::uniform_single_cycle();
    let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
    let base = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(cp + 2)).unwrap();
    let config = IterateConfig::new(3);
    let first = run(&dfg, &spec, &base.schedule, &config);
    let again = run(&dfg, &spec, &base.schedule, &config);
    assert_eq!(fingerprint(&first.schedule), fingerprint(&again.schedule));
    assert_eq!(first.csteps_after, again.csteps_after);
    assert!(first.csteps_after <= first.csteps_before);
}
