//! Property tests: on random layered DAGs and memory workloads, every
//! schedule the refine loop returns is verified, port-safe, and never
//! worse than its baseline under the `(csteps, registers)` objective.

use hls_benchmarks::memory::{array_fir, matvec};
use hls_celllib::{ClockPeriod, OpKind, TimingSpec};
use hls_dfg::{CriticalPath, Dfg, DfgBuilder, SignalId};
use hls_iterate::{refine, IterateConfig};
use hls_schedule::{verify, ScheduleStats, VerifyOptions};
use hls_telemetry::{Instrument, Metrics, NullSink};
use moveframe::mfs::{self, MfsConfig};
use proptest::prelude::*;

/// The layered xorshift DAG generator `bounds_stress.rs` uses.
fn random_dag(seed: u64, layers: usize, width: usize) -> Dfg {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move |m: usize| -> usize {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % m as u64) as usize
    };
    let mut b = DfgBuilder::new("prop");
    let mut values: Vec<SignalId> = (0..3).map(|i| b.input(&format!("in{i}"))).collect();
    for l in 0..layers {
        let mut layer = Vec::new();
        for w in 0..width {
            let kinds = [OpKind::Add, OpKind::Sub, OpKind::Mul];
            let kind = kinds[next(kinds.len())];
            let a = values[next(values.len())];
            let c = values[next(values.len())];
            layer.push(b.op(&format!("l{l}n{w}"), kind, &[a, c]).unwrap());
        }
        values.extend(layer);
    }
    b.finish().unwrap()
}

fn check_refined(dfg: &Dfg, spec: &TimingSpec, clock: Option<ClockPeriod>, slack: u32) {
    let cp = CriticalPath::compute(dfg, spec).steps() as u32;
    let mut config = MfsConfig::time_constrained(cp + slack);
    if let Some(t) = clock {
        config = config.with_chaining(t);
    }
    let Ok(base) = mfs::schedule(dfg, spec, &config) else {
        // Chained specs can make tight budgets infeasible; not the
        // property under test.
        return;
    };
    let mut iter_config = IterateConfig::new(3);
    iter_config.clock = clock;
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    let mut instr = Instrument::new(&mut sink, &mut metrics);
    let out = refine(dfg, spec, &base.schedule, &iter_config, &mut instr).unwrap();

    // Soundness: full verifier (with the chaining clock) + port safety.
    let options = VerifyOptions {
        latency: None,
        clock,
    };
    let violations = verify(dfg, &out.schedule, spec, options);
    assert!(violations.is_empty(), "{violations:?}");
    assert!(matches!(hls_mem::check_port_safety(dfg, &out.schedule), Ok(v) if v.is_empty()));

    // Monotonicity: the objective never regresses, and the reported
    // before/after numbers match the actual schedules.
    let before_regs = ScheduleStats::compute(dfg, &base.schedule, spec).registers;
    let after_regs = ScheduleStats::compute(dfg, &out.schedule, spec).registers;
    assert_eq!(out.registers_before, before_regs);
    assert_eq!(out.registers_after, after_regs);
    assert!(
        (out.csteps_after, out.registers_after) <= (out.csteps_before, out.registers_before),
        "objective regressed: {:?} -> {:?}",
        (out.csteps_before, out.registers_before),
        (out.csteps_after, out.registers_after)
    );
    if clock.is_none() {
        // Chaining can legitimately pack dependent ops below the
        // unchained critical path; the floor only binds without it.
        assert!(out.csteps_after >= cp);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn refined_random_dags_are_sound_and_monotone(
        seed in 0u64..10_000,
        layers in 1usize..5,
        width in 1usize..4,
        slack in 0u32..4,
        spec_idx in 0usize..3,
    ) {
        let dfg = random_dag(seed, layers, width);
        let (spec, clock) = match spec_idx {
            0 => (TimingSpec::uniform_single_cycle(), None),
            1 => (TimingSpec::two_cycle_multiply(), None),
            _ => (TimingSpec::with_delays(), Some(ClockPeriod::new(100))),
        };
        check_refined(&dfg, &spec, clock, slack);
    }
}

#[test]
fn memory_benchmarks_stay_port_safe_through_refinement() {
    let spec = TimingSpec::uniform_single_cycle();
    for (name, dfg) in [
        ("array_fir_p1", array_fir(8, 1)),
        ("array_fir_p2", array_fir(8, 2)),
        ("matvec_p2", matvec(4, 2)),
    ] {
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        for slack in [0u32, 2, 4] {
            let Ok(base) = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(cp + slack))
            else {
                // Port-limited graphs can be infeasible at the bare
                // critical path; skip those budgets.
                continue;
            };
            let mut sink = NullSink;
            let mut metrics = Metrics::new();
            let mut instr = Instrument::new(&mut sink, &mut metrics);
            let out = refine(
                &dfg,
                &spec,
                &base.schedule,
                &IterateConfig::new(3),
                &mut instr,
            )
            .unwrap();
            assert!(
                matches!(hls_mem::check_port_safety(&dfg, &out.schedule), Ok(v) if v.is_empty()),
                "{name}@+{slack}: port safety"
            );
            let violations = verify(&dfg, &out.schedule, &spec, VerifyOptions::default());
            assert!(violations.is_empty(), "{name}@+{slack}: {violations:?}");
            assert!(
                (out.csteps_after, out.registers_after)
                    <= (out.csteps_before, out.registers_before)
            );
        }
    }
}
