//! The [`Profiler`] sink: folds the trace stream into attribution
//! ledgers.

use std::collections::BTreeMap;

use hls_telemetry::{TraceEvent, TraceSink};

/// Everything the profiler attributes to one operation node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeLedger {
    /// Move frames computed for this node (≥ 1 per scheduling pass the
    /// node participated in).
    pub frames_computed: u64,
    /// Liapunov energies evaluated while placing this node — the unit
    /// of scheduler work the hotspot ranking orders by.
    pub energy_evals: u64,
    /// Moves this node committed.
    pub moves_committed: u64,
    /// Total free move-frame cells this node scanned (sum of `mf_size`
    /// over its frames): the frame-geometry explanation for a high
    /// evaluation count.
    pub mf_cells: u64,
    /// The node's final committed cell `(fu, step)`, if it placed.
    pub committed: Option<(u32, u32)>,
    /// The energy of the final committed move.
    pub committed_v: Option<u64>,
}

/// Per-control-step evaluation tallies (candidate steps probed and
/// moves landed), keyed by the step index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepLedger {
    /// Candidate evaluations probing this step.
    pub energy_evals: u64,
    /// Moves that committed into this step.
    pub moves_committed: u64,
}

/// Work attributed to one timed pipeline phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseLedger {
    /// Number of spans recorded under this phase name.
    pub calls: u64,
    /// Total wall time across those spans, in ns.
    pub total_ns: u64,
    /// Energy evaluations attributed to this phase.
    pub energy_evals: u64,
    /// Committed moves attributed to this phase.
    pub moves_committed: u64,
    /// Move frames attributed to this phase.
    pub frames_computed: u64,
    /// Local reschedulings attributed to this phase.
    pub reschedules: u64,
}

/// One row of [`Profiler::hotspots`]: a node and the work it consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hotspot {
    /// The operation's node index.
    pub op: u32,
    /// Its attribution ledger.
    pub ledger: NodeLedger,
}

/// A [`TraceSink`] that folds the event stream into per-node, per-step
/// and per-phase attribution ledgers.
///
/// The profiler is pure observation: it implements the same write-only
/// sink contract as every other sink, so a profiled run is bit-identical
/// to an unprofiled one (the workspace contract tests assert this).
/// All ledgers live in `BTreeMap`s and every ranking breaks ties on the
/// node index, so reports are deterministic for a given event stream.
///
/// **Phase attribution.** Work events (frames, evaluations, moves,
/// reschedulings) arrive *before* the span that encloses them, because
/// [`hls_telemetry::Instrument::span`] records a span at its end and
/// inner spans finish first. The profiler therefore keeps a pending
/// tally and lets each arriving span absorb it: work lands on the
/// *innermost* enclosing phase, and anything between an inner span's
/// end and its parent's end lands on the parent.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    nodes: BTreeMap<u32, NodeLedger>,
    steps: BTreeMap<u32, StepLedger>,
    phases: BTreeMap<String, PhaseLedger>,
    reschedules_by_kind: BTreeMap<String, u64>,
    pending: PhaseLedger,
    totals: PhaseLedger,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-node ledgers, keyed by node index.
    pub fn nodes(&self) -> &BTreeMap<u32, NodeLedger> {
        &self.nodes
    }

    /// Per-step ledgers, keyed by control step.
    pub fn steps(&self) -> &BTreeMap<u32, StepLedger> {
        &self.steps
    }

    /// Per-phase ledgers, keyed by phase name.
    pub fn phases(&self) -> &BTreeMap<String, PhaseLedger> {
        &self.phases
    }

    /// Local reschedulings by unit class (`"*"`, `"+"`, …).
    pub fn reschedules_by_kind(&self) -> &BTreeMap<String, u64> {
        &self.reschedules_by_kind
    }

    /// Grand totals over the whole stream (the `calls`/`total_ns`
    /// fields cover every span).
    pub fn totals(&self) -> &PhaseLedger {
        &self.totals
    }

    /// Work observed after the last span closed (or before any span):
    /// attributed to no phase. Zero for a run whose outermost span
    /// encloses everything.
    pub fn unattributed(&self) -> &PhaseLedger {
        &self.pending
    }

    /// The `k` nodes that consumed the most energy evaluations,
    /// descending; ties break on the lower node index, so the ranking
    /// is a total order and identical across runs.
    pub fn hotspots(&self, k: usize) -> Vec<Hotspot> {
        let mut all: Vec<Hotspot> = self
            .nodes
            .iter()
            .map(|(&op, &ledger)| Hotspot { op, ledger })
            .collect();
        all.sort_by(|a, b| {
            b.ledger
                .energy_evals
                .cmp(&a.ledger.energy_evals)
                .then(a.op.cmp(&b.op))
        });
        all.truncate(k);
        all
    }

    /// The `k` control steps probed by the most candidate evaluations,
    /// descending; ties break on the lower step.
    pub fn step_hotspots(&self, k: usize) -> Vec<(u32, StepLedger)> {
        let mut all: Vec<(u32, StepLedger)> = self.steps.iter().map(|(&s, &l)| (s, l)).collect();
        all.sort_by(|a, b| b.1.energy_evals.cmp(&a.1.energy_evals).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

impl TraceSink for Profiler {
    fn record(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::FrameComputed { op, mf_size, .. } => {
                let node = self.nodes.entry(op).or_default();
                node.frames_computed += 1;
                node.mf_cells += mf_size as u64;
                self.pending.frames_computed += 1;
                self.totals.frames_computed += 1;
            }
            TraceEvent::EnergyEvaluated { op, pos, .. } => {
                self.nodes.entry(op).or_default().energy_evals += 1;
                self.steps.entry(pos.1).or_default().energy_evals += 1;
                self.pending.energy_evals += 1;
                self.totals.energy_evals += 1;
            }
            TraceEvent::MoveCommitted { op, to, v, .. } => {
                let node = self.nodes.entry(op).or_default();
                node.moves_committed += 1;
                node.committed = Some(to);
                node.committed_v = Some(v);
                self.steps.entry(to.1).or_default().moves_committed += 1;
                self.pending.moves_committed += 1;
                self.totals.moves_committed += 1;
            }
            TraceEvent::LocalReschedule { op_kind, .. } => {
                *self.reschedules_by_kind.entry(op_kind).or_default() += 1;
                self.pending.reschedules += 1;
                self.totals.reschedules += 1;
            }
            TraceEvent::PhaseSpan { phase, dur_ns, .. } => {
                let ledger = self.phases.entry(phase.into_owned()).or_default();
                ledger.calls += 1;
                ledger.total_ns += dur_ns;
                ledger.energy_evals += self.pending.energy_evals;
                ledger.moves_committed += self.pending.moves_committed;
                ledger.frames_computed += self.pending.frames_computed;
                ledger.reschedules += self.pending.reschedules;
                self.pending = PhaseLedger::default();
                self.totals.calls += 1;
                self.totals.total_ns += dur_ns;
            }
            TraceEvent::HttpRequest { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(op: u32, step: u32) -> TraceEvent {
        TraceEvent::EnergyEvaluated {
            op,
            pos: (1, step),
            v: 5,
        }
    }

    #[test]
    fn ledgers_fold_the_stream() {
        let mut p = Profiler::new();
        p.record(TraceEvent::FrameComputed {
            op: 7,
            pf: 4,
            rf: 1,
            ff: 1,
            mf_size: 3,
        });
        for _ in 0..3 {
            p.record(eval(7, 2));
        }
        p.record(TraceEvent::MoveCommitted {
            op: 7,
            from: None,
            to: (1, 2),
            v: 5,
            system_v: None,
        });
        p.record(TraceEvent::LocalReschedule {
            op_kind: "*".into(),
            current_j: 2,
        });

        let node = p.nodes()[&7];
        assert_eq!(node.frames_computed, 1);
        assert_eq!(node.energy_evals, 3);
        assert_eq!(node.mf_cells, 3);
        assert_eq!(node.committed, Some((1, 2)));
        assert_eq!(node.committed_v, Some(5));
        assert_eq!(p.steps()[&2].energy_evals, 3);
        assert_eq!(p.steps()[&2].moves_committed, 1);
        assert_eq!(p.reschedules_by_kind()["*"], 1);
        assert_eq!(p.totals().energy_evals, 3);
    }

    #[test]
    fn spans_absorb_pending_work_innermost_first() {
        let mut p = Profiler::new();
        // Inner phase does 2 evals and closes; one more eval lands
        // between inner-end and outer-end, so it belongs to the outer.
        p.record(eval(1, 1));
        p.record(eval(1, 2));
        p.record(TraceEvent::PhaseSpan {
            phase: "inner".into(),
            start_ns: 0,
            dur_ns: 10,
        });
        p.record(eval(2, 1));
        p.record(TraceEvent::PhaseSpan {
            phase: "outer".into(),
            start_ns: 0,
            dur_ns: 30,
        });

        assert_eq!(p.phases()["inner"].energy_evals, 2);
        assert_eq!(p.phases()["outer"].energy_evals, 1);
        assert_eq!(p.phases()["outer"].total_ns, 30);
        assert_eq!(p.unattributed().energy_evals, 0);
        assert_eq!(p.totals().energy_evals, 3);
    }

    #[test]
    fn hotspots_rank_by_evals_then_node() {
        let mut p = Profiler::new();
        for _ in 0..5 {
            p.record(eval(3, 1));
        }
        for _ in 0..5 {
            p.record(eval(1, 1));
        }
        p.record(eval(9, 4));

        let hot = p.hotspots(2);
        assert_eq!(hot.len(), 2);
        // 1 and 3 tie at 5 evals; the lower index wins.
        assert_eq!(hot[0].op, 1);
        assert_eq!(hot[1].op, 3);
        assert_eq!(p.hotspots(10).len(), 3);
        assert_eq!(
            p.step_hotspots(1),
            vec![(
                1,
                StepLedger {
                    energy_evals: 10,
                    moves_committed: 0
                }
            )]
        );
    }
}
