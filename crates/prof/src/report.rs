//! [`ProfileReport`]: the rendered combination of profiler ledgers and
//! the metrics registry.

use std::fmt::Write as _;

use hls_telemetry::Metrics;

use crate::profiler::{Hotspot, PhaseLedger, Profiler, StepLedger};

/// Escapes `s` as JSON string contents (without quotes).
fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A cost-attribution report for one profiled run.
///
/// Built from a [`Profiler`]'s event-derived ledgers plus the run's
/// [`Metrics`] counters (which also count work the event stream carries,
/// so the two sides cross-check: `coverage_pct` is the share of counted
/// energy evaluations the profiler attributed to specific nodes).
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Energy evaluations according to the counters
    /// (`mfs.energy_evaluations` + `mfsa.energy_evaluations`).
    pub counted_evals: u64,
    /// Energy evaluations the profiler attributed to specific nodes.
    pub attributed_evals: u64,
    /// `attributed / counted`, as a percentage (100 when both are 0).
    pub coverage_pct: f64,
    /// Grand totals over the event stream.
    pub totals: PhaseLedger,
    /// Incremental frame-bounds fast-path hits (`mfs.bounds.fast_path`).
    pub bounds_fast_path: u64,
    /// Frame-bounds boundary walks (`mfs.bounds.boundary_walks`).
    pub bounds_boundary_walks: u64,
    /// MFSA reuse-cost memo hits (`mfsa.reuse_memo.hits`).
    pub memo_hits: u64,
    /// MFSA reuse-cost memo fills (`mfsa.reuse_memo.fills`).
    pub memo_fills: u64,
    /// Memo fills answered by the safe one-op mux insertion rule
    /// without a repack (`mfsa.reuse_memo.insert_hits`).
    pub memo_insert_hits: u64,
    /// Memo fills that fell back to a full repack
    /// (`mfsa.reuse_memo.insert_fallbacks`).
    pub memo_insert_fallbacks: u64,
    /// Liapunov lower bounds computed by the pruned MFSA search
    /// (`mfsa.bound.evals`) — the full candidate universe; the counted
    /// energy evaluations are the bound survivors.
    pub bound_evals: u64,
    /// Candidate steps cut wholesale by the incumbent
    /// (`mfsa.prune.cut_steps`).
    pub cut_steps: u64,
    /// Instance candidates cut before the `f_MUX` recompute
    /// (`mfsa.prune.cut_instances`).
    pub cut_instances: u64,
    /// Frame recomputations skipped (`mfs.frames.reused` +
    /// `mfsa.frames.reused`).
    pub frames_reused: u64,
    /// Phase ledgers, sorted by total wall time descending (ties on
    /// name), so the flame-chart order matches the table order.
    pub phases: Vec<(String, PhaseLedger)>,
    /// The top-K node hotspots by energy evaluations.
    pub hotspots: Vec<Hotspot>,
    /// The top-K control-step hotspots by candidate probes.
    pub step_hotspots: Vec<(u32, StepLedger)>,
    /// Local reschedulings by unit class, sorted by count descending.
    pub reschedules_by_kind: Vec<(String, u64)>,
}

impl ProfileReport {
    /// Combines `profiler` ledgers with `metrics` counters, keeping the
    /// top `top` node and step hotspots.
    pub fn build(profiler: &Profiler, metrics: &Metrics, top: usize) -> Self {
        let counted_evals =
            metrics.counter("mfs.energy_evaluations") + metrics.counter("mfsa.energy_evaluations");
        let attributed_evals = profiler.totals().energy_evals;
        let coverage_pct = if counted_evals == 0 {
            100.0
        } else {
            attributed_evals as f64 / counted_evals as f64 * 100.0
        };
        let mut phases: Vec<(String, PhaseLedger)> = profiler
            .phases()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        phases.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(&b.0)));
        let mut reschedules_by_kind: Vec<(String, u64)> = profiler
            .reschedules_by_kind()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        reschedules_by_kind.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ProfileReport {
            counted_evals,
            attributed_evals,
            coverage_pct,
            totals: *profiler.totals(),
            bounds_fast_path: metrics.counter("mfs.bounds.fast_path"),
            bounds_boundary_walks: metrics.counter("mfs.bounds.boundary_walks"),
            memo_hits: metrics.counter("mfsa.reuse_memo.hits"),
            memo_fills: metrics.counter("mfsa.reuse_memo.fills"),
            memo_insert_hits: metrics.counter("mfsa.reuse_memo.insert_hits"),
            memo_insert_fallbacks: metrics.counter("mfsa.reuse_memo.insert_fallbacks"),
            bound_evals: metrics.counter("mfsa.bound.evals"),
            cut_steps: metrics.counter("mfsa.prune.cut_steps"),
            cut_instances: metrics.counter("mfsa.prune.cut_instances"),
            frames_reused: metrics.counter("mfs.frames.reused")
                + metrics.counter("mfsa.frames.reused"),
            phases,
            hotspots: profiler.hotspots(top),
            step_hotspots: profiler.step_hotspots(top),
            reschedules_by_kind,
        }
    }

    /// The human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let t = &self.totals;
        out.push_str("== profile summary ==\n");
        let _ = writeln!(
            out,
            "energy evaluations   {} counted, {} attributed ({:.1}% coverage)",
            self.counted_evals, self.attributed_evals, self.coverage_pct
        );
        let _ = writeln!(
            out,
            "work                 {} frames, {} moves, {} local reschedules",
            t.frames_computed, t.moves_committed, t.reschedules
        );
        let _ = writeln!(
            out,
            "bounds               {} fast-path, {} boundary walks",
            self.bounds_fast_path, self.bounds_boundary_walks
        );
        let _ = writeln!(
            out,
            "reuse                {} memo hits, {} memo fills, {} frames reused",
            self.memo_hits, self.memo_fills, self.frames_reused
        );
        if self.memo_insert_hits + self.memo_insert_fallbacks > 0 {
            let _ = writeln!(
                out,
                "mux insertion        {} neutral inserts, {} repack fallbacks",
                self.memo_insert_hits, self.memo_insert_fallbacks
            );
        }
        if self.bound_evals > 0 {
            let _ = writeln!(
                out,
                "pruning              {} bound evals, {} step cuts, {} instance cuts",
                self.bound_evals, self.cut_steps, self.cut_instances
            );
        }
        if !self.reschedules_by_kind.is_empty() {
            let kinds: Vec<String> = self
                .reschedules_by_kind
                .iter()
                .map(|(k, n)| format!("'{k}'×{n}"))
                .collect();
            let _ = writeln!(out, "reschedules by kind  {}", kinds.join(" "));
        }

        if !self.phases.is_empty() {
            out.push_str("\n== phases (by wall time) ==\n");
            out.push_str(
                "phase                        calls   total_ms      evals      moves     frames\n",
            );
            for (name, p) in &self.phases {
                let _ = writeln!(
                    out,
                    "{name:<28} {:>5} {:>10.3} {:>10} {:>10} {:>10}",
                    p.calls,
                    p.total_ns as f64 / 1e6,
                    p.energy_evals,
                    p.moves_committed,
                    p.frames_computed
                );
            }
        }

        if !self.hotspots.is_empty() {
            let _ = writeln!(out, "\n== top {} node hotspots ==", self.hotspots.len());
            out.push_str(
                "node        evals     frames   mf_cells      moves  committed(fu,step)\n",
            );
            for h in &self.hotspots {
                let committed = match h.ledger.committed {
                    Some((fu, step)) => format!("({fu},{step})"),
                    None => "-".to_string(),
                };
                let _ = writeln!(
                    out,
                    "{:<6} {:>10} {:>10} {:>10} {:>10}  {committed}",
                    h.op,
                    h.ledger.energy_evals,
                    h.ledger.frames_computed,
                    h.ledger.mf_cells,
                    h.ledger.moves_committed
                );
            }
        }

        if !self.step_hotspots.is_empty() {
            let _ = writeln!(
                out,
                "\n== top {} step hotspots ==",
                self.step_hotspots.len()
            );
            out.push_str("step        evals      moves\n");
            for (step, s) in &self.step_hotspots {
                let _ = writeln!(
                    out,
                    "{:<6} {:>10} {:>10}",
                    step, s.energy_evals, s.moves_committed
                );
            }
        }
        out
    }

    /// The machine-readable report, as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        let t = &self.totals;
        let _ = write!(
            s,
            "{{\"summary\":{{\"counted_evals\":{},\"attributed_evals\":{},\"coverage_pct\":{:.3},\
             \"frames_computed\":{},\"moves_committed\":{},\"local_reschedules\":{},\
             \"bounds_fast_path\":{},\"bounds_boundary_walks\":{},\
             \"memo_hits\":{},\"memo_fills\":{},\
             \"memo_insert_hits\":{},\"memo_insert_fallbacks\":{},\"frames_reused\":{},\
             \"bound_evals\":{},\"cut_steps\":{},\"cut_instances\":{}}}",
            self.counted_evals,
            self.attributed_evals,
            self.coverage_pct,
            t.frames_computed,
            t.moves_committed,
            t.reschedules,
            self.bounds_fast_path,
            self.bounds_boundary_walks,
            self.memo_hits,
            self.memo_fills,
            self.memo_insert_hits,
            self.memo_insert_fallbacks,
            self.frames_reused,
            self.bound_evals,
            self.cut_steps,
            self.cut_instances
        );
        s.push_str(",\"phases\":[");
        for (i, (name, p)) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"phase\":\"");
            escape_json(&mut s, name);
            let _ = write!(
                s,
                "\",\"calls\":{},\"total_ns\":{},\"evals\":{},\"moves\":{},\"frames\":{}}}",
                p.calls, p.total_ns, p.energy_evals, p.moves_committed, p.frames_computed
            );
        }
        s.push_str("],\"hotspots\":[");
        for (i, h) in self.hotspots.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"op\":{},\"evals\":{},\"frames\":{},\"mf_cells\":{},\"moves\":{}",
                h.op,
                h.ledger.energy_evals,
                h.ledger.frames_computed,
                h.ledger.mf_cells,
                h.ledger.moves_committed
            );
            if let Some((fu, step)) = h.ledger.committed {
                let _ = write!(s, ",\"committed\":[{fu},{step}]");
            }
            s.push('}');
        }
        s.push_str("],\"step_hotspots\":[");
        for (i, (step, l)) in self.step_hotspots.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"step\":{step},\"evals\":{},\"moves\":{}}}",
                l.energy_evals, l.moves_committed
            );
        }
        s.push_str("],\"reschedules_by_kind\":{");
        for (i, (kind, n)) in self.reschedules_by_kind.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            escape_json(&mut s, kind);
            let _ = write!(s, "\":{n}");
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_telemetry::{TraceEvent, TraceSink};

    fn sample_profiler() -> (Profiler, Metrics) {
        let mut p = Profiler::new();
        let mut m = Metrics::new();
        for step in [1u32, 1, 2] {
            p.record(TraceEvent::EnergyEvaluated {
                op: 4,
                pos: (1, step),
                v: 9,
            });
        }
        m.inc("mfs.energy_evaluations", 3);
        p.record(TraceEvent::MoveCommitted {
            op: 4,
            from: None,
            to: (1, 1),
            v: 9,
            system_v: None,
        });
        p.record(TraceEvent::PhaseSpan {
            phase: "mfs.move_loop".into(),
            start_ns: 0,
            dur_ns: 2_000_000,
        });
        m.inc("mfs.bounds.fast_path", 2);
        m.inc("mfs.bounds.boundary_walks", 1);
        m.inc("mfsa.bound.evals", 12);
        m.inc("mfsa.prune.cut_steps", 2);
        m.inc("mfsa.prune.cut_instances", 9);
        (p, m)
    }

    #[test]
    fn report_combines_ledgers_and_counters() {
        let (p, m) = sample_profiler();
        let r = ProfileReport::build(&p, &m, 20);
        assert_eq!(r.counted_evals, 3);
        assert_eq!(r.attributed_evals, 3);
        assert!((r.coverage_pct - 100.0).abs() < 1e-9);
        assert_eq!(r.bounds_fast_path, 2);
        assert_eq!(r.bound_evals, 12);
        assert_eq!(r.cut_steps, 2);
        assert_eq!(r.cut_instances, 9);
        assert_eq!(r.hotspots.len(), 1);
        assert_eq!(r.hotspots[0].op, 4);
        assert_eq!(r.phases[0].0, "mfs.move_loop");
        assert_eq!(r.phases[0].1.energy_evals, 3);
    }

    #[test]
    fn text_and_json_render() {
        let (p, m) = sample_profiler();
        let r = ProfileReport::build(&p, &m, 20);
        let text = r.render_text();
        assert!(text.contains("== profile summary =="));
        assert!(text.contains("100.0% coverage"));
        assert!(text.contains("mfs.move_loop"));
        assert!(text.contains("pruning              12 bound evals, 2 step cuts, 9 instance cuts"));
        let json = r.to_json();
        assert!(json.contains("\"bound_evals\":12,\"cut_steps\":2,\"cut_instances\":9"));
        assert!(json.starts_with("{\"summary\":{\"counted_evals\":3"));
        assert!(json.contains("\"hotspots\":[{\"op\":4,\"evals\":3"));
        assert!(json.contains("\"committed\":[1,1]"));
        assert!(json.ends_with("\"reschedules_by_kind\":{}}"));
    }

    #[test]
    fn empty_report_has_full_coverage() {
        let r = ProfileReport::build(&Profiler::new(), &Metrics::new(), 5);
        assert_eq!(r.counted_evals, 0);
        assert!((r.coverage_pct - 100.0).abs() < 1e-9);
        assert!(r.hotspots.is_empty());
        assert!(r.to_json().contains("\"phases\":[]"));
    }
}
