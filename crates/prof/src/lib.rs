//! **hls-prof** — deterministic cost attribution for the moveframe-hls
//! pipeline.
//!
//! `BENCH_core.json` can say a 5k-node MFSA run burns millions of
//! energy evaluations; this crate says *which nodes, steps and phases*
//! burn them. It layers on hls-telemetry's typed event stream:
//!
//! * [`Profiler`] — a [`hls_telemetry::TraceSink`] that folds
//!   `FrameComputed` / `EnergyEvaluated` / `MoveCommitted` /
//!   `LocalReschedule` / `PhaseSpan` events into per-node, per-step and
//!   per-phase ledgers, with deterministic top-K hotspot extraction
//!   ([`Profiler::hotspots`]) — the seed a feedback-guided iteration
//!   mode consumes;
//! * [`ProfileReport`] — combines the ledgers with the run's
//!   [`hls_telemetry::Metrics`] counters (bounds fast-path vs boundary
//!   walks, reuse-cost memo hits, frame reuse) into a human-readable
//!   report and machine JSON, as emitted by `mfhls profile`.
//!
//! Like every sink, the profiler is write-only: a profiled run is
//! bit-identical to an unprofiled one. Every ledger is an ordered map
//! and every ranking is a total order (count descending, index
//! ascending), so reports are byte-deterministic for a given design and
//! config, regardless of host load or thread count.
//!
//! ```
//! use hls_prof::{Profiler, ProfileReport};
//! use hls_telemetry::{Instrument, Metrics, TraceEvent};
//!
//! let mut profiler = Profiler::new();
//! let mut metrics = Metrics::new();
//! let mut instr = Instrument::new(&mut profiler, &mut metrics);
//! instr.span("demo.place", |i| {
//!     i.inc("mfs.energy_evaluations", 1);
//!     i.emit(TraceEvent::EnergyEvaluated { op: 3, pos: (1, 2), v: 9 });
//! });
//! let report = ProfileReport::build(&profiler, &metrics, 10);
//! assert_eq!(report.hotspots[0].op, 3);
//! assert_eq!(report.coverage_pct, 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod profiler;
mod report;

pub use profiler::{Hotspot, NodeLedger, PhaseLedger, Profiler, StepLedger};
pub use report::ProfileReport;
