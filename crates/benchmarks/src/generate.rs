//! Seeded random layered-DAG workload generator for scaling studies.

use hls_celllib::OpKind;
use hls_dfg::{Dfg, DfgBuilder, SignalId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one generated workload.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
    /// Number of dependency layers.
    pub layers: usize,
    /// Operations per layer.
    pub width: usize,
    /// Operator mix with relative weights (must be non-empty).
    pub mix: Vec<(OpKind, u32)>,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Probability (0–100) that an operand comes from the previous
    /// layer rather than any earlier value.
    pub locality_pct: u32,
    /// Probability (0–100) that a layer is split into two mutually
    /// exclusive branch arms (its operations then share units with the
    /// sibling arm).
    pub branch_pct: u32,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 1,
            layers: 4,
            width: 8,
            mix: vec![
                (OpKind::Mul, 2),
                (OpKind::Add, 3),
                (OpKind::Sub, 2),
                (OpKind::Lt, 1),
            ],
            inputs: 6,
            locality_pct: 70,
            branch_pct: 0,
        }
    }
}

impl GeneratorConfig {
    /// A DSP-flavoured mix (multiplies and adds) of roughly
    /// `ops` operations — convenient for O(l³) sweeps.
    pub fn sized(ops: usize, seed: u64) -> GeneratorConfig {
        let width = (ops as f64).sqrt().ceil() as usize;
        let layers = ops.div_ceil(width.max(1)).max(1);
        GeneratorConfig {
            seed,
            layers,
            width: width.max(1),
            ..GeneratorConfig::default()
        }
    }
}

/// Seed of the canonical scaling workload — shared by the
/// `core_scaling` benchmark and `mfhls profile gen:OPS` so both tools
/// observe the same graphs.
pub const SCALING_SEED: u64 = 42;

/// Dependency-layer count of the canonical scaling workload. Depth is
/// fixed and width grows with the requested op count, so the critical
/// path (and thus the control-step budget) stays constant across sizes
/// and the sweep isolates how cost scales with operation count.
pub const SCALING_LAYERS: usize = 32;

/// The canonical scaling workload of roughly `ops` operations: the
/// fixed-depth, growing-width shape the `hls-explore`/`hls-serve`
/// batches hit in practice. This is the single definition used by both
/// `core_scaling` (BENCH_core.json) and `mfhls profile gen:OPS` — a
/// profile taken here attributes exactly the work the benchmark gate
/// counts.
pub fn scaling_workload(ops: usize) -> GeneratorConfig {
    GeneratorConfig {
        seed: SCALING_SEED,
        layers: SCALING_LAYERS,
        width: ops.div_ceil(SCALING_LAYERS).max(1),
        inputs: 16,
        branch_pct: 10,
        ..GeneratorConfig::default()
    }
}

/// Configuration of a clustered workload: `regions` weakly-coupled
/// layered DAGs, where each operand crosses into an earlier region with
/// probability `cut_pct` — the knob that sets how dense the cut between
/// natural partitions is.
#[derive(Debug, Clone)]
pub struct ClusteredConfig {
    /// Shape of each region (seed, layers, width, mix, inputs, …).
    pub region: GeneratorConfig,
    /// Number of weakly-coupled regions.
    pub regions: usize,
    /// Probability (0–100) that an operand of a non-first region comes
    /// from an earlier region instead of its own.
    pub cut_pct: u32,
}

/// Region size target of the canonical clustered workload — matches
/// the partitioner's automatic shard sizing, so `--shard auto` finds
/// one natural region per shard.
pub const CLUSTER_REGION_OPS: usize = 16_000;

/// Cross-region operand probability of the canonical clustered
/// workload: sparse enough that regions stay weakly coupled, dense
/// enough that every seam carries real precedence.
pub const CLUSTER_CUT_PCT: u32 = 5;

/// The canonical clustered scaling workload of roughly `ops`
/// operations: `ops / 16k` regions (at least two) of fixed depth,
/// 5% cross-region operands. This is the single definition shared by
/// the `shard_scaling` benchmark (BENCH_partition.json) and
/// `mfhls profile gen:clustered:OPS`.
pub fn clustered_workload(ops: usize) -> ClusteredConfig {
    let regions = ops.div_ceil(CLUSTER_REGION_OPS).max(2);
    let per_region = ops.div_ceil(regions);
    ClusteredConfig {
        region: GeneratorConfig {
            seed: SCALING_SEED,
            layers: SCALING_LAYERS,
            width: per_region.div_ceil(SCALING_LAYERS).max(1),
            inputs: 16,
            branch_pct: 10,
            ..GeneratorConfig::default()
        },
        regions,
        cut_pct: CLUSTER_CUT_PCT,
    }
}

/// Generates a clustered DAG: `regions` copies of the layered random
/// shape laid out back to back, with `cut_pct`% of the later regions'
/// operands drawn from earlier regions. Regions are emitted in
/// dependency order, so the graph stays acyclic and a levelized
/// partitioner recovers the regions as its natural shards.
///
/// ```
/// use hls_benchmarks::generate::{generate_clustered, clustered_workload};
///
/// let dfg = generate_clustered(&clustered_workload(2_000));
/// // Deterministic: the same config reproduces the same graph.
/// assert_eq!(generate_clustered(&clustered_workload(2_000)), dfg);
/// ```
///
/// # Panics
///
/// Panics if `regions` is zero or the region shape is degenerate (see
/// [`generate`]).
pub fn generate_clustered(config: &ClusteredConfig) -> Dfg {
    assert!(config.regions >= 1, "need at least one region");
    let rc = &config.region;
    assert!(!rc.mix.is_empty(), "the operator mix must be non-empty");
    assert!(
        rc.layers >= 1 && rc.width >= 1 && rc.inputs >= 1,
        "generator dimensions must be positive"
    );
    let mut rng = StdRng::seed_from_u64(rc.seed);
    let mut b = DfgBuilder::new(format!(
        "clustered-r{}l{}w{}c{}s{}",
        config.regions, rc.layers, rc.width, config.cut_pct, rc.seed
    ));
    let total_weight: u32 = rc.mix.iter().map(|&(_, w)| w).sum();
    // Values produced by fully finished regions — the cross-cluster pool.
    let mut earlier_regions: Vec<SignalId> = Vec::new();
    for region in 0..config.regions {
        let inputs: Vec<SignalId> = (0..rc.inputs)
            .map(|i| b.input(&format!("r{region}in{i}")))
            .collect();
        let mut prev_layer: Vec<SignalId> = inputs.clone();
        let mut region_values: Vec<SignalId> = inputs;
        for layer in 0..rc.layers {
            let mut this_layer = Vec::with_capacity(rc.width);
            let branch = if rng.gen_range(0..100) < rc.branch_pct {
                Some(b.begin_branch())
            } else {
                None
            };
            for slot in 0..rc.width {
                if let Some(br) = branch {
                    b.enter_arm(br, u32::from(slot >= rc.width / 2));
                }
                let mut pick = rng.gen_range(0..total_weight);
                let kind = rc
                    .mix
                    .iter()
                    .find(|&&(_, w)| {
                        if pick < w {
                            true
                        } else {
                            pick -= w;
                            false
                        }
                    })
                    .map(|&(k, _)| k)
                    .expect("weights sum to total");
                let operand = |rng: &mut StdRng| -> SignalId {
                    if !earlier_regions.is_empty() && rng.gen_range(0..100) < config.cut_pct {
                        earlier_regions[rng.gen_range(0..earlier_regions.len())]
                    } else if rng.gen_range(0..100) < rc.locality_pct && !prev_layer.is_empty() {
                        prev_layer[rng.gen_range(0..prev_layer.len())]
                    } else {
                        region_values[rng.gen_range(0..region_values.len())]
                    }
                };
                let ins: Vec<SignalId> = (0..kind.arity()).map(|_| operand(&mut rng)).collect();
                let out = b
                    .op(&format!("r{region}l{layer}n{slot}"), kind, &ins)
                    .expect("generated names are unique");
                if branch.is_some() {
                    b.exit_arm();
                }
                this_layer.push(out);
            }
            region_values.extend(this_layer.iter().copied());
            prev_layer = this_layer;
        }
        earlier_regions.extend(region_values);
    }
    b.finish().expect("generated graphs are well-formed")
}

/// Generates a random layered DAG: layer 0 reads the primary inputs,
/// each later operation draws operands from the previous layer (with
/// `locality_pct` probability) or any earlier value.
///
/// ```
/// use hls_benchmarks::generate::{generate, GeneratorConfig};
///
/// let dfg = generate(&GeneratorConfig::default());
/// assert_eq!(dfg.node_count(), 4 * 8);
/// // Deterministic: the same config reproduces the same graph.
/// assert_eq!(generate(&GeneratorConfig::default()), dfg);
/// ```
///
/// # Panics
///
/// Panics if the mix is empty or `layers`, `width` or `inputs` is zero.
pub fn generate(config: &GeneratorConfig) -> Dfg {
    assert!(!config.mix.is_empty(), "the operator mix must be non-empty");
    assert!(
        config.layers >= 1 && config.width >= 1 && config.inputs >= 1,
        "generator dimensions must be positive"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = DfgBuilder::new(format!(
        "gen-l{}w{}s{}",
        config.layers, config.width, config.seed
    ));
    let inputs: Vec<SignalId> = (0..config.inputs)
        .map(|i| b.input(&format!("in{i}")))
        .collect();
    let total_weight: u32 = config.mix.iter().map(|&(_, w)| w).sum();
    let mut prev_layer: Vec<SignalId> = inputs.clone();
    let mut all_values: Vec<SignalId> = inputs;
    for layer in 0..config.layers {
        let mut this_layer = Vec::with_capacity(config.width);
        // Optionally split this layer into two exclusive branch arms.
        let branch = if rng.gen_range(0..100) < config.branch_pct {
            Some(b.begin_branch())
        } else {
            None
        };
        for slot in 0..config.width {
            if let Some(br) = branch {
                // First half in arm 0, second half in arm 1.
                b.enter_arm(br, u32::from(slot >= config.width / 2));
            }
            let mut pick = rng.gen_range(0..total_weight);
            let kind = config
                .mix
                .iter()
                .find(|&&(_, w)| {
                    if pick < w {
                        true
                    } else {
                        pick -= w;
                        false
                    }
                })
                .map(|&(k, _)| k)
                .expect("weights sum to total");
            let operand = |rng: &mut StdRng| -> SignalId {
                if rng.gen_range(0..100) < config.locality_pct && !prev_layer.is_empty() {
                    prev_layer[rng.gen_range(0..prev_layer.len())]
                } else {
                    all_values[rng.gen_range(0..all_values.len())]
                }
            };
            let ins: Vec<SignalId> = (0..kind.arity()).map(|_| operand(&mut rng)).collect();
            let out = b
                .op(&format!("l{layer}n{slot}"), kind, &ins)
                .expect("generated names are unique");
            if branch.is_some() {
                b.exit_arm();
            }
            this_layer.push(out);
        }
        all_values.extend(this_layer.iter().copied());
        prev_layer = this_layer;
    }
    b.finish().expect("generated graphs are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::TimingSpec;
    use hls_dfg::CriticalPath;

    #[test]
    fn produces_the_requested_size() {
        let cfg = GeneratorConfig {
            layers: 5,
            width: 10,
            ..Default::default()
        };
        let g = generate(&cfg);
        assert_eq!(g.node_count(), 50);
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let a = generate(&GeneratorConfig {
            seed: 7,
            ..Default::default()
        });
        let b = generate(&GeneratorConfig {
            seed: 7,
            ..Default::default()
        });
        let c = generate(&GeneratorConfig {
            seed: 8,
            ..Default::default()
        });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn critical_path_is_bounded_by_layers() {
        let cfg = GeneratorConfig {
            layers: 6,
            width: 4,
            ..Default::default()
        };
        let g = generate(&cfg);
        let cp = CriticalPath::compute(&g, &TimingSpec::uniform_single_cycle());
        assert!(cp.steps() <= 6);
        assert!(cp.steps() >= 1);
    }

    #[test]
    fn sized_config_approximates_the_op_count() {
        for ops in [16, 64, 100] {
            let g = generate(&GeneratorConfig::sized(ops, 3));
            let got = g.node_count();
            assert!(
                got >= ops && got <= ops + 2 * (ops as f64).sqrt() as usize + 2,
                "asked {ops}, got {got}"
            );
        }
    }

    #[test]
    fn scaling_workload_is_deterministic_and_fixed_depth() {
        let a = generate(&scaling_workload(1_000));
        let b = generate(&scaling_workload(1_000));
        assert_eq!(a, b);
        assert_eq!(
            a.node_count(),
            1_000usize.div_ceil(SCALING_LAYERS) * SCALING_LAYERS
        );
        let cp = CriticalPath::compute(&a, &TimingSpec::uniform_single_cycle());
        assert!(cp.steps() <= SCALING_LAYERS);
    }

    #[test]
    fn clustered_workload_is_deterministic_and_weakly_coupled() {
        let cfg = clustered_workload(4_000);
        assert_eq!(cfg.regions, 2);
        let a = generate_clustered(&cfg);
        assert_eq!(a, generate_clustered(&cfg));
        // Region sizes: regions × (layers × width + inputs) nodes+inputs;
        // node_count counts ops only.
        assert_eq!(
            a.node_count(),
            cfg.regions * cfg.region.layers * cfg.region.width
        );
        // Cross-region coupling exists but is sparse: count edges from a
        // producer in region 0 to a consumer in region 1 (region r spans
        // a contiguous id block in creation order).
        let per_region = cfg.region.layers * cfg.region.width;
        let mut cross = 0usize;
        let mut total = 0usize;
        for &n in a.topo_order() {
            for &m in a.succs(n) {
                total += 1;
                if m.index() / per_region != n.index() / per_region {
                    cross += 1;
                }
            }
        }
        assert!(cross > 0, "cut_pct=5 must create some cross-region edges");
        assert!(
            cross * 4 < total,
            "regions must stay weakly coupled: {cross}/{total} edges cross"
        );
    }

    #[test]
    fn clustered_zero_cut_produces_independent_regions() {
        let mut cfg = clustered_workload(2_000);
        cfg.cut_pct = 0;
        let g = generate_clustered(&cfg);
        let per_region = cfg.region.layers * cfg.region.width;
        for &n in g.topo_order() {
            for &m in g.succs(n) {
                assert_eq!(
                    m.index() / per_region,
                    n.index() / per_region,
                    "cut_pct=0 must keep regions independent"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_mix_panics() {
        let cfg = GeneratorConfig {
            mix: vec![],
            ..Default::default()
        };
        let _ = generate(&cfg);
    }
}

#[cfg(test)]
mod branch_tests {
    use super::*;

    #[test]
    fn branchy_graphs_contain_exclusive_pairs() {
        let cfg = GeneratorConfig {
            seed: 5,
            layers: 4,
            width: 6,
            branch_pct: 100,
            ..Default::default()
        };
        let g = generate(&cfg);
        let mut exclusive_pairs = 0;
        let ids: Vec<_> = g.node_ids().collect();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                if g.mutually_exclusive(a, b) {
                    exclusive_pairs += 1;
                }
            }
        }
        assert!(
            exclusive_pairs > 0,
            "branch_pct=100 must create exclusivity"
        );
    }

    #[test]
    fn branch_free_default_has_no_exclusivity() {
        let g = generate(&GeneratorConfig::default());
        let ids: Vec<_> = g.node_ids().collect();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                assert!(!g.mutually_exclusive(a, b));
            }
        }
    }
}
