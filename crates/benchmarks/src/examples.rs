//! The paper's six experiment configurations (Table 1 / Table 2 rows).

use std::collections::BTreeSet;

use hls_celllib::{ClockPeriod, OpKind, TimingSpec};
use hls_dfg::{Dfg, DfgBuilder};

use crate::classic;

/// The special feature of an example, as flagged in Table 1's second
/// column (`1`, `2`, `C`, `F`, `S`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Feature {
    /// All operations single-cycle ("1").
    SingleCycle,
    /// Two-cycle multiplication ("2").
    TwoCycleMultiply,
    /// Chaining ("C") with the given clock period.
    Chaining(ClockPeriod),
    /// Functional pipelining ("F"): one latency per swept time
    /// constraint.
    FunctionalPipelining(Vec<u32>),
    /// Structural pipelining ("S") of the given operators, with
    /// two-cycle multiplies.
    StructuralPipelining(BTreeSet<OpKind>),
}

/// One of the paper's six design examples with its sweep parameters.
#[derive(Debug, Clone)]
pub struct Example {
    /// Example number (1–6).
    pub id: u8,
    /// A short name.
    pub name: &'static str,
    /// The data-flow graph.
    pub dfg: Dfg,
    /// Operation timing.
    pub spec: TimingSpec,
    /// The Table-1 feature.
    pub feature: Feature,
    /// Time constraints swept in Table 1.
    pub time_constraints: Vec<u32>,
    /// The time constraint used for the Table-2 (MFSA) row.
    pub mfsa_cs: u32,
}

impl Example {
    /// The chaining clock, when the feature is chaining.
    pub fn clock(&self) -> Option<ClockPeriod> {
        match self.feature {
            Feature::Chaining(c) => Some(c),
            _ => None,
        }
    }

    /// The functional-pipelining latency paired with `cs`, when the
    /// feature is functional pipelining.
    pub fn latency_for(&self, cs: u32) -> Option<u32> {
        match &self.feature {
            Feature::FunctionalPipelining(latencies) => self
                .time_constraints
                .iter()
                .position(|&t| t == cs)
                .and_then(|i| latencies.get(i).copied()),
            _ => None,
        }
    }

    /// The structurally pipelined operators, when the feature is
    /// structural pipelining.
    pub fn pipelined_ops(&self) -> Option<&BTreeSet<OpKind>> {
        match &self.feature {
            Feature::StructuralPipelining(ops) => Some(ops),
            _ => None,
        }
    }
}

/// Example 1: the FACET/Tseng-style mixed-operator design
/// (`*, +, −, =, &, |`; all single-cycle; T ∈ {4, 5}).
pub fn ex1() -> Example {
    Example {
        id: 1,
        name: "facet",
        dfg: classic::facet_style(),
        spec: TimingSpec::uniform_single_cycle(),
        feature: Feature::SingleCycle,
        time_constraints: vec![4, 5],
        mfsa_cs: 4,
    }
}

/// Example 2: a chained add/subtract design ("C"; T = 4 with two
/// operations chained per 100 ns step).
pub fn ex2() -> Example {
    // Two interleaved four-op chains plus cross links: 4 adds, 4 subs,
    // 48 ns each — two chain into one 100 ns step.
    let mut b = DfgBuilder::new("chained");
    let x = b.input("x");
    let y = b.input("y");
    let z = b.input("z");
    let p1 = b.op("p1", OpKind::Add, &[x, y]).expect("ex2");
    let p2 = b.op("p2", OpKind::Sub, &[p1, z]).expect("ex2");
    let p3 = b.op("p3", OpKind::Add, &[p2, x]).expect("ex2");
    let p4 = b.op("p4", OpKind::Sub, &[p3, y]).expect("ex2");
    let q1 = b.op("q1", OpKind::Sub, &[y, z]).expect("ex2");
    let q2 = b.op("q2", OpKind::Add, &[q1, x]).expect("ex2");
    let q3 = b.op("q3", OpKind::Sub, &[q2, p2]).expect("ex2");
    let _q4 = b.op("q4", OpKind::Add, &[q3, p4]).expect("ex2");
    Example {
        id: 2,
        name: "chained",
        dfg: b.finish().expect("ex2 is well-formed"),
        spec: TimingSpec::with_delays(),
        feature: Feature::Chaining(ClockPeriod::new(100)),
        time_constraints: vec![4],
        mfsa_cs: 7,
    }
}

/// Example 3: a small pipelined filter (`*, +, −, >`; single-cycle;
/// functionally pipelined with latencies 2/3/4 at T ∈ {4, 6, 8}).
pub fn ex3() -> Example {
    let mut b = DfgBuilder::new("pipelined-filter");
    let x = b.input("x");
    let y = b.input("y");
    let c1 = b.input("c1");
    let c2 = b.input("c2");
    let c3 = b.input("c3");
    let thr = b.input("thr");
    let m1 = b.op("m1", OpKind::Mul, &[x, c1]).expect("ex3");
    let m2 = b.op("m2", OpKind::Mul, &[x, c2]).expect("ex3");
    let m3 = b.op("m3", OpKind::Mul, &[y, c3]).expect("ex3");
    let a1 = b.op("a1", OpKind::Add, &[m1, m2]).expect("ex3");
    let s1 = b.op("s1", OpKind::Sub, &[m3, y]).expect("ex3");
    let a2 = b.op("a2", OpKind::Add, &[a1, s1]).expect("ex3");
    let _s2 = b.op("s2", OpKind::Sub, &[a1, x]).expect("ex3");
    let _g1 = b.op("g1", OpKind::Gt, &[a2, thr]).expect("ex3");
    Example {
        id: 3,
        name: "pipelined-filter",
        dfg: b.finish().expect("ex3 is well-formed"),
        spec: TimingSpec::uniform_single_cycle(),
        feature: Feature::FunctionalPipelining(vec![2, 3, 4]),
        time_constraints: vec![4, 6, 8],
        mfsa_cs: 4,
    }
}

/// Example 4: the HAL differential-equation solver (single-cycle sweep
/// T ∈ {8, 9, 13} as in the paper's row; also commonly run at T = 4).
pub fn ex4() -> Example {
    Example {
        id: 4,
        name: "diffeq",
        dfg: classic::diffeq(),
        spec: TimingSpec::uniform_single_cycle(),
        feature: Feature::SingleCycle,
        time_constraints: vec![8, 9, 13],
        mfsa_cs: 8,
    }
}

/// Example 5: the AR-lattice filter (two-cycle multiplies on a
/// structurally pipelined multiplier; T ∈ {9, 10, 13}).
pub fn ex5() -> Example {
    Example {
        id: 5,
        name: "ar-filter",
        dfg: classic::ar_filter(),
        spec: TimingSpec::two_cycle_multiply(),
        feature: Feature::StructuralPipelining([OpKind::Mul].into_iter().collect()),
        time_constraints: vec![9, 10, 13],
        mfsa_cs: 9,
    }
}

/// Example 6: the fifth-order elliptic wave filter (two-cycle
/// multiplies on a structurally pipelined multiplier; T ∈ {17, 19, 21}).
pub fn ex6() -> Example {
    Example {
        id: 6,
        name: "ewf",
        dfg: classic::ewf(),
        spec: TimingSpec::two_cycle_multiply(),
        feature: Feature::StructuralPipelining([OpKind::Mul].into_iter().collect()),
        time_constraints: vec![17, 19, 21],
        mfsa_cs: 17,
    }
}

/// All six examples, in table order.
pub fn all() -> Vec<Example> {
    vec![ex1(), ex2(), ex3(), ex4(), ex5(), ex6()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_dfg::CriticalPath;

    #[test]
    fn six_examples_with_distinct_ids() {
        let examples = all();
        assert_eq!(examples.len(), 6);
        let ids: BTreeSet<u8> = examples.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn every_sweep_point_is_feasible() {
        for e in all() {
            let cp = CriticalPath::compute(&e.dfg, &e.spec);
            if let Some(clock) = e.clock() {
                // Chained examples: feasibility follows delays, not
                // cycle counts — check the delay-based bound instead
                // (the integration tests run the real chained frames).
                let worst_chain_ns = cp.steps() as u32 * 48;
                for &t in &e.time_constraints {
                    assert!(
                        worst_chain_ns <= t * clock.as_u32(),
                        "{}: chained path does not fit T = {t}",
                        e.name
                    );
                }
                continue;
            }
            for &t in &e.time_constraints {
                assert!(
                    cp.steps() as u32 <= t,
                    "{}: critical path {} exceeds T = {t}",
                    e.name,
                    cp.steps()
                );
            }
            assert!(cp.steps() as u32 <= e.mfsa_cs);
        }
    }

    #[test]
    fn ex2_chains_within_its_clock() {
        let e = ex2();
        let clock = e.clock().expect("ex2 chains");
        // Two 48 ns ops fit a 100 ns step; three do not.
        assert!(clock.as_u32() >= 2 * 48);
        assert!(clock.as_u32() < 3 * 48);
    }

    #[test]
    fn ex3_latencies_pair_with_constraints() {
        let e = ex3();
        assert_eq!(e.latency_for(4), Some(2));
        assert_eq!(e.latency_for(6), Some(3));
        assert_eq!(e.latency_for(8), Some(4));
        assert_eq!(e.latency_for(5), None);
    }

    #[test]
    fn structural_examples_pipeline_the_multiplier() {
        for e in [ex5(), ex6()] {
            let ops = e.pipelined_ops().expect("structural feature");
            assert!(ops.contains(&OpKind::Mul));
            assert_eq!(e.spec.cycles(OpKind::Mul), 2);
        }
    }
}
