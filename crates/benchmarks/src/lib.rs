//! Benchmark DFGs for the `moveframe-hls` workspace.
//!
//! The DAC-1992 paper evaluates MFS/MFSA on "six design examples from
//! the literature" without naming them; only the operator mixes survive
//! in its tables. This crate provides
//!
//! * the classic HLS benchmarks of that era, reconstructed from their
//!   published shapes ([`classic`]): the HAL differential-equation
//!   solver, a fifth-order elliptic-wave-filter-like graph, an
//!   auto-regressive lattice filter, a 16-tap FIR filter and a
//!   FACET/Tseng-style mixed-operator example;
//! * the six experiment configurations ([`examples`]) matching the
//!   paper's Table 1 rows (operator mixes, timing profiles, chaining /
//!   pipelining features and time-constraint sweeps); and
//! * a seeded random layered-DAG workload generator ([`generate`]) for
//!   the scaling benches; and
//! * memory-access kernels ([`memory`]): an array-coefficient FIR and a
//!   matrix–vector product whose schedule length is governed by the
//!   memory bank's port count (the port-sweep experiment).
//!
//! Where the original graph is not recoverable (see `DESIGN.md`), the
//! reconstruction matches the published operation counts and critical
//! paths; `EXPERIMENTS.md` reports measured-vs-paper per example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classic;
pub mod examples;
pub mod generate;
pub mod memory;
