//! Memory-access benchmark kernels: array-based graphs that stress bank
//! port scheduling.
//!
//! Both kernels follow the realistic on-chip-memory pattern: a *fill*
//! phase stores streamed inputs into a banked array, a *compute* phase
//! loads them back (possibly many times) and combines them with
//! operator nodes, and the results are stored into a second array in
//! the same bank. Stores to one array are serialised by data-ordering
//! tokens; loads between stores are free to run concurrently — so the
//! minimum schedule length is a direct function of the bank's port
//! count, which is exactly what the port-sweep experiment measures.

use hls_celllib::OpKind;
use hls_dfg::{Dfg, DfgBuilder};

/// A `taps`-tap FIR filter with its coefficients held in a banked
/// array.
///
/// Phase 1 stores the `taps` streamed coefficients into `c[taps]`
/// (serialised by ordering tokens); phase 2 loads each coefficient
/// back, multiplies it with its sample input and reduces the products
/// with an adder tree; the final sum is stored into `y[1]`. With `p`
/// ports the load phase needs `⌈taps / p⌉` steps, so schedule length
/// improves monotonically with the port count.
///
/// `4·taps` nodes: `taps` stores + `taps` loads + `taps` multiplies +
/// `taps − 1` additions + 1 result store.
///
/// # Panics
///
/// Panics if `taps` is zero or `ports` is zero.
///
/// ```
/// let dfg = hls_benchmarks::memory::array_fir(8, 2);
/// assert_eq!(dfg.node_count(), 32);
/// assert_eq!(dfg.memory().banks()[0].ports(), 2);
/// ```
pub fn array_fir(taps: usize, ports: u32) -> Dfg {
    assert!(taps >= 1, "a FIR filter needs at least one tap");
    assert!(ports >= 1, "a bank needs at least one port");
    let mut b = DfgBuilder::new(format!("array_fir{taps}_p{ports}"));
    let bank = b.declare_bank("coeff_ram", ports);
    let c = b.declare_array("c", taps as u32, bank);
    let y = b.declare_array("y", 1, bank);

    // Fill: stream the coefficients into the array.
    for i in 0..taps {
        let ci = b.input(&format!("c{i}"));
        let idx = b.constant(&format!("ci{i}"), i as i64);
        b.store(&format!("wc{i}"), c, idx, ci).expect("array_fir");
    }
    // Compute: load each coefficient back and form the products.
    let mut level: Vec<_> = (0..taps)
        .map(|i| {
            let x = b.input(&format!("x{i}"));
            let idx = b.constant(&format!("li{i}"), i as i64);
            let cv = b.load(&format!("rc{i}"), c, idx).expect("array_fir");
            b.op(&format!("m{i}"), OpKind::Mul, &[cv, x])
                .expect("array_fir")
        })
        .collect();
    // Adder tree.
    let mut n = 0usize;
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    n += 1;
                    b.op(&format!("a{n}"), OpKind::Add, &[pair[0], pair[1]])
                        .expect("array_fir")
                } else {
                    pair[0]
                }
            })
            .collect();
    }
    let zero = b.constant("yi", 0);
    b.store("wy", y, zero, level[0]).expect("array_fir");
    b.finish().expect("array_fir is well-formed")
}

/// An `n × n` matrix–vector product with the vector held in a banked
/// array.
///
/// Phase 1 stores the `n` vector elements into `x[n]`; phase 2 computes
/// each row sum `y_i = Σ_j m_ij · x[j]`, re-loading every vector
/// element once per row (`n²` loads), and stores the `n` results into
/// `y[n]`. The `n²` loads dominate and are limited only by the bank's
/// port count.
///
/// `n² · 2 + (n² − n) + 2n` nodes: `n` fill stores + `n²` loads + `n²`
/// multiplies + `n(n−1)` additions + `n` result stores.
///
/// # Panics
///
/// Panics if `n` is zero or `ports` is zero.
///
/// ```
/// let dfg = hls_benchmarks::memory::matvec(3, 2);
/// assert_eq!(dfg.node_count(), 3 + 9 + 9 + 6 + 3);
/// ```
pub fn matvec(n: usize, ports: u32) -> Dfg {
    assert!(n >= 1, "matvec needs at least a 1x1 matrix");
    assert!(ports >= 1, "a bank needs at least one port");
    let mut b = DfgBuilder::new(format!("matvec{n}_p{ports}"));
    let bank = b.declare_bank("vec_ram", ports);
    let x = b.declare_array("x", n as u32, bank);
    let y = b.declare_array("y", n as u32, bank);

    for j in 0..n {
        let xj = b.input(&format!("x{j}"));
        let idx = b.constant(&format!("xi{j}"), j as i64);
        b.store(&format!("wx{j}"), x, idx, xj).expect("matvec");
    }
    for i in 0..n {
        let mut terms: Vec<_> = (0..n)
            .map(|j| {
                let m = b.input(&format!("m{i}_{j}"));
                let idx = b.constant(&format!("r{i}i{j}"), j as i64);
                let xv = b.load(&format!("r{i}x{j}"), x, idx).expect("matvec");
                b.op(&format!("p{i}_{j}"), OpKind::Mul, &[m, xv])
                    .expect("matvec")
            })
            .collect();
        let mut k = 0usize;
        while terms.len() > 1 {
            terms = terms
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        k += 1;
                        b.op(&format!("s{i}_{k}"), OpKind::Add, &[pair[0], pair[1]])
                            .expect("matvec")
                    } else {
                        pair[0]
                    }
                })
                .collect();
        }
        let idx = b.constant(&format!("yi{i}"), i as i64);
        b.store(&format!("wy{i}"), y, idx, terms[0])
            .expect("matvec");
    }
    b.finish().expect("matvec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_fir_shape() {
        for taps in [1, 4, 8] {
            let g = array_fir(taps, 2);
            assert_eq!(g.node_count(), 4 * taps);
            let mem = g.memory();
            assert_eq!(mem.banks().len(), 1);
            assert_eq!(mem.arrays().len(), 2);
            assert_eq!(mem.array_by_name("c").unwrap().size(), taps as u32);
        }
    }

    #[test]
    fn matvec_shape() {
        for n in [1, 2, 3] {
            let g = matvec(n, 2);
            assert_eq!(g.node_count(), 2 * n * n + (n * n - n) + 2 * n);
            assert_eq!(g.memory().arrays().len(), 2);
        }
    }

    #[test]
    fn port_count_is_recorded() {
        for p in [1, 2, 4] {
            assert_eq!(array_fir(4, p).memory().banks()[0].ports(), p);
            assert_eq!(matvec(2, p).memory().banks()[0].ports(), p);
        }
    }
}
