//! Classic HLS benchmark graphs of the DAC-1992 era.
//!
//! The HAL differential-equation solver is reconstructed exactly from
//! its published form; the filters are *shape-faithful*
//! reconstructions: operation counts and critical paths match the
//! published benchmarks, the precise interconnection is re-derived (see
//! `DESIGN.md`, substitutions).

use hls_celllib::OpKind;
use hls_dfg::{Dfg, DfgBuilder};

/// The HAL differential-equation benchmark (Paulin & Knight): one Euler
/// step of `y'' + 3xy' + 3y = 0` —
/// `x1 = x + dx; u1 = u − 3·x·u·dx − 3·y·dx; y1 = y + u·dx; c = x1 < a`.
///
/// 11 operations: 6 multiplies, 2 additions, 2 subtractions, 1
/// comparison; critical path 4 (single-cycle) / 6 (2-cycle multiply).
///
/// ```
/// let dfg = hls_benchmarks::classic::diffeq();
/// assert_eq!(dfg.node_count(), 11);
/// ```
pub fn diffeq() -> Dfg {
    let mut b = DfgBuilder::new("diffeq");
    let x = b.input("x");
    let y = b.input("y");
    let u = b.input("u");
    let dx = b.input("dx");
    let a = b.input("a");
    let three = b.constant("three", 3);
    let m1 = b.op("m1", OpKind::Mul, &[three, x]).expect("diffeq");
    let m2 = b.op("m2", OpKind::Mul, &[u, dx]).expect("diffeq");
    let m3 = b.op("m3", OpKind::Mul, &[three, y]).expect("diffeq");
    let m4 = b.op("m4", OpKind::Mul, &[m1, m2]).expect("diffeq");
    let m5 = b.op("m5", OpKind::Mul, &[dx, m3]).expect("diffeq");
    let m6 = b.op("m6", OpKind::Mul, &[u, dx]).expect("diffeq");
    let s1 = b.op("s1", OpKind::Sub, &[u, m4]).expect("diffeq");
    let _s2 = b.op("s2", OpKind::Sub, &[s1, m5]).expect("diffeq");
    let a1 = b.op("a1", OpKind::Add, &[x, dx]).expect("diffeq");
    let _a2 = b.op("a2", OpKind::Add, &[y, m6]).expect("diffeq");
    let _c1 = b.op("c1", OpKind::Lt, &[a1, a]).expect("diffeq");
    b.finish().expect("diffeq is well-formed")
}

/// A `taps`-tap transversal FIR filter with an adder tree:
/// `taps` multiplies and `taps − 1` additions.
///
/// # Panics
///
/// Panics if `taps` is zero.
pub fn fir(taps: usize) -> Dfg {
    assert!(taps >= 1, "a FIR filter needs at least one tap");
    let mut b = DfgBuilder::new(format!("fir{taps}"));
    let mut level: Vec<_> = (0..taps)
        .map(|i| {
            let x = b.input(&format!("x{i}"));
            let c = b.input(&format!("c{i}"));
            b.op(&format!("m{i}"), OpKind::Mul, &[x, c]).expect("fir")
        })
        .collect();
    let mut adder = 0usize;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let s = b
                    .op(&format!("a{adder}"), OpKind::Add, &[pair[0], pair[1]])
                    .expect("fir");
                adder += 1;
                next.push(s);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    b.finish().expect("fir is well-formed")
}

/// An auto-regressive-lattice-style filter: 16 multiplies, 8 additions
/// and 4 subtractions in two multiply levels, matching the published
/// AR-filter multiply count; critical path 5 (single-cycle) / 7
/// (2-cycle multiply).
///
/// Structure: 8 input-stage multiplies, pairwise combined by 4 adds,
/// 8 second-stage multiplies, pairwise combined by 4 adds, then 4
/// output updates (lattice subtractions).
pub fn ar_filter() -> Dfg {
    let mut b = DfgBuilder::new("ar-filter");
    let ins: Vec<_> = (0..4).map(|i| b.input(&format!("x{i}"))).collect();
    let ks: Vec<_> = (0..8).map(|i| b.input(&format!("k{i}"))).collect();
    // Level 1: 8 multiplies.
    let l1: Vec<_> = (0..8)
        .map(|i| {
            b.op(&format!("m{i}"), OpKind::Mul, &[ins[i / 2], ks[i]])
                .expect("ar")
        })
        .collect();
    // Level 2: 4 adds.
    let l2: Vec<_> = (0..4)
        .map(|i| {
            b.op(&format!("a{i}"), OpKind::Add, &[l1[2 * i], l1[2 * i + 1]])
                .expect("ar")
        })
        .collect();
    // Level 3: 8 multiplies.
    let l3: Vec<_> = (0..8)
        .map(|i| {
            b.op(&format!("m{}", 8 + i), OpKind::Mul, &[l2[i / 2], ks[7 - i]])
                .expect("ar")
        })
        .collect();
    // Level 4: 4 adds.
    let l4: Vec<_> = (0..4)
        .map(|i| {
            b.op(
                &format!("a{}", 4 + i),
                OpKind::Add,
                &[l3[2 * i], l3[2 * i + 1]],
            )
            .expect("ar")
        })
        .collect();
    // Level 5: 4 output updates (lattice subtractions).
    for i in 0..4 {
        b.op(&format!("s{i}"), OpKind::Sub, &[l4[i], ins[i]])
            .expect("ar");
    }
    b.finish().expect("ar filter is well-formed")
}

/// A fifth-order elliptic-wave-filter-like graph: 26 additions and 8
/// multiplies, arranged so the critical path is 13 single-cycle steps /
/// 17 steps with a 2-cycle multiplier — the published EWF figures the
/// paper's example 6 sweeps (T ∈ {17, 19, 21}).
///
/// The spine alternates addition pairs and multiplies
/// (`a·a·m·a·a·m·a·a·m·a·a·m·a` = 9 adds + 4 muls); the remaining 17
/// adds and 4 muls hang off the spine with increasing slack, mimicking
/// the wave filter's adaptor structure.
pub fn ewf() -> Dfg {
    let mut b = DfgBuilder::new("ewf");
    let input = b.input("in");
    let states: Vec<_> = (0..7).map(|i| b.input(&format!("sv{i}"))).collect();
    let coeffs: Vec<_> = (0..8).map(|i| b.input(&format!("c{i}"))).collect();
    let mut adds = 0usize;
    let mut muls = 0usize;

    // Spine: 9 adds and 4 multiplies, strictly chained — depth 13
    // single-cycle, 17 with a 2-cycle multiplier.
    let mut spine = input;
    let mut spine_adds = Vec::new();
    for section in 0..4 {
        for k in 0..2 {
            spine = b
                .op(
                    &format!("a{adds}"),
                    OpKind::Add,
                    &[spine, states[section + k]],
                )
                .expect("ewf");
            adds += 1;
            spine_adds.push(spine);
        }
        spine = b
            .op(&format!("m{muls}"), OpKind::Mul, &[spine, coeffs[section]])
            .expect("ewf");
        muls += 1;
    }
    let _out = b
        .op(&format!("a{adds}"), OpKind::Add, &[spine, states[6]])
        .expect("ewf");
    adds += 1;

    // Adaptor side chains (one multiply feeding three adds each) rooted
    // at progressively deeper spine adds, like the wave filter's
    // adaptors: the deeper the root, the less slack the chain has.
    // Spine-add depths with a 2-cycle multiplier: a0=1, a1=2, a2=5,
    // a3=6, a4=9, a5=10, a6=13, a7=14; chains add 5 levels, so roots
    // a1/a2/a3/a4 end at depths 7/10/11/14 ≤ 17.
    let roots = [spine_adds[1], spine_adds[2], spine_adds[3], spine_adds[4]];
    let mut side = Vec::new();
    for (i, &root) in roots.iter().enumerate() {
        let mut v = b
            .op(&format!("m{muls}"), OpKind::Mul, &[root, coeffs[4 + i]])
            .expect("ewf");
        muls += 1;
        for &st in &[states[i], states[i + 1], states[i + 2]] {
            v = b
                .op(&format!("a{adds}"), OpKind::Add, &[v, st])
                .expect("ewf");
            adds += 1;
        }
        side.push(v);
    }

    // Output section: a combiner tree (3 adds) plus two parallel state
    // updates — worst depth max(7,10)+1=11, max(11,14)+1=15, +1=16,
    // updates ≤ 17.
    let c1 = b
        .op(&format!("a{adds}"), OpKind::Add, &[side[0], side[1]])
        .expect("ewf");
    adds += 1;
    let c2 = b
        .op(&format!("a{}", adds), OpKind::Add, &[side[2], side[3]])
        .expect("ewf");
    adds += 1;
    let c3 = b
        .op(&format!("a{}", adds), OpKind::Add, &[c1, c2])
        .expect("ewf");
    adds += 1;
    let _u1 = b
        .op(&format!("a{}", adds), OpKind::Add, &[c3, states[5]])
        .expect("ewf");
    adds += 1;
    let _u2 = b
        .op(&format!("a{}", adds), OpKind::Add, &[c2, states[6]])
        .expect("ewf");
    adds += 1;

    debug_assert_eq!(adds, 26);
    debug_assert_eq!(muls, 8);
    b.finish().expect("ewf is well-formed")
}

/// A FACET/Tseng-style mixed-operator example: arithmetic plus logic and
/// comparison operators (the operator classes of the paper's example 1:
/// `*, +, −, =, &, |`).
pub fn facet_style() -> Dfg {
    let mut b = DfgBuilder::new("facet");
    let a = b.input("a");
    let c = b.input("c");
    let d = b.input("d");
    let e = b.input("e");
    let f = b.input("f");
    let g = b.input("g");
    let h = b.input("h");
    let bb = b.input("b");
    let a1 = b.op("a1", OpKind::Add, &[a, bb]).expect("facet");
    let a2 = b.op("a2", OpKind::Add, &[c, d]).expect("facet");
    let s1 = b.op("s1", OpKind::Sub, &[a1, e]).expect("facet");
    let m1 = b.op("m1", OpKind::Mul, &[a1, a2]).expect("facet");
    let m2 = b.op("m2", OpKind::Mul, &[a2, f]).expect("facet");
    let _a4 = b.op("a4", OpKind::Add, &[m1, m2]).expect("facet");
    let _a3 = b.op("a3", OpKind::Add, &[m1, s1]).expect("facet");
    let l1 = b.op("l1", OpKind::And, &[g, h]).expect("facet");
    let _l2 = b.op("l2", OpKind::Or, &[l1, a]).expect("facet");
    let _e1 = b.op("e1", OpKind::Eq, &[a2, s1]).expect("facet");
    let _s2 = b.op("s2", OpKind::Sub, &[l1, a2]).expect("facet");
    b.finish().expect("facet example is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::TimingSpec;
    use hls_dfg::{CriticalPath, FuClass, OpMix};

    #[test]
    fn diffeq_shape() {
        let g = diffeq();
        assert_eq!(g.node_count(), 11);
        let mix = OpMix::of_graph(&g);
        assert_eq!(mix.count(FuClass::Op(OpKind::Mul)), 6);
        assert_eq!(mix.count(FuClass::Op(OpKind::Add)), 2);
        assert_eq!(mix.count(FuClass::Op(OpKind::Sub)), 2);
        assert_eq!(mix.count(FuClass::Op(OpKind::Lt)), 1);
        let cp = CriticalPath::compute(&g, &TimingSpec::uniform_single_cycle());
        assert_eq!(cp.steps(), 4);
        let cp2 = CriticalPath::compute(&g, &TimingSpec::two_cycle_multiply());
        assert_eq!(cp2.steps(), 6);
    }

    #[test]
    fn fir_shape() {
        let g = fir(16);
        let mix = OpMix::of_graph(&g);
        assert_eq!(mix.count(FuClass::Op(OpKind::Mul)), 16);
        assert_eq!(mix.count(FuClass::Op(OpKind::Add)), 15);
        let cp = CriticalPath::compute(&g, &TimingSpec::uniform_single_cycle());
        assert_eq!(cp.steps(), 5); // mul + ⌈log2 16⌉ adds
    }

    #[test]
    fn ar_filter_shape() {
        let g = ar_filter();
        let mix = OpMix::of_graph(&g);
        assert_eq!(mix.count(FuClass::Op(OpKind::Mul)), 16);
        assert_eq!(mix.count(FuClass::Op(OpKind::Add)), 8);
        assert_eq!(mix.count(FuClass::Op(OpKind::Sub)), 4);
        let cp = CriticalPath::compute(&g, &TimingSpec::uniform_single_cycle());
        assert_eq!(cp.steps(), 5);
        let cp2 = CriticalPath::compute(&g, &TimingSpec::two_cycle_multiply());
        assert_eq!(cp2.steps(), 7);
    }

    #[test]
    fn ewf_shape() {
        let g = ewf();
        let mix = OpMix::of_graph(&g);
        assert_eq!(mix.count(FuClass::Op(OpKind::Mul)), 8);
        assert_eq!(mix.count(FuClass::Op(OpKind::Add)), 26);
        let cp2 = CriticalPath::compute(&g, &TimingSpec::two_cycle_multiply());
        assert_eq!(cp2.steps(), 17, "EWF sweeps T = 17/19/21");
    }

    #[test]
    fn facet_mixes_operator_classes() {
        let g = facet_style();
        let mix = OpMix::of_graph(&g);
        for kind in [
            OpKind::Mul,
            OpKind::Add,
            OpKind::Sub,
            OpKind::Eq,
            OpKind::And,
            OpKind::Or,
        ] {
            assert!(mix.count(FuClass::Op(kind)) >= 1, "{kind:?} missing");
        }
        let cp = CriticalPath::compute(&g, &TimingSpec::uniform_single_cycle());
        assert!(cp.steps() <= 4);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn zero_tap_fir_panics() {
        let _ = fir(0);
    }
}

/// An 8-point DCT-like butterfly network (Loeffler-flavoured): three
/// butterfly stages of add/sub pairs with rotation multiplies between
/// them — 12 multiplies, 12 additions, 12 subtractions.
///
/// A denser, wider graph than the paper's six examples, used by the
/// extended design-space studies.
pub fn dct8() -> Dfg {
    let mut b = DfgBuilder::new("dct8");
    let xs: Vec<_> = (0..8).map(|i| b.input(&format!("x{i}"))).collect();
    let cs: Vec<_> = (0..6).map(|i| b.input(&format!("c{i}"))).collect();

    // Stage 1: 4 butterflies over mirrored inputs.
    let mut sums = Vec::new();
    let mut diffs = Vec::new();
    for i in 0..4 {
        let s = b
            .op(&format!("s1a{i}"), OpKind::Add, &[xs[i], xs[7 - i]])
            .expect("dct");
        let d = b
            .op(&format!("s1s{i}"), OpKind::Sub, &[xs[i], xs[7 - i]])
            .expect("dct");
        sums.push(s);
        diffs.push(d);
    }
    // Stage 2 (even half): 2 butterflies on the sums.
    let e0 = b.op("s2a0", OpKind::Add, &[sums[0], sums[3]]).expect("dct");
    let e1 = b.op("s2a1", OpKind::Add, &[sums[1], sums[2]]).expect("dct");
    let e2 = b.op("s2s0", OpKind::Sub, &[sums[0], sums[3]]).expect("dct");
    let e3 = b.op("s2s1", OpKind::Sub, &[sums[1], sums[2]]).expect("dct");
    // Even outputs: one butterfly + one rotation (2 muls each side).
    let _y0 = b.op("y0", OpKind::Add, &[e0, e1]).expect("dct");
    let _y4 = b.op("y4", OpKind::Sub, &[e0, e1]).expect("dct");
    let r0 = b.op("r0", OpKind::Mul, &[e2, cs[0]]).expect("dct");
    let r1 = b.op("r1", OpKind::Mul, &[e3, cs[1]]).expect("dct");
    let r2 = b.op("r2", OpKind::Mul, &[e2, cs[1]]).expect("dct");
    let r3 = b.op("r3", OpKind::Mul, &[e3, cs[0]]).expect("dct");
    let _y2 = b.op("y2", OpKind::Add, &[r0, r1]).expect("dct");
    let _y6 = b.op("y6", OpKind::Sub, &[r3, r2]).expect("dct");
    // Odd half: two rotations, a butterfly, two output rotations.
    let o0 = b.op("o0", OpKind::Mul, &[diffs[0], cs[2]]).expect("dct");
    let o1 = b.op("o1", OpKind::Mul, &[diffs[1], cs[3]]).expect("dct");
    let o2 = b.op("o2", OpKind::Mul, &[diffs[2], cs[3]]).expect("dct");
    let o3 = b.op("o3", OpKind::Mul, &[diffs[3], cs[2]]).expect("dct");
    let p0 = b.op("p0", OpKind::Add, &[o0, o1]).expect("dct");
    let p1 = b.op("p1", OpKind::Sub, &[o2, o3]).expect("dct");
    let p2 = b.op("p2", OpKind::Add, &[o0, o3]).expect("dct");
    let p3 = b.op("p3", OpKind::Sub, &[o1, o2]).expect("dct");
    let q0 = b.op("q0", OpKind::Mul, &[p0, cs[4]]).expect("dct");
    let q1 = b.op("q1", OpKind::Mul, &[p1, cs[5]]).expect("dct");
    let q2 = b.op("q2", OpKind::Mul, &[p2, cs[5]]).expect("dct");
    let q3 = b.op("q3", OpKind::Mul, &[p3, cs[4]]).expect("dct");
    let _y1 = b.op("y1", OpKind::Add, &[q0, q1]).expect("dct");
    let _y3 = b.op("y3", OpKind::Sub, &[q0, q1]).expect("dct");
    let _y5 = b.op("y5", OpKind::Add, &[q2, q3]).expect("dct");
    let _y7 = b.op("y7", OpKind::Sub, &[q2, q3]).expect("dct");
    b.finish().expect("dct8 is well-formed")
}

/// A two-section bandpass biquad cascade: 8 multiplies and 8 additions,
/// with the second section fed by the first — the classic streaming
/// workload for functional-pipelining studies.
pub fn bandpass() -> Dfg {
    let mut b = DfgBuilder::new("bandpass");
    let x = b.input("x");
    let mut stage_in = x;
    for s in 0..2 {
        let w1 = b.input(&format!("w1_{s}"));
        let w2 = b.input(&format!("w2_{s}"));
        let a1 = b.input(&format!("a1_{s}"));
        let a2 = b.input(&format!("a2_{s}"));
        let b1 = b.input(&format!("b1_{s}"));
        let b2 = b.input(&format!("b2_{s}"));
        let m1 = b
            .op(&format!("m1_{s}"), OpKind::Mul, &[w1, a1])
            .expect("bp");
        let m2 = b
            .op(&format!("m2_{s}"), OpKind::Mul, &[w2, a2])
            .expect("bp");
        let t1 = b
            .op(&format!("t1_{s}"), OpKind::Add, &[m1, m2])
            .expect("bp");
        let w0 = b
            .op(&format!("w0_{s}"), OpKind::Add, &[stage_in, t1])
            .expect("bp");
        let m3 = b
            .op(&format!("m3_{s}"), OpKind::Mul, &[w1, b1])
            .expect("bp");
        let m4 = b
            .op(&format!("m4_{s}"), OpKind::Mul, &[w2, b2])
            .expect("bp");
        let t2 = b
            .op(&format!("t2_{s}"), OpKind::Add, &[m3, m4])
            .expect("bp");
        stage_in = b.op(&format!("y_{s}"), OpKind::Add, &[w0, t2]).expect("bp");
    }
    b.finish().expect("bandpass is well-formed")
}

#[cfg(test)]
mod extended_tests {
    use super::*;
    use hls_celllib::TimingSpec;
    use hls_dfg::{CriticalPath, FuClass, OpMix};

    #[test]
    fn dct8_shape() {
        let g = dct8();
        let mix = OpMix::of_graph(&g);
        assert_eq!(mix.count(FuClass::Op(OpKind::Mul)), 12);
        assert_eq!(mix.count(FuClass::Op(OpKind::Add)), 12);
        assert_eq!(mix.count(FuClass::Op(OpKind::Sub)), 12);
        let cp = CriticalPath::compute(&g, &TimingSpec::uniform_single_cycle());
        assert_eq!(cp.steps(), 5); // butterfly, rotation, butterfly, rotation, output
    }

    #[test]
    fn bandpass_shape() {
        let g = bandpass();
        let mix = OpMix::of_graph(&g);
        assert_eq!(mix.count(FuClass::Op(OpKind::Mul)), 8);
        assert_eq!(mix.count(FuClass::Op(OpKind::Add)), 8);
        let cp = CriticalPath::compute(&g, &TimingSpec::uniform_single_cycle());
        // Second section chains off the first: 2 × (mul, add, add) + add.
        assert_eq!(cp.steps(), 6);
    }
}
