//! Scaling benchmark for sharded synthesis (`BENCH_partition.json`).
//!
//! The sweep itself lives in [`hls_bench::shard_scaling`] (shared with
//! `bench_diff`); this binary adds the CLI:
//!
//! ```text
//! shard_scaling                   # full sweep (200k..1M), JSON to stdout
//! shard_scaling --quick           # smallest size only (CI smoke)
//! shard_scaling --sizes 500000    # explicit op counts, comma-separated
//! shard_scaling --quick --check BENCH_partition.json
//!                                 # re-run and fail on any deterministic
//!                                 # drift vs the snapshot
//! ```
//!
//! Counters and fingerprints are bit-stable for any thread count;
//! `--check` applies the same exact comparison `bench_diff` uses
//! (`wall_ms` ignored).

use hls_bench::shard_scaling::{bench_size, diff_exact, render, FULL_SIZES, QUICK_SIZES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a path").clone());
    let explicit: Option<Vec<usize>> = args.iter().position(|a| a == "--sizes").map(|i| {
        args.get(i + 1)
            .expect("--sizes needs a comma-separated op-count list")
            .split(',')
            .map(|s| s.parse().expect("--sizes takes op counts"))
            .collect()
    });

    let sizes: Vec<usize> = match explicit {
        Some(sizes) => sizes,
        None if quick => QUICK_SIZES.to_vec(),
        None => FULL_SIZES.to_vec(),
    };
    let mut entries = Vec::new();
    for &ops in &sizes {
        bench_size(ops, &mut entries);
    }

    match check_path {
        Some(path) => {
            let snapshot = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            let drift = diff_exact(&entries, &snapshot);
            if drift.is_empty() {
                eprintln!("# sharded counters and fingerprints match {path}");
            } else {
                eprintln!("shard_scaling check FAILED:");
                for d in &drift {
                    eprintln!("  {d}");
                }
                std::process::exit(1);
            }
        }
        None => println!("{}", render(&entries)),
    }
}
