//! Scaling benchmark for the dense scheduler core (`BENCH_core.json`).
//!
//! Generates seeded layered random DFGs at several sizes and runs the
//! two paper kernels in both constraint styles:
//!
//! * `mfs/time` — time-constrained MFS with slack above the critical
//!   path (wide move frames, the Figure-1 grid hot path);
//! * `mfs/resource` — resource-constrained MFS under the unit budgets
//!   the time run discovered (restart/local-reschedule hot path);
//! * `mfsa/time` — MFSA with the default weights (instance reuse and
//!   upgrade scans);
//! * `mfsa/area` — MFSA with `w_TIME = 0` (area-first packing, the
//!   register/mux estimator hot path).
//!
//! Every entry records the wall time plus the deterministic work
//! counters (`mfs.frames_computed`, energy evaluations, local
//! reschedules) and an FNV-1a fingerprint of the resulting schedule.
//! Counters and fingerprints are bit-stable across runs and machines;
//! wall times are not and are ignored by `--check`.
//!
//! Usage:
//!
//! ```text
//! core_scaling                  # full sweep (1k/5k/20k), JSON to stdout
//! core_scaling --quick          # smallest size only (CI smoke)
//! core_scaling --quick --check BENCH_core.json
//!                               # re-run and fail on counter regression
//!                               # or fingerprint drift vs the snapshot
//! ```

use std::time::Instant;

use hls_benchmarks::generate::{generate, GeneratorConfig};
use hls_celllib::{Library, TimingSpec};
use hls_dfg::{CriticalPath, Dfg};
use hls_telemetry::{Instrument, Metrics, NullSink};
use moveframe::mfs::{self, MfsConfig};
use moveframe::mfsa::{self, MfsaConfig, Weights};

/// Requested op counts; the generator rounds up to full layers.
const FULL_SIZES: [usize; 3] = [1_000, 5_000, 20_000];
const QUICK_SIZES: [usize; 1] = [1_000];
const SEED: u64 = 42;
/// Control-step slack above the critical path (wide move frames).
const SLACK: u32 = 8;

/// One benchmark measurement (everything but `wall_ms` is
/// deterministic).
struct Entry {
    nodes: usize,
    alg: &'static str,
    mode: &'static str,
    cs: u32,
    wall_ms: f64,
    frames_computed: u64,
    energy_evaluations: u64,
    reschedules: u64,
    fingerprint: u64,
}

impl Entry {
    /// The deterministic part, used by `--check` comparisons.
    fn key(&self) -> String {
        format!(
            "\"nodes\":{},\"alg\":\"{}\",\"mode\":\"{}\"",
            self.nodes, self.alg, self.mode
        )
    }

    fn render(&self) -> String {
        format!(
            "    {{{},\"cs\":{},\"wall_ms\":{:.1},\"frames_computed\":{},\"energy_evaluations\":{},\"reschedules\":{},\"fingerprint\":\"{:016x}\"}}",
            self.key(),
            self.cs,
            self.wall_ms,
            self.frames_computed,
            self.energy_evaluations,
            self.reschedules,
            self.fingerprint
        )
    }
}

/// FNV-1a over the schedule's `(node, step, unit)` triples — a cheap,
/// stable witness that a code change kept the output bit-identical.
fn fingerprint(dfg: &Dfg, schedule: &hls_schedule::Schedule) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    for (node, slot) in schedule.iter() {
        mix(&(node.index() as u32).to_le_bytes());
        mix(&slot.step.get().to_le_bytes());
        mix(slot.unit.to_string().as_bytes());
    }
    let _ = dfg;
    h
}

fn run_mfs(dfg: &Dfg, spec: &TimingSpec, config: &MfsConfig, mode: &'static str) -> Entry {
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    let start = Instant::now();
    let out = {
        let mut instr = Instrument::new(&mut sink, &mut metrics);
        mfs::schedule_traced(dfg, spec, config, &mut instr)
            .unwrap_or_else(|e| panic!("mfs/{mode} at {} nodes: {e}", dfg.node_count()))
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    Entry {
        nodes: dfg.node_count(),
        alg: "mfs",
        mode,
        cs: config.control_steps(),
        wall_ms,
        frames_computed: metrics.counter("mfs.frames_computed"),
        energy_evaluations: metrics.counter("mfs.energy_evaluations"),
        reschedules: metrics.counter("mfs.local_reschedules"),
        fingerprint: fingerprint(dfg, &out.schedule),
    }
}

fn run_mfsa(dfg: &Dfg, spec: &TimingSpec, config: &MfsaConfig, mode: &'static str) -> Entry {
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    let start = Instant::now();
    let out = {
        let mut instr = Instrument::new(&mut sink, &mut metrics);
        mfsa::schedule_traced(dfg, spec, config, &mut instr)
            .unwrap_or_else(|e| panic!("mfsa/{mode} at {} nodes: {e}", dfg.node_count()))
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    Entry {
        nodes: dfg.node_count(),
        alg: "mfsa",
        mode,
        cs: config.control_steps(),
        wall_ms,
        frames_computed: metrics.counter("mfsa.moves_committed"),
        energy_evaluations: metrics.counter("mfsa.energy_evaluations"),
        reschedules: metrics.counter("mfsa.new_instances"),
        fingerprint: fingerprint(dfg, &out.schedule),
    }
}

/// Fixed-depth, growing-width graphs: the critical path (and thus the
/// control-step budget) stays constant across sizes, so the sweep
/// isolates how cost scales with operation count — the wide-datapath
/// shape `hls-explore`/`hls-serve` batches hit in practice.
const LAYERS: usize = 32;

fn workload(ops: usize) -> GeneratorConfig {
    GeneratorConfig {
        seed: SEED,
        layers: LAYERS,
        width: ops.div_ceil(LAYERS).max(1),
        inputs: 16,
        branch_pct: 10,
        ..GeneratorConfig::default()
    }
}

fn bench_size(ops: usize, entries: &mut Vec<Entry>) {
    let spec = TimingSpec::uniform_single_cycle();
    let dfg = generate(&workload(ops));
    let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
    let cs = cp + SLACK;
    eprintln!("# {} nodes (critical path {cp}, cs {cs})", dfg.node_count());

    let time_cfg = MfsConfig::time_constrained(cs);
    let mfs_time = run_mfs(&dfg, &spec, &time_cfg, "time");
    // Resource-constrained MFS starts from the unit budgets the time run
    // discovered; the greedy pass is not complete, so widen the budgets
    // by a (deterministic) margin until a feasible layout is found.
    let budgets = {
        let out = mfs::schedule(&dfg, &spec, &time_cfg).expect("time run succeeded above");
        out.fu_counts()
    };
    // The margin ladder is proportional so it scales with graph width:
    // +p% of each class budget (at least +p units at p ≥ 1).
    let res_cfg = [0u32, 5, 10, 20, 40, 80, 160, 320]
        .iter()
        .map(|&pct| {
            let mut cfg = MfsConfig::resource_constrained(cs);
            for (&class, &limit) in &budgets {
                let margin = (limit * pct).div_ceil(100).max(pct.min(1));
                cfg = cfg.with_fu_limit(class, limit + margin);
            }
            cfg
        })
        .find(|cfg| mfs::schedule(&dfg, &spec, cfg).is_ok())
        .expect("a feasible budget margin within the +320% ladder");
    let mfs_resource = run_mfs(&dfg, &spec, &res_cfg, "resource");
    entries.push(mfs_time);
    entries.push(mfs_resource);

    entries.push(run_mfsa(
        &dfg,
        &spec,
        &MfsaConfig::new(cs, Library::ncr_like()),
        "time",
    ));
    entries.push(run_mfsa(
        &dfg,
        &spec,
        &MfsaConfig::new(cs, Library::ncr_like()).with_weights(Weights {
            time: 0,
            alu: 1,
            mux: 1,
            reg: 1,
        }),
        "area",
    ));
    for e in &entries[entries.len() - 4..] {
        eprintln!(
            "#   {}/{}: {:.1} ms, {} frames, {} evals",
            e.alg, e.mode, e.wall_ms, e.frames_computed, e.energy_evaluations
        );
    }
}

fn render(entries: &[Entry]) -> String {
    let rows: Vec<String> = entries.iter().map(Entry::render).collect();
    format!(
        "{{\n  \"note\": \"dense scheduler core scaling sweep; counters and fingerprints are deterministic, wall_ms is machine-local and ignored by --check\",\n  \"seed\": {SEED},\n  \"slack\": {SLACK},\n  \"entries\": [\n{}\n  ]\n}}",
        rows.join(",\n")
    )
}

/// Compares fresh entries against the committed snapshot: the work
/// counters must not regress (grow) and fingerprints must match.
fn check(entries: &[Entry], snapshot_path: &str) -> Result<(), String> {
    let snapshot = std::fs::read_to_string(snapshot_path)
        .map_err(|e| format!("cannot read {snapshot_path}: {e}"))?;
    for e in entries {
        let line = snapshot
            .lines()
            .find(|l| l.contains(&e.key()))
            .ok_or_else(|| format!("snapshot has no entry for {}", e.key()))?;
        let field = |name: &str| -> Result<u64, String> {
            let tag = format!("\"{name}\":");
            let rest = line
                .split(&tag)
                .nth(1)
                .ok_or_else(|| format!("snapshot entry {} lacks {name}", e.key()))?;
            let digits: String = rest
                .chars()
                .skip_while(|c| *c == '"')
                .take_while(|c| c.is_ascii_hexdigit())
                .collect();
            let radix = if rest.starts_with('"') { 16 } else { 10 };
            u64::from_str_radix(&digits, radix).map_err(|err| format!("bad {name}: {err}"))
        };
        let base_frames = field("frames_computed")?;
        let base_evals = field("energy_evaluations")?;
        let base_print = field("fingerprint")?;
        if e.frames_computed > base_frames {
            return Err(format!(
                "{}: frames_computed regressed {} -> {}",
                e.key(),
                base_frames,
                e.frames_computed
            ));
        }
        if e.energy_evaluations > base_evals {
            return Err(format!(
                "{}: energy_evaluations regressed {} -> {}",
                e.key(),
                base_evals,
                e.energy_evaluations
            ));
        }
        if e.fingerprint != base_print {
            return Err(format!(
                "{}: schedule fingerprint drifted {:016x} -> {:016x}",
                e.key(),
                base_print,
                e.fingerprint
            ));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a path").clone());

    let sizes: &[usize] = if quick { &QUICK_SIZES } else { &FULL_SIZES };
    let mut entries = Vec::new();
    for &ops in sizes {
        bench_size(ops, &mut entries);
    }

    match check_path {
        Some(path) => match check(&entries, &path) {
            Ok(()) => eprintln!("# counters and fingerprints match {path}"),
            Err(msg) => {
                eprintln!("core_scaling check FAILED: {msg}");
                std::process::exit(1);
            }
        },
        None => println!("{}", render(&entries)),
    }
}
