//! Scaling benchmark for the dense scheduler core (`BENCH_core.json`).
//!
//! The sweep itself lives in [`hls_bench::scaling`] (shared with
//! `bench_diff`); this binary adds the CLI:
//!
//! ```text
//! core_scaling                  # full sweep (1k..100k), JSON to stdout
//! core_scaling --quick          # smallest size only (CI smoke)
//! core_scaling --sizes 20000    # explicit op counts, comma-separated
//! core_scaling --quick --check BENCH_core.json
//!                               # re-run and fail on counter regression
//!                               # or fingerprint drift vs the snapshot
//! ```
//!
//! `--check` is tolerant of improvements: counters may shrink but not
//! grow, and fingerprints must match. `bench_diff` applies the stricter
//! exact comparison.

use hls_bench::scaling::{bench_size, check_no_regression, render, FULL_SIZES, QUICK_SIZES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a path").clone());
    let explicit: Option<Vec<usize>> = args.iter().position(|a| a == "--sizes").map(|i| {
        args.get(i + 1)
            .expect("--sizes needs a comma-separated op-count list")
            .split(',')
            .map(|s| s.parse().expect("--sizes takes op counts"))
            .collect()
    });

    let sizes: Vec<usize> = match explicit {
        Some(sizes) => sizes,
        None if quick => QUICK_SIZES.to_vec(),
        None => FULL_SIZES.to_vec(),
    };
    let mut entries = Vec::new();
    for &ops in &sizes {
        bench_size(ops, &mut entries);
    }

    match check_path {
        Some(path) => {
            let snapshot = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            match check_no_regression(&entries, &snapshot) {
                Ok(()) => eprintln!("# counters and fingerprints match {path}"),
                Err(msg) => {
                    eprintln!("core_scaling check FAILED: {msg}");
                    std::process::exit(1);
                }
            }
        }
        None => println!("{}", render(&entries)),
    }
}
