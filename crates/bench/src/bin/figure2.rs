//! Regenerates the paper's Figure 2 (PF/RF/FF/MF frames).

fn main() {
    print!("{}", hls_bench::figure2());
}
