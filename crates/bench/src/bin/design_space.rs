//! Extended design-space exploration: sweeps every example over a time
//! range around its paper sweep and prints the (T, MFS units, MFSA
//! cost/REG/MUXin) trade-off curve — the data behind the paper's
//! "hardware cost-speed tradeoffs" framing (§1).

use hls_benchmarks::examples;
use hls_celllib::Library;
use moveframe::mfsa::MfsaConfig;

fn main() {
    for e in examples::all() {
        println!("=== example {}: {} ===", e.id, e.name);
        println!(
            "{:<5} {:<26} {:>10} {:>5} {:>6}",
            "T", "MFS units", "MFSA cost", "REG", "MUXin"
        );
        let lo = *e.time_constraints.first().expect("sweeps are non-empty");
        let hi = *e.time_constraints.last().expect("sweeps are non-empty") + 2;
        for t in lo..=hi {
            let mfs_cell = match hls_bench::run_example_mfs(&e, t) {
                Ok(run) => format!("{{{}}}", run.mix),
                Err(_) => "-".into(),
            };
            let config = MfsaConfig::new(t, Library::ncr_like());
            let (cost, reg, muxin) = match hls_bench::run_example_mfsa(&e, config) {
                Ok((out, _)) => (
                    out.cost.total().as_u64().to_string(),
                    out.cost.reg_count.to_string(),
                    out.cost.mux_inputs.to_string(),
                ),
                Err(_) => ("-".into(), "-".into(), "-".into()),
            };
            println!(
                "{:<5} {:<26} {:>10} {:>5} {:>6}",
                t, mfs_cell, cost, reg, muxin
            );
        }
        println!();
    }
}
