//! Emits the workspace's committed metrics snapshot (`BENCH_telemetry.json`):
//! every paper example run through instrumented MFS (at each Table-1
//! time constraint) and MFSA (at its Table-2 constraint), with all
//! counters and histograms merged into one registry.
//!
//! Timing histograms (`phase.*.ns`, `bench.*.wall_ns`) vary run to run,
//! so they are dropped by default — everything left (the move/candidate
//! counters, `mfs.mf_size`, …) is deterministic and diffable across
//! commits. Pass `--with-timings` to keep the timing histograms.

use hls_bench::{run_example_mfs_traced, run_example_mfsa_traced};
use hls_benchmarks::examples;
use hls_celllib::Library;
use hls_telemetry::{Instrument, Metrics, NullSink};
use moveframe::mfsa::MfsaConfig;

fn main() {
    let with_timings = std::env::args().any(|a| a == "--with-timings");
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    let mut instr = Instrument::new(&mut sink, &mut metrics);

    for e in examples::all() {
        for &t in &e.time_constraints {
            run_example_mfs_traced(&e, t, &mut instr)
                .unwrap_or_else(|err| panic!("ex{} at T={t}: {err}", e.id));
        }
        let config = MfsaConfig::new(e.mfsa_cs, Library::ncr_like());
        run_example_mfsa_traced(&e, config, &mut instr)
            .unwrap_or_else(|err| panic!("ex{} MFSA: {err}", e.id));
    }

    if !with_timings {
        metrics.retain(|name| !name.ends_with(".ns") && !name.ends_with("_ns"));
    }
    println!("{}", metrics.to_json());
}
