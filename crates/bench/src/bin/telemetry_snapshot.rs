//! Emits the workspace's committed metrics snapshot
//! (`BENCH_telemetry.json`).
//!
//! The run itself lives in [`hls_bench::snapshots::telemetry_snapshot`]
//! (shared with `bench_diff`): every paper example through instrumented
//! MFS (at each Table-1 time constraint) and MFSA (at its Table-2
//! constraint), with all counters and histograms merged into one
//! registry. Timing histograms vary run to run and are dropped by
//! default; pass `--with-timings` to keep them.

fn main() {
    let with_timings = std::env::args().any(|a| a == "--with-timings");
    println!("{}", hls_bench::snapshots::telemetry_snapshot(with_timings));
}
