//! Iterate-vs-one-shot quality sweep (`BENCH_iterate.json`).
//!
//! The sweep itself lives in [`hls_bench::iterate`] (shared with
//! `bench_diff`); this binary adds the CLI:
//!
//! ```text
//! iterate_sweep                   # full sweep, JSON to stdout
//! iterate_sweep --quick           # CI smoke subset
//! iterate_sweep --quick --check BENCH_iterate.json
//!                                 # re-run and fail on any deterministic
//!                                 # drift vs the snapshot
//! ```
//!
//! All fields except `wall_ms` are bit-stable; `--check` applies the
//! same exact comparison `bench_diff` uses, and on the full sweep also
//! enforces the quality gate (at least three entries must strictly
//! improve on one-shot scheduling).

use hls_bench::iterate::{
    bench_one, diff_exact, full_workloads, quick_workloads, render, require_improvements,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a path").clone());

    let workloads = if quick {
        quick_workloads()
    } else {
        full_workloads()
    };
    let mut entries = Vec::new();
    for w in &workloads {
        bench_one(w, &mut entries);
    }

    match check_path {
        Some(path) => {
            let snapshot = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            let mut drift = diff_exact(&entries, &snapshot);
            if !quick {
                drift.extend(require_improvements(&entries));
            }
            if drift.is_empty() {
                eprintln!("# iterate objectives and fingerprints match {path}");
            } else {
                eprintln!("iterate_sweep check FAILED:");
                for d in &drift {
                    eprintln!("  {d}");
                }
                std::process::exit(1);
            }
        }
        None => println!("{}", render(&entries)),
    }
}
