//! Measures the exploration engine's parallel speedup on the full
//! paper grid and emits `BENCH_explore.json`.
//!
//! ```text
//! cargo run --release -p hls-bench --bin explore_speedup [-- out.json]
//! ```
//!
//! For each thread count the whole grid — the six examples, each with
//! its Table-1 MFS sweep, both Table-2 MFSA styles, and the
//! list/FDS/annealing baselines at every time constraint — is explored
//! with a **fresh cache** (memoization would let later runs freeload on
//! earlier ones and fake the speedup). Each configuration runs three
//! times and the best wall time is kept. A final pass re-explores the
//! full grid on the already-warm cache, measuring the memoization win.
//! The JSON records the host's `available_parallelism`: on a
//! single-hardware-thread host the thread-sweep speedup is bounded at
//! ~1.0× no matter the worker count, and the report says so. It also
//! records that the Pareto fronts were bit-identical across thread
//! counts.

use std::fmt::Write as _;
use std::time::Instant;

use hls_bench::paper_points;
use hls_benchmarks::examples::{self, Example};
use hls_explore::{Algorithm, DesignPoint, Engine, ExploreOptions};

/// The paper points plus the baseline schedulers at every sweep point.
fn full_grid(example: &Example) -> Vec<DesignPoint> {
    let mut points = paper_points(example);
    for &t in &example.time_constraints {
        for alg in [Algorithm::List, Algorithm::Fds, Algorithm::Anneal] {
            points.push(DesignPoint::new(alg, t));
        }
    }
    points
}

/// Explores the whole grid once on the given engine; returns the wall
/// time in ns and the concatenated per-example front JSON.
fn run_grid(
    engine: &Engine,
    grids: &[(Example, Vec<DesignPoint>)],
    threads: usize,
) -> (u64, String) {
    let start = Instant::now();
    let mut fronts = String::new();
    for (e, points) in grids {
        let report = engine.explore(&e.dfg, &e.spec, points, ExploreOptions { threads });
        fronts.push_str(&report.front_json());
        fronts.push('\n');
    }
    (start.elapsed().as_nanos() as u64, fronts)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_explore.json".to_string());
    let grids: Vec<(Example, Vec<DesignPoint>)> = examples::all()
        .into_iter()
        .map(|e| {
            let points = full_grid(&e);
            (e, points)
        })
        .collect();
    let total_points: usize = grids.iter().map(|(_, p)| p.len()).sum();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let thread_counts = [1usize, 2, 4, 8];
    let mut best_ns = Vec::new();
    let mut reference_fronts: Option<String> = None;
    let mut fronts_identical = true;
    for &threads in &thread_counts {
        let mut best = u64::MAX;
        for _ in 0..3 {
            let (ns, fronts) = run_grid(&Engine::new(), &grids, threads);
            best = best.min(ns);
            match &reference_fronts {
                None => reference_fronts = Some(fronts),
                Some(reference) => fronts_identical &= *reference == fronts,
            }
        }
        eprintln!(
            "threads={threads}: {:.2} ms for {total_points} point(s)",
            best as f64 / 1e6
        );
        best_ns.push(best);
    }

    // Warm-cache pass: explore the full grid twice on one engine; the
    // second pass answers every point from the result cache.
    let warm_engine = Engine::new();
    let (cold_ns, _) = run_grid(&warm_engine, &grids, 1);
    let (warm_ns, warm_fronts) = run_grid(&warm_engine, &grids, 1);
    fronts_identical &= reference_fronts.as_deref() == Some(warm_fronts.as_str());
    eprintln!(
        "warm cache: {:.2} ms (cold {:.2} ms)",
        warm_ns as f64 / 1e6,
        cold_ns as f64 / 1e6
    );

    let serial = best_ns[0] as f64;
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"grid_points\": {total_points},");
    let _ = writeln!(json, "  \"examples\": {},", grids.len());
    let _ = writeln!(json, "  \"repeats\": 3,");
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    let _ = writeln!(
        json,
        "  \"note\": \"thread-sweep speedup is bounded by available_parallelism; on a 1-core host it stays ~1.0 regardless of worker count\","
    );
    let _ = writeln!(
        json,
        "  \"fronts_identical_across_threads\": {fronts_identical},"
    );
    json.push_str("  \"runs\": [\n");
    for (i, (&threads, &ns)) in thread_counts.iter().zip(&best_ns).enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {threads}, \"wall_ms\": {:.3}, \"speedup\": {:.2}}}",
            ns as f64 / 1e6,
            serial / ns as f64
        );
        json.push_str(if i + 1 < thread_counts.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"warm_cache\": {{\"cold_wall_ms\": {:.3}, \"warm_wall_ms\": {:.3}, \"speedup\": {:.1}}}",
        cold_ns as f64 / 1e6,
        warm_ns as f64 / 1e6,
        cold_ns as f64 / warm_ns as f64
    );
    json.push('}');
    json.push('\n');
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("wrote {out_path}");
    print!("{json}");
    if !fronts_identical {
        eprintln!("error: Pareto fronts differed across thread counts");
        std::process::exit(1);
    }
}
