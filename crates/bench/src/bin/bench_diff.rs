//! `bench_diff` — the bench-regression gate: regenerates the
//! deterministic snapshot documents and structurally compares them
//! against the committed `BENCH_*.json` files.
//!
//! Five snapshots are covered:
//!
//! * `BENCH_core.json` — fresh scaling-sweep entries are paired with
//!   committed ones by `(nodes, alg, mode)` and every deterministic
//!   field (cs, work counters, schedule fingerprint) must match
//!   **exactly**; only the machine-local `wall_ms` is ignored. This is
//!   stricter than `core_scaling --check`, which tolerates
//!   improvements — the diff gate pins the numbers the repo claims.
//! * `BENCH_partition.json` — fresh sharded-synthesis entries are
//!   paired by `(nodes, alg)` and compared exactly the same way
//!   (partition counters, horizon, fingerprint; `wall_ms` ignored).
//! * `BENCH_iterate.json` — iterate-vs-one-shot entries are paired by
//!   name and compared exactly (`wall_ms` ignored); the full sweep also
//!   enforces the quality gate (at least three entries must strictly
//!   improve on one-shot scheduling).
//! * `BENCH_mem.json` — regenerated and compared as trimmed text (the
//!   document contains no timing fields).
//! * `BENCH_telemetry.json` — regenerated without timing histograms and
//!   compared as trimmed text.
//! * `BENCH_serve.json` — the serving load-test snapshot is **not**
//!   regenerated (throughput is machine-local); instead its
//!   deterministic structure is validated in place: phase request
//!   arithmetic, exactly-once cache hit/miss counts, disk-restart
//!   counters, the pinned pre-reactor baseline and the ≥10× keep-alive
//!   speedup claim (see `hls_bench::serve_check`).
//!
//! ```text
//! bench_diff --quick --check             # CI gate: 1k core size only
//! bench_diff --check                     # full sweep (slow)
//! bench_diff --quick                     # report drift, exit 0
//! bench_diff --quick --check --core F    # compare against F instead
//! ```
//!
//! Without `--check` drift is reported but the exit status stays 0
//! (useful while intentionally re-baselining). The `--core`, `--mem`,
//! `--telemetry`, `--partition`, `--iterate` and `--serve` flags
//! override the committed file paths — CI uses
//! `--core`/`--partition`/`--iterate`/`--serve` on perturbed copies to
//! prove the gate actually fails.

use hls_bench::iterate;
use hls_bench::scaling::{bench_size, diff_exact, FULL_SIZES, QUICK_SIZES};
use hls_bench::serve_check;
use hls_bench::shard_scaling;
use hls_bench::snapshots::{mem_snapshot, telemetry_snapshot};

struct Options {
    quick: bool,
    check: bool,
    core: String,
    mem: String,
    telemetry: String,
    partition: String,
    iterate: String,
    serve: String,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        quick: false,
        check: false,
        core: "BENCH_core.json".into(),
        mem: "BENCH_mem.json".into(),
        telemetry: "BENCH_telemetry.json".into(),
        partition: "BENCH_partition.json".into(),
        iterate: "BENCH_iterate.json".into(),
        serve: "BENCH_serve.json".into(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut path = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a file path"))
                .clone()
        };
        match flag.as_str() {
            "--quick" => opts.quick = true,
            "--check" => opts.check = true,
            "--core" => opts.core = path("--core"),
            "--mem" => opts.mem = path("--mem"),
            "--telemetry" => opts.telemetry = path("--telemetry"),
            "--partition" => opts.partition = path("--partition"),
            "--iterate" => opts.iterate = path("--iterate"),
            "--serve" => opts.serve = path("--serve"),
            other => {
                eprintln!("unknown flag `{other}`; see the bench_diff doc comment");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot read {path}: {e}");
        std::process::exit(2);
    })
}

/// Trimmed-text comparison for the documents with no volatile fields.
fn diff_text(label: &str, fresh: &str, committed: &str) -> Vec<String> {
    if fresh.trim() == committed.trim() {
        return Vec::new();
    }
    // Point at the first differing line so the drift is actionable
    // without a side-by-side diff tool.
    let mut fresh_lines = fresh.trim().lines();
    let mut committed_lines = committed.trim().lines();
    loop {
        match (fresh_lines.next(), committed_lines.next()) {
            (Some(f), Some(c)) if f == c => continue,
            (Some(f), Some(c)) => {
                return vec![format!(
                    "{label}: first drift:\n  committed: {c}\n  fresh:     {f}"
                )]
            }
            (Some(f), None) => return vec![format!("{label}: fresh run has extra line: {f}")],
            (None, Some(c)) => return vec![format!("{label}: fresh run lost line: {c}")],
            (None, None) => return vec![format!("{label}: whitespace-only drift")],
        }
    }
}

fn main() {
    let opts = parse_args();
    let mut drift: Vec<String> = Vec::new();

    eprintln!("# bench_diff: core scaling sweep ({})", opts.core);
    let sizes: &[usize] = if opts.quick {
        &QUICK_SIZES
    } else {
        &FULL_SIZES
    };
    let mut entries = Vec::new();
    for &ops in sizes {
        bench_size(ops, &mut entries);
    }
    let committed_core = read(&opts.core);
    drift.extend(diff_exact(&entries, &committed_core));
    eprintln!(
        "#   {} fresh entr{} compared (wall_ms ignored)",
        entries.len(),
        if entries.len() == 1 { "y" } else { "ies" }
    );
    if opts.quick {
        eprintln!("#   --quick: larger committed sizes left unverified");
    }

    eprintln!("# bench_diff: sharded scaling sweep ({})", opts.partition);
    let shard_sizes: &[usize] = if opts.quick {
        &shard_scaling::QUICK_SIZES
    } else {
        &shard_scaling::FULL_SIZES
    };
    let mut shard_entries = Vec::new();
    for &ops in shard_sizes {
        shard_scaling::bench_size(ops, &mut shard_entries);
    }
    drift.extend(shard_scaling::diff_exact(
        &shard_entries,
        &read(&opts.partition),
    ));
    eprintln!(
        "#   {} fresh sharded entr{} compared (wall_ms ignored)",
        shard_entries.len(),
        if shard_entries.len() == 1 { "y" } else { "ies" }
    );

    eprintln!("# bench_diff: iterate quality sweep ({})", opts.iterate);
    let iterate_workloads = if opts.quick {
        iterate::quick_workloads()
    } else {
        iterate::full_workloads()
    };
    let mut iterate_entries = Vec::new();
    for w in &iterate_workloads {
        iterate::bench_one(w, &mut iterate_entries);
    }
    drift.extend(iterate::diff_exact(&iterate_entries, &read(&opts.iterate)));
    if !opts.quick {
        drift.extend(iterate::require_improvements(&iterate_entries));
    }
    eprintln!(
        "#   {} fresh iterate entr{} compared (wall_ms ignored)",
        iterate_entries.len(),
        if iterate_entries.len() == 1 {
            "y"
        } else {
            "ies"
        }
    );

    eprintln!("# bench_diff: serve snapshot structure ({})", opts.serve);
    drift.extend(serve_check::check(&read(&opts.serve)));

    eprintln!("# bench_diff: memory port sweep ({})", opts.mem);
    drift.extend(diff_text("mem", &mem_snapshot(), &read(&opts.mem)));

    eprintln!("# bench_diff: telemetry snapshot ({})", opts.telemetry);
    drift.extend(diff_text(
        "telemetry",
        &telemetry_snapshot(false),
        &read(&opts.telemetry),
    ));

    if drift.is_empty() {
        println!("bench_diff: ok — fresh runs match the committed snapshots");
        return;
    }
    println!(
        "bench_diff: {} drift(s) from the committed snapshots:",
        drift.len()
    );
    for d in &drift {
        println!("  {d}");
    }
    if opts.check {
        std::process::exit(1);
    }
    println!("(informational: run with --check to fail on drift)");
}
