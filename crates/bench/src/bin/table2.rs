//! Regenerates the paper's Table 2 (MFSA RTL results, styles 1 and 2).
//!
//! `--ablate` appends the design-choice ablations DESIGN.md calls out:
//! Liapunov-weight sweeps and interconnect-sharing on/off.

use moveframe::mfsa::Weights;

fn main() {
    let rows = hls_bench::table2();
    print!("{}", hls_bench::render_table2(&rows));

    if std::env::args().any(|a| a == "--ablate") {
        println!("\n=== Ablation: Liapunov weights (style 1, cost in um^2) ===");
        let presets: &[(&str, Weights)] = &[
            (
                "balanced (paper default)",
                Weights {
                    time: 1,
                    alu: 1,
                    mux: 1,
                    reg: 1,
                },
            ),
            (
                "area-only (w_TIME = 0)",
                Weights {
                    time: 0,
                    alu: 1,
                    mux: 1,
                    reg: 1,
                },
            ),
            (
                "alu-focused (w_ALU = 4)",
                Weights {
                    time: 1,
                    alu: 4,
                    mux: 1,
                    reg: 1,
                },
            ),
            (
                "mux-focused (w_MUX = 4)",
                Weights {
                    time: 1,
                    alu: 1,
                    mux: 4,
                    reg: 1,
                },
            ),
            (
                "reg-focused (w_REG = 4)",
                Weights {
                    time: 1,
                    alu: 1,
                    mux: 1,
                    reg: 4,
                },
            ),
        ];
        println!(
            "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "weights", "ex1", "ex2", "ex3", "ex4", "ex5", "ex6"
        );
        for (label, weights) in presets {
            let rows = hls_bench::tables_with_weights(*weights);
            let mut cells = vec![String::new(); 6];
            for r in rows.iter().filter(|r| r.style == 1) {
                cells[r.example as usize - 1] = r.cost.to_string();
            }
            println!(
                "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                label, cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]
            );
        }

        println!("\n=== Ablation: interconnect sharing in f_MUX (style 1) ===");
        let with = hls_bench::table2();
        let without = hls_bench::tables_without_interconnect();
        println!(
            "{:<6} {:>12} {:>12} {:>7} {:>7}",
            "Ex", "shared", "unshared", "MUXin", "MUXin'"
        );
        for ex in 1..=6u8 {
            let a = with
                .iter()
                .find(|r| r.example == ex && r.style == 1)
                .unwrap();
            let b = without
                .iter()
                .find(|r| r.example == ex && r.style == 1)
                .unwrap();
            println!(
                "#{:<5} {:>12} {:>12} {:>7} {:>7}",
                ex, a.cost, b.cost, a.muxin, b.muxin
            );
        }
    }
}
