//! Regenerates the paper's Table 1 (MFS results for the six examples).

fn main() {
    let rows = hls_bench::table1();
    print!("{}", hls_bench::render_table1(&rows));
}
