//! Load-tests the `hls-serve` daemon in-process and emits
//! `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p hls-bench --bin serve_load [-- out.json]
//! ```
//!
//! Phases against real sockets on an ephemeral port, all with the
//! reactor's defaults (keep-alive on, pipeline depth 8):
//!
//! 1. **cold** — close-per-request sweep of a mixed benchmark workload
//!    against a fresh daemon; every unique job computes. This is the
//!    pre-reactor access pattern and the throughput baseline.
//! 2. **keepalive** — the identical sweep, but each client holds one
//!    connection for all its requests. Every job is a warm cache hit;
//!    the connect/close cost per request is gone.
//! 3. **pipeline** — each client writes its whole round as one
//!    pipelined burst and reads the in-order responses; syscalls
//!    amortise across the burst.
//! 4. **batch** — the round travels as a single `POST /batch` body and
//!    comes back as one ordered array; HTTP framing amortises too.
//! 5. **disk** — a daemon with `--cache-dir` computes the workload,
//!    shuts down, restarts on the same directory, and serves the same
//!    jobs again from the disk tier (counted, not timed: the point is
//!    `restart_hits == unique_jobs`, zero recomputes).
//! 6. **overload** — a one-worker, tiny-queue daemon is hammered with
//!    concurrent jobs; the report records how many requests the
//!    bounded queue rejected with 429 and the p99 of the requests it
//!    did serve while saturated.
//!
//! Latency is per request (or per burst/batch round trip) and reported
//! as p50/p99; throughput is requests over wall time. `bench_diff
//! --serve` re-checks the committed document's deterministic fields —
//! request counts, cache hit/miss arithmetic, the disk-restart
//! counters, and the `≥10×` keep-alive speedup claim against the
//! pinned pre-reactor baseline.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use hls_serve::{ServeConfig, Server};
use hls_telemetry::NullSink;

/// The mixed workload: both algorithms, several graphs and knobs.
const JOBS: &[&str] = &[
    r#"{"benchmark":"diffeq","alg":"mfs","cs":4}"#,
    r#"{"benchmark":"diffeq","alg":"mfs","cs":6}"#,
    r#"{"benchmark":"diffeq","alg":"mfsa","cs":4}"#,
    r#"{"benchmark":"ar","alg":"mfs","cs":8}"#,
    r#"{"benchmark":"ewf","alg":"mfs","cs":17}"#,
    r#"{"benchmark":"fir","alg":"mfs","cs":12,"limit":"mul:2"}"#,
    r#"{"benchmark":"facet","alg":"mfsa","cs":4}"#,
    r#"{"benchmark":"bandpass","alg":"mfs","cs":9}"#,
];

/// The committed pre-reactor cold throughput (BENCH_serve.json before
/// the epoll rewrite): the denominator of every speedup this report
/// claims.
const BASELINE_COLD_RPS: f64 = 3427.9;

fn request_bytes(path: &str, body: &[u8], close: bool) -> Vec<u8> {
    let mut out = format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n",
        body.len()
    )
    .into_bytes();
    if close {
        out.extend_from_slice(b"Connection: close\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// One close-per-request round trip (the pre-reactor access pattern).
fn post_close(addr: SocketAddr, path: &str, body: &[u8]) -> (u16, u64) {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream
        .write_all(&request_bytes(path, body, true))
        .expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let status: u16 = std::str::from_utf8(&raw)
        .ok()
        .and_then(|t| t.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, start.elapsed().as_nanos() as u64)
}

/// Consumes exactly one HTTP response from a persistent connection,
/// reading more as needed; returns its status code.
fn read_one(stream: &mut TcpStream, buf: &mut Vec<u8>) -> u16 {
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buf[..head_end]).expect("ascii head");
            let status: u16 = head
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .expect("status line");
            let len: usize = head
                .lines()
                .find_map(|l| {
                    let (name, value) = l.split_once(':')?;
                    name.eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse().ok())?
                })
                .expect("content-length");
            let total = head_end + 4 + len;
            if buf.len() >= total {
                buf.drain(..total);
                return status;
            }
        }
        let mut chunk = [0u8; 16 * 1024];
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn start(config: ServeConfig) -> Server {
    Server::start(config, Box::new(NullSink)).expect("server starts")
}

/// Per-phase measurements: one latency sample per unit (request, burst
/// or batch) plus the request count the units carried.
struct Phase {
    requests: usize,
    wall_ns: u64,
    latencies: Vec<u64>,
    statuses: Vec<u16>,
}

/// Close-per-request sweep: `clients` threads, each sending every job
/// `rounds` times in a rotated order.
fn cold_sweep(addr: SocketAddr, clients: usize, rounds: usize) -> Phase {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for r in 0..rounds {
                    for i in 0..JOBS.len() {
                        let job = JOBS[(i + c + r) % JOBS.len()];
                        out.push(post_close(addr, "/schedule", job.as_bytes()));
                    }
                }
                out
            })
        })
        .collect();
    let mut phase = Phase {
        requests: 0,
        wall_ns: 0,
        latencies: Vec::new(),
        statuses: Vec::new(),
    };
    for h in handles {
        for (status, ns) in h.join().expect("client") {
            phase.statuses.push(status);
            phase.latencies.push(ns);
            phase.requests += 1;
        }
    }
    phase.wall_ns = start.elapsed().as_nanos() as u64;
    phase
}

/// The same sweep over one persistent connection per client; per
/// request, write → read one response.
fn keepalive_sweep(addr: SocketAddr, clients: usize, rounds: usize) -> Phase {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                let mut buf = Vec::new();
                let mut out = Vec::new();
                for r in 0..rounds {
                    for i in 0..JOBS.len() {
                        let job = JOBS[(i + c + r) % JOBS.len()];
                        let t = Instant::now();
                        stream
                            .write_all(&request_bytes("/schedule", job.as_bytes(), false))
                            .expect("write");
                        let status = read_one(&mut stream, &mut buf);
                        out.push((status, t.elapsed().as_nanos() as u64));
                    }
                }
                out
            })
        })
        .collect();
    collect(start, handles)
}

/// Each round is one pipelined burst: all jobs written back-to-back,
/// then the in-order responses read. One latency sample per burst.
fn pipeline_sweep(addr: SocketAddr, clients: usize, rounds: usize) -> Phase {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                let mut buf = Vec::new();
                let mut out = Vec::new();
                for r in 0..rounds {
                    let mut burst = Vec::new();
                    for i in 0..JOBS.len() {
                        let job = JOBS[(i + c + r) % JOBS.len()];
                        burst.extend_from_slice(&request_bytes("/schedule", job.as_bytes(), false));
                    }
                    let t = Instant::now();
                    stream.write_all(&burst).expect("write");
                    for _ in 0..JOBS.len() {
                        let status = read_one(&mut stream, &mut buf);
                        assert_eq!(status, 200, "pipelined request failed");
                    }
                    out.push((200, t.elapsed().as_nanos() as u64));
                }
                out
            })
        })
        .collect();
    let mut phase = collect(start, handles);
    phase.requests = clients * rounds * JOBS.len();
    phase
}

/// Each round is one `POST /batch` carrying every job; one latency
/// sample per batch round trip.
fn batch_sweep(addr: SocketAddr, clients: usize, rounds: usize) -> Phase {
    let body = format!("[{}]", JOBS.join(","));
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                let mut buf = Vec::new();
                let mut out = Vec::new();
                for _ in 0..rounds {
                    let t = Instant::now();
                    stream
                        .write_all(&request_bytes("/batch", body.as_bytes(), false))
                        .expect("write");
                    let status = read_one(&mut stream, &mut buf);
                    out.push((status, t.elapsed().as_nanos() as u64));
                }
                out
            })
        })
        .collect();
    let mut phase = collect(start, handles);
    phase.requests = clients * rounds * JOBS.len();
    phase
}

fn collect(start: Instant, handles: Vec<std::thread::JoinHandle<Vec<(u16, u64)>>>) -> Phase {
    let mut phase = Phase {
        requests: 0,
        wall_ns: 0,
        latencies: Vec::new(),
        statuses: Vec::new(),
    };
    for h in handles {
        for (status, ns) in h.join().expect("client") {
            phase.statuses.push(status);
            phase.latencies.push(ns);
            phase.requests += 1;
        }
    }
    phase.wall_ns = start.elapsed().as_nanos() as u64;
    phase
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64 / 1e6
}

fn rps(requests: usize, wall_ns: u64) -> f64 {
    requests as f64 / (wall_ns as f64 / 1e9)
}

fn phase_json(name: &str, phase: &mut Phase) -> String {
    phase.latencies.sort_unstable();
    format!(
        "  \"{name}\": {{\"requests\": {}, \"wall_ms\": {:.3}, \"throughput_rps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
        phase.requests,
        phase.wall_ns as f64 / 1e6,
        rps(phase.requests, phase.wall_ns),
        percentile(&phase.latencies, 0.50),
        percentile(&phase.latencies, 0.99),
    )
}

/// Computes the workload against a `--cache-dir` daemon, restarts it
/// on the same directory, and replays: the restarted daemon must serve
/// every job from the disk tier without recomputing.
fn disk_restart_phase() -> (u64, u64, u64) {
    let dir = std::env::temp_dir().join(format!("serve-load-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };

    let first = start(config.clone());
    for job in JOBS {
        let (status, _) = post_close(first.local_addr(), "/schedule", job.as_bytes());
        assert_eq!(status, 200, "disk phase first run failed");
    }
    let writes = first
        .app()
        .metrics_snapshot()
        .counter("serve.cache.disk.writes");
    first.shutdown();
    first.join();

    let second = start(config);
    for job in JOBS {
        let (status, _) = post_close(second.local_addr(), "/schedule", job.as_bytes());
        assert_eq!(status, 200, "disk phase restart run failed");
    }
    let m = second.app().metrics_snapshot();
    let hits = m.counter("serve.cache.disk.hits");
    let misses = m.counter("serve.cache.disk.misses");
    second.shutdown();
    second.join();
    let _ = std::fs::remove_dir_all(&dir);
    (writes, hits, misses)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let clients = 4;
    let rounds = 4;

    // Cold: fresh daemon, close per request, every unique job computes.
    let server = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let mut cold = cold_sweep(addr, clients, rounds);
    assert!(
        cold.statuses.iter().all(|&s| s == 200),
        "cold sweep had non-200 answers"
    );

    // Warm phases on the same daemon: keep-alive, pipelined bursts,
    // then /batch. Every request is a memory-tier hit.
    let mut keepalive = keepalive_sweep(addr, clients, rounds);
    assert!(keepalive.statuses.iter().all(|&s| s == 200));
    let mut pipeline = pipeline_sweep(addr, clients, rounds);
    let mut batch = batch_sweep(addr, clients, rounds);
    assert!(batch.statuses.iter().all(|&s| s == 200));

    let m = server.app().metrics_snapshot();
    let misses = m.counter("serve.cache.results.misses");
    let hits = m.counter("serve.cache.results.hits");
    let reused = m.counter("serve.keepalive.reused");
    let pipelined = m.counter("serve.pipeline.pipelined");
    server.shutdown();
    server.join();

    // Disk tier: compute, restart, replay from disk.
    let (disk_writes, disk_hits, disk_misses) = disk_restart_phase();

    // Overload: one worker, two queue slots, all clients at once.
    let tiny = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 2,
        ..ServeConfig::default()
    });
    let overload = cold_sweep(tiny.local_addr(), 8, 2);
    let rejected = overload.statuses.iter().filter(|&&s| s == 429).count();
    let served = overload.statuses.iter().filter(|&&s| s == 200).count();
    let mut served_lat: Vec<u64> = overload
        .statuses
        .iter()
        .zip(&overload.latencies)
        .filter(|(&s, _)| s == 200)
        .map(|(_, &ns)| ns)
        .collect();
    served_lat.sort_unstable();
    tiny.shutdown();
    tiny.join();

    let cold_rps = rps(cold.requests, cold.wall_ns);
    let keepalive_rps = rps(keepalive.requests, keepalive.wall_ns);
    let pipeline_rps = rps(pipeline.requests, pipeline.wall_ns);
    let batch_rps = rps(batch.requests, batch.wall_ns);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"unique_jobs\": {},", JOBS.len());
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(
        json,
        "  \"available_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    json.push_str(&phase_json("cold", &mut cold));
    json.push_str(",\n");
    json.push_str(&phase_json("keepalive", &mut keepalive));
    json.push_str(",\n");
    json.push_str(&phase_json("pipeline", &mut pipeline));
    json.push_str(",\n");
    json.push_str(&phase_json("batch", &mut batch));
    json.push_str(",\n");
    let _ = writeln!(
        json,
        "  \"cache\": {{\"misses\": {misses}, \"hits\": {hits}}},"
    );
    let _ = writeln!(
        json,
        "  \"reactor\": {{\"keepalive_reused\": {reused}, \"pipelined\": {pipelined}}},"
    );
    let _ = writeln!(
        json,
        "  \"disk\": {{\"first_run_writes\": {disk_writes}, \"restart_hits\": {disk_hits}, \"restart_misses\": {disk_misses}}},"
    );
    let _ = writeln!(json, "  \"baseline_cold_rps\": {BASELINE_COLD_RPS},");
    let _ = writeln!(
        json,
        "  \"speedup_vs_baseline\": {{\"cold\": {:.1}, \"keepalive\": {:.1}, \"pipeline\": {:.1}, \"batch\": {:.1}}},",
        cold_rps / BASELINE_COLD_RPS,
        keepalive_rps / BASELINE_COLD_RPS,
        pipeline_rps / BASELINE_COLD_RPS,
        batch_rps / BASELINE_COLD_RPS,
    );
    let _ = writeln!(
        json,
        "  \"overload\": {{\"workers\": 1, \"queue_cap\": 2, \"requests\": {}, \"served_200\": {served}, \"rejected_429\": {rejected}, \"reject_rate\": {:.3}, \"served_p99_ms\": {:.3}}}",
        overload.requests,
        rejected as f64 / overload.requests as f64,
        percentile(&served_lat, 0.99),
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write report");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
