//! Load-tests the `hls-serve` daemon in-process and emits
//! `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p hls-bench --bin serve_load [-- out.json]
//! ```
//!
//! Three phases against real sockets on an ephemeral port:
//!
//! 1. **cold** — several client threads sweep a mixed benchmark
//!    workload against a fresh daemon; every unique job computes.
//! 2. **warm** — the identical sweep against the same daemon; every
//!    job is a cache hit, which is the daemon's core value proposition.
//! 3. **overload** — a one-worker, tiny-queue daemon is hammered with
//!    concurrent compute jobs; the report records how many requests
//!    the bounded queue rejected with 429 instead of queueing forever.
//!
//! Latency is measured per request (connect → full response read) and
//! reported as p50/p99; throughput is total requests over wall time.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use hls_serve::{ServeConfig, Server};
use hls_telemetry::NullSink;

/// The mixed workload: both algorithms, several graphs and knobs.
const JOBS: &[&str] = &[
    r#"{"benchmark":"diffeq","alg":"mfs","cs":4}"#,
    r#"{"benchmark":"diffeq","alg":"mfs","cs":6}"#,
    r#"{"benchmark":"diffeq","alg":"mfsa","cs":4}"#,
    r#"{"benchmark":"ar","alg":"mfs","cs":8}"#,
    r#"{"benchmark":"ewf","alg":"mfs","cs":17}"#,
    r#"{"benchmark":"fir","alg":"mfs","cs":12,"limit":"mul:2"}"#,
    r#"{"benchmark":"facet","alg":"mfsa","cs":4}"#,
    r#"{"benchmark":"bandpass","alg":"mfs","cs":9}"#,
];

fn post(addr: SocketAddr, body: &[u8]) -> (u16, u64) {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "POST /schedule HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write");
    stream.write_all(body).expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let status: u16 = std::str::from_utf8(&raw)
        .ok()
        .and_then(|t| t.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, start.elapsed().as_nanos() as u64)
}

fn start(config: ServeConfig) -> Server {
    Server::start(config, Box::new(NullSink)).expect("server starts")
}

/// Runs `clients` threads, each sending every job `rounds` times in a
/// rotated order; returns (wall_ns, per-request latencies, statuses).
fn sweep(addr: SocketAddr, clients: usize, rounds: usize) -> (u64, Vec<u64>, Vec<u16>) {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for r in 0..rounds {
                    for i in 0..JOBS.len() {
                        let job = JOBS[(i + c + r) % JOBS.len()];
                        out.push(post(addr, job.as_bytes()));
                    }
                }
                out
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut statuses = Vec::new();
    for h in handles {
        for (status, ns) in h.join().expect("client") {
            statuses.push(status);
            latencies.push(ns);
        }
    }
    (start.elapsed().as_nanos() as u64, latencies, statuses)
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64 / 1e6
}

fn phase_json(name: &str, wall_ns: u64, latencies: &mut [u64]) -> String {
    latencies.sort_unstable();
    let requests = latencies.len();
    let wall_ms = wall_ns as f64 / 1e6;
    format!(
        "  \"{name}\": {{\"requests\": {requests}, \"wall_ms\": {:.3}, \"throughput_rps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
        wall_ms,
        requests as f64 / (wall_ns as f64 / 1e9),
        percentile(latencies, 0.50),
        percentile(latencies, 0.99),
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let clients = 4;
    let rounds = 4;

    // Cold: fresh daemon, every unique job computes once.
    let server = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let (cold_wall, mut cold_lat, cold_status) = sweep(addr, clients, rounds);
    assert!(
        cold_status.iter().all(|&s| s == 200),
        "cold sweep had non-200 answers"
    );

    // Warm: identical sweep on the now-warm cache.
    let (warm_wall, mut warm_lat, warm_status) = sweep(addr, clients, rounds);
    assert!(warm_status.iter().all(|&s| s == 200));
    let m = server.app().metrics_snapshot();
    let misses = m.counter("serve.cache.results.misses");
    let hits = m.counter("serve.cache.results.hits");
    server.shutdown();
    server.join();

    // Overload: one worker, two queue slots, all clients at once.
    let tiny = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 2,
        ..ServeConfig::default()
    });
    let tiny_addr = tiny.local_addr();
    let (_, _, overload_status) = sweep(tiny_addr, 8, 2);
    let rejected = overload_status.iter().filter(|&&s| s == 429).count();
    let served = overload_status.iter().filter(|&&s| s == 200).count();
    let total = overload_status.len();
    tiny.shutdown();
    tiny.join();

    let cold_p50 = {
        cold_lat.sort_unstable();
        percentile(&cold_lat, 0.50)
    };
    let warm_p50 = {
        warm_lat.sort_unstable();
        percentile(&warm_lat, 0.50)
    };
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"unique_jobs\": {},", JOBS.len());
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(
        json,
        "  \"available_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    json.push_str(&phase_json("cold", cold_wall, &mut cold_lat));
    json.push_str(",\n");
    json.push_str(&phase_json("warm", warm_wall, &mut warm_lat));
    json.push_str(",\n");
    let _ = writeln!(
        json,
        "  \"cache\": {{\"misses\": {misses}, \"hits\": {hits}}},"
    );
    let _ = writeln!(
        json,
        "  \"warm_speedup_p50\": {:.1},",
        if warm_p50 > 0.0 {
            cold_p50 / warm_p50
        } else {
            0.0
        }
    );
    let _ = writeln!(
        json,
        "  \"overload\": {{\"workers\": 1, \"queue_cap\": 2, \"requests\": {total}, \"served_200\": {served}, \"rejected_429\": {rejected}, \"reject_rate\": {:.3}}}",
        rejected as f64 / total as f64
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write report");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
