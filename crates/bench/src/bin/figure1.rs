//! Regenerates the paper's Figure 1 (placement table with a move).

fn main() {
    print!("{}", hls_bench::figure1());
}
