//! Emits the committed memory port-sweep snapshot (`BENCH_mem.json`).
//!
//! The sweep itself lives in [`hls_bench::snapshots::mem_snapshot`]
//! (shared with `bench_diff`): each memory benchmark kernel rebuilt at
//! 1, 2 and 4 bank ports, with the minimum feasible time constraint of
//! MFS and MFSA found by upward search from the dependency critical
//! path, plus the peak per-bank port pressure of the MFSA schedule at
//! that minimum. Everything emitted is deterministic and diffable
//! across commits.

fn main() {
    println!("{}", hls_bench::snapshots::mem_snapshot());
}
