//! Structural checks for the committed `BENCH_serve.json`.
//!
//! Load-test throughput is machine-local, so `bench_diff` cannot
//! regenerate-and-diff the serving snapshot the way it pins the core
//! sweeps. What it *can* pin is everything deterministic about the
//! document: the request-count arithmetic of every phase, the cache
//! hit/miss bookkeeping (exactly-once per unique job), the
//! disk-restart counters (replayed jobs hit disk, none recompute), the
//! committed pre-reactor baseline figure, and the headline claim — at
//! least one keep-alive phase at **≥10×** that baseline. Perturbing
//! any of these fields in the committed file fails the gate, which is
//! what the CI negative test does.

/// The cold throughput of the pre-reactor daemon, as committed before
/// the epoll rewrite. The document must carry exactly this figure so
/// its speedups stay anchored to a fixed denominator.
pub const BASELINE_COLD_RPS: &str = "3427.9";

/// The speedup factor the serving rewrite claims over the pre-reactor
/// baseline; some keep-alive phase in the document must reach it.
pub const REQUIRED_SPEEDUP: f64 = 10.0;

/// Extracts the one-line JSON object following `"section":` in `doc`.
fn section<'a>(doc: &'a str, name: &str) -> Result<&'a str, String> {
    let key = format!("\"{name}\":");
    let start = doc
        .find(&key)
        .ok_or_else(|| format!("serve: missing section \"{name}\""))?
        + key.len();
    let rest = &doc[start..];
    let open = rest
        .find('{')
        .ok_or_else(|| format!("serve: section \"{name}\" is not an object"))?;
    let close = rest[open..]
        .find('}')
        .ok_or_else(|| format!("serve: section \"{name}\" never closes"))?;
    Ok(&rest[open..=open + close])
}

/// Reads numeric field `key` out of (a slice of) the document.
fn num(text: &str, key: &str, ctx: &str) -> Result<f64, String> {
    let pat = format!("\"{key}\":");
    let start = text
        .find(&pat)
        .ok_or_else(|| format!("serve: {ctx} has no \"{key}\""))?
        + pat.len();
    let digits: String = text[start..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    digits
        .parse()
        .map_err(|_| format!("serve: {ctx}.{key} is not a number"))
}

/// Checks every deterministic invariant of a `BENCH_serve.json`
/// document; each violation becomes one drift line.
pub fn check(doc: &str) -> Vec<String> {
    match run_checks(doc) {
        Ok(drift) => drift,
        Err(e) => vec![e],
    }
}

fn run_checks(doc: &str) -> Result<Vec<String>, String> {
    let mut drift = Vec::new();
    let mut expect = |label: &str, got: f64, want: f64| {
        if got != want {
            drift.push(format!("serve: {label}: committed {got}, expected {want}"));
        }
    };

    let unique = num(doc, "unique_jobs", "document")?;
    let clients = num(doc, "clients", "document")?;
    let rounds = num(doc, "rounds", "document")?;
    let sweep = unique * clients * rounds;

    // Every phase sweeps the identical request total; batch carries
    // the same jobs as whole-sweep payloads.
    let cold = section(doc, "cold")?;
    let keepalive = section(doc, "keepalive")?;
    let pipeline = section(doc, "pipeline")?;
    let batch = section(doc, "batch")?;
    expect("cold.requests", num(cold, "requests", "cold")?, sweep);
    expect(
        "keepalive.requests",
        num(keepalive, "requests", "keepalive")?,
        sweep,
    );
    expect(
        "pipeline.requests",
        num(pipeline, "requests", "pipeline")?,
        sweep,
    );
    expect("batch.requests", num(batch, "requests", "batch")?, sweep);

    // Exactly-once compute: each unique job misses once; every other
    // request of the four phases is a memory-tier hit.
    let cache = section(doc, "cache")?;
    expect("cache.misses", num(cache, "misses", "cache")?, unique);
    expect(
        "cache.hits",
        num(cache, "hits", "cache")?,
        4.0 * sweep - unique,
    );

    // Disk restart: the first run persists every job, the restarted
    // daemon replays all of them from disk and recomputes none.
    let disk = section(doc, "disk")?;
    expect(
        "disk.first_run_writes",
        num(disk, "first_run_writes", "disk")?,
        unique,
    );
    expect(
        "disk.restart_hits",
        num(disk, "restart_hits", "disk")?,
        unique,
    );
    expect(
        "disk.restart_misses",
        num(disk, "restart_misses", "disk")?,
        0.0,
    );

    // Overload: admission answers every request — served or rejected,
    // nothing dropped.
    let overload = section(doc, "overload")?;
    let served = num(overload, "served_200", "overload")?;
    let rejected = num(overload, "rejected_429", "overload")?;
    let requests = num(overload, "requests", "overload")?;
    if served + rejected != requests {
        drift.push(format!(
            "serve: overload accounting: {served} served + {rejected} rejected != {requests} requests"
        ));
    }

    // The speedup denominator is pinned, and the headline claim must
    // hold: at least one keep-alive phase at ≥10× the old daemon.
    if !doc.contains(&format!("\"baseline_cold_rps\": {BASELINE_COLD_RPS}")) {
        drift.push(format!(
            "serve: baseline_cold_rps is not the committed pre-reactor figure {BASELINE_COLD_RPS}"
        ));
    }
    let speedup = section(doc, "speedup_vs_baseline")?;
    let best = num(speedup, "keepalive", "speedup_vs_baseline")?
        .max(num(speedup, "pipeline", "speedup_vs_baseline")?)
        .max(num(speedup, "batch", "speedup_vs_baseline")?);
    if best < REQUIRED_SPEEDUP {
        drift.push(format!(
            "serve: best keep-alive speedup {best}x is below the claimed {REQUIRED_SPEEDUP}x"
        ));
    }

    Ok(drift)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
  "unique_jobs": 8,
  "clients": 4,
  "rounds": 4,
  "available_parallelism": 1,
  "cold": {"requests": 128, "wall_ms": 8.0, "throughput_rps": 15852.9, "p50_ms": 0.184, "p99_ms": 1.080},
  "keepalive": {"requests": 128, "wall_ms": 2.2, "throughput_rps": 58089.7, "p50_ms": 0.055, "p99_ms": 0.224},
  "pipeline": {"requests": 128, "wall_ms": 1.4, "throughput_rps": 91757.0, "p50_ms": 0.285, "p99_ms": 0.504},
  "batch": {"requests": 128, "wall_ms": 1.7, "throughput_rps": 75696.9, "p50_ms": 0.354, "p99_ms": 0.542},
  "cache": {"misses": 8, "hits": 504},
  "reactor": {"keepalive_reused": 260, "pipelined": 112},
  "disk": {"first_run_writes": 8, "restart_hits": 8, "restart_misses": 0},
  "baseline_cold_rps": 3427.9,
  "speedup_vs_baseline": {"cold": 4.6, "keepalive": 16.9, "pipeline": 26.8, "batch": 22.1},
  "overload": {"workers": 1, "queue_cap": 2, "requests": 128, "served_200": 118, "rejected_429": 10, "reject_rate": 0.078, "served_p99_ms": 1.231}
}"#;

    #[test]
    fn a_consistent_document_passes() {
        assert_eq!(check(GOOD), Vec::<String>::new());
    }

    #[test]
    fn each_deterministic_field_is_load_bearing() {
        for (from, to) in [
            ("\"misses\": 8", "\"misses\": 9"),
            ("\"hits\": 504", "\"hits\": 503"),
            ("\"restart_hits\": 8", "\"restart_hits\": 7"),
            ("\"restart_misses\": 0", "\"restart_misses\": 1"),
            ("\"first_run_writes\": 8", "\"first_run_writes\": 0"),
            (
                "\"cold\": {\"requests\": 128",
                "\"cold\": {\"requests\": 127",
            ),
            ("\"served_200\": 118", "\"served_200\": 117"),
            (
                "\"baseline_cold_rps\": 3427.9",
                "\"baseline_cold_rps\": 1.0",
            ),
        ] {
            let bad = GOOD.replace(from, to);
            assert_ne!(bad, GOOD, "perturbation {from} did not apply");
            assert!(!check(&bad).is_empty(), "perturbing {from} must fail");
        }
    }

    #[test]
    fn the_ten_x_claim_is_enforced() {
        let slow = GOOD.replace(
            "\"cold\": 4.6, \"keepalive\": 16.9, \"pipeline\": 26.8, \"batch\": 22.1",
            "\"cold\": 1.0, \"keepalive\": 2.0, \"pipeline\": 3.0, \"batch\": 4.0",
        );
        let drift = check(&slow);
        assert!(
            drift.iter().any(|d| d.contains("below the claimed")),
            "{drift:?}"
        );
    }

    #[test]
    fn missing_sections_are_one_clear_error() {
        let drift = check("{}");
        assert_eq!(drift.len(), 1);
        assert!(drift[0].contains("unique_jobs"), "{drift:?}");
    }
}
