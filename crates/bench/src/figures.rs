//! Figure 1 and Figure 2 regeneration: ASCII renderings of the
//! placement table and of one operation's frames.

use std::fmt::Write as _;

use hls_benchmarks::classic;
use hls_celllib::TimingSpec;
use hls_dfg::Dfg;
use hls_schedule::render_grid;
use moveframe::mfs::{self, MfsConfig};
use moveframe::FrameSnapshot;

/// Regenerates Figure 1: the populated placement (grid) table of one FU
/// type after scheduling the HAL differential equation, with the last
/// multiply's present position and the move that placed it.
pub fn figure1() -> String {
    let dfg = classic::diffeq();
    let spec = TimingSpec::uniform_single_cycle();
    let config = MfsConfig::time_constrained(6).with_frame_recording();
    let outcome = mfs::schedule(&dfg, &spec, &config).expect("diffeq fits 6 steps");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1: placement tables (control steps x FU index) after MFS on `{}`",
        dfg.name()
    );
    let _ = writeln!(
        out,
        "one 2-D table per FU type; `name/name` = mutually exclusive sharing\n"
    );
    for grid in outcome.grids.values() {
        if grid.placed_count() == 0 {
            continue;
        }
        out.push_str(&render_grid(grid, &dfg));
        out.push('\n');
    }
    // Narrate the move of the last-placed multiply, mirroring the
    // figure's O_i^p → O_i^n annotation.
    if let Some(snap) = outcome
        .snapshots
        .iter()
        .rev()
        .find(|s| matches!(s.class, hls_dfg::FuClass::Op(hls_celllib::OpKind::Mul)))
    {
        let node = dfg.node(snap.node);
        let chosen = outcome.schedule.slot(snap.node).expect("scheduled");
        let _ = writeln!(
            out,
            "move of `{}`: present position O^p = (x={}, y={}) [ALFAP corner of its frame],",
            node.name(),
            snap.current_fu,
            snap.primary.1.get(),
        );
        let _ = writeln!(
            out,
            "              next position    O^n = {} at step {} (minimum-Liapunov cell of MF)",
            chosen.unit, chosen.step
        );
    }
    out
}

/// Renders one frame snapshot as the paper's Figure-2 diagram: `F` =
/// forbidden frame, `R` = redundant frame, `o` = move frame, `X` =
/// in-frame but occupied, `.` = outside the primary frame.
pub fn render_frames(dfg: &Dfg, snap: &FrameSnapshot, cs: u32) -> String {
    let mut out = String::new();
    let node = dfg.node(snap.node);
    let _ = writeln!(
        out,
        "frames of `{}` ({}), class {}: PF steps [{}..{}], current_j = {}, max_j = {}",
        node.name(),
        node.kind(),
        snap.class,
        snap.primary.0.get(),
        snap.primary.1.get(),
        snap.current_fu,
        snap.max_fu
    );
    let _ = write!(out, "      ");
    for fu in 1..=snap.max_fu {
        let _ = write!(out, " u{fu} ");
    }
    out.push('\n');
    for step in 1..=cs {
        let _ = write!(out, "  t{step:<3}");
        for fu in 1..=snap.max_fu {
            let in_primary = step >= snap.primary.0.get() && step <= snap.primary.1.get();
            let symbol = if !in_primary {
                '.'
            } else if fu > snap.current_fu {
                'R'
            } else if step < snap.earliest_feasible.get() || step > snap.latest_feasible.get() {
                'F'
            } else if snap
                .movable
                .iter()
                .any(|p| p.step.get() == step && p.fu.get() == fu)
            {
                'o'
            } else {
                'X'
            };
            let _ = write!(out, "  {symbol} ");
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "legend: o = move frame MF, R = redundant frame, F = forbidden frame,"
    );
    let _ = writeln!(
        out,
        "        X = occupied in-frame cell, . = outside the primary frame"
    );
    out
}

/// Regenerates Figure 2: the PF/RF/FF/MF frames of an operation with two
/// already-scheduled predecessors (the paper's operation `r` with K1 and
/// K2), taken mid-run from the HAL differential equation.
pub fn figure2() -> String {
    let dfg = classic::diffeq();
    let spec = TimingSpec::uniform_single_cycle();
    let config = MfsConfig::time_constrained(6).with_frame_recording();
    let outcome = mfs::schedule(&dfg, &spec, &config).expect("diffeq fits 6 steps");
    // Pick the most illustrative recorded snapshot with two
    // predecessors: prefer one whose forbidden frame actually bites
    // (earliest feasible step above ASAP) and whose frame contains
    // occupied cells — the paper's operation `r` shows both.
    let snap = outcome
        .snapshots
        .iter()
        .filter(|s| !dfg.preds(s.node).is_empty())
        .max_by_key(|s| {
            let ff_bites = u32::from(s.earliest_feasible > s.primary.0);
            let frame_cells =
                (s.latest_feasible.get() + 1 - s.earliest_feasible.get()) * s.current_fu;
            let occupied = frame_cells.saturating_sub(s.movable.len() as u32);
            (ff_bites, occupied.min(1), dfg.preds(s.node).len())
        })
        .expect("diffeq has operations with predecessors");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2: move-frame construction (MF = PF - (RF + FF))\n"
    );
    let preds: Vec<String> = dfg
        .preds(snap.node)
        .iter()
        .map(|&p| {
            let step = outcome
                .schedule
                .start(p)
                .map(|s| s.to_string())
                .unwrap_or_else(|| "unscheduled".into());
            format!("{} @ {}", dfg.node(p).name(), step)
        })
        .collect();
    let _ = writeln!(
        out,
        "operation `{}` with predecessors K1/K2 = {}",
        dfg.node(snap.node).name(),
        preds.join(", ")
    );
    out.push_str(&render_frames(&dfg, snap, outcome.schedule.control_steps()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shows_grids_and_the_move() {
        let text = figure1();
        assert!(text.contains("Figure 1"));
        assert!(text.contains("class *"));
        assert!(text.contains("O^p"));
        assert!(text.contains("O^n"));
    }

    #[test]
    fn figure2_marks_all_frame_kinds() {
        let text = figure2();
        assert!(text.contains("Figure 2"));
        assert!(text.contains('o'), "move frame cells missing");
        assert!(text.contains("legend"));
        assert!(text.contains("K1/K2"));
    }
}
