//! Table 1 and Table 2 regeneration.

use std::fmt::Write as _;
use std::time::Duration;

use hls_benchmarks::examples::{self, Example, Feature};
use hls_celllib::Library;
use moveframe::mfsa::{DesignStyle, MfsaConfig};

use crate::runner::{run_example_mfs, run_example_mfsa};

/// One row of the regenerated Table 1 (MFS results).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Example number.
    pub example: u8,
    /// Example name.
    pub name: String,
    /// The Table-1 feature flag (`1`, `2`, `C`, `F`, `S`).
    pub feature: String,
    /// The time constraint.
    pub t: u32,
    /// The FU mix in the paper's notation.
    pub mix: String,
    /// Local reschedulings.
    pub reschedules: u32,
    /// Wall-clock time of the run.
    pub wall: Duration,
}

pub(crate) fn feature_flag(e: &Example) -> String {
    match &e.feature {
        Feature::SingleCycle => "1".into(),
        Feature::TwoCycleMultiply => "2".into(),
        Feature::Chaining(_) => "1,C".into(),
        Feature::FunctionalPipelining(_) => "1,F".into(),
        Feature::StructuralPipelining(_) => "2,S".into(),
    }
}

/// Runs MFS on all six examples over their sweeps — the data behind the
/// paper's Table 1.
pub fn table1() -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for e in examples::all() {
        for &t in &e.time_constraints {
            match run_example_mfs(&e, t) {
                Ok(run) => rows.push(Table1Row {
                    example: e.id,
                    name: e.name.to_string(),
                    feature: feature_flag(&e),
                    t,
                    mix: run.mix.to_string(),
                    reschedules: run.reschedules,
                    wall: run.wall,
                }),
                Err(err) => rows.push(Table1Row {
                    example: e.id,
                    name: e.name.to_string(),
                    feature: feature_flag(&e),
                    t,
                    mix: format!("<{err}>"),
                    reschedules: 0,
                    wall: Duration::ZERO,
                }),
            }
        }
    }
    rows
}

/// Renders Table 1 in the paper's layout.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: MFS results for the six examples");
    let _ = writeln!(
        out,
        "{:<3} {:<17} {:<8} {:<4} {:<24} {:>6} {:>10}",
        "Ex", "name", "feature", "T", "FUs", "resch", "cpu"
    );
    let mut last = 0;
    for row in rows {
        if row.example != last {
            let _ = writeln!(out, "{}", "-".repeat(78));
            last = row.example;
        }
        let _ = writeln!(
            out,
            "#{:<2} {:<17} {:<8} {:<4} {:<24} {:>6} {:>8.2?}",
            row.example, row.name, row.feature, row.t, row.mix, row.reschedules, row.wall
        );
    }
    let total: Duration = rows.iter().map(|r| r.wall).sum();
    let _ = writeln!(out, "{}", "-".repeat(78));
    let _ = writeln!(
        out,
        "total scheduling time: {total:.2?} (paper: < 0.2 s per run on a SPARC-SLC)"
    );
    out
}

/// One row of the regenerated Table 2 (MFSA results).
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Example number.
    pub example: u8,
    /// Example name.
    pub name: String,
    /// The time constraint.
    pub t: u32,
    /// 1 or 2.
    pub style: u8,
    /// The ALU set in the paper's notation (e.g. `2(+-*),(+)`).
    pub alus: String,
    /// Overall cost in µm².
    pub cost: u64,
    /// Register count.
    pub reg: usize,
    /// Real multiplexer count.
    pub mux: usize,
    /// Total mux inputs.
    pub muxin: usize,
    /// Wall-clock time.
    pub wall: Duration,
}

/// Runs MFSA (styles 1 and 2) on all six examples at their Table-2 time
/// constraints.
pub fn table2() -> Vec<Table2Row> {
    table2_with(|cs| MfsaConfig::new(cs, Library::ncr_like()))
}

/// Like [`table2`] but with a caller-supplied configuration factory
/// (used by the ablation harness to change weights or disable
/// interconnect sharing).
pub fn table2_with(make: impl Fn(u32) -> MfsaConfig) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for e in examples::all() {
        for (style_no, style) in [
            (1u8, DesignStyle::Unrestricted),
            (2, DesignStyle::NoSelfLoop),
        ] {
            let config = make(e.mfsa_cs).with_style(style);
            match run_example_mfsa(&e, config) {
                Ok((outcome, wall)) => rows.push(Table2Row {
                    example: e.id,
                    name: e.name.to_string(),
                    t: e.mfsa_cs,
                    style: style_no,
                    alus: outcome.datapath.alu_signature(),
                    cost: outcome.cost.total().as_u64(),
                    reg: outcome.cost.reg_count,
                    mux: outcome.cost.mux_count,
                    muxin: outcome.cost.mux_inputs,
                    wall,
                }),
                Err(err) => rows.push(Table2Row {
                    example: e.id,
                    name: e.name.to_string(),
                    t: e.mfsa_cs,
                    style: style_no,
                    alus: format!("<{err}>"),
                    cost: 0,
                    reg: 0,
                    mux: 0,
                    muxin: 0,
                    wall: Duration::ZERO,
                }),
            }
        }
    }
    rows
}

/// Table 2 with non-default Liapunov weights (ablation harness).
pub fn tables_with_weights(weights: moveframe::mfsa::Weights) -> Vec<Table2Row> {
    table2_with(|cs| MfsaConfig::new(cs, Library::ncr_like()).with_weights(weights))
}

/// Table 2 with interconnect sharing disabled in `f_MUX` (ablation
/// harness, paper §5.7).
pub fn tables_without_interconnect() -> Vec<Table2Row> {
    table2_with(|cs| MfsaConfig::new(cs, Library::ncr_like()).without_interconnect_sharing())
}

/// Renders Table 2 in the paper's layout, with the style-2 overhead
/// column the paper discusses (2–11 % in the original).
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 2: MFSA results (NCR-like synthetic library)");
    let _ = writeln!(
        out,
        "{:<3} {:<17} {:<3} {:<5} {:<28} {:>8} {:>4} {:>4} {:>6} {:>9}",
        "Ex", "name", "T", "style", "ALUs", "cost", "REG", "MUX", "MUXin", "cpu"
    );
    let mut last = 0;
    for row in rows {
        if row.example != last {
            let _ = writeln!(out, "{}", "-".repeat(96));
            last = row.example;
        }
        let _ = writeln!(
            out,
            "#{:<2} {:<17} {:<3} {:<5} {:<28} {:>8} {:>4} {:>4} {:>6} {:>7.2?}",
            row.example,
            row.name,
            row.t,
            row.style,
            row.alus,
            row.cost,
            row.reg,
            row.mux,
            row.muxin,
            row.wall
        );
        if row.style == 2 {
            if let Some(s1) = rows
                .iter()
                .find(|r| r.example == row.example && r.t == row.t && r.style == 1)
            {
                if s1.cost > 0 && row.cost > 0 {
                    let overhead = 100.0 * (row.cost as f64 - s1.cost as f64) / s1.cost as f64;
                    let _ = writeln!(
                        out,
                        "    style-2 overhead: {overhead:+.1} % (paper: +2..11 %)"
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_all_sweep_points() {
        let rows = table1();
        // 2 + 1 + 3 + 3 + 3 + 3 sweep points.
        assert_eq!(rows.len(), 15);
        assert!(rows.iter().all(|r| !r.mix.starts_with('<')), "{rows:#?}");
        let text = render_table1(&rows);
        assert!(text.contains("Table 1"));
        assert!(text.contains("#6"));
    }

    #[test]
    fn table2_has_two_styles_per_example() {
        let rows = table2();
        assert_eq!(rows.len(), 12);
        assert!(rows.iter().all(|r| r.cost > 0), "{rows:#?}");
        for ex in 1..=6u8 {
            let s1 = rows
                .iter()
                .find(|r| r.example == ex && r.style == 1)
                .unwrap();
            let s2 = rows
                .iter()
                .find(|r| r.example == ex && r.style == 2)
                .unwrap();
            assert!(
                s2.cost as f64 >= 0.95 * s1.cost as f64,
                "ex{ex}: style 2 should not be much cheaper than style 1"
            );
        }
        let text = render_table2(&rows);
        assert!(text.contains("style-2 overhead"));
    }
}
