//! The paper's experiment grid, expressed as `hls-explore` design
//! points, and engine-driven regeneration of Tables 1 and 2.
//!
//! The serial runner in [`crate::runner`] stays as the reference
//! implementation; this module routes the same sweeps through the
//! exploration engine so they share its cache and worker pool. The
//! regression tests assert that both paths produce identical rows.

use std::time::Duration;

use hls_benchmarks::examples::{self, Example};
use hls_explore::{Algorithm, DesignPoint, Engine, ExploreOptions, ExploreReport};

use crate::tables::{feature_flag, Table1Row, Table2Row};

/// The MFS design point for `example` at time constraint `t`, with the
/// example's chaining clock, pipelining latency and stage expansion
/// applied.
pub fn mfs_point(example: &Example, t: u32) -> DesignPoint {
    let mut p = DesignPoint::new(Algorithm::Mfs, t);
    p.clock = example.clock().map(|c| c.as_u32());
    p.latency = example.latency_for(t);
    if let Some(ops) = example.pipelined_ops() {
        p.pipeline_ops = ops.clone();
    }
    p
}

/// The MFSA design point for `example` in the given design style (1 or
/// 2) at its Table-2 time constraint.
pub fn mfsa_point(example: &Example, style: u8) -> DesignPoint {
    let mut p = DesignPoint::new(Algorithm::Mfsa, example.mfsa_cs);
    p.style = style;
    p.clock = example.clock().map(|c| c.as_u32());
    p.latency = example.latency_for(example.mfsa_cs);
    p
}

/// Every paper-table design point of one example: the Table-1 MFS sweep
/// followed by the two Table-2 MFSA styles.
pub fn paper_points(example: &Example) -> Vec<DesignPoint> {
    let mut points: Vec<DesignPoint> = example
        .time_constraints
        .iter()
        .map(|&t| mfs_point(example, t))
        .collect();
    points.push(mfsa_point(example, 1));
    points.push(mfsa_point(example, 2));
    points
}

/// Explores the full paper grid (all six examples), returning the
/// per-example reports in example order.
pub fn explore_paper_grid(engine: &Engine, threads: usize) -> Vec<(Example, ExploreReport)> {
    examples::all()
        .into_iter()
        .map(|e| {
            let points = paper_points(&e);
            let report = engine.explore(&e.dfg, &e.spec, &points, ExploreOptions { threads });
            (e, report)
        })
        .collect()
}

/// Table 1 regenerated through the exploration engine. Row order and
/// contents match [`crate::tables::table1`]; only the wall times differ.
pub fn table1_engine(engine: &Engine, threads: usize) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for e in examples::all() {
        let points: Vec<DesignPoint> = e
            .time_constraints
            .iter()
            .map(|&t| mfs_point(&e, t))
            .collect();
        let report = engine.explore(&e.dfg, &e.spec, &points, ExploreOptions { threads });
        for (r, &t) in report.results.iter().zip(&e.time_constraints) {
            let (mix, reschedules, wall) = match &r.outcome {
                Ok(m) => (
                    m.mix.clone(),
                    m.reschedules,
                    Duration::from_nanos(r.wall_ns),
                ),
                Err(err) => (format!("<{err}>"), 0, Duration::ZERO),
            };
            rows.push(Table1Row {
                example: e.id,
                name: e.name.to_string(),
                feature: feature_flag(&e),
                t,
                mix,
                reschedules,
                wall,
            });
        }
    }
    rows
}

/// Table 2 regenerated through the exploration engine. Row order and
/// contents match [`crate::tables::table2`]; only the wall times differ.
pub fn table2_engine(engine: &Engine, threads: usize) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for e in examples::all() {
        let points = vec![mfsa_point(&e, 1), mfsa_point(&e, 2)];
        let report = engine.explore(&e.dfg, &e.spec, &points, ExploreOptions { threads });
        for (r, style) in report.results.iter().zip([1u8, 2]) {
            let row = match &r.outcome {
                Ok(m) => {
                    let d = m
                        .mfsa
                        .as_ref()
                        .expect("MFSA points always carry MFSA detail");
                    Table2Row {
                        example: e.id,
                        name: e.name.to_string(),
                        t: e.mfsa_cs,
                        style,
                        alus: d.alus.clone(),
                        cost: d.total_cost,
                        reg: m.registers,
                        mux: d.mux,
                        muxin: d.muxin,
                        wall: Duration::from_nanos(r.wall_ns),
                    }
                }
                Err(err) => Table2Row {
                    example: e.id,
                    name: e.name.to_string(),
                    t: e.mfsa_cs,
                    style,
                    alus: format!("<{err}>"),
                    cost: 0,
                    reg: 0,
                    mux: 0,
                    muxin: 0,
                    wall: Duration::ZERO,
                },
            };
            rows.push(row);
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{table1, table2};

    #[test]
    fn engine_table1_matches_the_serial_runner() {
        let engine = Engine::new();
        let via_engine = table1_engine(&engine, 4);
        let serial = table1();
        assert_eq!(via_engine.len(), serial.len());
        for (a, b) in via_engine.iter().zip(&serial) {
            assert_eq!(a.example, b.example);
            assert_eq!(a.t, b.t);
            assert_eq!(a.mix, b.mix, "ex{} T={}", a.example, a.t);
            assert_eq!(a.reschedules, b.reschedules, "ex{} T={}", a.example, a.t);
            assert_eq!(a.feature, b.feature);
        }
    }

    #[test]
    fn engine_table2_matches_the_serial_runner() {
        let engine = Engine::new();
        let via_engine = table2_engine(&engine, 4);
        let serial = table2();
        assert_eq!(via_engine.len(), serial.len());
        for (a, b) in via_engine.iter().zip(&serial) {
            assert_eq!((a.example, a.t, a.style), (b.example, b.t, b.style));
            assert_eq!(a.alus, b.alus, "ex{} style {}", a.example, a.style);
            assert_eq!(a.cost, b.cost, "ex{} style {}", a.example, a.style);
            assert_eq!((a.reg, a.mux, a.muxin), (b.reg, b.mux, b.muxin));
        }
    }

    #[test]
    fn paper_grid_explores_every_example() {
        let engine = Engine::new();
        let grid = explore_paper_grid(&engine, 2);
        assert_eq!(grid.len(), 6);
        for (e, report) in &grid {
            assert_eq!(report.results.len(), e.time_constraints.len() + 2);
            assert!(
                report.results.iter().all(|r| r.outcome.is_ok()),
                "ex{} has failing points",
                e.id
            );
            assert!(!report.front.is_empty());
        }
    }
}
