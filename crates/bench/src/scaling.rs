//! The dense-scheduler scaling sweep behind `BENCH_core.json`, shared
//! by the `core_scaling` and `bench_diff` binaries.
//!
//! Generates seeded layered random DFGs at several sizes and runs the
//! two paper kernels in both constraint styles. Every entry records the
//! wall time plus the deterministic work counters and an FNV-1a
//! fingerprint of the resulting schedule. Counters and fingerprints are
//! bit-stable across runs and machines; wall times are not and are
//! ignored by every comparison.

use std::time::Instant;

use hls_benchmarks::generate::{generate, scaling_workload, SCALING_SEED};
use hls_celllib::{Library, TimingSpec};
use hls_dfg::{CriticalPath, Dfg};
use hls_telemetry::{Instrument, Metrics, NullSink};
use moveframe::mfs::{self, MfsConfig};
use moveframe::mfsa::{self, MfsaConfig, Weights};

/// Requested op counts of the full sweep; the generator rounds up to
/// full layers.
pub const FULL_SIZES: [usize; 5] = [1_000, 5_000, 20_000, 50_000, 100_000];
/// The smallest size only — the CI smoke subset.
pub const QUICK_SIZES: [usize; 1] = [1_000];
/// Largest size at which the resource-constrained MFS run (and its
/// budget-discovery ladder) is still tractable; above this the sweep
/// records only the three unconstrained kernels.
pub const MFS_RESOURCE_CAP: usize = 20_000;
/// The sweep's workload seed (the canonical scaling seed).
pub const SEED: u64 = SCALING_SEED;
/// Control-step slack above the critical path (wide move frames).
pub const SLACK: u32 = 8;

/// One benchmark measurement (everything but `wall_ms` is
/// deterministic).
pub struct Entry {
    /// Node count of the generated graph.
    pub nodes: usize,
    /// Kernel name (`"mfs"` / `"mfsa"`).
    pub alg: &'static str,
    /// Constraint style (`"time"` / `"resource"` / `"area"`).
    pub mode: &'static str,
    /// The control-step budget the run used.
    pub cs: u32,
    /// Machine-local wall time — excluded from every comparison.
    pub wall_ms: f64,
    /// Move frames computed (deterministic).
    pub frames_computed: u64,
    /// Liapunov energies evaluated (deterministic).
    pub energy_evaluations: u64,
    /// Local reschedulings / new instances (deterministic).
    pub reschedules: u64,
    /// Liapunov lower bounds computed by the pruned MFSA loop — the
    /// candidate universe the branch-and-bound inspected. Zero for MFS
    /// rows, which have no bounded search.
    pub bound_evals: u64,
    /// Candidate steps discarded wholesale by the step-level cut.
    pub cut_steps: u64,
    /// Instance candidates cut before their full `f_MUX` recompute.
    pub cut_instances: u64,
    /// FNV-1a fingerprint of the `(node, step, unit)` triples.
    pub fingerprint: u64,
}

impl Entry {
    /// The deterministic identity used to pair fresh entries with
    /// committed snapshot lines.
    pub fn key(&self) -> String {
        format!(
            "\"nodes\":{},\"alg\":\"{}\",\"mode\":\"{}\"",
            self.nodes, self.alg, self.mode
        )
    }

    /// One snapshot line.
    pub fn render(&self) -> String {
        format!(
            "    {{{},\"cs\":{},\"wall_ms\":{:.1},\"frames_computed\":{},\"energy_evaluations\":{},\"reschedules\":{},\"bound_evals\":{},\"cut_steps\":{},\"cut_instances\":{},\"fingerprint\":\"{:016x}\"}}",
            self.key(),
            self.cs,
            self.wall_ms,
            self.frames_computed,
            self.energy_evaluations,
            self.reschedules,
            self.bound_evals,
            self.cut_steps,
            self.cut_instances,
            self.fingerprint
        )
    }
}

/// Bisects `0..len` for the first index at which `probe` succeeds,
/// assuming monotone feasibility (once feasible, always feasible for
/// larger indices). Returns `len` when no index succeeds. Under that
/// monotonicity this lands on exactly the index a linear scan would
/// find, in ⌈log₂ len⌉ + 1 probes.
pub fn first_feasible(len: usize, mut probe: impl FnMut(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, len);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if probe(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// FNV-1a over the schedule's `(node, step, unit)` triples — a cheap,
/// stable witness that a code change kept the output bit-identical.
pub fn fingerprint(schedule: &hls_schedule::Schedule) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    for (node, slot) in schedule.iter() {
        mix(&(node.index() as u32).to_le_bytes());
        mix(&slot.step.get().to_le_bytes());
        mix(slot.unit.to_string().as_bytes());
    }
    h
}

fn run_mfs(dfg: &Dfg, spec: &TimingSpec, config: &MfsConfig, mode: &'static str) -> Entry {
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    let start = Instant::now();
    let out = {
        let mut instr = Instrument::new(&mut sink, &mut metrics);
        mfs::schedule_traced(dfg, spec, config, &mut instr)
            .unwrap_or_else(|e| panic!("mfs/{mode} at {} nodes: {e}", dfg.node_count()))
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    Entry {
        nodes: dfg.node_count(),
        alg: "mfs",
        mode,
        cs: config.control_steps(),
        wall_ms,
        frames_computed: metrics.counter("mfs.frames_computed"),
        energy_evaluations: metrics.counter("mfs.energy_evaluations"),
        reschedules: metrics.counter("mfs.local_reschedules"),
        bound_evals: 0,
        cut_steps: 0,
        cut_instances: 0,
        fingerprint: fingerprint(&out.schedule),
    }
}

fn run_mfsa(dfg: &Dfg, spec: &TimingSpec, config: &MfsaConfig, mode: &'static str) -> Entry {
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    let start = Instant::now();
    let out = {
        let mut instr = Instrument::new(&mut sink, &mut metrics);
        mfsa::schedule_traced(dfg, spec, config, &mut instr)
            .unwrap_or_else(|e| panic!("mfsa/{mode} at {} nodes: {e}", dfg.node_count()))
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    Entry {
        nodes: dfg.node_count(),
        alg: "mfsa",
        mode,
        cs: config.control_steps(),
        wall_ms,
        frames_computed: metrics.counter("mfsa.moves_committed"),
        energy_evaluations: metrics.counter("mfsa.energy_evaluations"),
        reschedules: metrics.counter("mfsa.new_instances"),
        bound_evals: metrics.counter("mfsa.bound.evals"),
        cut_steps: metrics.counter("mfsa.prune.cut_steps"),
        cut_instances: metrics.counter("mfsa.prune.cut_instances"),
        fingerprint: fingerprint(&out.schedule),
    }
}

/// Runs the four kernel/mode combinations at one size and appends the
/// entries; progress goes to stderr.
pub fn bench_size(ops: usize, entries: &mut Vec<Entry>) {
    let spec = TimingSpec::uniform_single_cycle();
    // The canonical fixed-depth workload shared with `mfhls profile
    // gen:OPS`, so hotspot reports attribute exactly this sweep's work.
    let dfg = generate(&scaling_workload(ops));
    let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
    let cs = cp + SLACK;
    eprintln!("# {} nodes (critical path {cp}, cs {cs})", dfg.node_count());

    let first = entries.len();
    let time_cfg = MfsConfig::time_constrained(cs);
    entries.push(run_mfs(&dfg, &spec, &time_cfg, "time"));
    if ops <= MFS_RESOURCE_CAP {
        // Resource-constrained MFS starts from the unit budgets the time
        // run discovered; the greedy pass is not complete, so widen the
        // budgets by a (deterministic) margin until a feasible layout is
        // found.
        let budgets = {
            let out = mfs::schedule(&dfg, &spec, &time_cfg).expect("time run succeeded above");
            out.fu_counts()
        };
        // The margin ladder is proportional so it scales with graph
        // width: +p% of each class budget (at least +p units at p ≥ 1).
        // Feasibility is monotone in the margin — more units never turn
        // a feasible budget infeasible — so bisect for the first
        // feasible rung: ⌈log₂ 8⌉ = 3 probe schedules instead of up to
        // 8, landing on exactly the rung a linear scan would pick.
        let ladder = [0u32, 5, 10, 20, 40, 80, 160, 320];
        let cfg_at = |pct: u32| {
            let mut cfg = MfsConfig::resource_constrained(cs);
            for (&class, &limit) in &budgets {
                let margin = (limit * pct).div_ceil(100).max(pct.min(1));
                cfg = cfg.with_fu_limit(class, limit + margin);
            }
            cfg
        };
        let rung = first_feasible(ladder.len(), |i| {
            mfs::schedule(&dfg, &spec, &cfg_at(ladder[i])).is_ok()
        });
        assert!(
            rung < ladder.len(),
            "a feasible budget margin within the +320% ladder"
        );
        let res_cfg = cfg_at(ladder[rung]);
        entries.push(run_mfs(&dfg, &spec, &res_cfg, "resource"));
    } else {
        eprintln!("#   mfs/resource skipped above {MFS_RESOURCE_CAP} nodes");
    }

    entries.push(run_mfsa(
        &dfg,
        &spec,
        &MfsaConfig::new(cs, Library::ncr_like()),
        "time",
    ));
    entries.push(run_mfsa(
        &dfg,
        &spec,
        &MfsaConfig::new(cs, Library::ncr_like()).with_weights(Weights {
            time: 0,
            alu: 1,
            mux: 1,
            reg: 1,
        }),
        "area",
    ));
    for e in &entries[first..] {
        eprintln!(
            "#   {}/{}: {:.1} ms, {} frames, {} evals, {} bounds",
            e.alg, e.mode, e.wall_ms, e.frames_computed, e.energy_evaluations, e.bound_evals
        );
    }
}

/// Renders the full `BENCH_core.json` document.
pub fn render(entries: &[Entry]) -> String {
    let rows: Vec<String> = entries.iter().map(Entry::render).collect();
    format!(
        "{{\n  \"note\": \"dense scheduler core scaling sweep; counters and fingerprints are deterministic, wall_ms is machine-local and ignored by --check\",\n  \"seed\": {SEED},\n  \"slack\": {SLACK},\n  \"entries\": [\n{}\n  ]\n}}",
        rows.join(",\n")
    )
}

/// Reads one named field out of a committed snapshot line. Decimal
/// fields are bare; the fingerprint is a quoted 16-digit hex string.
pub(crate) fn snapshot_field(line: &str, name: &str) -> Result<u64, String> {
    let tag = format!("\"{name}\":");
    let rest = line
        .split(&tag)
        .nth(1)
        .ok_or_else(|| format!("snapshot entry lacks {name}"))?;
    let digits: String = rest
        .chars()
        .skip_while(|c| *c == '"')
        .take_while(|c| c.is_ascii_hexdigit())
        .collect();
    let radix = if rest.starts_with('"') { 16 } else { 10 };
    u64::from_str_radix(&digits, radix).map_err(|err| format!("bad {name}: {err}"))
}

/// Finds the committed line matching `entry`'s key.
fn snapshot_line<'a>(snapshot: &'a str, entry: &Entry) -> Result<&'a str, String> {
    snapshot
        .lines()
        .find(|l| l.contains(&entry.key()))
        .ok_or_else(|| format!("snapshot has no entry for {}", entry.key()))
}

/// The tolerant comparison `core_scaling --check` applies: counters must
/// not regress (grow) and fingerprints must match exactly.
pub fn check_no_regression(entries: &[Entry], snapshot: &str) -> Result<(), String> {
    for e in entries {
        let line = snapshot_line(snapshot, e)?;
        let field =
            |name: &str| snapshot_field(line, name).map_err(|err| format!("{}: {err}", e.key()));
        let base_frames = field("frames_computed")?;
        let base_evals = field("energy_evaluations")?;
        let base_bounds = field("bound_evals")?;
        let base_print = field("fingerprint")?;
        if e.frames_computed > base_frames {
            return Err(format!(
                "{}: frames_computed regressed {} -> {}",
                e.key(),
                base_frames,
                e.frames_computed
            ));
        }
        if e.energy_evaluations > base_evals {
            return Err(format!(
                "{}: energy_evaluations regressed {} -> {}",
                e.key(),
                base_evals,
                e.energy_evaluations
            ));
        }
        if e.bound_evals > base_bounds {
            return Err(format!(
                "{}: bound_evals regressed {} -> {}",
                e.key(),
                base_bounds,
                e.bound_evals
            ));
        }
        if e.fingerprint != base_print {
            return Err(format!(
                "{}: schedule fingerprint drifted {:016x} -> {:016x}",
                e.key(),
                base_print,
                e.fingerprint
            ));
        }
    }
    Ok(())
}

/// The exact comparison `bench_diff` applies: every deterministic field
/// (cs, counters, fingerprint) must match the committed snapshot
/// bit-for-bit; only `wall_ms` is ignored. Returns one message per
/// drifted field, empty when the fresh entries match.
pub fn diff_exact(entries: &[Entry], snapshot: &str) -> Vec<String> {
    let mut drift = Vec::new();
    for e in entries {
        let line = match snapshot_line(snapshot, e) {
            Ok(line) => line,
            Err(msg) => {
                drift.push(msg);
                continue;
            }
        };
        let mut field = |name: &str, fresh: u64, hex: bool| match snapshot_field(line, name) {
            Ok(base) if base == fresh => {}
            Ok(base) => drift.push(if hex {
                format!("{}: {name} {base:016x} -> {fresh:016x}", e.key())
            } else {
                format!("{}: {name} {base} -> {fresh}", e.key())
            }),
            Err(msg) => drift.push(format!("{}: {msg}", e.key())),
        };
        field("cs", e.cs as u64, false);
        field("frames_computed", e.frames_computed, false);
        field("energy_evaluations", e.energy_evaluations, false);
        field("reschedules", e.reschedules, false);
        field("bound_evals", e.bound_evals, false);
        field("cut_steps", e.cut_steps, false);
        field("cut_instances", e.cut_instances, false);
        field("fingerprint", e.fingerprint, true);
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> Entry {
        Entry {
            nodes: 1024,
            alg: "mfsa",
            mode: "time",
            cs: 40,
            wall_ms: 1.5,
            frames_computed: 10,
            energy_evaluations: 100,
            reschedules: 2,
            bound_evals: 400,
            cut_steps: 7,
            cut_instances: 300,
            fingerprint: 0xabcd,
        }
    }

    #[test]
    fn exact_diff_ignores_wall_clock_only() {
        let e = entry();
        let snapshot = render(&[e]);
        let mut fresh = entry();
        fresh.wall_ms = 9999.0;
        assert!(diff_exact(&[fresh], &snapshot).is_empty());

        let mut drifted = entry();
        drifted.energy_evaluations += 1;
        drifted.fingerprint ^= 1;
        let drift = diff_exact(&[drifted], &snapshot);
        assert_eq!(drift.len(), 2, "{drift:?}");
        assert!(
            drift[0].contains("energy_evaluations 100 -> 101"),
            "{drift:?}"
        );
        assert!(
            drift[1].contains("fingerprint 000000000000abcd"),
            "{drift:?}"
        );
    }

    #[test]
    fn exact_diff_reports_missing_entries() {
        let mut other = entry();
        other.mode = "resource";
        let drift = diff_exact(&[other], &render(&[entry()]));
        assert_eq!(drift.len(), 1);
        assert!(drift[0].contains("no entry"), "{drift:?}");
    }

    #[test]
    fn exact_diff_pins_the_prune_counters() {
        let snapshot = render(&[entry()]);
        let mut drifted = entry();
        drifted.cut_instances -= 1;
        let drift = diff_exact(&[drifted], &snapshot);
        assert_eq!(drift.len(), 1, "{drift:?}");
        assert!(drift[0].contains("cut_instances 300 -> 299"), "{drift:?}");
    }

    #[test]
    fn bisection_matches_a_linear_scan_on_every_monotone_ladder() {
        // All 9 monotone predicates over an 8-rung ladder: infeasible
        // below rung t, feasible from t on (t = 8 means never).
        for t in 0..=8usize {
            let linear = (0..8).find(|&i| i >= t).unwrap_or(8);
            assert_eq!(first_feasible(8, |i| i >= t), linear, "threshold {t}");
        }
    }

    #[test]
    fn regression_check_tolerates_improvement_but_not_growth() {
        let snapshot = render(&[entry()]);
        let mut better = entry();
        better.energy_evaluations -= 50;
        better.bound_evals -= 50;
        assert!(check_no_regression(&[better], &snapshot).is_ok());
        let mut worse = entry();
        worse.energy_evaluations += 1;
        let err = check_no_regression(&[worse], &snapshot).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        let mut lazier = entry();
        lazier.bound_evals += 1;
        let err = check_no_regression(&[lazier], &snapshot).unwrap_err();
        assert!(err.contains("bound_evals regressed"), "{err}");
    }
}
