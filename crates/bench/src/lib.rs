//! Experiment harness for the `moveframe-hls` workspace: regenerates the
//! DAC-1992 paper's Table 1, Table 2 and Figures 1–2, and hosts the
//! Criterion benches for the runtime and scaling claims.
//!
//! Binaries:
//!
//! * `cargo run -p hls-bench --bin table1` — MFS results for the six
//!   examples across their time-constraint sweeps;
//! * `cargo run -p hls-bench --bin table2` — MFSA RTL results (design
//!   styles 1 and 2); `--ablate` adds the Liapunov-weight and
//!   interconnect-sharing ablations;
//! * `cargo run -p hls-bench --bin figure1` — a populated placement
//!   table with an operation's present/next position;
//! * `cargo run -p hls-bench --bin figure2` — the PF/RF/FF/MF frames of
//!   an operation at its scheduling moment;
//! * `cargo run --release -p hls-bench --bin explore_speedup` — the
//!   full paper grid through the `hls-explore` engine at 1/2/4/8
//!   worker threads plus a warm-cache pass, emitting
//!   `BENCH_explore.json`;
//! * `cargo run --release -p hls-bench --bin shard_scaling` — the
//!   sharded-synthesis sweep on 200k–1M-node clustered workloads,
//!   emitting `BENCH_partition.json`;
//! * `cargo run --release -p hls-bench --bin iterate_sweep` — the
//!   iterate-vs-one-shot quality sweep on the paper benchmarks, memory
//!   kernels and generated graphs, emitting `BENCH_iterate.json`;
//! * `cargo run --release -p hls-bench --bin bench_diff` — regenerates
//!   the deterministic snapshot documents and structurally diffs them
//!   against the committed `BENCH_core.json` / `BENCH_partition.json` /
//!   `BENCH_iterate.json` / `BENCH_mem.json` / `BENCH_telemetry.json`
//!   (`--check` exits nonzero on drift, wall-clock fields are ignored).
//!
//! Benches: `runtime` (MFS/MFSA vs list/FDS/annealing), `scaling`
//! (O(l³) growth on generated graphs), `ablation`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explore_grid;
mod figures;
pub mod iterate;
mod runner;
pub mod scaling;
pub mod serve_check;
pub mod shard_scaling;
pub mod snapshots;
mod tables;

pub use explore_grid::{
    explore_paper_grid, mfs_point, mfsa_point, paper_points, table1_engine, table2_engine,
};
pub use figures::{figure1, figure2};
pub use runner::{
    run_example_mfs, run_example_mfs_traced, run_example_mfsa, run_example_mfsa_traced, MfsRun,
};
pub use tables::{
    render_table1, render_table2, table1, table2, table2_with, tables_with_weights,
    tables_without_interconnect, Table1Row, Table2Row,
};
