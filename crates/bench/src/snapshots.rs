//! The deterministic snapshot documents `BENCH_mem.json` and
//! `BENCH_telemetry.json`, shared by their emitter binaries and
//! `bench_diff`.

use hls_celllib::{Library, TimingSpec};
use hls_dfg::{CriticalPath, Dfg};
use hls_mem::port_pressure;
use hls_telemetry::{Instrument, Metrics, NullSink};
use moveframe::mfs::{self, MfsConfig};
use moveframe::mfsa::{self, MfsaConfig};

use crate::{run_example_mfs_traced, run_example_mfsa_traced};

const PORTS: [u32; 3] = [1, 2, 4];
/// How far past the critical path the search is willing to go before
/// declaring a kernel infeasible (never reached in practice).
const SEARCH_SPAN: u32 = 256;

/// The smallest `cs >= cp` the scheduler accepts, or `None`.
fn min_feasible(dfg: &Dfg, spec: &TimingSpec, mut try_cs: impl FnMut(u32) -> bool) -> Option<u32> {
    let cp = CriticalPath::compute(dfg, spec).steps() as u32;
    (cp..cp + SEARCH_SPAN).find(|&cs| try_cs(cs))
}

fn sweep(label: &str, build: impl Fn(u32) -> Dfg) -> String {
    let spec = TimingSpec::uniform_single_cycle();
    let mut rows = Vec::new();
    let mut last_mfsa = None;
    for ports in PORTS {
        let dfg = build(ports);
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;
        let mfs_min = min_feasible(&dfg, &spec, |cs| {
            mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(cs)).is_ok()
        })
        .unwrap_or_else(|| panic!("{label} ports={ports}: MFS found no feasible cs"));
        let mut out = None;
        let mfsa_min = min_feasible(&dfg, &spec, |cs| {
            match mfsa::schedule(&dfg, &spec, &MfsaConfig::new(cs, Library::ncr_like())) {
                Ok(o) => {
                    out = Some(o);
                    true
                }
                Err(_) => false,
            }
        })
        .unwrap_or_else(|| panic!("{label} ports={ports}: MFSA found no feasible cs"));
        let out = out.expect("search success stores the outcome");
        let pressure = port_pressure(&dfg, &out.schedule).expect("port-bound MFSA schedule");
        let peaks: Vec<String> = dfg
            .memory()
            .banks()
            .iter()
            .map(|b| {
                format!(
                    "{{\"bank\":\"{}\",\"ports\":{},\"peak\":{}}}",
                    b.name(),
                    b.ports(),
                    pressure.peak(b.id())
                )
            })
            .collect();
        // The monotonicity the CI smoke job also pins: more ports never
        // lengthen the minimum schedule.
        if let Some(prev) = last_mfsa {
            assert!(
                mfsa_min <= prev,
                "{label}: {ports} ports needs {mfsa_min} steps, more than {prev} at fewer ports"
            );
        }
        last_mfsa = Some(mfsa_min);
        rows.push(format!(
            "    {{\"ports\":{ports},\"critical_path\":{cp},\"min_csteps_mfs\":{mfs_min},\"min_csteps_mfsa\":{mfsa_min},\"peak_pressure\":[{}]}}",
            peaks.join(",")
        ));
    }
    format!("  \"{label}\": [\n{}\n  ]", rows.join(",\n"))
}

/// Regenerates the `BENCH_mem.json` document: each memory benchmark
/// kernel rebuilt at 1, 2 and 4 bank ports, with the minimum feasible
/// time constraint of MFS and MFSA found by upward search from the
/// dependency critical path, plus the peak per-bank port pressure of
/// the MFSA schedule at that minimum. Fully deterministic.
pub fn mem_snapshot() -> String {
    let fir = sweep("array_fir_8", |p| hls_benchmarks::memory::array_fir(8, p));
    let mv = sweep("matvec_3", |p| hls_benchmarks::memory::matvec(3, p));
    format!(
        "{{\n  \"note\": \"minimum feasible control steps by bank port count; searched upward from the dependency critical path\",\n{fir},\n{mv}\n}}"
    )
}

/// Regenerates the `BENCH_telemetry.json` document: every paper example
/// run through instrumented MFS (at each Table-1 time constraint) and
/// MFSA (at its Table-2 constraint), with all counters and histograms
/// merged into one registry. Timing histograms (`phase.*.ns`,
/// `bench.*.wall_ns`) vary run to run, so they are dropped unless
/// `with_timings` is set — everything left is deterministic.
pub fn telemetry_snapshot(with_timings: bool) -> String {
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    let mut instr = Instrument::new(&mut sink, &mut metrics);

    for e in hls_benchmarks::examples::all() {
        for &t in &e.time_constraints {
            run_example_mfs_traced(&e, t, &mut instr)
                .unwrap_or_else(|err| panic!("ex{} at T={t}: {err}", e.id));
        }
        let config = MfsaConfig::new(e.mfsa_cs, Library::ncr_like());
        run_example_mfsa_traced(&e, config, &mut instr)
            .unwrap_or_else(|err| panic!("ex{} MFSA: {err}", e.id));
    }

    if !with_timings {
        metrics.retain(|name| !name.ends_with(".ns") && !name.ends_with("_ns"));
    }
    metrics.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_snapshot_is_deterministic_without_timings() {
        let a = telemetry_snapshot(false);
        let b = telemetry_snapshot(false);
        assert_eq!(a, b);
        assert!(a.contains("\"mfs.energy_evaluations\""));
        assert!(a.contains("\"mfsa.reuse_memo.hits\""));
        assert!(a.contains("\"mfsa.reuse_memo.insert_hits\""));
        assert!(!a.contains(".ns\""), "timing histograms must be dropped");
    }
}
