//! Feature-aware dispatch: run MFS or MFSA on one example at one time
//! constraint, applying the example's chaining/pipelining flags.

use std::time::{Duration, Instant};

use hls_benchmarks::examples::{Example, Feature};
use hls_dfg::OpMix;
use hls_telemetry::Instrument;
use moveframe::mfs::{self, MfsConfig};
use moveframe::mfsa::{self, MfsaConfig};
use moveframe::pipeline::{pipelined_fu_counts, schedule_structural, schedule_structural_traced};
use moveframe::MoveFrameError;

/// The distilled result of one MFS run on an example.
#[derive(Debug, Clone)]
pub struct MfsRun {
    /// Functional units required, in the paper's notation (structural
    /// pipelining already folded back to whole pipelined units).
    pub mix: OpMix,
    /// Local reschedulings performed.
    pub reschedules: u32,
    /// Wall-clock time of the scheduling call.
    pub wall: Duration,
}

/// Runs MFS on `example` at time constraint `t`, honouring its feature
/// (chaining clock, functional-pipelining latency, structural stage
/// expansion).
///
/// # Errors
///
/// Propagates scheduling errors (an infeasible `t`, …).
pub fn run_example_mfs(example: &Example, t: u32) -> Result<MfsRun, MoveFrameError> {
    let mut config = MfsConfig::time_constrained(t);
    if let Some(clock) = example.clock() {
        config = config.with_chaining(clock);
    }
    if let Some(latency) = example.latency_for(t) {
        config = config.with_latency(latency);
    }
    let start = Instant::now();
    let (mix, reschedules) = match &example.feature {
        Feature::StructuralPipelining(ops) => {
            let (_, _, outcome) = schedule_structural(&example.dfg, &example.spec, &config, ops)?;
            let mix = pipelined_fu_counts(&outcome)
                .into_iter()
                .map(|(c, n)| (c, n as usize))
                .collect();
            (mix, outcome.reschedule_count)
        }
        _ => {
            let outcome = mfs::schedule(&example.dfg, &example.spec, &config)?;
            let mix = outcome
                .fu_counts()
                .into_iter()
                .map(|(c, n)| (c, n as usize))
                .collect();
            (mix, outcome.reschedule_count)
        }
    };
    Ok(MfsRun {
        mix,
        reschedules,
        wall: start.elapsed(),
    })
}

/// [`run_example_mfs`] with instrumentation: scheduler events and
/// counters flow into `instr`, and the runner adds `bench.mfs.runs` and
/// a `bench.mfs.wall_ns` histogram of the scheduling wall time.
///
/// # Errors
///
/// As for [`run_example_mfs`].
pub fn run_example_mfs_traced(
    example: &Example,
    t: u32,
    instr: &mut Instrument<'_>,
) -> Result<MfsRun, MoveFrameError> {
    let mut config = MfsConfig::time_constrained(t);
    if let Some(clock) = example.clock() {
        config = config.with_chaining(clock);
    }
    if let Some(latency) = example.latency_for(t) {
        config = config.with_latency(latency);
    }
    let start = Instant::now();
    let (mix, reschedules) = match &example.feature {
        Feature::StructuralPipelining(ops) => {
            let (_, _, outcome) =
                schedule_structural_traced(&example.dfg, &example.spec, &config, ops, instr)?;
            let mix = pipelined_fu_counts(&outcome)
                .into_iter()
                .map(|(c, n)| (c, n as usize))
                .collect();
            (mix, outcome.reschedule_count)
        }
        _ => {
            let outcome = mfs::schedule_traced(&example.dfg, &example.spec, &config, instr)?;
            let mix = outcome
                .fu_counts()
                .into_iter()
                .map(|(c, n)| (c, n as usize))
                .collect();
            (mix, outcome.reschedule_count)
        }
    };
    let wall = start.elapsed();
    instr.inc("bench.mfs.runs", 1);
    instr.observe("bench.mfs.wall_ns", wall.as_nanos() as u64);
    Ok(MfsRun {
        mix,
        reschedules,
        wall,
    })
}

/// Runs MFSA on `example` at its Table-2 time constraint with the given
/// style, returning the outcome and the wall time.
///
/// Structural-pipelining examples run on the *unexpanded* graph (the
/// multiplier is a plain 2-cycle ALU): Table 2 reports whole ALUs, and
/// the cell library has no per-stage cells.
///
/// # Errors
///
/// Propagates MFSA errors.
pub fn run_example_mfsa(
    example: &Example,
    config: MfsaConfig,
) -> Result<(mfsa::MfsaOutcome, Duration), MoveFrameError> {
    let config = match example.clock() {
        Some(clock) => config.with_chaining(clock),
        None => config,
    };
    let config = match example.latency_for(config.control_steps()) {
        Some(latency) => config.with_latency(latency),
        None => config,
    };
    let start = Instant::now();
    let outcome = mfsa::schedule(&example.dfg, &example.spec, &config)?;
    Ok((outcome, start.elapsed()))
}

/// [`run_example_mfsa`] with instrumentation: scheduler events and
/// counters flow into `instr`, and the runner adds `bench.mfsa.runs`
/// and a `bench.mfsa.wall_ns` histogram of the scheduling wall time.
///
/// # Errors
///
/// As for [`run_example_mfsa`].
pub fn run_example_mfsa_traced(
    example: &Example,
    config: MfsaConfig,
    instr: &mut Instrument<'_>,
) -> Result<(mfsa::MfsaOutcome, Duration), MoveFrameError> {
    let config = match example.clock() {
        Some(clock) => config.with_chaining(clock),
        None => config,
    };
    let config = match example.latency_for(config.control_steps()) {
        Some(latency) => config.with_latency(latency),
        None => config,
    };
    let start = Instant::now();
    let outcome = mfsa::schedule_traced(&example.dfg, &example.spec, &config, instr)?;
    let wall = start.elapsed();
    instr.inc("bench.mfsa.runs", 1);
    instr.observe("bench.mfsa.wall_ns", wall.as_nanos() as u64);
    Ok((outcome, wall))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_benchmarks::examples;
    use hls_celllib::Library;

    #[test]
    fn every_example_schedules_at_every_sweep_point() {
        for e in examples::all() {
            for &t in &e.time_constraints {
                let run = run_example_mfs(&e, t)
                    .unwrap_or_else(|err| panic!("ex{} at T={t}: {err}", e.id));
                assert!(run.mix.total() >= 1, "ex{} at T={t} used no units", e.id);
            }
        }
    }

    #[test]
    fn looser_constraints_never_need_more_units() {
        for e in examples::all() {
            if e.time_constraints.len() < 2 {
                continue;
            }
            let first = run_example_mfs(&e, e.time_constraints[0]).unwrap();
            let last = run_example_mfs(&e, *e.time_constraints.last().unwrap()).unwrap();
            assert!(
                last.mix.total() <= first.mix.total(),
                "ex{}: {} units at loose T vs {} at tight T",
                e.id,
                last.mix.total(),
                first.mix.total()
            );
        }
    }

    #[test]
    fn mfsa_runs_on_every_example() {
        for e in examples::all() {
            let config = MfsaConfig::new(e.mfsa_cs, Library::ncr_like());
            let (outcome, _) =
                run_example_mfsa(&e, config).unwrap_or_else(|err| panic!("ex{}: {err}", e.id));
            assert!(outcome.schedule.is_complete());
            assert!(outcome.cost.total().as_u64() > 0);
        }
    }
}
