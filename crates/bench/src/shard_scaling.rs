//! The sharded-synthesis scaling sweep behind `BENCH_partition.json`,
//! shared by the `shard_scaling` and `bench_diff` binaries.
//!
//! Extends the seeded workloads past the dense sweep's 100k-node
//! ceiling: clustered graphs of 200k, 500k and 1M nodes run through
//! `hls-partition`'s partition → parallel-schedule → stitch pipeline.
//! Every entry records wall time plus the deterministic partition
//! counters, the achieved horizon, and the schedule fingerprint —
//! everything except `wall_ms` is bit-stable across runs, machines and
//! `--threads` values.

use std::time::Instant;

use hls_benchmarks::generate::{clustered_workload, generate_clustered};
use hls_celllib::{Library, TimingSpec};
use hls_dfg::{CriticalPath, Dfg};
use hls_partition::{synth_sharded, ShardAlg, ShardedConfig};
use hls_telemetry::{Instrument, Metrics, NullSink};

use crate::scaling::fingerprint;

/// Node-count targets of the full sweep — starts where the dense sweep
/// (`BENCH_core.json`, ≤ 100k) stops.
pub const FULL_SIZES: [usize; 3] = [200_000, 500_000, 1_000_000];
/// The smallest size only — the CI smoke subset.
pub const QUICK_SIZES: [usize; 1] = [200_000];
/// Largest size at which the MFSA shard pipeline (allocation per shard)
/// is still tractable for a routine sweep; above this only MFS runs.
pub const MFSA_CAP: usize = 500_000;

/// One sharded measurement (everything but `wall_ms` is deterministic).
pub struct Entry {
    /// Node count of the generated clustered graph.
    pub nodes: usize,
    /// Per-shard kernel (`"mfs"` / `"mfsa"`).
    pub alg: &'static str,
    /// Shard count the automatic sizing chose.
    pub shards: usize,
    /// Cut edges of the final partition.
    pub cut_edges: usize,
    /// Nodes incident to a cut edge.
    pub boundary_nodes: usize,
    /// KL refinement moves committed by the partitioner.
    pub refine_moves: u64,
    /// Boundary moves committed by the stitcher.
    pub stitch_moves: u64,
    /// Steps saved by telescoping versus naive concatenation.
    pub telescoped_saved: u64,
    /// Critical path of the whole graph — the horizon lower bound.
    pub cp: u32,
    /// Achieved horizon; `csteps - cp` is the sharding overhead.
    pub csteps: u32,
    /// Machine-local wall time — excluded from every comparison.
    pub wall_ms: f64,
    /// FNV-1a fingerprint of the `(node, step, unit)` triples.
    pub fingerprint: u64,
}

impl Entry {
    /// The deterministic identity used to pair fresh entries with
    /// committed snapshot lines.
    pub fn key(&self) -> String {
        format!("\"nodes\":{},\"alg\":\"{}\"", self.nodes, self.alg)
    }

    /// One snapshot line.
    pub fn render(&self) -> String {
        format!(
            "    {{{},\"shards\":{},\"cut_edges\":{},\"boundary_nodes\":{},\"refine_moves\":{},\"stitch_moves\":{},\"telescoped_saved\":{},\"cp\":{},\"csteps\":{},\"wall_ms\":{:.1},\"fingerprint\":\"{:016x}\"}}",
            self.key(),
            self.shards,
            self.cut_edges,
            self.boundary_nodes,
            self.refine_moves,
            self.stitch_moves,
            self.telescoped_saved,
            self.cp,
            self.csteps,
            self.wall_ms,
            self.fingerprint
        )
    }
}

fn run_sharded(dfg: &Dfg, spec: &TimingSpec, alg: ShardAlg, name: &'static str) -> Entry {
    let cp = CriticalPath::compute(dfg, spec).steps() as u32;
    let config = ShardedConfig::new(0, alg);
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    let start = Instant::now();
    let out = {
        let mut instr = Instrument::new(&mut sink, &mut metrics);
        synth_sharded(dfg, spec, &config, &mut instr)
            .unwrap_or_else(|e| panic!("sharded {name} at {} nodes: {e}", dfg.node_count()))
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    Entry {
        nodes: dfg.node_count(),
        alg: name,
        shards: out.shards,
        cut_edges: out.cut_edges,
        boundary_nodes: out.boundary_nodes,
        refine_moves: out.refine_moves,
        stitch_moves: out.stitch_moves,
        telescoped_saved: out.telescoped_saved,
        cp,
        csteps: out.csteps,
        wall_ms,
        fingerprint: fingerprint(&out.schedule),
    }
}

/// Runs the sharded kernels at one size and appends the entries;
/// progress goes to stderr.
pub fn bench_size(ops: usize, entries: &mut Vec<Entry>) {
    let spec = TimingSpec::uniform_single_cycle();
    // The canonical clustered workload shared with `mfhls profile
    // gen:clustered:OPS`.
    let dfg = generate_clustered(&clustered_workload(ops));
    eprintln!("# {} nodes (clustered)", dfg.node_count());
    let first = entries.len();
    entries.push(run_sharded(&dfg, &spec, ShardAlg::Mfs, "mfs"));
    if ops <= MFSA_CAP {
        entries.push(run_sharded(
            &dfg,
            &spec,
            ShardAlg::Mfsa(Library::ncr_like()),
            "mfsa",
        ));
    } else {
        eprintln!("#   mfsa skipped above {MFSA_CAP} nodes");
    }
    for e in &entries[first..] {
        eprintln!(
            "#   {}: {:.1} ms, {} shards, {} cut edges, cp {} -> csteps {} (+{})",
            e.alg,
            e.wall_ms,
            e.shards,
            e.cut_edges,
            e.cp,
            e.csteps,
            e.csteps - e.cp
        );
    }
}

/// Renders the full `BENCH_partition.json` document.
pub fn render(entries: &[Entry]) -> String {
    let rows: Vec<String> = entries.iter().map(Entry::render).collect();
    format!(
        "{{\n  \"note\": \"sharded synthesis scaling sweep on clustered workloads; counters and fingerprints are deterministic for any thread count, wall_ms is machine-local and ignored by --check\",\n  \"entries\": [\n{}\n  ]\n}}",
        rows.join(",\n")
    )
}

/// The exact comparison `bench_diff` applies: every deterministic field
/// must match the committed snapshot bit-for-bit; only `wall_ms` is
/// ignored. Returns one message per drifted field.
pub fn diff_exact(entries: &[Entry], snapshot: &str) -> Vec<String> {
    let mut drift = Vec::new();
    for e in entries {
        let line = match snapshot.lines().find(|l| l.contains(&e.key())) {
            Some(line) => line,
            None => {
                drift.push(format!("snapshot has no entry for {}", e.key()));
                continue;
            }
        };
        let mut field =
            |name: &str, fresh: u64, hex: bool| match crate::scaling::snapshot_field(line, name) {
                Ok(base) if base == fresh => {}
                Ok(base) => drift.push(if hex {
                    format!("{}: {name} {base:016x} -> {fresh:016x}", e.key())
                } else {
                    format!("{}: {name} {base} -> {fresh}", e.key())
                }),
                Err(msg) => drift.push(format!("{}: {msg}", e.key())),
            };
        field("shards", e.shards as u64, false);
        field("cut_edges", e.cut_edges as u64, false);
        field("boundary_nodes", e.boundary_nodes as u64, false);
        field("refine_moves", e.refine_moves, false);
        field("stitch_moves", e.stitch_moves, false);
        field("telescoped_saved", e.telescoped_saved, false);
        field("cp", e.cp as u64, false);
        field("csteps", e.csteps as u64, false);
        field("fingerprint", e.fingerprint, true);
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> Entry {
        Entry {
            nodes: 200_000,
            alg: "mfs",
            shards: 13,
            cut_edges: 900,
            boundary_nodes: 1_500,
            refine_moves: 40,
            stitch_moves: 70,
            telescoped_saved: 300,
            cp: 32,
            csteps: 60,
            wall_ms: 1234.5,
            fingerprint: 0x1234,
        }
    }

    #[test]
    fn exact_diff_ignores_wall_clock_only() {
        let snapshot = render(&[entry()]);
        let mut fresh = entry();
        fresh.wall_ms = 9.9;
        assert!(diff_exact(&[fresh], &snapshot).is_empty());

        let mut drifted = entry();
        drifted.csteps += 1;
        drifted.fingerprint ^= 1;
        let drift = diff_exact(&[drifted], &snapshot);
        assert_eq!(drift.len(), 2, "{drift:?}");
        assert!(drift[0].contains("csteps 60 -> 61"), "{drift:?}");
        assert!(drift[1].contains("fingerprint"), "{drift:?}");
    }

    #[test]
    fn exact_diff_reports_missing_entries() {
        let mut other = entry();
        other.alg = "mfsa";
        let drift = diff_exact(&[other], &render(&[entry()]));
        assert_eq!(drift.len(), 1);
        assert!(drift[0].contains("no entry"), "{drift:?}");
    }

    #[test]
    fn small_sharded_sweep_is_deterministic() {
        // The full sizes are release-bin territory; a scaled-down sweep
        // proves the measurement itself is reproducible.
        let spec = TimingSpec::uniform_single_cycle();
        let dfg = generate_clustered(&clustered_workload(3_000));
        let a = run_sharded(&dfg, &spec, ShardAlg::Mfs, "mfs");
        let b = run_sharded(&dfg, &spec, ShardAlg::Mfs, "mfs");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.csteps, b.csteps);
        assert_eq!(a.cut_edges, b.cut_edges);
        assert_eq!(a.stitch_moves, b.stitch_moves);
        assert!(diff_exact(&[b], &render(&[a])).is_empty());
    }
}
