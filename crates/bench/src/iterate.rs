//! The iterate-vs-one-shot sweep behind `BENCH_iterate.json`, shared
//! by the `iterate_sweep` and `bench_diff` binaries.
//!
//! Each workload is scheduled one-shot at `cs = cp + slack` (the
//! padded constraint mirrors how time-constrained synthesis is used in
//! practice), then refined by `hls_iterate::refine` with the standard
//! iteration ladder. Two baselines are swept:
//!
//! * **mfs** — the paper's scheduler. These rows pin the refiner's
//!   fixpoint: move-frame schedules are already resource-minimal, so
//!   the refiner must *hold* the objective, and any committed splice
//!   would be a regression elsewhere.
//! * **fds** — the force-directed (HAL) baseline. These rows carry the
//!   quality claim: feedback-guided refinement compresses the spread
//!   schedules back toward the critical path within the committed
//!   resource envelope.
//!
//! Every entry records the `(csteps, registers)` objective before and
//! after refinement, the splice counters, and the refined schedule's
//! fingerprint — everything except `wall_ms` is bit-stable across
//! runs, machines and `--threads` values.

use std::time::Instant;

use hls_benchmarks::generate::{generate, scaling_workload};
use hls_benchmarks::{classic, memory};
use hls_celllib::TimingSpec;
use hls_dfg::{CriticalPath, Dfg};
use hls_iterate::{refine, IterateConfig};
use hls_telemetry::{Instrument, Metrics, NullSink};
use moveframe::mfs::{self, MfsConfig};

use crate::scaling::fingerprint;

/// Iteration-ladder length of every sweep entry.
pub const ITERATIONS: u32 = 4;

/// The committed snapshot must show at least this many entries with a
/// strict `(csteps, registers)` improvement — the quality claim the
/// iterate subsystem makes.
pub const MIN_IMPROVED: usize = 3;

/// Which one-shot scheduler produced the baseline schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// Move-frame scheduling (the refiner's quality floor).
    Mfs,
    /// Force-directed scheduling (the refiner's lift target).
    Fds,
}

impl Baseline {
    fn name(self) -> &'static str {
        match self {
            Baseline::Mfs => "mfs",
            Baseline::Fds => "fds",
        }
    }
}

/// One sweep workload: a graph, the one-shot scheduler, and the slack
/// above the critical path the time budget allows.
pub struct Workload {
    /// Unique entry name (`fds:` prefix for force-directed rows).
    pub name: String,
    /// The graph.
    pub dfg: Dfg,
    /// One-shot scheduler.
    pub baseline: Baseline,
    /// Budget padding: `cs = cp + slack`.
    pub slack: u32,
}

impl Workload {
    fn new(name: &str, dfg: Dfg, baseline: Baseline, slack: u32) -> Workload {
        Workload {
            name: name.into(),
            dfg,
            baseline,
            slack,
        }
    }
}

/// One iterate-vs-one-shot measurement (everything but `wall_ms` is
/// deterministic).
pub struct Entry {
    /// Workload name.
    pub name: String,
    /// One-shot scheduler name (`"mfs"` / `"fds"`).
    pub baseline: &'static str,
    /// Node count of the graph.
    pub nodes: usize,
    /// Critical path — the horizon lower bound.
    pub cp: u32,
    /// Time constraint the one-shot scheduler ran at (`cp + slack`).
    pub cs: u32,
    /// Achieved horizon of the one-shot schedule.
    pub csteps_before: u32,
    /// Achieved horizon after refinement.
    pub csteps_after: u32,
    /// Peak register pressure of the one-shot schedule.
    pub registers_before: usize,
    /// Peak register pressure after refinement.
    pub registers_after: usize,
    /// Refinement rounds actually run (≤ [`ITERATIONS`]).
    pub iterations_run: u32,
    /// Splices committed (verifier + port safety + strict improvement).
    pub splices_accepted: u32,
    /// Splices discarded.
    pub splices_rejected: u32,
    /// Whether the refined objective strictly beats the one-shot one.
    pub improved: bool,
    /// Machine-local wall time of one-shot + refinement — excluded
    /// from every comparison.
    pub wall_ms: f64,
    /// FNV-1a fingerprint of the refined schedule.
    pub fingerprint: u64,
}

impl Entry {
    /// The deterministic identity used to pair fresh entries with
    /// committed snapshot lines.
    pub fn key(&self) -> String {
        format!("\"name\":\"{}\"", self.name)
    }

    /// One snapshot line.
    pub fn render(&self) -> String {
        format!(
            "    {{{},\"baseline\":\"{}\",\"nodes\":{},\"cp\":{},\"cs\":{},\"csteps_before\":{},\"csteps_after\":{},\"registers_before\":{},\"registers_after\":{},\"iterations_run\":{},\"splices_accepted\":{},\"splices_rejected\":{},\"improved\":{},\"wall_ms\":{:.1},\"fingerprint\":\"{:016x}\"}}",
            self.key(),
            self.baseline,
            self.nodes,
            self.cp,
            self.cs,
            self.csteps_before,
            self.csteps_after,
            self.registers_before,
            self.registers_after,
            self.iterations_run,
            self.splices_accepted,
            self.splices_rejected,
            self.improved,
            self.wall_ms,
            self.fingerprint
        )
    }
}

/// The workload list of the full sweep: the paper benchmarks, the
/// memory kernels and a generated graph under MFS, plus the
/// force-directed rows that carry the quality claim.
pub fn full_workloads() -> Vec<Workload> {
    let mut w = quick_workloads();
    w.push(Workload::new("fir16", classic::fir(16), Baseline::Mfs, 2));
    w.push(Workload::new("ewf", classic::ewf(), Baseline::Mfs, 2));
    w.push(Workload::new(
        "matvec",
        memory::matvec(3, 2),
        Baseline::Mfs,
        8,
    ));
    w.push(Workload::new(
        "gen:2000",
        generate(&scaling_workload(2_000)),
        Baseline::Mfs,
        2,
    ));
    w.push(Workload::new("fds:ewf", classic::ewf(), Baseline::Fds, 4));
    w.push(Workload::new(
        "fds:fir16",
        classic::fir(16),
        Baseline::Fds,
        4,
    ));
    w.push(Workload::new("fds:dct8", classic::dct8(), Baseline::Fds, 4));
    w.push(Workload::new(
        "fds:ar",
        classic::ar_filter(),
        Baseline::Fds,
        4,
    ));
    w
}

/// The CI smoke subset: small, fast, still covering the MFS fixpoint,
/// a banked-memory kernel, and one force-directed lift.
pub fn quick_workloads() -> Vec<Workload> {
    vec![
        Workload::new("diffeq", classic::diffeq(), Baseline::Mfs, 2),
        Workload::new("array_fir", memory::array_fir(8, 2), Baseline::Mfs, 8),
        Workload::new("fds:diffeq", classic::diffeq(), Baseline::Fds, 4),
    ]
}

/// Runs one workload (one-shot at `cp + slack`, then refinement) and
/// appends the entry; progress goes to stderr.
pub fn bench_one(w: &Workload, entries: &mut Vec<Entry>) {
    let spec = TimingSpec::uniform_single_cycle();
    let cp = CriticalPath::compute(&w.dfg, &spec).steps() as u32;
    let cs = cp + w.slack;
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    let start = Instant::now();
    let refined = {
        let mut instr = Instrument::new(&mut sink, &mut metrics);
        let schedule = match w.baseline {
            Baseline::Mfs => {
                let config = MfsConfig::time_constrained(cs);
                mfs::schedule_traced(&w.dfg, &spec, &config, &mut instr)
                    .unwrap_or_else(|e| panic!("one-shot mfs {} at cs={cs}: {e}", w.name))
                    .schedule
            }
            Baseline::Fds => hls_baselines::force_directed_schedule(&w.dfg, &spec, cs)
                .unwrap_or_else(|e| panic!("one-shot fds {} at cs={cs}: {e}", w.name)),
        };
        refine(
            &w.dfg,
            &spec,
            &schedule,
            &IterateConfig::new(ITERATIONS),
            &mut instr,
        )
        .unwrap_or_else(|e| panic!("refine {}: {e}", w.name))
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let entry = Entry {
        name: w.name.clone(),
        baseline: w.baseline.name(),
        nodes: w.dfg.node_count(),
        cp,
        cs,
        csteps_before: refined.csteps_before,
        csteps_after: refined.csteps_after,
        registers_before: refined.registers_before,
        registers_after: refined.registers_after,
        iterations_run: refined.iterations_run,
        splices_accepted: refined.splices_accepted,
        splices_rejected: refined.splices_rejected,
        improved: (refined.csteps_after, refined.registers_after)
            < (refined.csteps_before, refined.registers_before),
        wall_ms,
        fingerprint: fingerprint(&refined.schedule),
    };
    eprintln!(
        "# {}: cp {} cs {} | ({}, {}) -> ({}, {}) in {} round(s), {} splice(s), {:.1} ms",
        entry.name,
        entry.cp,
        entry.cs,
        entry.csteps_before,
        entry.registers_before,
        entry.csteps_after,
        entry.registers_after,
        entry.iterations_run,
        entry.splices_accepted,
        entry.wall_ms
    );
    entries.push(entry);
}

/// Renders the full `BENCH_iterate.json` document.
pub fn render(entries: &[Entry]) -> String {
    let rows: Vec<String> = entries.iter().map(Entry::render).collect();
    format!(
        "{{\n  \"note\": \"iterate-vs-one-shot sweep: one-shot at cs = cp + slack, then {ITERATIONS} feedback-guided refinement rounds; mfs rows pin the refiner's fixpoint, fds rows its lift; all fields except wall_ms are deterministic and pinned by --check\",\n  \"entries\": [\n{}\n  ]\n}}",
        rows.join(",\n")
    )
}

/// The exact comparison `bench_diff` applies: every deterministic
/// field must match the committed snapshot bit-for-bit; only `wall_ms`
/// is ignored. Returns one message per drifted field.
pub fn diff_exact(entries: &[Entry], snapshot: &str) -> Vec<String> {
    let mut drift = Vec::new();
    for e in entries {
        let line = match snapshot.lines().find(|l| l.contains(&e.key())) {
            Some(line) => line,
            None => {
                drift.push(format!("snapshot has no entry for {}", e.key()));
                continue;
            }
        };
        let mut field =
            |name: &str, fresh: u64, hex: bool| match crate::scaling::snapshot_field(line, name) {
                Ok(base) if base == fresh => {}
                Ok(base) => drift.push(if hex {
                    format!("{}: {name} {base:016x} -> {fresh:016x}", e.key())
                } else {
                    format!("{}: {name} {base} -> {fresh}", e.key())
                }),
                Err(msg) => drift.push(format!("{}: {msg}", e.key())),
            };
        field("nodes", e.nodes as u64, false);
        field("cp", e.cp as u64, false);
        field("cs", e.cs as u64, false);
        field("csteps_before", e.csteps_before as u64, false);
        field("csteps_after", e.csteps_after as u64, false);
        field("registers_before", e.registers_before as u64, false);
        field("registers_after", e.registers_after as u64, false);
        field("iterations_run", e.iterations_run as u64, false);
        field("splices_accepted", e.splices_accepted as u64, false);
        field("splices_rejected", e.splices_rejected as u64, false);
        field("fingerprint", e.fingerprint, true);
        if !line.contains(&format!("\"baseline\":\"{}\"", e.baseline)) {
            drift.push(format!("{}: baseline -> {}", e.key(), e.baseline));
        }
        let improved = line.contains("\"improved\":true");
        if improved != e.improved {
            drift.push(format!(
                "{}: improved {improved} -> {}",
                e.key(),
                e.improved
            ));
        }
    }
    drift
}

/// The quality gate: at least [`MIN_IMPROVED`] entries must show a
/// strict `(csteps, registers)` improvement over one-shot scheduling.
/// Applied to the full sweep only — the `--quick` CI subset is too
/// small to carry the claim.
pub fn require_improvements(entries: &[Entry]) -> Vec<String> {
    let improved = entries.iter().filter(|e| e.improved).count();
    if improved >= MIN_IMPROVED {
        Vec::new()
    } else {
        vec![format!(
            "only {improved} of {} iterate entries improve on one-shot scheduling (need {MIN_IMPROVED})",
            entries.len()
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> Entry {
        Entry {
            name: "fds:diffeq".into(),
            baseline: "fds",
            nodes: 11,
            cp: 4,
            cs: 8,
            csteps_before: 8,
            csteps_after: 4,
            registers_before: 7,
            registers_after: 7,
            iterations_run: 3,
            splices_accepted: 2,
            splices_rejected: 2,
            improved: true,
            wall_ms: 1.5,
            fingerprint: 0xabcd,
        }
    }

    #[test]
    fn exact_diff_ignores_wall_clock_only() {
        let snapshot = render(&[entry()]);
        let mut fresh = entry();
        fresh.wall_ms = 99.9;
        assert!(diff_exact(&[fresh], &snapshot).is_empty());

        let mut drifted = entry();
        drifted.csteps_after += 1;
        drifted.improved = false;
        drifted.fingerprint ^= 1;
        let drift = diff_exact(&[drifted], &snapshot);
        assert_eq!(drift.len(), 3, "{drift:?}");
        assert!(drift[0].contains("csteps_after 4 -> 5"), "{drift:?}");
        assert!(drift[1].contains("fingerprint"), "{drift:?}");
        assert!(drift[2].contains("improved"), "{drift:?}");
    }

    #[test]
    fn exact_diff_reports_missing_entries() {
        let mut other = entry();
        other.name = "fds:ewf".into();
        let drift = diff_exact(&[other], &render(&[entry()]));
        assert_eq!(drift.len(), 1);
        assert!(drift[0].contains("no entry"), "{drift:?}");
    }

    #[test]
    fn improvement_gate_counts_strict_improvements() {
        let mut flat = entry();
        flat.name = "flat".into();
        flat.csteps_after = flat.csteps_before;
        flat.registers_after = flat.registers_before;
        flat.improved = false;
        let three = [entry(), entry(), entry()];
        assert!(require_improvements(&three).is_empty());
        let short = [flat];
        let gate = require_improvements(&short);
        assert_eq!(gate.len(), 1);
        assert!(gate[0].contains("need 3"), "{gate:?}");
    }

    #[test]
    fn quick_sweep_is_deterministic_and_lifts_the_fds_row() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for w in quick_workloads() {
            bench_one(&w, &mut a);
            bench_one(&w, &mut b);
        }
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fingerprint, y.fingerprint, "{}", x.name);
            assert_eq!(x.csteps_after, y.csteps_after, "{}", x.name);
            assert_eq!(x.registers_after, y.registers_after, "{}", x.name);
        }
        assert!(diff_exact(&a, &render(&b)).is_empty());
        let fds = a.iter().find(|e| e.name == "fds:diffeq").unwrap();
        assert!(fds.improved, "fds row should compress: {}", fds.render());
        let mfs = a.iter().find(|e| e.name == "diffeq").unwrap();
        assert_eq!(mfs.csteps_before, mfs.csteps_after, "mfs fixpoint holds");
    }
}
