//! Scaling study: MFS runtime on generated layered DAGs of growing size
//! (the paper's O(l³) worst-case analysis, §3.2) and MFSA on the same
//! graphs (same order, §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hls_benchmarks::generate::{generate, GeneratorConfig};
use hls_celllib::{Library, TimingSpec};
use hls_dfg::CriticalPath;
use moveframe::mfs::{self, MfsConfig};
use moveframe::mfsa::{self, MfsaConfig};

fn budget_for(dfg: &hls_dfg::Dfg, spec: &TimingSpec) -> u32 {
    // 1.5× the critical path: tight enough to exercise the frames,
    // loose enough to always be feasible.
    let cp = CriticalPath::compute(dfg, spec).steps() as u32;
    cp + cp / 2 + 1
}

fn bench_mfs_scaling(c: &mut Criterion) {
    let spec = TimingSpec::uniform_single_cycle();
    let mut group = c.benchmark_group("mfs-scaling");
    for ops in [16usize, 32, 64, 128, 256] {
        let dfg = generate(&GeneratorConfig::sized(ops, 42));
        let t = budget_for(&dfg, &spec);
        group.throughput(Throughput::Elements(dfg.node_count() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(dfg.node_count()),
            &dfg,
            |b, dfg| b.iter(|| mfs::schedule(dfg, &spec, &MfsConfig::time_constrained(t)).unwrap()),
        );
    }
    group.finish();
}

fn bench_mfsa_scaling(c: &mut Criterion) {
    let spec = TimingSpec::uniform_single_cycle();
    let mut group = c.benchmark_group("mfsa-scaling");
    group.sample_size(10);
    for ops in [16usize, 32, 64, 128] {
        let dfg = generate(&GeneratorConfig::sized(ops, 42));
        let t = budget_for(&dfg, &spec);
        group.throughput(Throughput::Elements(dfg.node_count() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(dfg.node_count()),
            &dfg,
            |b, dfg| {
                b.iter(|| {
                    mfsa::schedule(dfg, &spec, &MfsaConfig::new(t, Library::ncr_like())).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_mfs_scaling, bench_mfsa_scaling
}
criterion_main!(benches);
