//! Runtime comparison: MFS and MFSA against list scheduling,
//! force-directed scheduling and simulated annealing on the six paper
//! examples — the paper's headline claim is that "the main advantage of
//! our methods over existing scheduling and allocation algorithms is in
//! running time".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hls_baselines::{anneal_schedule, force_directed_schedule, list_schedule, AnnealParams};
use hls_benchmarks::examples::{self, Feature};
use hls_celllib::Library;
use moveframe::mfs::{self, MfsConfig};
use moveframe::mfsa::{self, MfsaConfig};

fn plain_examples() -> Vec<hls_benchmarks::examples::Example> {
    // Chaining and pipelining features are MFS-specific; the baseline
    // algorithms compare on the plain (single-/two-cycle) examples.
    examples::all()
        .into_iter()
        .filter(|e| matches!(e.feature, Feature::SingleCycle | Feature::TwoCycleMultiply))
        .collect()
}

fn bench_schedulers(c: &mut Criterion) {
    let lib = Library::ncr_like();
    let mut group = c.benchmark_group("schedulers");
    for e in plain_examples() {
        let t = *e.time_constraints.last().expect("examples sweep");
        group.bench_with_input(BenchmarkId::new("mfs", e.name), &e, |b, e| {
            b.iter(|| mfs::schedule(&e.dfg, &e.spec, &MfsConfig::time_constrained(t)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("fds", e.name), &e, |b, e| {
            b.iter(|| force_directed_schedule(&e.dfg, &e.spec, t).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("list", e.name), &e, |b, e| {
            // Give the list scheduler the FU budget MFS found.
            let limits = mfs::schedule(&e.dfg, &e.spec, &MfsConfig::time_constrained(t))
                .unwrap()
                .fu_counts();
            b.iter(|| list_schedule(&e.dfg, &e.spec, &limits, 4 * t).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("anneal", e.name), &e, |b, e| {
            b.iter(|| anneal_schedule(&e.dfg, &e.spec, t, &lib, &AnnealParams::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_large_classics(c: &mut Criterion) {
    // EWF and the AR filter with plain 2-cycle multiplies, at the
    // loosest constraints of their sweeps.
    use hls_benchmarks::classic;
    use hls_celllib::TimingSpec;
    let lib = Library::ncr_like();
    let spec = TimingSpec::two_cycle_multiply();
    let cases = [
        ("ewf", classic::ewf(), 21u32),
        ("ar-filter", classic::ar_filter(), 13),
    ];
    let mut group = c.benchmark_group("schedulers-large");
    for (name, dfg, t) in cases {
        group.bench_function(BenchmarkId::new("mfs", name), |b| {
            b.iter(|| mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(t)).unwrap())
        });
        group.bench_function(BenchmarkId::new("fds", name), |b| {
            b.iter(|| force_directed_schedule(&dfg, &spec, t).unwrap())
        });
        group.bench_function(BenchmarkId::new("anneal", name), |b| {
            b.iter(|| anneal_schedule(&dfg, &spec, t, &lib, &AnnealParams::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_mfsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("mfsa");
    for e in examples::all() {
        group.bench_with_input(BenchmarkId::new("style1", e.name), &e, |b, e| {
            b.iter(|| {
                let config = MfsaConfig::new(e.mfsa_cs, Library::ncr_like());
                let config = match e.clock() {
                    Some(clock) => config.with_chaining(clock),
                    None => config,
                };
                let config = match e.latency_for(e.mfsa_cs) {
                    Some(l) => config.with_latency(l),
                    None => config,
                };
                mfsa::schedule(&e.dfg, &e.spec, &config).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_schedulers, bench_large_classics, bench_mfsa
}
criterion_main!(benches);
