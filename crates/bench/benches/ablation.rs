//! Ablation benches for the design choices DESIGN.md calls out:
//! Liapunov weights, design style, interconnect sharing and the
//! `current_j = ⌈N_j/cs⌉` initialisation. Each variant is benchmarked
//! (runtime) and its quality printed once, so `cargo bench` doubles as
//! the ablation report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hls_benchmarks::classic;
use hls_celllib::{Library, TimingSpec};
use hls_schedule::PriorityRule;
use moveframe::mfs::{self as mfs_mod, MfsConfig};
use moveframe::mfsa::{self, DesignStyle, MfsaConfig, Weights};

fn variants() -> Vec<(&'static str, MfsaConfig)> {
    let lib = Library::ncr_like();
    vec![
        ("balanced", MfsaConfig::new(8, lib.clone())),
        (
            "area-only",
            MfsaConfig::new(8, lib.clone()).with_weights(Weights {
                time: 0,
                alu: 1,
                mux: 1,
                reg: 1,
            }),
        ),
        (
            "mux-heavy",
            MfsaConfig::new(8, lib.clone()).with_weights(Weights {
                time: 1,
                alu: 1,
                mux: 8,
                reg: 1,
            }),
        ),
        (
            "style2",
            MfsaConfig::new(8, lib.clone()).with_style(DesignStyle::NoSelfLoop),
        ),
        (
            "no-interconnect-sharing",
            MfsaConfig::new(8, lib).without_interconnect_sharing(),
        ),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    let dfg = classic::diffeq();
    let spec = TimingSpec::uniform_single_cycle();
    let mut group = c.benchmark_group("mfsa-ablation-diffeq");
    for (name, config) in variants() {
        let outcome = mfsa::schedule(&dfg, &spec, &config).expect("diffeq schedules");
        println!(
            "[ablation] {name:>24}: cost {:>8}, ALUs {}, REG {}, MUXin {}",
            outcome.cost.total().as_u64(),
            outcome.datapath.alu_signature(),
            outcome.cost.reg_count,
            outcome.cost.mux_inputs,
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| mfsa::schedule(&dfg, &spec, config).unwrap())
        });
    }
    group.finish();
}

fn bench_mfs_rule_ablation(c: &mut Criterion) {
    // MFS-side ablations: priority rule and current_j initialisation,
    // on the densest example (the AR filter with 2-cycle multiplies).
    let dfg = hls_benchmarks::classic::ar_filter();
    let spec = TimingSpec::two_cycle_multiply();
    let variants: Vec<(&str, MfsConfig)> = vec![
        ("alap-mobility (paper)", MfsConfig::time_constrained(10)),
        (
            "plain-mobility",
            MfsConfig::time_constrained(10).with_priority_rule(PriorityRule::PlainMobility),
        ),
        (
            "lazy-columns",
            MfsConfig::time_constrained(10).with_lazy_columns(),
        ),
    ];
    let mut group = c.benchmark_group("mfs-ablation-ar");
    for (name, config) in variants {
        let out = mfs_mod::schedule(&dfg, &spec, &config).expect("ar schedules at T=10");
        let units: u32 = out.fu_counts().values().sum();
        println!(
            "[ablation] {name:>24}: {units} unit(s), {} rescheduling(s)",
            out.reschedule_count
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| mfs_mod::schedule(&dfg, &spec, config).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ablation, bench_mfs_rule_ablation
}
criterion_main!(benches);
