//! Microbenchmarks for the dense scheduler core's two hottest
//! primitives: `compute_move_frame` (via the public probing entry
//! `probe_move_frame`) and `Grid::is_free_for` on its three hot shapes —
//! an empty cell (one mask test), a single-occupant cell (fast reject
//! without touching the mutex side list), a mutex-shared cell (the side
//! list walk) — plus the memory-bank access-conflict scan that builds
//! `af_steps`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hls_celllib::{Delay, OpKind, TimingSpec};
use hls_dfg::{Dfg, DfgBuilder, FuClass, NodeId, SignalId, SignalSource};
use hls_schedule::{CStep, FuIndex, Grid, Schedule, Slot, TimeFrames, UnitId};
use moveframe::{probe_move_frame, BoundsCache};

/// `layers × width` single-cycle adds, each consuming two outputs of the
/// previous layer — the fixed-depth, growing-width shape of the
/// `core_scaling` sweep, small enough to probe per-call costs.
fn layered_adds(layers: usize, width: usize) -> Dfg {
    let mut b = DfgBuilder::new("bench");
    let x = b.input("x");
    let mut prev: Vec<SignalId> = vec![x; width];
    for l in 0..layers {
        let mut next = Vec::with_capacity(width);
        for w in 0..width {
            let left = prev[w];
            let right = prev[(w + 1) % width];
            next.push(
                b.op(&format!("n{l}_{w}"), OpKind::Add, &[left, right])
                    .unwrap(),
            );
        }
        prev = next;
    }
    b.finish().unwrap()
}

fn node(dfg: &Dfg, l: usize, w: usize) -> NodeId {
    dfg.node_by_name(&format!("n{l}_{w}")).unwrap()
}

fn bench_compute_move_frame(c: &mut Criterion) {
    const LAYERS: usize = 16;
    const WIDTH: usize = 16;
    let spec = TimingSpec::uniform_single_cycle();
    let dfg = layered_adds(LAYERS, WIDTH);
    let cs = LAYERS as u32 + 4;
    let frames = TimeFrames::compute(&dfg, &spec, cs).unwrap();
    let class = FuClass::Op(OpKind::Add);

    // Schedule the first half at ASAP, leaving the second half for the
    // probes: their frames see real predecessor bounds and a half-full
    // grid.
    let mut sched = Schedule::new(&dfg, cs);
    let mut bounds = BoundsCache::new(&dfg, &spec, None);
    let mut grid = Grid::new(class, cs, WIDTH as u32);
    for l in 0..LAYERS / 2 {
        for w in 0..WIDTH {
            let n = node(&dfg, l, w);
            let step = CStep::new(l as u32 + 1);
            let fu = FuIndex::new(w as u32 + 1);
            sched.assign(
                n,
                Slot {
                    step,
                    unit: UnitId::Fu { class, index: fu },
                },
            );
            bounds.on_assign(&dfg, n, step);
            grid.occupy(n, step, fu, 1);
        }
    }
    let offsets = vec![Delay::ZERO; dfg.node_count()];

    let mut group = c.benchmark_group("compute-move-frame");
    group.bench_function("half-scheduled-256", |b| {
        b.iter(|| {
            let mut positions = 0usize;
            for l in LAYERS / 2..LAYERS {
                for w in 0..WIDTH {
                    let snap = probe_move_frame(
                        &dfg,
                        &spec,
                        &frames,
                        &sched,
                        None,
                        &offsets,
                        &bounds,
                        node(&dfg, l, w),
                        &grid,
                        WIDTH as u32,
                    );
                    positions += snap.movable.len();
                }
            }
            black_box(positions)
        })
    });
    group.finish();
}

fn bench_is_free_for(c: &mut Criterion) {
    let mut b = DfgBuilder::new("g");
    let x = b.input("x");
    let plain = b.op("plain", OpKind::Add, &[x, x]).unwrap();
    let probe_plain = b.op("probe_plain", OpKind::Add, &[x, x]).unwrap();
    let branch = b.begin_branch();
    b.enter_arm(branch, 0);
    let t = b.op("t", OpKind::Add, &[x, x]).unwrap();
    let u = b.op("u", OpKind::Add, &[x, x]).unwrap();
    b.exit_arm();
    b.enter_arm(branch, 1);
    let e = b.op("e", OpKind::Add, &[x, x]).unwrap();
    b.exit_arm();
    let dfg = b.finish().unwrap();
    let by = |sig: SignalId| match dfg.signal(sig).source() {
        SignalSource::Node(n) => n,
        _ => unreachable!("op outputs come from nodes"),
    };
    let (plain, probe_plain, t, u, e) = (by(plain), by(probe_plain), by(t), by(u), by(e));

    let cs = 8;
    let mut grid = Grid::new(FuClass::Op(OpKind::Add), cs, 4);
    // Column 1, step 1: a single top-level occupant.
    grid.occupy(plain, CStep::new(1), FuIndex::new(1), 1);
    // Column 2, step 1: a mutex-shared cell (both arms of the branch).
    grid.occupy(t, CStep::new(1), FuIndex::new(2), 1);
    grid.occupy(e, CStep::new(1), FuIndex::new(2), 1);

    let mut group = c.benchmark_group("grid-is-free-for");
    group.bench_function("empty-cell", |b| {
        b.iter(|| {
            black_box(grid.is_free_for(
                &dfg,
                black_box(probe_plain),
                CStep::new(2),
                FuIndex::new(3),
                1,
            ))
        })
    });
    group.bench_function("single-occupant", |b| {
        b.iter(|| {
            black_box(grid.is_free_for(
                &dfg,
                black_box(probe_plain),
                CStep::new(1),
                FuIndex::new(1),
                1,
            ))
        })
    });
    group.bench_function("mutex-shared", |b| {
        // `u` is exclusive with `e` but shares an arm with `t`: the
        // probe must walk the shared-cell side list to reject.
        b.iter(|| {
            black_box(grid.is_free_for(&dfg, black_box(u), CStep::new(1), FuIndex::new(2), 1))
        })
    });
    group.finish();
}

fn bench_mem_af_scan(c: &mut Criterion) {
    let mut b = DfgBuilder::new("mem");
    let i = b.input("i");
    let bank = b.declare_bank("ram", 1);
    let arr = b.declare_array("a", 64, bank);
    let mut loads = Vec::new();
    for k in 0..5 {
        loads.push(b.load(&format!("ld{k}"), arr, i).unwrap());
    }
    let dfg = b.finish().unwrap();
    let loads: Vec<NodeId> = loads
        .iter()
        .map(|&s| match dfg.signal(s).source() {
            SignalSource::Node(n) => n,
            _ => unreachable!("load outputs come from nodes"),
        })
        .collect();

    let spec = TimingSpec::uniform_single_cycle();
    let cs = 8;
    let frames = TimeFrames::compute(&dfg, &spec, cs).unwrap();
    let mut sched = Schedule::new(&dfg, cs);
    let mut bounds = BoundsCache::new(&dfg, &spec, None);
    let class = dfg.node(loads[0]).kind().fu_class();
    let mut grid = Grid::new(class, cs, 1);
    // Saturate the single port for steps 1–4; the probe's frame must
    // carve those steps into `af_steps`.
    for (k, &ld) in loads.iter().take(4).enumerate() {
        let step = CStep::new(k as u32 + 1);
        sched.assign(
            ld,
            Slot {
                step,
                unit: UnitId::Fu {
                    class,
                    index: FuIndex::new(1),
                },
            },
        );
        bounds.on_assign(&dfg, ld, step);
        grid.occupy(ld, step, FuIndex::new(1), 1);
    }
    let offsets = vec![Delay::ZERO; dfg.node_count()];

    let mut group = c.benchmark_group("mem-af-scan");
    group.bench_function("saturated-port", |b| {
        b.iter(|| {
            let snap = probe_move_frame(
                &dfg,
                &spec,
                &frames,
                &sched,
                None,
                &offsets,
                &bounds,
                black_box(loads[4]),
                &grid,
                1,
            );
            black_box((snap.af_steps.len(), snap.movable.len()))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_compute_move_frame, bench_is_free_for, bench_mem_af_scan
}
criterion_main!(benches);
