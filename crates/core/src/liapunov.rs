//! The static Liapunov (energy) functions used by MFS (paper §3.1).

use std::fmt;

/// Which constraint drives the schedule, selecting the Liapunov function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MfsObjective {
    /// Fixed number of control steps; minimise concurrency (FU count).
    /// `V(x, y) = x + n·y` with `n = max_j{max_j}`: control step `t` is
    /// always preferred over `t + 1` (position `(max_j, t)` has lower
    /// energy than `(1, t+1)`), and within a step the leftmost unit wins.
    #[default]
    TimeConstrained,
    /// Fixed unit counts; minimise control steps. `V(x, y) = cs·x + y`
    /// with `cs` an upper bound on control steps: "selects a position in
    /// control step t+1 performed by an existing FU instead of adding a
    /// new FU in control step t".
    ResourceConstrained,
}

impl fmt::Display for MfsObjective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MfsObjective::TimeConstrained => f.write_str("time-constrained"),
            MfsObjective::ResourceConstrained => f.write_str("resource-constrained"),
        }
    }
}

/// A static Liapunov function over grid positions `(x = FU index,
/// y = control step)`.
///
/// Property (2) of Liapunov's theorem (strict decrease towards the
/// equilibrium `X_e = 0⃗`) is realised by each operation making a single
/// move into the minimum-energy position of its move frame; properties
/// (1), (3), (4) hold trivially for these positive linear forms.
///
/// ```
/// use moveframe::{MfsObjective, StaticLiapunov};
///
/// // Time-constrained with at most 4 units of any type:
/// let v = StaticLiapunov::new(MfsObjective::TimeConstrained, 4, 10);
/// // Filling the last unit of step 2 beats opening step 3:
/// assert!(v.value(4, 2) < v.value(1, 3));
/// // Within a step, lower unit indices win:
/// assert!(v.value(1, 2) < v.value(2, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticLiapunov {
    objective: MfsObjective,
    /// `n = max over types of max_j` (time-constrained weight).
    n: u64,
    /// Upper bound on control steps (resource-constrained weight).
    cs: u64,
}

impl StaticLiapunov {
    /// Creates the function for `objective`, where `max_fu_bound` is
    /// `max_j{max_j}` over all types and `cs_bound` the control-step
    /// upper bound.
    ///
    /// # Panics
    ///
    /// Panics if either bound is zero.
    pub fn new(objective: MfsObjective, max_fu_bound: u32, cs_bound: u32) -> Self {
        assert!(
            max_fu_bound >= 1 && cs_bound >= 1,
            "bounds must be positive"
        );
        StaticLiapunov {
            objective,
            n: max_fu_bound as u64,
            cs: cs_bound as u64,
        }
    }

    /// The energy of position `(fu, step)` (both 1-based).
    pub fn value(&self, fu: u32, step: u32) -> u64 {
        let (x, y) = (fu as u64, step as u64);
        match self.objective {
            MfsObjective::TimeConstrained => x + self.n * y,
            MfsObjective::ResourceConstrained => self.cs * x + y,
        }
    }

    /// The objective this function encodes.
    pub fn objective(&self) -> MfsObjective {
        self.objective
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constrained_prefers_earlier_steps_across_all_columns() {
        let v = StaticLiapunov::new(MfsObjective::TimeConstrained, 7, 100);
        for t in 1..20 {
            // Worst column of step t still beats best column of t+1.
            assert!(v.value(7, t) < v.value(1, t + 1));
        }
    }

    #[test]
    fn resource_constrained_prefers_existing_units_across_all_steps() {
        let v = StaticLiapunov::new(MfsObjective::ResourceConstrained, 7, 12);
        for x in 1..7 {
            // Last step on unit x still beats first step on unit x+1.
            assert!(v.value(x, 12) < v.value(x + 1, 1));
        }
    }

    #[test]
    fn ties_are_impossible_within_a_grid() {
        // Distinct positions have distinct energies inside the bounds.
        let v = StaticLiapunov::new(MfsObjective::TimeConstrained, 5, 9);
        let mut seen = std::collections::BTreeSet::new();
        for x in 1..=5u32 {
            for y in 1..=9u32 {
                assert!(seen.insert(v.value(x, y)), "duplicate energy at ({x},{y})");
            }
        }
    }

    #[test]
    fn strictly_increasing_in_both_coordinates() {
        for objective in [
            MfsObjective::TimeConstrained,
            MfsObjective::ResourceConstrained,
        ] {
            let v = StaticLiapunov::new(objective, 4, 8);
            assert!(v.value(2, 3) > v.value(1, 3));
            assert!(v.value(2, 3) > v.value(2, 2));
            assert!(v.value(1, 1) > 0, "property (1): positive off equilibrium");
        }
    }

    #[test]
    fn objective_accessor_and_display() {
        let v = StaticLiapunov::new(MfsObjective::ResourceConstrained, 2, 2);
        assert_eq!(v.objective(), MfsObjective::ResourceConstrained);
        assert_eq!(v.objective().to_string(), "resource-constrained");
        assert_eq!(MfsObjective::default(), MfsObjective::TimeConstrained);
    }
}
