//! Hierarchical (nested-loop) scheduling (paper §5.2).
//!
//! "For nested loops, the operations of the inner most loop are
//! scheduled and allocated first, relative to the local time constraint.
//! When this is done, the entire loop is treated as a single operation
//! with an execution time that is equal to the loop's local time
//! constraint. This process is repeated for all loops until the outer
//! most loop is scheduled and allocated."

use hls_celllib::TimingSpec;
use hls_dfg::transform::fold_loop;
use hls_dfg::{Dfg, DfgBuilder, LoopId, SignalSource};

use crate::mfs::{self, MfsConfig, MfsOutcome};
use crate::MoveFrameError;

/// The schedule of one folded loop level.
#[derive(Debug, Clone)]
pub struct LoopLevel {
    /// The folded loop.
    pub loop_id: LoopId,
    /// Its name.
    pub name: String,
    /// The extracted body sub-graph the level was scheduled on.
    pub body: Dfg,
    /// The body's MFS outcome (within the loop's local time constraint).
    pub outcome: MfsOutcome,
}

/// The complete hierarchical schedule: one level per loop (innermost
/// first) plus the outer, loop-free graph.
#[derive(Debug, Clone)]
pub struct HierarchicalOutcome {
    /// Inner levels, in fold (innermost-first) order.
    pub levels: Vec<LoopLevel>,
    /// The fully folded top-level graph.
    pub top_dfg: Dfg,
    /// The top level's MFS outcome.
    pub top: MfsOutcome,
}

/// Extracts the direct members of loop `id` as a standalone graph:
/// signals produced outside the loop become primary inputs (named as in
/// the parent), constants stay constants.
///
/// # Errors
///
/// [`MoveFrameError::Dfg`] when the loop has no members or an inner loop
/// is still unfolded (its members would be silently dropped otherwise).
pub fn extract_loop_body(dfg: &Dfg, id: LoopId) -> Result<Dfg, MoveFrameError> {
    let members = dfg.loop_members(id);
    if members.is_empty() {
        return Err(MoveFrameError::Dfg(hls_dfg::DfgError::EmptyLoop(id)));
    }
    for region in dfg.loop_regions() {
        if region.parent() == Some(id) && !dfg.loop_members(region.id()).is_empty() {
            return Err(MoveFrameError::Dfg(hls_dfg::DfgError::EmptyLoop(
                region.id(),
            )));
        }
    }
    let region = dfg.loop_region(id).expect("members imply the region");
    let mut b = DfgBuilder::new(format!("{}-body", region.name()));
    let mut mapping = std::collections::BTreeMap::new();
    // External signals first.
    for &m in &members {
        for &sig in dfg.node(m).inputs() {
            if mapping.contains_key(&sig) {
                continue;
            }
            let s = dfg.signal(sig);
            let produced_inside = s.source().node().is_some_and(|p| members.contains(&p));
            if produced_inside {
                continue;
            }
            let new = match s.source() {
                SignalSource::Constant(v) => b.constant(s.name(), v),
                _ => b.input(s.name()),
            };
            mapping.insert(sig, new);
        }
    }
    // Members in topological order.
    for &n in dfg.topo_order() {
        if !members.contains(&n) {
            continue;
        }
        let node = dfg.node(n);
        let inputs: Vec<_> = node.inputs().iter().map(|s| mapping[s]).collect();
        let out = b.raw_node(node.name(), node.kind(), &inputs)?;
        mapping.insert(node.output(), out);
    }
    Ok(b.finish()?)
}

/// Schedules a graph with (possibly nested) loop regions: each loop
/// body is scheduled by MFS within its local time constraint, folded
/// into a super-operation, and the process repeats until the loop-free
/// top level is scheduled within `top_cs` steps.
///
/// `configure` builds the MFS configuration for a given time budget, so
/// callers can thread chaining or resource limits through every level
/// (the default is plain time-constrained MFS):
///
/// ```
/// use hls_celllib::{OpKind, TimingSpec};
/// use hls_dfg::DfgBuilder;
/// use moveframe::loops::schedule_hierarchical;
/// use moveframe::mfs::MfsConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new("g");
/// let x = b.input("x");
/// b.begin_loop("accumulate", 2);
/// let t = b.op("t", OpKind::Mul, &[x, x])?;
/// let u = b.op("u", OpKind::Add, &[t, x])?;
/// b.end_loop();
/// let _done = b.op("done", OpKind::Inc, &[u])?;
/// let dfg = b.finish()?;
/// let spec = TimingSpec::uniform_single_cycle();
/// let out = schedule_hierarchical(&dfg, &spec, 4, MfsConfig::time_constrained)?;
/// assert_eq!(out.levels.len(), 1);
/// assert!(out.top.schedule.is_complete());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates MFS errors from any level (e.g. a loop body that does not
/// fit its local time constraint) and graph errors from folding.
pub fn schedule_hierarchical(
    dfg: &Dfg,
    spec: &TimingSpec,
    top_cs: u32,
    configure: impl Fn(u32) -> MfsConfig,
) -> Result<HierarchicalOutcome, MoveFrameError> {
    let mut current = dfg.clone();
    let mut levels = Vec::new();
    loop {
        // Deepest region that still has members.
        let deepest = current
            .loop_regions()
            .iter()
            .filter(|r| !current.loop_members(r.id()).is_empty())
            .max_by_key(|r| {
                let mut depth = 0;
                let mut cur = r.parent();
                while let Some(p) = cur {
                    depth += 1;
                    cur = current.loop_region(p).and_then(|x| x.parent());
                }
                depth
            })
            .map(|r| (r.id(), r.name().to_string(), r.time_constraint()));
        let Some((id, name, budget)) = deepest else {
            break;
        };
        let body = extract_loop_body(&current, id)?;
        let outcome = mfs::schedule(&body, spec, &configure(budget as u32))?;
        levels.push(LoopLevel {
            loop_id: id,
            name,
            body,
            outcome,
        });
        let (folded, _) = fold_loop(&current, id)?;
        current = folded;
    }
    let top = mfs::schedule(&current, spec, &configure(top_cs))?;
    Ok(HierarchicalOutcome {
        levels,
        top_dfg: current,
        top,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;
    use hls_schedule::{verify, VerifyOptions};

    fn nested() -> Dfg {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        b.begin_loop("outer", 6);
        let t = b.op("t", OpKind::Add, &[x, y]).unwrap();
        b.begin_loop("inner", 2);
        let v = b.op("v", OpKind::Mul, &[t, t]).unwrap();
        let w = b.op("w", OpKind::Add, &[v, x]).unwrap();
        b.end_loop();
        b.op("z", OpKind::Sub, &[w, t]).unwrap();
        b.end_loop();
        b.finish().unwrap()
    }

    #[test]
    fn extract_builds_a_standalone_body() {
        let g = nested();
        let inner = g
            .loop_regions()
            .iter()
            .find(|r| r.name() == "inner")
            .unwrap();
        let body = extract_loop_body(&g, inner.id()).unwrap();
        assert_eq!(body.node_count(), 2);
        assert!(body.node_by_name("v").is_some());
        assert!(
            body.signal_by_name("t").is_some(),
            "external input kept by name"
        );
    }

    #[test]
    fn extract_refuses_outer_before_inner() {
        let g = nested();
        let outer = g
            .loop_regions()
            .iter()
            .find(|r| r.name() == "outer")
            .unwrap();
        assert!(extract_loop_body(&g, outer.id()).is_err());
    }

    #[test]
    fn hierarchical_schedule_covers_all_levels() {
        let g = nested();
        let spec = TimingSpec::uniform_single_cycle();
        let out = schedule_hierarchical(&g, &spec, 8, MfsConfig::time_constrained).unwrap();
        assert_eq!(out.levels.len(), 2);
        assert_eq!(out.levels[0].name, "inner");
        assert_eq!(out.levels[1].name, "outer");
        // Every level verifies on its own graph.
        for level in &out.levels {
            let v = verify(
                &level.body,
                &level.outcome.schedule,
                &spec,
                VerifyOptions::default(),
            );
            assert!(v.is_empty(), "{}: {v:?}", level.name);
        }
        let v = verify(
            &out.top_dfg,
            &out.top.schedule,
            &spec,
            VerifyOptions::default(),
        );
        assert!(v.is_empty(), "top: {v:?}");
        // The outer body sees the inner loop as a 2-cycle super-op, so
        // its 4 "operations" fit the 6-step budget.
        assert_eq!(out.levels[1].body.node_count(), 3);
    }

    #[test]
    fn tight_inner_budget_fails_loudly() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.begin_loop("body", 1);
        let t = b.op("t", OpKind::Add, &[x, x]).unwrap();
        b.op("u", OpKind::Add, &[t, x]).unwrap(); // 2-step chain, budget 1
        b.end_loop();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        assert!(matches!(
            schedule_hierarchical(&g, &spec, 4, MfsConfig::time_constrained),
            Err(MoveFrameError::Schedule(_))
        ));
    }

    #[test]
    fn loop_free_graph_has_no_levels() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("t", OpKind::Inc, &[x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let out = schedule_hierarchical(&g, &spec, 2, MfsConfig::time_constrained).unwrap();
        assert!(out.levels.is_empty());
        assert!(out.top.schedule.is_complete());
    }
}

/// The synthesis (MFSA) analogue of [`LoopLevel`]: a loop body with its
/// own allocated data path.
#[derive(Debug, Clone)]
pub struct LoopDatapath {
    /// The folded loop.
    pub loop_id: LoopId,
    /// Its name.
    pub name: String,
    /// The extracted body sub-graph.
    pub body: Dfg,
    /// The body's MFSA outcome (schedule + data path + cost).
    pub outcome: crate::mfsa::MfsaOutcome,
}

/// The complete hierarchical synthesis: one data path per loop level
/// plus the top level — "the operations of the inner most loop are
/// scheduled **and allocated** first, relative to the local time
/// constraint" (§5.2).
#[derive(Debug, Clone)]
pub struct HierarchicalSynthesis {
    /// Inner levels, innermost first.
    pub levels: Vec<LoopDatapath>,
    /// The fully folded top-level graph.
    pub top_dfg: Dfg,
    /// The top level's MFS outcome (the folded super-operations use the
    /// whole inner data path, not a library ALU, so the top level is
    /// scheduled rather than allocated; its loop-free operations can be
    /// re-synthesised separately if desired).
    pub top: MfsOutcome,
}

impl HierarchicalSynthesis {
    /// Total ALU area over all loop-level data paths.
    pub fn total_alu_area(&self) -> hls_celllib::Area {
        self.levels.iter().map(|l| l.outcome.cost.alu_area).sum()
    }
}

/// Hierarchical mixed scheduling-allocation: every loop body gets its
/// own MFSA data path within its local time constraint; the folded top
/// level is scheduled with MFS within `top_cs`.
///
/// # Errors
///
/// Propagates MFSA errors from any level and MFS/graph errors from the
/// folded top level.
pub fn synthesize_hierarchical(
    dfg: &Dfg,
    spec: &TimingSpec,
    top_cs: u32,
    configure: impl Fn(u32) -> crate::mfsa::MfsaConfig,
) -> Result<HierarchicalSynthesis, MoveFrameError> {
    let mut current = dfg.clone();
    let mut levels = Vec::new();
    loop {
        let deepest = current
            .loop_regions()
            .iter()
            .filter(|r| !current.loop_members(r.id()).is_empty())
            .max_by_key(|r| {
                let mut depth = 0;
                let mut cur = r.parent();
                while let Some(p) = cur {
                    depth += 1;
                    cur = current.loop_region(p).and_then(|x| x.parent());
                }
                depth
            })
            .map(|r| (r.id(), r.name().to_string(), r.time_constraint()));
        let Some((id, name, budget)) = deepest else {
            break;
        };
        let body = extract_loop_body(&current, id)?;
        // A body containing already-folded inner loops cannot be
        // allocated to library ALUs; schedule_hierarchical covers that
        // case. Here each body must be loop-free after extraction,
        // which holds because deeper levels were folded first and their
        // super-nodes are rejected by MFSA — detect and say so.
        let outcome = crate::mfsa::schedule(&body, spec, &configure(budget as u32))?;
        levels.push(LoopDatapath {
            loop_id: id,
            name,
            body,
            outcome,
        });
        let (folded, _) = fold_loop(&current, id)?;
        current = folded;
    }
    let top = mfs::schedule(&current, spec, &MfsConfig::time_constrained(top_cs))?;
    Ok(HierarchicalSynthesis {
        levels,
        top_dfg: current,
        top,
    })
}

#[cfg(test)]
mod synthesis_tests {
    use super::*;
    use hls_celllib::{Library, OpKind};
    use hls_rtl::verify_datapath;

    #[test]
    fn each_loop_level_gets_its_own_datapath() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.begin_loop("body", 3);
        let t = b.op("t", OpKind::Mul, &[x, x]).unwrap();
        let u = b.op("u", OpKind::Add, &[t, x]).unwrap();
        b.end_loop();
        b.op("after", OpKind::Inc, &[u]).unwrap();
        let dfg = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let out = synthesize_hierarchical(&dfg, &spec, 5, |cs| {
            crate::mfsa::MfsaConfig::new(cs, Library::ncr_like())
        })
        .unwrap();
        assert_eq!(out.levels.len(), 1);
        let level = &out.levels[0];
        assert!(level.outcome.cost.total().as_u64() > 0);
        let rv = verify_datapath(
            &level.body,
            &level.outcome.schedule,
            &level.outcome.datapath,
            &spec,
        );
        assert!(rv.is_empty(), "{rv:?}");
        assert!(out.top.schedule.is_complete());
        assert_eq!(out.total_alu_area(), level.outcome.cost.alu_area);
    }

    #[test]
    fn nested_loops_fail_gracefully_when_mfsa_meets_a_super_node() {
        // The outer body contains the inner super-node, which MFSA
        // cannot allocate — the error must be surfaced, not panicked.
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.begin_loop("outer", 8);
        let t = b.op("t", OpKind::Add, &[x, x]).unwrap();
        b.begin_loop("inner", 2);
        b.op("v", OpKind::Mul, &[t, t]).unwrap();
        b.end_loop();
        b.end_loop();
        let dfg = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let result = synthesize_hierarchical(&dfg, &spec, 10, |cs| {
            crate::mfsa::MfsaConfig::new(cs, Library::ncr_like())
        });
        assert!(result.is_err());
    }
}
