//! Error type shared by MFS and MFSA.

use std::fmt;

use hls_dfg::{DfgError, FuClass, NodeId};
use hls_schedule::ScheduleError;

/// Error produced by the move-frame algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MoveFrameError {
    /// Frame computation failed (infeasible time constraint, …).
    Schedule(ScheduleError),
    /// A graph preprocessing step failed.
    Dfg(DfgError),
    /// Local rescheduling exhausted the unit budget for this operation:
    /// its move frame stayed empty even at `max_j` units.
    NoPosition {
        /// The unplaceable operation.
        node: NodeId,
        /// Its functional-unit class.
        class: FuClass,
        /// The exhausted unit budget.
        max_fu: u32,
    },
    /// No ALU kind in the cell library can perform this operation.
    NoCapableAlu {
        /// The unplaceable operation.
        node: NodeId,
    },
    /// The requested functional-pipelining latency is invalid.
    InvalidLatency {
        /// The initiation interval.
        latency: u32,
        /// The time constraint.
        cs: u32,
    },
    /// The run was cancelled at a cooperative checkpoint (deadline
    /// exceeded or shutdown requested via [`crate::CancelToken`]).
    Cancelled,
}

impl fmt::Display for MoveFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoveFrameError::Schedule(e) => write!(f, "scheduling substrate error: {e}"),
            MoveFrameError::Dfg(e) => write!(f, "graph error: {e}"),
            MoveFrameError::NoPosition {
                node,
                class,
                max_fu,
            } => write!(
                f,
                "no valid move-frame position for {node} (class {class}) within {max_fu} unit(s)"
            ),
            MoveFrameError::NoCapableAlu { node } => {
                write!(f, "the cell library has no ALU able to perform {node}")
            }
            MoveFrameError::InvalidLatency { latency, cs } => {
                write!(f, "latency {latency} is invalid for a {cs}-step schedule")
            }
            MoveFrameError::Cancelled => {
                f.write_str("cancelled: deadline exceeded or shutdown requested")
            }
        }
    }
}

impl std::error::Error for MoveFrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MoveFrameError::Schedule(e) => Some(e),
            MoveFrameError::Dfg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScheduleError> for MoveFrameError {
    fn from(e: ScheduleError) -> Self {
        MoveFrameError::Schedule(e)
    }
}

impl From<DfgError> for MoveFrameError {
    fn from(e: DfgError) -> Self {
        MoveFrameError::Dfg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: MoveFrameError = ScheduleError::InfeasibleTime {
            needed: 4,
            given: 2,
        }
        .into();
        assert!(e.to_string().contains("4"));
        assert!(std::error::Error::source(&e).is_some());
        let e: MoveFrameError = DfgError::Empty.into();
        assert!(e.to_string().contains("graph"));
    }
}
