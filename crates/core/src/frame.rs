//! Frame computation: `MF = PF − (RF ∪ FF)` (paper §3.2, step 4).

use hls_celllib::{ClockPeriod, Delay, TimingSpec};
use hls_dfg::{Dfg, FuClass, NodeId};
use hls_schedule::{CStep, FuIndex, Grid, Schedule, TimeFrames};

/// One candidate cell of a placement grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Position {
    /// Control step (`y`).
    pub step: CStep,
    /// Unit column (`x`).
    pub fu: FuIndex,
}

/// The frames computed for one operation at the moment it is scheduled —
/// the data behind the paper's Figure 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSnapshot {
    /// The operation being placed.
    pub node: NodeId,
    /// Its functional-unit class (which grid the frames live in).
    pub class: FuClass,
    /// Primary-frame time range `[ASAP, ALAP]`.
    pub primary: (CStep, CStep),
    /// Columns visible to the move frame (`current_j`); columns
    /// `current_j+1 ..= max_fu` form the redundant frame.
    pub current_fu: u32,
    /// The grid's column budget (`max_j`).
    pub max_fu: u32,
    /// Steps of the primary range excluded by data dependencies (the
    /// forbidden frame): every step strictly below this bound.
    pub earliest_feasible: CStep,
    /// Steps of the primary range excluded by already-scheduled
    /// successors: every step strictly above this bound.
    pub latest_feasible: CStep,
    /// The access-conflict frame `AF`: dependency-feasible steps excluded
    /// solely because every visible port of the node's memory bank is
    /// already occupied. Always empty for non-memory classes, where a
    /// fully-occupied step is an ordinary resource conflict rather than a
    /// port conflict. `MF = PF − (RF ∪ FF ∪ AF)`.
    pub af_steps: Vec<CStep>,
    /// The resulting move frame: free, dependency-feasible positions.
    pub movable: Vec<Position>,
}

impl FrameSnapshot {
    /// Whether the move frame is empty (triggers local rescheduling).
    pub fn is_empty(&self) -> bool {
        self.movable.is_empty()
    }
}

/// Incrementally-maintained per-node scheduling bounds.
///
/// Frame computation needs, for every unscheduled operation, the latest
/// finish step among its *scheduled* predecessors (the forbidden-frame
/// floor) and the earliest start step among its *scheduled* successors
/// (the ceiling). Rescanning the neighbour lists for every candidate
/// step of every operation made `feasible_step_range` the scheduler's
/// hottest loop; this cache updates the two numbers on each
/// occupy/vacate of a neighbour instead:
///
/// * [`BoundsCache::on_assign`] — O(degree) max/min merges;
/// * [`BoundsCache::on_unassign`] — O(degree × neighbour degree)
///   recomputation, paid only on the rare local-rescheduling path.
///
/// Effective cycle counts (declared cycles, or `⌈delay/T⌉` under a
/// chaining clock) are precomputed per node as well, since they are
/// pure functions of the graph and clock.
#[derive(Debug, Clone)]
pub struct BoundsCache {
    /// Effective cycles per node under the (optional) clock.
    cycles: Vec<u8>,
    /// Whether the node may share a step boundary under chaining.
    chainable: Vec<bool>,
    /// Combinational delay per node, for repairing chained finish
    /// offsets after a vacate.
    delays: Vec<Delay>,
    /// Max finish step over scheduled predecessors (0 = none).
    pred_finish: Vec<u32>,
    /// Min start step over scheduled successors (`u32::MAX` = none).
    succ_start: Vec<u32>,
}

impl BoundsCache {
    /// Builds the cache for an empty schedule.
    pub fn new(dfg: &Dfg, spec: &TimingSpec, clock: Option<ClockPeriod>) -> Self {
        let n = dfg.node_count();
        let mut cycles = Vec::with_capacity(n);
        let mut chainable = Vec::with_capacity(n);
        let mut delays = Vec::with_capacity(n);
        for (_, node) in dfg.nodes() {
            let kind = node.kind();
            let declared = kind.cycles(spec);
            let eff = match clock {
                None => declared,
                Some(t) => {
                    let d = kind.delay(spec).as_u32();
                    let derived = if d == 0 {
                        1
                    } else {
                        d.div_ceil(t.as_u32()) as u8
                    };
                    declared.max(derived)
                }
            };
            cycles.push(eff);
            chainable.push(clock.is_some() && eff == 1 && kind.delay(spec).as_u32() > 0);
            delays.push(kind.delay(spec));
        }
        BoundsCache {
            cycles,
            chainable,
            delays,
            pred_finish: vec![0; n],
            succ_start: vec![u32::MAX; n],
        }
    }

    /// Effective cycle count of `node`.
    pub fn cycles(&self, node: NodeId) -> u8 {
        self.cycles[node.index()]
    }

    /// Records that `node` was scheduled to start at `step`: its
    /// neighbours' bounds tighten monotonically.
    pub fn on_assign(&mut self, dfg: &Dfg, node: NodeId, step: CStep) {
        let finish = step.finish(self.cycles[node.index()]).get();
        for &s in dfg.succs(node) {
            let f = &mut self.pred_finish[s.index()];
            *f = (*f).max(finish);
        }
        for &p in dfg.preds(node) {
            let s = &mut self.succ_start[p.index()];
            *s = (*s).min(step.get());
        }
    }

    /// Records that `node` was unscheduled (local rescheduling): its
    /// neighbours' bounds are recomputed from their remaining scheduled
    /// neighbours, its own entry in `offsets` is reset, and the chained
    /// finish offsets of its scheduled dependents are repaired.
    /// `schedule` must already reflect the removal.
    ///
    /// The offset repair closes a staleness edge: a dependent that
    /// chained *after* the vacated node in the same step keeps carrying
    /// the vacated node's within-step delay in its accumulated offset,
    /// so a later `probe_move_frame` of one of *its* successors sees an
    /// inflated chaining base and can report a feasible range that
    /// opens one step too late. Scheduled chainable transitive
    /// successors are therefore recomputed here, in dependency (node
    /// index) order, from their remaining same-step predecessors.
    pub fn on_unassign(
        &mut self,
        dfg: &Dfg,
        schedule: &Schedule,
        offsets: &mut [Delay],
        node: NodeId,
    ) {
        for &s in dfg.succs(node) {
            self.pred_finish[s.index()] = dfg
                .preds(s)
                .iter()
                .filter_map(|&p| {
                    schedule
                        .start(p)
                        .map(|st| st.finish(self.cycles[p.index()]).get())
                })
                .max()
                .unwrap_or(0);
        }
        for &p in dfg.preds(node) {
            self.succ_start[p.index()] = dfg
                .succs(p)
                .iter()
                .filter_map(|&q| schedule.start(q))
                .map(|st| st.get())
                .min()
                .unwrap_or(u32::MAX);
        }

        offsets[node.index()] = Delay::ZERO;
        // Offsets only accumulate through scheduled chainable nodes, so
        // only those can go stale.
        let mut affected: Vec<NodeId> = Vec::new();
        let mut seen = vec![false; dfg.node_count()];
        let mut stack: Vec<NodeId> = dfg.succs(node).to_vec();
        while let Some(q) = stack.pop() {
            if seen[q.index()] || !self.chainable[q.index()] || schedule.start(q).is_none() {
                continue;
            }
            seen[q.index()] = true;
            affected.push(q);
            stack.extend_from_slice(dfg.succs(q));
        }
        // Builder node indices respect dependencies, so index order is a
        // topological order of the repair set.
        affected.sort_unstable();
        for &q in &affected {
            let start = schedule.start(q).expect("repair set is scheduled");
            let mut base = Delay::ZERO;
            for &p in dfg.preds(q) {
                if !self.chainable[p.index()] {
                    continue;
                }
                if let Some(ps) = schedule.start(p) {
                    if ps.finish(self.cycles[p.index()]) == start {
                        base = base.max(offsets[p.index()]);
                    }
                }
            }
            offsets[q.index()] = base + self.delays[q.index()];
        }
    }

    /// Max finish step over `node`'s scheduled predecessors (0 = none).
    pub fn pred_finish(&self, node: NodeId) -> u32 {
        self.pred_finish[node.index()]
    }

    /// Min start step over `node`'s scheduled successors
    /// (`u32::MAX` = none).
    pub fn succ_start(&self, node: NodeId) -> u32 {
        self.succ_start[node.index()]
    }
}

/// Everything frame computation needs to see.
pub(crate) struct FrameCtx<'a> {
    pub dfg: &'a Dfg,
    pub spec: &'a TimingSpec,
    pub frames: &'a TimeFrames,
    pub schedule: &'a Schedule,
    /// Chaining clock; `None` disables chaining.
    pub clock: Option<ClockPeriod>,
    /// Finish offsets (accumulated within-step delay) of scheduled
    /// chainable operations, `NodeId`-indexed.
    pub offsets: &'a [Delay],
    /// Incremental per-node bounds, kept in lock-step with `schedule`.
    pub bounds: &'a BoundsCache,
}

impl FrameCtx<'_> {
    /// Effective cycle count of `node` under the (optional) clock: the
    /// declared cycles, or `⌈delay/T⌉` for operations slower than the
    /// clock.
    pub(crate) fn effective_cycles(&self, node: NodeId) -> u8 {
        self.bounds.cycles[node.index()]
    }

    /// Whether `node` may share a step boundary with a dependent op.
    fn chainable(&self, node: NodeId) -> bool {
        self.bounds.chainable[node.index()]
    }

    /// Finish step of a scheduled node.
    fn finish_step(&self, node: NodeId) -> Option<CStep> {
        self.schedule
            .start(node)
            .map(|s| s.finish(self.effective_cycles(node)))
    }

    /// Whether placing `node` at `step` satisfies every *scheduled*
    /// predecessor and, under chaining, the within-step delay budget.
    ///
    /// Almost always a single compare against the cached predecessor
    /// bound: any step past the latest scheduled-predecessor finish is
    /// feasible with a zero chaining base, any step before it is not.
    /// Only the boundary step itself needs the per-predecessor walk
    /// (chaining may or may not admit it).
    pub(crate) fn dep_feasible(&self, node: NodeId, step: CStep) -> bool {
        let bound = self.bounds.pred_finish[node.index()];
        if step.get() > bound {
            return true;
        }
        if step.get() < bound {
            return false;
        }
        let node_chainable = self.chainable(node);
        let mut offset_base = Delay::ZERO;
        for &p in self.dfg.preds(node) {
            let Some(pf) = self.finish_step(p) else {
                continue;
            };
            if step > pf {
                continue;
            }
            if step == pf && node_chainable && self.chainable(p) {
                offset_base = offset_base.max(self.offsets[p.index()]);
                continue;
            }
            return false;
        }
        if node_chainable && offset_base > Delay::ZERO {
            let d = self.dfg.node(node).kind().delay(self.spec);
            let clock = self.clock.expect("chainable implies clock");
            if !clock.fits(offset_base, d) {
                return false;
            }
        }
        true
    }

    /// The finish offset `node` would have when placed at `step`.
    pub(crate) fn offset_after(&self, node: NodeId, step: CStep) -> Delay {
        if !self.chainable(node) {
            return Delay::ZERO;
        }
        let mut base = Delay::ZERO;
        for &p in self.dfg.preds(node) {
            if self.finish_step(p) == Some(step) && self.chainable(p) {
                base = base.max(self.offsets[p.index()]);
            }
        }
        base + self.dfg.node(node).kind().delay(self.spec)
    }
}

/// The dependency-feasible start-step range `[earliest, latest]` of
/// `node` under the current partial schedule (empty when
/// `earliest > latest`). This is the time extent of `PF − FF`, shared by
/// MFS and MFSA.
///
/// Derived in O(1) from the [`BoundsCache`] instead of scanning the
/// primary range: with `M` the latest scheduled-predecessor finish,
/// every step below `M` is dependency-infeasible, `M` itself is feasible
/// exactly when chaining admits the boundary, and everything above `M`
/// is feasible — so the earliest feasible step is the ASAP/ALAP clamp of
/// that threshold, bit-identical to the scan it replaces.
pub(crate) fn feasible_step_range(ctx: &FrameCtx<'_>, node: NodeId) -> (CStep, CStep) {
    let cycles = ctx.effective_cycles(node);
    let asap = ctx.frames.asap(node);
    let alap = ctx.frames.alap(node);

    // A pipeline stage (index > 0) must start EXACTLY one step after its
    // predecessor stage — "must be scheduled in consecutive control
    // steps" (§5.5.1). Once the predecessor stage is placed, the frame
    // collapses to that single step.
    if let hls_dfg::NodeKind::Stage { index, .. } = ctx.dfg.node(node).kind() {
        if index > 0 {
            let stage_pred = ctx
                .dfg
                .preds(node)
                .iter()
                .copied()
                .find(|&p| matches!(ctx.dfg.node(p).kind(), hls_dfg::NodeKind::Stage { .. }));
            if let Some(step) = stage_pred.and_then(|p| ctx.schedule.start(p)) {
                let fixed = step.offset(1);
                return if ctx.dep_feasible(node, fixed) {
                    (fixed, fixed)
                } else {
                    // Unsatisfiable fixed slot: return an empty range so
                    // the caller reschedules.
                    (fixed.offset(1), fixed)
                };
            }
        }
    }

    // Forbidden frame lower bound: the smallest dependency-feasible step,
    // clamped into [ASAP, ALAP + 1]. (Chaining can make feasibility
    // non-monotonic only at the single boundary step M.)
    let m = ctx.bounds.pred_finish[node.index()];
    let mut earliest = if m < asap.get() {
        asap
    } else if m > alap.get() {
        alap.offset(1)
    } else if ctx.dep_feasible(node, CStep::new(m)) {
        CStep::new(m)
    } else {
        CStep::new(m + 1)
    };

    // Scheduled successors cap the start step from above.
    let mut latest = alap;
    let s_min = ctx.bounds.succ_start[node.index()];
    if s_min != u32::MAX {
        // finish(node) ≤ start(succ) − 1 ⇒ start ≤ start(succ) − cycles.
        let bound = s_min.saturating_sub(cycles as u32);
        if bound < latest.get() {
            if bound == 0 {
                // No feasible step at all; empty range.
                latest = CStep::FIRST;
                earliest = latest.offset(1);
            } else {
                latest = CStep::new(bound);
            }
        }
    }
    (earliest, latest)
}

/// Computes the move frame of `node` on `grid` with `current_fu` visible
/// columns.
pub(crate) fn compute_move_frame(
    ctx: &FrameCtx<'_>,
    node: NodeId,
    grid: &Grid,
    current_fu: u32,
) -> FrameSnapshot {
    let class = ctx.dfg.node(node).kind().fu_class();
    let cycles = ctx.effective_cycles(node);
    let asap = ctx.frames.asap(node);
    let alap = ctx.frames.alap(node);
    let (earliest, latest) = feasible_step_range(ctx, node);

    let mut movable = Vec::new();
    let mut af_steps = Vec::new();
    let is_mem = matches!(class, FuClass::Mem(_));
    let mut step = earliest;
    while step <= latest {
        if ctx.dep_feasible(node, step) {
            let before = movable.len();
            for fu in 1..=current_fu {
                let fu = FuIndex::new(fu);
                if grid.is_free_for(ctx.dfg, node, step, fu, cycles) {
                    movable.push(Position { step, fu });
                }
            }
            if is_mem && movable.len() == before {
                // Every visible port of the bank is taken this step: the
                // step belongs to the access-conflict frame.
                af_steps.push(step);
            }
        }
        step = step.offset(1);
    }

    FrameSnapshot {
        node,
        class,
        primary: (asap, alap),
        current_fu,
        max_fu: grid.max_fu(),
        earliest_feasible: earliest,
        latest_feasible: latest,
        af_steps,
        movable,
    }
}

/// Computes the move frame of `node` from caller-owned state — the
/// public probing entry used by tests and microbenchmarks. `offsets` is
/// `NodeId`-indexed (use `Delay::ZERO` for unscheduled or non-chainable
/// nodes) and `bounds` must be consistent with `schedule` (every
/// assignment mirrored through [`BoundsCache::on_assign`] /
/// [`BoundsCache::on_unassign`]).
#[allow(clippy::too_many_arguments)]
pub fn probe_move_frame(
    dfg: &Dfg,
    spec: &TimingSpec,
    frames: &TimeFrames,
    schedule: &Schedule,
    clock: Option<ClockPeriod>,
    offsets: &[Delay],
    bounds: &BoundsCache,
    node: NodeId,
    grid: &Grid,
    current_fu: u32,
) -> FrameSnapshot {
    let ctx = FrameCtx {
        dfg,
        spec,
        frames,
        schedule,
        clock,
        offsets,
        bounds,
    };
    compute_move_frame(&ctx, node, grid, current_fu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;
    use hls_dfg::DfgBuilder;
    use hls_schedule::{Slot, UnitId};

    fn ctx_fixture() -> (Dfg, TimingSpec) {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let p = b.op("p", OpKind::Add, &[x, y]).unwrap();
        b.op("q", OpKind::Add, &[p, y]).unwrap();
        (b.finish().unwrap(), TimingSpec::uniform_single_cycle())
    }

    #[test]
    fn forbidden_frame_excludes_predecessor_steps() {
        let (g, spec) = ctx_fixture();
        let p = g.node_by_name("p").unwrap();
        let q = g.node_by_name("q").unwrap();
        let frames = TimeFrames::compute(&g, &spec, 4).unwrap();
        let mut sched = hls_schedule::Schedule::new(&g, 4);
        let mut bounds = BoundsCache::new(&g, &spec, None);
        // Schedule p late (step 2): q's frame must start at 3.
        sched.assign(
            p,
            Slot {
                step: CStep::new(2),
                unit: UnitId::Fu {
                    class: FuClass::Op(OpKind::Add),
                    index: FuIndex::new(1),
                },
            },
        );
        bounds.on_assign(&g, p, CStep::new(2));
        let offsets = vec![Delay::ZERO; g.node_count()];
        let ctx = FrameCtx {
            dfg: &g,
            spec: &spec,
            frames: &frames,
            schedule: &sched,
            clock: None,
            offsets: &offsets,
            bounds: &bounds,
        };
        let grid = Grid::new(FuClass::Op(OpKind::Add), 4, 2);
        let snap = compute_move_frame(&ctx, q, &grid, 2);
        assert_eq!(snap.earliest_feasible, CStep::new(3));
        assert!(snap.movable.iter().all(|pos| pos.step >= CStep::new(3)));
        assert!(!snap.is_empty());
    }

    #[test]
    fn scheduled_successor_caps_the_frame() {
        let (g, spec) = ctx_fixture();
        let p = g.node_by_name("p").unwrap();
        let q = g.node_by_name("q").unwrap();
        let frames = TimeFrames::compute(&g, &spec, 4).unwrap();
        let mut sched = hls_schedule::Schedule::new(&g, 4);
        let mut bounds = BoundsCache::new(&g, &spec, None);
        sched.assign(
            q,
            Slot {
                step: CStep::new(3),
                unit: UnitId::Fu {
                    class: FuClass::Op(OpKind::Add),
                    index: FuIndex::new(1),
                },
            },
        );
        bounds.on_assign(&g, q, CStep::new(3));
        let offsets = vec![Delay::ZERO; g.node_count()];
        let ctx = FrameCtx {
            dfg: &g,
            spec: &spec,
            frames: &frames,
            schedule: &sched,
            clock: None,
            offsets: &offsets,
            bounds: &bounds,
        };
        let grid = Grid::new(FuClass::Op(OpKind::Add), 4, 2);
        let snap = compute_move_frame(&ctx, p, &grid, 2);
        assert_eq!(snap.latest_feasible, CStep::new(2));
        assert!(snap.movable.iter().all(|pos| pos.step <= CStep::new(2)));
    }

    #[test]
    fn occupied_columns_shrink_the_move_frame() {
        let (g, spec) = ctx_fixture();
        let p = g.node_by_name("p").unwrap();
        let q = g.node_by_name("q").unwrap();
        let frames = TimeFrames::compute(&g, &spec, 2).unwrap();
        let sched = hls_schedule::Schedule::new(&g, 2);
        let bounds = BoundsCache::new(&g, &spec, None);
        let offsets = vec![Delay::ZERO; g.node_count()];
        let ctx = FrameCtx {
            dfg: &g,
            spec: &spec,
            frames: &frames,
            schedule: &sched,
            clock: None,
            offsets: &offsets,
            bounds: &bounds,
        };
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 2, 1);
        grid.occupy(p, CStep::new(1), FuIndex::new(1), 1);
        // q (ASAP 2, ALAP 2) still fits at step 2.
        let snap = compute_move_frame(&ctx, q, &grid, 1);
        assert_eq!(snap.movable.len(), 1);
        assert_eq!(snap.movable[0].step, CStep::new(2));
        // Another op occupying step 2 empties the frame.
        grid.vacate(p);
        grid.occupy(p, CStep::new(2), FuIndex::new(1), 1);
        let snap = compute_move_frame(&ctx, q, &grid, 1);
        assert!(snap.is_empty());
    }

    #[test]
    fn chaining_admits_the_boundary_step() {
        let (g, _) = ctx_fixture();
        let spec = TimingSpec::with_delays(); // add = 48
        let p = g.node_by_name("p").unwrap();
        let q = g.node_by_name("q").unwrap();
        let clock = ClockPeriod::new(100);
        let frames = hls_schedule::chained_frames(&g, &spec, clock, 2)
            .unwrap()
            .into_frames();
        let mut sched = hls_schedule::Schedule::new(&g, 2);
        let mut bounds = BoundsCache::new(&g, &spec, Some(clock));
        sched.assign(
            p,
            Slot {
                step: CStep::new(1),
                unit: UnitId::Fu {
                    class: FuClass::Op(OpKind::Add),
                    index: FuIndex::new(1),
                },
            },
        );
        bounds.on_assign(&g, p, CStep::new(1));
        let mut offsets = vec![Delay::ZERO; g.node_count()];
        offsets[p.index()] = Delay::new(48);
        let ctx = FrameCtx {
            dfg: &g,
            spec: &spec,
            frames: &frames,
            schedule: &sched,
            clock: Some(clock),
            offsets: &offsets,
            bounds: &bounds,
        };
        let grid = Grid::new(FuClass::Op(OpKind::Add), 2, 2);
        let snap = compute_move_frame(&ctx, q, &grid, 2);
        // q may share step 1 (48 + 48 ≤ 100).
        assert_eq!(snap.earliest_feasible, CStep::new(1));
        assert_eq!(ctx.offset_after(q, CStep::new(1)), Delay::new(96));
        // With a tighter clock the boundary step is rejected.
        let tight = ClockPeriod::new(90);
        let bounds_tight = BoundsCache::new(&g, &spec, Some(tight));
        let mut bounds_tight = bounds_tight;
        bounds_tight.on_assign(&g, p, CStep::new(1));
        let ctx = FrameCtx {
            clock: Some(tight),
            bounds: &bounds_tight,
            ..ctx
        };
        assert!(!ctx.dep_feasible(q, CStep::new(1)));
        assert!(ctx.dep_feasible(q, CStep::new(2)));
    }
}
