//! Frame computation: `MF = PF − (RF ∪ FF)` (paper §3.2, step 4).

use std::collections::BTreeMap;

use hls_celllib::{ClockPeriod, Delay, TimingSpec};
use hls_dfg::{Dfg, FuClass, NodeId};
use hls_schedule::{CStep, FuIndex, Grid, Schedule, TimeFrames};

/// One candidate cell of a placement grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Position {
    /// Control step (`y`).
    pub step: CStep,
    /// Unit column (`x`).
    pub fu: FuIndex,
}

/// The frames computed for one operation at the moment it is scheduled —
/// the data behind the paper's Figure 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSnapshot {
    /// The operation being placed.
    pub node: NodeId,
    /// Its functional-unit class (which grid the frames live in).
    pub class: FuClass,
    /// Primary-frame time range `[ASAP, ALAP]`.
    pub primary: (CStep, CStep),
    /// Columns visible to the move frame (`current_j`); columns
    /// `current_j+1 ..= max_fu` form the redundant frame.
    pub current_fu: u32,
    /// The grid's column budget (`max_j`).
    pub max_fu: u32,
    /// Steps of the primary range excluded by data dependencies (the
    /// forbidden frame): every step strictly below this bound.
    pub earliest_feasible: CStep,
    /// Steps of the primary range excluded by already-scheduled
    /// successors: every step strictly above this bound.
    pub latest_feasible: CStep,
    /// The access-conflict frame `AF`: dependency-feasible steps excluded
    /// solely because every visible port of the node's memory bank is
    /// already occupied. Always empty for non-memory classes, where a
    /// fully-occupied step is an ordinary resource conflict rather than a
    /// port conflict. `MF = PF − (RF ∪ FF ∪ AF)`.
    pub af_steps: Vec<CStep>,
    /// The resulting move frame: free, dependency-feasible positions.
    pub movable: Vec<Position>,
}

impl FrameSnapshot {
    /// Whether the move frame is empty (triggers local rescheduling).
    pub fn is_empty(&self) -> bool {
        self.movable.is_empty()
    }
}

/// Everything frame computation needs to see.
pub(crate) struct FrameCtx<'a> {
    pub dfg: &'a Dfg,
    pub spec: &'a TimingSpec,
    pub frames: &'a TimeFrames,
    pub schedule: &'a Schedule,
    /// Chaining clock; `None` disables chaining.
    pub clock: Option<ClockPeriod>,
    /// Finish offsets (accumulated within-step delay) of scheduled
    /// chainable operations.
    pub offsets: &'a BTreeMap<NodeId, Delay>,
}

impl FrameCtx<'_> {
    /// Effective cycle count of `node` under the (optional) clock: the
    /// declared cycles, or `⌈delay/T⌉` for operations slower than the
    /// clock.
    pub(crate) fn effective_cycles(&self, node: NodeId) -> u8 {
        let kind = self.dfg.node(node).kind();
        let declared = kind.cycles(self.spec);
        match self.clock {
            None => declared,
            Some(t) => {
                let d = kind.delay(self.spec).as_u32();
                let derived = if d == 0 {
                    1
                } else {
                    d.div_ceil(t.as_u32()) as u8
                };
                declared.max(derived)
            }
        }
    }

    /// Whether `node` may share a step boundary with a dependent op.
    fn chainable(&self, node: NodeId) -> bool {
        self.clock.is_some()
            && self.effective_cycles(node) == 1
            && self.dfg.node(node).kind().delay(self.spec).as_u32() > 0
    }

    /// Finish step of a scheduled node.
    fn finish_step(&self, node: NodeId) -> Option<CStep> {
        self.schedule
            .start(node)
            .map(|s| s.finish(self.effective_cycles(node)))
    }

    /// Whether placing `node` at `step` satisfies every *scheduled*
    /// predecessor and, under chaining, the within-step delay budget.
    pub(crate) fn dep_feasible(&self, node: NodeId, step: CStep) -> bool {
        let node_chainable = self.chainable(node);
        let mut offset_base = Delay::ZERO;
        for &p in self.dfg.preds(node) {
            let Some(pf) = self.finish_step(p) else {
                continue;
            };
            if step > pf {
                continue;
            }
            if step == pf && node_chainable && self.chainable(p) {
                let p_off = self.offsets.get(&p).copied().unwrap_or(Delay::ZERO);
                offset_base = offset_base.max(p_off);
                continue;
            }
            return false;
        }
        if node_chainable && offset_base > Delay::ZERO {
            let d = self.dfg.node(node).kind().delay(self.spec);
            let clock = self.clock.expect("chainable implies clock");
            if !clock.fits(offset_base, d) {
                return false;
            }
        }
        true
    }

    /// The finish offset `node` would have when placed at `step`.
    pub(crate) fn offset_after(&self, node: NodeId, step: CStep) -> Delay {
        if !self.chainable(node) {
            return Delay::ZERO;
        }
        let mut base = Delay::ZERO;
        for &p in self.dfg.preds(node) {
            if self.finish_step(p) == Some(step) && self.chainable(p) {
                base = base.max(self.offsets.get(&p).copied().unwrap_or(Delay::ZERO));
            }
        }
        base + self.dfg.node(node).kind().delay(self.spec)
    }
}

/// The dependency-feasible start-step range `[earliest, latest]` of
/// `node` under the current partial schedule (empty when
/// `earliest > latest`). This is the time extent of `PF − FF`, shared by
/// MFS and MFSA.
pub(crate) fn feasible_step_range(ctx: &FrameCtx<'_>, node: NodeId) -> (CStep, CStep) {
    let cycles = ctx.effective_cycles(node);
    let asap = ctx.frames.asap(node);
    let alap = ctx.frames.alap(node);

    // A pipeline stage (index > 0) must start EXACTLY one step after its
    // predecessor stage — "must be scheduled in consecutive control
    // steps" (§5.5.1). Once the predecessor stage is placed, the frame
    // collapses to that single step.
    if let hls_dfg::NodeKind::Stage { index, .. } = ctx.dfg.node(node).kind() {
        if index > 0 {
            let stage_pred = ctx
                .dfg
                .preds(node)
                .iter()
                .copied()
                .find(|&p| matches!(ctx.dfg.node(p).kind(), hls_dfg::NodeKind::Stage { .. }));
            if let Some(step) = stage_pred.and_then(|p| ctx.schedule.start(p)) {
                let fixed = step.offset(1);
                return if ctx.dep_feasible(node, fixed) {
                    (fixed, fixed)
                } else {
                    // Unsatisfiable fixed slot: return an empty range so
                    // the caller reschedules.
                    (fixed.offset(1), fixed)
                };
            }
        }
    }

    // Forbidden frame lower bound: the smallest dependency-feasible step.
    // (Chaining can make feasibility non-monotonic only at the single
    // boundary step, so scanning from ASAP is exact.)
    let mut earliest = asap;
    while earliest <= alap && !ctx.dep_feasible(node, earliest) {
        earliest = earliest.offset(1);
    }

    // Scheduled successors cap the start step from above.
    let mut latest = alap;
    for &s in ctx.dfg.succs(node) {
        if let Some(sq) = ctx.schedule.start(s) {
            // finish(node) ≤ start(succ) − 1 ⇒ start ≤ start(succ) − cycles.
            let bound = sq.get().saturating_sub(cycles as u32);
            if bound < latest.get() {
                if bound == 0 {
                    // No feasible step at all; empty range.
                    latest = CStep::FIRST;
                    earliest = latest.offset(1);
                    break;
                }
                latest = CStep::new(bound);
            }
        }
    }
    (earliest, latest)
}

/// Computes the move frame of `node` on `grid` with `current_fu` visible
/// columns.
pub(crate) fn compute_move_frame(
    ctx: &FrameCtx<'_>,
    node: NodeId,
    grid: &Grid,
    current_fu: u32,
) -> FrameSnapshot {
    let class = ctx.dfg.node(node).kind().fu_class();
    let cycles = ctx.effective_cycles(node);
    let asap = ctx.frames.asap(node);
    let alap = ctx.frames.alap(node);
    let (earliest, latest) = feasible_step_range(ctx, node);

    let mut movable = Vec::new();
    let mut af_steps = Vec::new();
    let is_mem = matches!(class, FuClass::Mem(_));
    let mut step = earliest;
    while step <= latest {
        if ctx.dep_feasible(node, step) {
            let before = movable.len();
            for fu in 1..=current_fu {
                let fu = FuIndex::new(fu);
                if grid.is_free_for(ctx.dfg, node, step, fu, cycles) {
                    movable.push(Position { step, fu });
                }
            }
            if is_mem && movable.len() == before {
                // Every visible port of the bank is taken this step: the
                // step belongs to the access-conflict frame.
                af_steps.push(step);
            }
        }
        step = step.offset(1);
    }

    FrameSnapshot {
        node,
        class,
        primary: (asap, alap),
        current_fu,
        max_fu: grid.max_fu(),
        earliest_feasible: earliest,
        latest_feasible: latest,
        af_steps,
        movable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;
    use hls_dfg::DfgBuilder;
    use hls_schedule::{Slot, UnitId};

    fn ctx_fixture() -> (Dfg, TimingSpec) {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let p = b.op("p", OpKind::Add, &[x, y]).unwrap();
        b.op("q", OpKind::Add, &[p, y]).unwrap();
        (b.finish().unwrap(), TimingSpec::uniform_single_cycle())
    }

    #[test]
    fn forbidden_frame_excludes_predecessor_steps() {
        let (g, spec) = ctx_fixture();
        let p = g.node_by_name("p").unwrap();
        let q = g.node_by_name("q").unwrap();
        let frames = TimeFrames::compute(&g, &spec, 4).unwrap();
        let mut sched = hls_schedule::Schedule::new(&g, 4);
        // Schedule p late (step 2): q's frame must start at 3.
        sched.assign(
            p,
            Slot {
                step: CStep::new(2),
                unit: UnitId::Fu {
                    class: FuClass::Op(OpKind::Add),
                    index: FuIndex::new(1),
                },
            },
        );
        let offsets = BTreeMap::new();
        let ctx = FrameCtx {
            dfg: &g,
            spec: &spec,
            frames: &frames,
            schedule: &sched,
            clock: None,
            offsets: &offsets,
        };
        let grid = Grid::new(FuClass::Op(OpKind::Add), 4, 2);
        let snap = compute_move_frame(&ctx, q, &grid, 2);
        assert_eq!(snap.earliest_feasible, CStep::new(3));
        assert!(snap.movable.iter().all(|pos| pos.step >= CStep::new(3)));
        assert!(!snap.is_empty());
    }

    #[test]
    fn scheduled_successor_caps_the_frame() {
        let (g, spec) = ctx_fixture();
        let p = g.node_by_name("p").unwrap();
        let q = g.node_by_name("q").unwrap();
        let frames = TimeFrames::compute(&g, &spec, 4).unwrap();
        let mut sched = hls_schedule::Schedule::new(&g, 4);
        sched.assign(
            q,
            Slot {
                step: CStep::new(3),
                unit: UnitId::Fu {
                    class: FuClass::Op(OpKind::Add),
                    index: FuIndex::new(1),
                },
            },
        );
        let offsets = BTreeMap::new();
        let ctx = FrameCtx {
            dfg: &g,
            spec: &spec,
            frames: &frames,
            schedule: &sched,
            clock: None,
            offsets: &offsets,
        };
        let grid = Grid::new(FuClass::Op(OpKind::Add), 4, 2);
        let snap = compute_move_frame(&ctx, p, &grid, 2);
        assert_eq!(snap.latest_feasible, CStep::new(2));
        assert!(snap.movable.iter().all(|pos| pos.step <= CStep::new(2)));
    }

    #[test]
    fn occupied_columns_shrink_the_move_frame() {
        let (g, spec) = ctx_fixture();
        let p = g.node_by_name("p").unwrap();
        let q = g.node_by_name("q").unwrap();
        let frames = TimeFrames::compute(&g, &spec, 2).unwrap();
        let sched = hls_schedule::Schedule::new(&g, 2);
        let offsets = BTreeMap::new();
        let ctx = FrameCtx {
            dfg: &g,
            spec: &spec,
            frames: &frames,
            schedule: &sched,
            clock: None,
            offsets: &offsets,
        };
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 2, 1);
        grid.occupy(p, CStep::new(1), FuIndex::new(1), 1);
        // q (ASAP 2, ALAP 2) still fits at step 2.
        let snap = compute_move_frame(&ctx, q, &grid, 1);
        assert_eq!(snap.movable.len(), 1);
        assert_eq!(snap.movable[0].step, CStep::new(2));
        // Another op occupying step 2 empties the frame.
        grid.vacate(p);
        grid.occupy(p, CStep::new(2), FuIndex::new(1), 1);
        let snap = compute_move_frame(&ctx, q, &grid, 1);
        assert!(snap.is_empty());
    }

    #[test]
    fn chaining_admits_the_boundary_step() {
        let (g, _) = ctx_fixture();
        let spec = TimingSpec::with_delays(); // add = 48
        let p = g.node_by_name("p").unwrap();
        let q = g.node_by_name("q").unwrap();
        let clock = ClockPeriod::new(100);
        let frames = hls_schedule::chained_frames(&g, &spec, clock, 2)
            .unwrap()
            .into_frames();
        let mut sched = hls_schedule::Schedule::new(&g, 2);
        sched.assign(
            p,
            Slot {
                step: CStep::new(1),
                unit: UnitId::Fu {
                    class: FuClass::Op(OpKind::Add),
                    index: FuIndex::new(1),
                },
            },
        );
        let mut offsets = BTreeMap::new();
        offsets.insert(p, Delay::new(48));
        let ctx = FrameCtx {
            dfg: &g,
            spec: &spec,
            frames: &frames,
            schedule: &sched,
            clock: Some(clock),
            offsets: &offsets,
        };
        let grid = Grid::new(FuClass::Op(OpKind::Add), 2, 2);
        let snap = compute_move_frame(&ctx, q, &grid, 2);
        // q may share step 1 (48 + 48 ≤ 100).
        assert_eq!(snap.earliest_feasible, CStep::new(1));
        assert_eq!(ctx.offset_after(q, CStep::new(1)), Delay::new(96));
        // With a tighter clock the boundary step is rejected.
        let tight = ClockPeriod::new(90);
        let ctx = FrameCtx {
            clock: Some(tight),
            ..ctx
        };
        assert!(!ctx.dep_feasible(q, CStep::new(1)));
        assert!(ctx.dep_feasible(q, CStep::new(2)));
    }
}
