//! **moveframe** — Move Frame Scheduling (MFS) and Move Frame
//! Scheduling-Allocation (MFSA), the two algorithms of Nourani &
//! Papachristou, *"Move Frame Scheduling and Mixed Scheduling-Allocation
//! for the Automated Synthesis of Digital Systems"*, DAC 1992.
//!
//! Both algorithms view scheduling as moves in a 2-D placement grid
//! (control step × unit index, one grid per unit type) guided by a scalar
//! *Liapunov* (energy) function: each operation, visited in priority
//! order, makes one energy-minimising move into its **move frame**
//! `MF = PF − (RF ∪ FF)`, where
//!
//! * `PF` (primary frame) comes from the operation's ASAP/ALAP interval,
//! * `RF` (redundant frame) hides unit columns beyond the current unit
//!   count `current_j = ⌈N_j / cs⌉` (grown on demand — *local
//!   rescheduling*), and
//! * `FF` (forbidden frame) excludes steps that would violate data
//!   dependencies (relaxed under chaining).
//!
//! [`mfs`] schedules onto single-function units with a *static* Liapunov
//! function; [`mfsa`] simultaneously schedules and allocates onto
//! (possibly multifunction) ALU instances from a cell library with a
//! *dynamic* Liapunov function whose terms price time, new ALU area,
//! multiplexer growth and register life spans.
//!
//! The §5 synthesis applications are all supported: mutually exclusive
//! operations, loop folding ([`loops`]), multi-cycle operations, chained
//! operations, and structural/functional pipelining ([`pipeline`]).
//!
//! ```
//! use hls_celllib::TimingSpec;
//! use hls_dfg::parse_dfg;
//! use moveframe::mfs::{self, MfsConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dfg = parse_dfg(
//!     "input a, b, c
//!      op p = mul(a, b)
//!      op q = mul(b, c)
//!      op r = add(p, q)",
//! )?;
//! let spec = TimingSpec::uniform_single_cycle();
//! let outcome = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(3))?;
//! assert!(outcome.schedule.is_complete());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod error;
mod frame;
mod liapunov;
pub mod loops;
pub mod mfs;
pub mod mfsa;
pub mod pipeline;

pub use cancel::CancelToken;
pub use error::MoveFrameError;
pub use frame::{probe_move_frame, BoundsCache, FrameSnapshot, Position};
pub use liapunov::{MfsObjective, StaticLiapunov};
