//! The dynamic Liapunov function's cost terms (paper §4.1).

use std::collections::BTreeMap;

use hls_celllib::{Area, Library};
use hls_dfg::SignalId;
use hls_rtl::muxopt::{pack_cost, MuxOp};

use crate::mfsa::Weights;

/// A multiplexer input *line* at estimation time. Interconnect sharing
/// (paper §5.7) folds every value produced by the same ALU onto one
/// line; with sharing disabled each signal is its own line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum EstSource {
    /// A primary input or constant port.
    External(SignalId),
    /// The result path of ALU instance `n` (interconnect sharing on).
    FromAlu(u32),
    /// An individual stored signal (interconnect sharing off).
    Signal(SignalId),
}

/// Evaluates the four `f` terms for candidate positions.
#[derive(Debug, Clone)]
pub(crate) struct CostModel {
    weights: Weights,
    /// The `f_TIME` constant `C > w_A·f_ALU^max + w_M·f_MUX^max +
    /// w_R·f_REG^max`, guaranteeing an earlier feasible step always wins
    /// when `w_TIME ≥ 1`.
    c_const: u64,
    reg_area: u64,
    mux_table: Vec<u64>,
}

impl CostModel {
    pub(crate) fn new(library: &Library, weights: Weights) -> CostModel {
        let c_const = weights.alu as u64 * library.max_alu_area().as_u64()
            + weights.mux as u64 * library.max_mux_term().as_u64()
            + weights.reg as u64 * library.max_reg_term().as_u64()
            + 1;
        // Cache the mux curve for the widths we will see.
        let mux_table = (0..64).map(|r| library.mux().cost(r).as_u64()).collect();
        CostModel {
            weights,
            c_const,
            reg_area: library.register_area().as_u64(),
            mux_table,
        }
    }

    /// `w_TIME · C · y`.
    pub(crate) fn f_time(&self, step: u32) -> u64 {
        self.weights.time as u64 * self.c_const * step as u64
    }

    /// `w_ALU · ΔALU-area` for a new or upgraded instance.
    pub(crate) fn f_alu(&self, delta: Area) -> u64 {
        self.weights.alu as u64 * delta.as_u64()
    }

    /// `w_MUX · (Cost(MUX¹_after) + Cost(MUX²_after) − before)` under the
    /// best-case packing of the instance's operand sources.
    pub(crate) fn f_mux(&self, before: &[MuxOp<EstSource>], candidate: MuxOp<EstSource>) -> u64 {
        self.f_mux_from(self.mux_pair_cost(before), before, candidate)
    }

    /// [`Self::f_mux`] with the before-cost supplied by the caller. The
    /// before term depends only on the instance's committed operations —
    /// frozen between moves — so the scheduler caches it per instance
    /// and pays one packing per candidate instead of two.
    pub(crate) fn f_mux_from(
        &self,
        before_cost: u64,
        before: &[MuxOp<EstSource>],
        candidate: MuxOp<EstSource>,
    ) -> u64 {
        let mut after = Vec::with_capacity(before.len() + 1);
        after.extend_from_slice(before);
        after.push(candidate);
        let after_cost = self.mux_pair_cost(&after);
        self.weights.mux as u64 * after_cost.saturating_sub(before_cost)
    }

    /// Total cost of the two input multiplexers after optimal packing.
    pub(crate) fn mux_pair_cost(&self, ops: &[MuxOp<EstSource>]) -> u64 {
        let (l1, l2) = pack_cost(ops);
        self.mux_cost(l1) + self.mux_cost(l2)
    }

    fn mux_cost(&self, inputs: usize) -> u64 {
        match self.mux_table.get(inputs) {
            Some(&c) => c,
            None => {
                let last = *self.mux_table.last().expect("non-empty");
                let step = last - self.mux_table[self.mux_table.len() - 2];
                last + step * (inputs + 1 - self.mux_table.len()) as u64
            }
        }
    }

    /// `w_REG · ΔREG-count · Cost(REG)`.
    pub(crate) fn f_reg(&self, delta_registers: usize) -> u64 {
        self.weights.reg as u64 * delta_registers as u64 * self.reg_area
    }

    /// A Liapunov lower bound for the branch-and-bound search: the
    /// energy of any candidate at `step` whose exactly-known non-time
    /// terms sum to `known`. Every term of the energy is ≥ 0, so
    /// `f_TIME(step) + known` never exceeds the true total — with
    /// `known = 0` this is the level-0 bound behind the wholesale
    /// later-step cut, and the instance-level cut passes the exact
    /// `f_REG + f_ALU` sum, leaving only the mux-repacking delta
    /// unknown. For fixed `known` the bound is monotone non-decreasing
    /// in the step index (`f_TIME = w_T·C·step`), which is what lets
    /// the step queue cut every remaining step at once.
    pub(crate) fn lower_bound(&self, step: u32, known: u64) -> u64 {
        self.f_time(step) + known
    }
}

/// Incremental estimate of the register demand ("a backward look at the
/// partially constructed schedule", §4.1): one life span per stored
/// signal, extended as consumers are scheduled; the register count is
/// the peak number of simultaneously live spans, which the final
/// left-edge pass meets exactly.
#[derive(Debug, Clone, Default)]
pub(crate) struct RegEstimate {
    /// signal → (birth, death), both inclusive.
    spans: BTreeMap<SignalId, (u32, u32)>,
    /// Spans covering each step (index = step, entry 0 unused).
    live: Vec<u32>,
    /// Cached `max(live)` — exact because spans only widen, so per-step
    /// coverage (and hence the peak) is monotone under `commit`.
    peak: usize,
}

impl RegEstimate {
    pub(crate) fn new() -> RegEstimate {
        RegEstimate::default()
    }

    /// Current register count (peak simultaneously-live spans).
    pub(crate) fn count(&self) -> usize {
        self.peak
    }

    /// The count if `extensions` were applied: each `(signal, birth,
    /// death)` inserts or extends a span. Evaluated against the cached
    /// per-step coverage — only the *newly covered* steps can raise the
    /// peak, so no span map is cloned and no full rescan runs.
    pub(crate) fn count_with(&self, extensions: &[(SignalId, u32, u32)]) -> usize {
        let mut newly: Vec<u32> = Vec::new();
        // Spans already widened by earlier extensions in this same call
        // (an op can consume one signal twice); tiny, so linear search.
        let mut overlay: Vec<(SignalId, (u32, u32))> = Vec::new();
        for &(sig, birth, death) in extensions {
            match overlay.iter_mut().find(|(s, _)| *s == sig) {
                Some((_, span)) => {
                    let (ob, od) = *span;
                    let (nb, nd) = (ob.min(birth), od.max(death));
                    newly.extend(nb..ob);
                    newly.extend(od + 1..=nd);
                    *span = (nb, nd);
                }
                None => match self.spans.get(&sig).copied() {
                    Some((ob, od)) => {
                        let (nb, nd) = (ob.min(birth), od.max(death));
                        newly.extend(nb..ob);
                        newly.extend(od + 1..=nd);
                        overlay.push((sig, (nb, nd)));
                    }
                    None => {
                        newly.extend(birth..=death);
                        overlay.push((sig, (birth, death)));
                    }
                },
            }
        }
        // Steps without new coverage keep their old count ≤ peak.
        newly.sort_unstable();
        let mut peak = self.peak;
        let mut i = 0;
        while i < newly.len() {
            let step = newly[i];
            let mut j = i;
            while j < newly.len() && newly[j] == step {
                j += 1;
            }
            let base = self.live.get(step as usize).copied().unwrap_or(0);
            peak = peak.max((base + (j - i) as u32) as usize);
            i = j;
        }
        peak
    }

    /// Applies `extensions` permanently.
    pub(crate) fn commit(&mut self, extensions: &[(SignalId, u32, u32)]) {
        for &(sig, birth, death) in extensions {
            let (cover_a, cover_b) = match self.spans.get_mut(&sig) {
                Some(span) => {
                    let (ob, od) = *span;
                    let (nb, nd) = (ob.min(birth), od.max(death));
                    *span = (nb, nd);
                    (nb..ob, od + 1..=nd)
                }
                None => {
                    self.spans.insert(sig, (birth, death));
                    (1..1, birth..=death)
                }
            };
            for step in cover_a.chain(cover_b) {
                let idx = step as usize;
                if self.live.len() <= idx {
                    self.live.resize(idx + 1, 0);
                }
                self.live[idx] += 1;
                self.peak = self.peak.max(self.live[idx] as usize);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;

    fn sig(n: usize) -> SignalId {
        // Construct distinct SignalIds through a throwaway builder.
        let mut b = hls_dfg::DfgBuilder::new("stub");
        let mut last = b.input("s0");
        for i in 1..=n {
            last = b.input(&format!("s{i}"));
        }
        last
    }

    #[test]
    fn time_term_dominates_cost_terms() {
        let lib = Library::ncr_like();
        let model = CostModel::new(&lib, Weights::default());
        // One full step of f_TIME exceeds the largest possible sum of
        // the other three terms (the paper's C inequality).
        let worst = model.f_alu(lib.max_alu_area())
            + Weights::default().mux as u64 * lib.max_mux_term().as_u64()
            + model.f_reg(2);
        assert!(model.f_time(1) > worst);
        assert!(model.f_time(2) - model.f_time(1) > worst);
    }

    #[test]
    fn f_mux_charges_only_new_lines() {
        let lib = Library::ncr_like();
        let model = CostModel::new(&lib, Weights::default());
        let a = EstSource::External(sig(1));
        let b = EstSource::External(sig(2));
        let existing = vec![MuxOp {
            left: a,
            right: Some(b),
            commutative: false,
        }];
        // The same operand pair again: no growth, no cost.
        assert_eq!(
            model.f_mux(
                &existing,
                MuxOp {
                    left: a,
                    right: Some(b),
                    commutative: false
                }
            ),
            0
        );
        // A commutative op with swapped operands: packing reuses lines.
        assert_eq!(
            model.f_mux(
                &existing,
                MuxOp {
                    left: b,
                    right: Some(a),
                    commutative: true
                }
            ),
            0
        );
        // A brand-new pair must pay for widening both muxes to 2 inputs.
        let c = EstSource::External(sig(3));
        let d = EstSource::External(sig(4));
        let grow = model.f_mux(
            &existing,
            MuxOp {
                left: c,
                right: Some(d),
                commutative: false,
            },
        );
        assert_eq!(grow, 2 * lib.mux().cost(2).as_u64());
    }

    #[test]
    fn reg_estimate_counts_peak_overlap() {
        let mut est = RegEstimate::new();
        assert_eq!(est.count(), 0);
        est.commit(&[(sig(1), 1, 3), (sig(2), 2, 4)]);
        assert_eq!(est.count(), 2);
        // A third overlapping span raises the count by one.
        assert_eq!(est.count_with(&[(sig(3), 3, 3)]), 3);
        // A disjoint span does not.
        assert_eq!(est.count_with(&[(sig(3), 5, 6)]), 2);
        // Extending an existing signal's death does not add a register
        // when nothing else overlaps the extension.
        assert_eq!(est.count_with(&[(sig(2), 2, 9)]), 2);
    }

    #[test]
    fn f_reg_scales_with_register_area() {
        let lib = Library::ncr_like();
        let model = CostModel::new(&lib, Weights::default());
        assert_eq!(model.f_reg(0), 0);
        assert_eq!(model.f_reg(2), 2 * lib.register_area().as_u64());
    }

    #[test]
    fn weights_scale_terms() {
        let lib = Library::ncr_like();
        let w = Weights {
            time: 1,
            alu: 3,
            mux: 1,
            reg: 5,
        };
        let model = CostModel::new(&lib, w);
        let area = lib.fu_area(OpKind::Add).unwrap();
        assert_eq!(model.f_alu(area), 3 * area.as_u64());
        assert_eq!(model.f_reg(1), 5 * lib.register_area().as_u64());
    }

    mod bound_soundness {
        use super::*;
        use proptest::prelude::*;

        /// A candidate's exact energy from its four terms.
        fn energy(model: &CostModel, step: u32, f_alu: u64, f_mux: u64, f_reg: u64) -> u64 {
            model.f_time(step) + f_alu + f_mux + f_reg
        }

        proptest! {
            /// `lower_bound(step, known) ≤ energy` exactly, at every
            /// level the search uses it: `known = 0` (wholesale step
            /// cut), `known = f_REG` (per-step cut) and `known = f_REG
            /// + f_ALU` (instance cut) — each leaves only non-negative
            /// terms unaccounted for.
            #[test]
            fn lower_bound_never_exceeds_the_energy(
                step in 1u32..200,
                f_alu in 0u64..10_000,
                f_mux in 0u64..10_000,
                f_reg in 0u64..10_000,
                weight_idx in 0usize..3,
            ) {
                let lib = Library::ncr_like();
                let weights = [
                    Weights::default(),
                    Weights { time: 0, alu: 1, mux: 1, reg: 1 },
                    Weights { time: 2, alu: 1, mux: 3, reg: 4 },
                ][weight_idx];
                let model = CostModel::new(&lib, weights);
                let e = energy(&model, step, f_alu, f_mux, f_reg);
                prop_assert!(model.lower_bound(step, 0) <= e);
                prop_assert!(model.lower_bound(step, f_reg) <= e);
                prop_assert!(model.lower_bound(step, f_reg + f_alu) <= e);
                // With every term known the bound is exact.
                prop_assert_eq!(model.lower_bound(step, f_reg + f_alu + f_mux), e);
            }

            /// For a fixed `known` the bound is monotone non-decreasing
            /// in the step index — the property that lets one queue pop
            /// cut every remaining (later) step wholesale.
            #[test]
            fn lower_bound_is_monotone_in_step(
                step in 1u32..199,
                known in 0u64..30_000,
                weight_idx in 0usize..3,
            ) {
                let lib = Library::ncr_like();
                let weights = [
                    Weights::default(),
                    Weights { time: 0, alu: 1, mux: 1, reg: 1 },
                    Weights { time: 2, alu: 1, mux: 3, reg: 4 },
                ][weight_idx];
                let model = CostModel::new(&lib, weights);
                prop_assert!(model.lower_bound(step, known) <= model.lower_bound(step + 1, known));
            }
        }
    }

    #[test]
    fn mux_cost_extrapolates_beyond_the_table() {
        let lib = Library::ncr_like();
        let model = CostModel::new(&lib, Weights::default());
        // Widths beyond the cached table grow linearly.
        let c64 = model.mux_cost(64);
        let c65 = model.mux_cost(65);
        let c66 = model.mux_cost(66);
        assert_eq!(c66 - c65, c65 - c64);
    }
}
