//! The unpruned MFSA move loop, kept alive verbatim as the test oracle
//! for the branch-and-bound search in [`super::scheduler`].
//!
//! [`ExhaustiveMfsa`] scores **every** feasible `(step, instance)`
//! position of every operation — the pre-pruning behaviour — and is
//! differentialed against the pruned loop by
//! `tests/mfsa_prune_differential.rs`: byte-identical schedules,
//! allocations and traces, with the pruned loop's evaluation count
//! bounded by this one's. It is compiled unconditionally (rather than
//! under `#[cfg(test)]`) so integration tests of downstream crates and
//! the `core_scaling --exhaustive` measurement runs can reach it, but
//! it is `#[doc(hidden)]` and not part of the supported API.

use std::collections::BTreeMap;

use hls_celllib::Delay;
use hls_celllib::TimingSpec;
use hls_dfg::{BankId, Dfg, FuClass, NodeId, NodeKind, SignalId, SignalSource};
use hls_rtl::muxopt::MuxOp;
use hls_rtl::{AluAllocation, CostReport, Datapath};
use hls_schedule::{
    chained_frames, priority_order, CStep, FuIndex, Schedule, Slot, TimeFrames, UnitId,
};
use hls_telemetry::{Instrument, Metrics, NullSink, TraceEvent};

use crate::frame::{feasible_step_range, BoundsCache, FrameCtx};
use crate::mfsa::cost::{CostModel, EstSource, RegEstimate};
use crate::mfsa::scheduler::{
    base_op, instance_free, reg_extensions, Candidate, Instance, IterationTrace, MfsaOutcome,
};
use crate::mfsa::{DesignStyle, MfsaConfig};
use crate::MoveFrameError;

/// Step-invariant part of a reuse/upgrade candidate for one instance:
/// `(kind after the move, f_ALU, f_MUX, flavour)`, or `None` when the
/// instance can never host the op — the pre-split combined memo.
type InstCost = Option<(usize, u64, u64, u8)>;

/// The exhaustive (unpruned) MFSA search — the oracle the pruned loop
/// must match move for move.
pub struct ExhaustiveMfsa;

impl ExhaustiveMfsa {
    /// Exhaustive counterpart of [`crate::mfsa::schedule`].
    ///
    /// # Errors
    ///
    /// As for [`crate::mfsa::schedule`].
    pub fn schedule(
        dfg: &Dfg,
        spec: &TimingSpec,
        config: &MfsaConfig,
    ) -> Result<MfsaOutcome, MoveFrameError> {
        let mut sink = NullSink;
        let mut metrics = Metrics::new();
        Self::schedule_traced(
            dfg,
            spec,
            config,
            &mut Instrument::new(&mut sink, &mut metrics),
        )
    }

    /// Exhaustive counterpart of [`crate::mfsa::schedule_traced`]: the
    /// same phases, counters and events, except that *every* candidate
    /// is fully scored (one `EnergyEvaluated` each) and the prune
    /// counters stay zero — `mfsa.steps.feasible` and
    /// `mfsa.steps.expanded` are both the full feasible-step count.
    ///
    /// # Errors
    ///
    /// As for [`crate::mfsa::schedule`].
    pub fn schedule_traced(
        dfg: &Dfg,
        spec: &TimingSpec,
        config: &MfsaConfig,
        instr: &mut Instrument<'_>,
    ) -> Result<MfsaOutcome, MoveFrameError> {
        let cs = config.control_steps();
        let library = config.library();
        config.cancel().checkpoint()?;

        for (id, node) in dfg.nodes() {
            if matches!(node.kind(), NodeKind::LoopBody { .. }) {
                return Err(MoveFrameError::Dfg(hls_dfg::DfgError::EmptyLoop(
                    match node.kind() {
                        NodeKind::LoopBody { loop_id, .. } => loop_id,
                        _ => unreachable!(),
                    },
                )));
            }
            if node.kind().is_mem_access() {
                continue;
            }
            let op = base_op(dfg, id);
            if library.alus_supporting(op).next().is_none() {
                return Err(MoveFrameError::NoCapableAlu { node: id });
            }
        }

        let frames = instr.span("mfsa.frames", |_| match config.clock() {
            Some(clock) => Ok(chained_frames(dfg, spec, clock, cs)?.into_frames()),
            None => TimeFrames::compute(dfg, spec, cs),
        })?;
        let order = instr.span("mfsa.priority", |_| priority_order(dfg, spec, &frames));
        let model = CostModel::new(library, config.weights());

        let wrap = |step: u32| match config.latency() {
            Some(l) => (step - 1) % l + 1,
            None => step,
        };

        let mut sched = Schedule::new(dfg, cs);
        let mut offsets: Vec<Delay> = vec![Delay::ZERO; dfg.node_count()];
        let mut bounds = BoundsCache::new(dfg, spec, config.clock());
        let mut instances: Vec<Instance> = Vec::new();
        let mut mem_busy: BTreeMap<(BankId, u32, u32), Vec<NodeId>> = BTreeMap::new();
        let mut reg_est = RegEstimate::new();
        let mut trace = Vec::new();

        instr.span("mfsa.move_loop", |instr| {
            for node in order {
                config.cancel().checkpoint()?;

                if dfg.node(node).kind().is_mem_access() {
                    let FuClass::Mem(bank) = dfg.node(node).kind().fu_class() else {
                        unreachable!("mem accesses have a Mem class");
                    };
                    let ports = dfg.bank_ports(bank);
                    let mut best: Option<(u64, CStep, u32, u64, u64)> = None;
                    let mut n_candidates = 0u64;
                    let mut feasible_steps = 0u64;
                    let (cycles, offset) = {
                        let ctx = FrameCtx {
                            dfg,
                            spec,
                            frames: &frames,
                            schedule: &sched,
                            clock: config.clock(),
                            offsets: &offsets,
                            bounds: &bounds,
                        };
                        let (earliest, latest) = feasible_step_range(&ctx, node);
                        let cycles = ctx.effective_cycles(node);
                        let mut step = earliest;
                        while step <= latest {
                            if ctx.dep_feasible(node, step) && step.finish(cycles).get() <= cs {
                                feasible_steps += 1;
                                let f_time = model.f_time(step.get());
                                let extensions =
                                    reg_extensions(dfg, &sched, spec, node, step, config);
                                let f_reg = model.f_reg(
                                    reg_est
                                        .count_with(&extensions)
                                        .saturating_sub(reg_est.count()),
                                );
                                for port in 1..=ports {
                                    let free = (0..cycles as u32).all(|k| {
                                        mem_busy
                                            .get(&(bank, port, wrap(step.get() + k)))
                                            .is_none_or(|occ| {
                                                occ.iter().all(|&o| dfg.mutually_exclusive(node, o))
                                            })
                                    });
                                    if !free {
                                        continue;
                                    }
                                    n_candidates += 1;
                                    let total = f_time + f_reg;
                                    if instr.enabled() {
                                        instr.emit(TraceEvent::EnergyEvaluated {
                                            op: node.index() as u32,
                                            pos: (port, step.get()),
                                            v: total,
                                        });
                                    }
                                    let better = match best {
                                        None => true,
                                        Some((bt, bs, bp, ..)) => {
                                            (total, step, port) < (bt, bs, bp)
                                        }
                                    };
                                    if better {
                                        best = Some((total, step, port, f_time, f_reg));
                                    }
                                }
                            }
                            step = step.offset(1);
                        }
                        let offset = match best {
                            Some((_, step, ..)) => ctx.offset_after(node, step),
                            None => Delay::ZERO,
                        };
                        (cycles, offset)
                    };
                    instr.inc("mfsa.steps.feasible", feasible_steps);
                    instr.inc("mfsa.steps.expanded", feasible_steps);
                    instr.inc("mfsa.energy_evaluations", n_candidates);
                    instr.inc("mfsa.bound.evals", n_candidates);
                    instr.observe("mfsa.candidates", n_candidates);
                    let Some((total, step, port, f_time, f_reg)) = best else {
                        return Err(MoveFrameError::NoPosition {
                            node,
                            class: FuClass::Mem(bank),
                            max_fu: ports,
                        });
                    };
                    for k in 0..cycles as u32 {
                        mem_busy
                            .entry((bank, port, wrap(step.get() + k)))
                            .or_default()
                            .push(node);
                    }
                    sched.assign(
                        node,
                        Slot {
                            step,
                            unit: UnitId::Fu {
                                class: FuClass::Mem(bank),
                                index: FuIndex::new(port),
                            },
                        },
                    );
                    offsets[node.index()] = offset;
                    bounds.on_assign(dfg, node, step);
                    let extensions = reg_extensions(dfg, &sched, spec, node, step, config);
                    reg_est.commit(&extensions);
                    instr.inc("mfsa.moves_committed", 1);
                    instr.inc("mfsa.mem_moves", 1);
                    if instr.enabled() {
                        instr.emit(TraceEvent::MoveCommitted {
                            op: node.index() as u32,
                            from: None,
                            to: (port, step.get()),
                            v: total,
                            system_v: None,
                        });
                    }
                    if config.records_trace() {
                        trace.push(IterationTrace {
                            node,
                            step,
                            instance: port,
                            new_instance: false,
                            f_time,
                            f_alu: 0,
                            f_mux: 0,
                            f_reg,
                        });
                    }
                    continue;
                }

                let op = base_op(dfg, node);
                let commutative = match dfg.node(node).kind() {
                    NodeKind::Op(k) => k.is_commutative(),
                    NodeKind::Stage { base, index, .. } => index == 0 && base.is_commutative(),
                    _ => unreachable!("loops rejected above, mem accesses handled above"),
                };

                let mut best: Option<Candidate> = None;
                let mut n_candidates = 0u64;
                let mut feasible_steps = 0u64;
                let next_instance = instances.len() as u32 + 1;

                let (cycles, mux_op, offset) = {
                    let ctx = FrameCtx {
                        dfg,
                        spec,
                        frames: &frames,
                        schedule: &sched,
                        clock: config.clock(),
                        offsets: &offsets,
                        bounds: &bounds,
                    };
                    let (earliest, latest) = feasible_step_range(&ctx, node);
                    let cycles = ctx.effective_cycles(node);
                    let est = |sig: SignalId| -> EstSource {
                        match dfg.signal(sig).source() {
                            SignalSource::PrimaryInput | SignalSource::Constant(_) => {
                                EstSource::External(sig)
                            }
                            SignalSource::Node(p) => {
                                if config.shares_interconnect() {
                                    match sched.slot(p).map(|s| s.unit) {
                                        Some(UnitId::Alu { instance }) => {
                                            EstSource::FromAlu(instance)
                                        }
                                        _ => EstSource::Signal(sig),
                                    }
                                } else {
                                    EstSource::Signal(sig)
                                }
                            }
                        }
                    };
                    let inputs = dfg.node(node).inputs();
                    let mux_op = MuxOp {
                        left: est(inputs[0]),
                        right: inputs.get(1).map(|&s| est(s)),
                        commutative,
                    };

                    let mut inst_costs: Vec<Option<InstCost>> = vec![None; instances.len()];
                    let fresh_mux = model.f_mux(&[], mux_op);
                    let new_kinds: Vec<(usize, u64)> = library
                        .alus()
                        .iter()
                        .enumerate()
                        .filter(|(_, k)| k.supports(op))
                        .map(|(kind_index, k)| (kind_index, model.f_alu(k.area())))
                        .collect();

                    let mut consider = |c: Candidate| {
                        n_candidates += 1;
                        if instr.enabled() {
                            instr.emit(TraceEvent::EnergyEvaluated {
                                op: node.index() as u32,
                                pos: (
                                    c.instance.map_or(next_instance, |i| i as u32 + 1),
                                    c.step.get(),
                                ),
                                v: c.total(),
                            });
                        }
                        let better = match &best {
                            None => true,
                            Some(b) => {
                                (
                                    c.total(),
                                    c.step,
                                    c.flavour,
                                    c.instance.unwrap_or(usize::MAX),
                                    c.kind_index,
                                ) < (
                                    b.total(),
                                    b.step,
                                    b.flavour,
                                    b.instance.unwrap_or(usize::MAX),
                                    b.kind_index,
                                )
                            }
                        };
                        if better {
                            best = Some(c);
                        }
                    };

                    let mut step = earliest;
                    while step <= latest {
                        if ctx.dep_feasible(node, step) && step.finish(cycles).get() <= cs {
                            feasible_steps += 1;
                            let f_time = model.f_time(step.get());
                            let extensions = reg_extensions(dfg, &sched, spec, node, step, config);
                            let f_reg = model.f_reg(
                                reg_est
                                    .count_with(&extensions)
                                    .saturating_sub(reg_est.count()),
                            );

                            for (i, inst) in instances.iter().enumerate() {
                                if !instance_free(inst, dfg, node, step, cycles, &wrap) {
                                    continue;
                                }
                                let cost = inst_costs[i].get_or_insert_with(|| {
                                    if config.style() == DesignStyle::NoSelfLoop {
                                        let related = inst.ops.iter().any(|&o| {
                                            dfg.preds(node).contains(&o)
                                                || dfg.succs(node).contains(&o)
                                        });
                                        if related {
                                            return None;
                                        }
                                    }
                                    let cur_kind = &library.alus()[inst.kind_index];
                                    if cur_kind.supports(op) {
                                        Some((
                                            inst.kind_index,
                                            0,
                                            model.f_mux(&inst.mux_ops, mux_op),
                                            0,
                                        ))
                                    } else {
                                        library
                                            .alus()
                                            .iter()
                                            .enumerate()
                                            .filter(|(_, k)| {
                                                k.supports(op)
                                                    && cur_kind.ops().all(|o| k.supports(o))
                                            })
                                            .min_by_key(|(idx, k)| (k.area(), *idx))
                                            .map(|(kind_index, kind)| {
                                                (
                                                    kind_index,
                                                    model.f_alu(
                                                        kind.area().saturating_sub(cur_kind.area()),
                                                    ),
                                                    model.f_mux(&inst.mux_ops, mux_op),
                                                    1,
                                                )
                                            })
                                    }
                                });
                                let Some((kind_index, f_alu, f_mux, flavour)) = *cost else {
                                    continue;
                                };
                                consider(Candidate {
                                    step,
                                    instance: Some(i),
                                    kind_index,
                                    f_time,
                                    f_alu,
                                    f_mux,
                                    f_reg,
                                    flavour,
                                });
                            }

                            for &(kind_index, f_alu) in &new_kinds {
                                consider(Candidate {
                                    step,
                                    instance: None,
                                    kind_index,
                                    f_time,
                                    f_alu,
                                    f_mux: fresh_mux,
                                    f_reg,
                                    flavour: 2,
                                });
                            }
                        }
                        step = step.offset(1);
                    }
                    let offset = match &best {
                        Some(c) => ctx.offset_after(node, c.step),
                        None => Delay::ZERO,
                    };
                    (cycles, mux_op, offset)
                };

                instr.inc("mfsa.steps.feasible", feasible_steps);
                instr.inc("mfsa.steps.expanded", feasible_steps);
                instr.inc("mfsa.energy_evaluations", n_candidates);
                instr.inc("mfsa.bound.evals", n_candidates);
                instr.observe("mfsa.candidates", n_candidates);
                let Some(chosen) = best else {
                    return Err(MoveFrameError::NoPosition {
                        node,
                        class: dfg.node(node).kind().fu_class(),
                        max_fu: instances.len() as u32,
                    });
                };

                let instance_idx = match chosen.instance {
                    Some(i) => {
                        instances[i].kind_index = chosen.kind_index;
                        i
                    }
                    None => {
                        instances.push(Instance {
                            kind_index: chosen.kind_index,
                            ops: Vec::new(),
                            mux_ops: Vec::new(),
                            busy: BTreeMap::new(),
                            busy_bits: Vec::new(),
                        });
                        instances.len() - 1
                    }
                };
                let inst = &mut instances[instance_idx];
                inst.ops.push(node);
                inst.mux_ops.push(mux_op);
                for k in 0..cycles as u32 {
                    let s = wrap(chosen.step.get() + k);
                    inst.busy.entry(s).or_default().push(node);
                    let word = s as usize / 64;
                    if inst.busy_bits.len() <= word {
                        inst.busy_bits.resize(word + 1, 0);
                    }
                    inst.busy_bits[word] |= 1 << (s % 64);
                }
                sched.assign(
                    node,
                    Slot {
                        step: chosen.step,
                        unit: UnitId::Alu {
                            instance: instance_idx as u32,
                        },
                    },
                );
                offsets[node.index()] = offset;
                bounds.on_assign(dfg, node, chosen.step);
                let extensions = reg_extensions(dfg, &sched, spec, node, chosen.step, config);
                reg_est.commit(&extensions);
                instr.inc("mfsa.moves_committed", 1);
                instr.inc(
                    match chosen.flavour {
                        0 => "mfsa.reuse_moves",
                        1 => "mfsa.upgrade_moves",
                        _ => "mfsa.new_instances",
                    },
                    1,
                );
                if instr.enabled() {
                    instr.emit(TraceEvent::MoveCommitted {
                        op: node.index() as u32,
                        from: None,
                        to: (instance_idx as u32 + 1, chosen.step.get()),
                        v: chosen.total(),
                        system_v: None,
                    });
                }
                if config.records_trace() {
                    trace.push(IterationTrace {
                        node,
                        step: chosen.step,
                        instance: instance_idx as u32,
                        new_instance: chosen.flavour != 0,
                        f_time: chosen.f_time,
                        f_alu: chosen.f_alu,
                        f_mux: chosen.f_mux,
                        f_reg: chosen.f_reg,
                    });
                }
            }
            Ok(())
        })?;

        config.cancel().checkpoint()?;
        let mut allocation = AluAllocation::new();
        for inst in &instances {
            allocation.push(library.alus()[inst.kind_index].clone());
        }
        let (datapath, cost) = instr.span("mfsa.datapath", |_| {
            let datapath = Datapath::build(dfg, &sched, &allocation, spec)
                .expect("MFSA produces structurally sound bindings");
            let cost = CostReport::compute(&datapath, library);
            (datapath, cost)
        });

        Ok(MfsaOutcome {
            schedule: sched,
            allocation,
            datapath,
            cost,
            frames,
            trace,
        })
    }
}
