//! Move Frame Scheduling-Allocation (paper §4): simultaneous scheduling
//! and allocation of (possibly multifunction) ALUs, registers and
//! multiplexers, guided by the dynamic Liapunov function
//! `V = Σ (w_T·f_TIME + w_A·f_ALU + w_M·f_MUX + w_R·f_REG)`.

mod config;
mod cost;
#[doc(hidden)]
pub mod exhaustive;
mod scheduler;

pub use config::{DesignStyle, MfsaConfig, Weights};
#[doc(hidden)]
pub use exhaustive::ExhaustiveMfsa;
pub use scheduler::{
    schedule, schedule_traced, schedule_traced_with_frames, IterationTrace, MfsaOutcome,
};
