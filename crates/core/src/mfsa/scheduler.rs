//! The MFSA move loop (paper §4.2), searched as a pruned
//! branch-and-bound over the Liapunov lower bound.
//!
//! Each operation's feasible steps enter a priority queue ordered by
//! their `f_TIME` lower bound; an incumbent best candidate then cuts
//! (a) every remaining queued step at once (the bound is monotone in
//! the step), (b) a popped step after its exact register term is known,
//! and (c) individual instances after their exact ALU term is known but
//! *before* the expensive mux repacking. Every cut compares the
//! candidate's best-case tie-break tuple against the incumbent's full
//! tuple, so only candidates that provably lose are skipped — the
//! committed schedule is bit-identical to the unpruned search, which
//! survives as [`super::ExhaustiveMfsa`] and differentials this loop in
//! `tests/mfsa_prune_differential.rs`.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use hls_celllib::{Delay, TimingSpec};
use hls_dfg::{BankId, Dfg, FuClass, NodeId, NodeKind, SignalId, SignalSource};
use hls_rtl::muxopt::{pack_seed, MuxOp, PackSeed};
use hls_rtl::{AluAllocation, CostReport, Datapath};
use hls_schedule::{
    chained_frames, priority_order, CStep, FuIndex, Schedule, Slot, TimeFrames, UnitId,
};

use hls_telemetry::{Instrument, Metrics, NullSink, TraceEvent};

use crate::frame::{feasible_step_range, BoundsCache, FrameCtx};
use crate::mfsa::cost::{CostModel, EstSource, RegEstimate};
use crate::mfsa::{DesignStyle, MfsaConfig};
use crate::MoveFrameError;

/// One scheduling-allocation decision, for inspection and the ablation
/// harness (recorded when [`MfsaConfig::with_trace`] is set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationTrace {
    /// The placed operation.
    pub node: NodeId,
    /// The chosen control step.
    pub step: CStep,
    /// The chosen ALU instance.
    pub instance: u32,
    /// Whether the instance was created (or upgraded) for this op.
    pub new_instance: bool,
    /// The Liapunov terms of the chosen position.
    pub f_time: u64,
    /// Incremental ALU term.
    pub f_alu: u64,
    /// Incremental multiplexer term.
    pub f_mux: u64,
    /// Incremental register term.
    pub f_reg: u64,
}

impl IterationTrace {
    /// The full Liapunov contribution of this decision.
    pub fn f_total(&self) -> u64 {
        self.f_time + self.f_alu + self.f_mux + self.f_reg
    }
}

/// The result of an MFSA run: schedule, allocation, assembled data path
/// and its cost report.
#[derive(Debug, Clone)]
pub struct MfsaOutcome {
    /// The complete schedule (every unit an [`UnitId::Alu`]).
    pub schedule: Schedule,
    /// Instance → ALU-kind allocation.
    pub allocation: AluAllocation,
    /// The derived RTL structure.
    pub datapath: Datapath,
    /// Its Table-2 cost report.
    pub cost: CostReport,
    /// The ASAP/ALAP frames of the run.
    pub frames: TimeFrames,
    /// Per-iteration decisions (empty unless tracing was enabled).
    pub trace: Vec<IterationTrace>,
}

/// Internal state of one allocated ALU instance.
pub(crate) struct Instance {
    pub(crate) kind_index: usize,
    pub(crate) ops: Vec<NodeId>,
    pub(crate) mux_ops: Vec<MuxOp<EstSource>>,
    /// Wrapped step → occupants.
    pub(crate) busy: BTreeMap<u32, Vec<NodeId>>,
    /// One bit per wrapped step with any occupant — the fast reject for
    /// [`instance_free`]; the map above is only walked when a bit is set
    /// *and* the probing node has mutual exclusions to check.
    pub(crate) busy_bits: Vec<u64>,
}

/// One scored candidate position.
pub(crate) struct Candidate {
    pub(crate) step: CStep,
    /// Existing instance index, or `None` for a new instance.
    pub(crate) instance: Option<usize>,
    /// Kind the instance will have after the move (new kind for
    /// creations and upgrades; unchanged for plain reuse).
    pub(crate) kind_index: usize,
    pub(crate) f_time: u64,
    pub(crate) f_alu: u64,
    pub(crate) f_mux: u64,
    pub(crate) f_reg: u64,
    /// 0 = reuse, 1 = upgrade, 2 = new (tie-break order).
    pub(crate) flavour: u8,
}

impl Candidate {
    pub(crate) fn total(&self) -> u64 {
        self.f_time + self.f_alu + self.f_mux + self.f_reg
    }
}

/// The full tie-break key: candidates are compared lexicographically on
/// `(energy, step, flavour, instance, kind)` and the incumbent is only
/// replaced on a strict win.
type CandidateKey = (u64, CStep, u8, usize, usize);

fn candidate_key(c: &Candidate) -> CandidateKey {
    (
        c.total(),
        c.step,
        c.flavour,
        c.instance.unwrap_or(usize::MAX),
        c.kind_index,
    )
}

/// Whether a candidate set whose *best-case* key is `bound` can be cut:
/// each component of a real candidate's key is ≥ the corresponding
/// bound component, so the real key is lexicographically ≥ `bound`, and
/// `bound ≥ incumbent` proves every such candidate loses the strict-`<`
/// tie-break. With no incumbent nothing is cut.
fn cut(best: &Option<Candidate>, bound: CandidateKey) -> bool {
    best.as_ref().is_some_and(|b| bound >= candidate_key(b))
}

fn consider(best: &mut Option<Candidate>, c: Candidate) {
    let better = match best {
        None => true,
        Some(b) => candidate_key(&c) < candidate_key(b),
    };
    if better {
        *best = Some(c);
    }
}

/// Step-invariant ALU-level terms of a reuse/upgrade candidate for one
/// instance: `(kind after the move, f_ALU, flavour)`, or `None` when
/// the instance can never host the op (style conflict, or no superset
/// kind exists). This is the cheap half of the old combined memo — the
/// mux-repacking delta is memoized separately and computed only for
/// candidates whose ALU-level bound survives the incumbent cut.
type AluCost = Option<(usize, u64, u8)>;

/// Counters of one node's branch-and-bound search, flushed into the
/// instrument after the frame scan.
#[derive(Default)]
struct PruneStats {
    /// Dependency-feasible steps inside the frame (queue inserts).
    feasible_steps: u64,
    /// Steps whose candidates were actually examined.
    expanded_steps: u64,
    /// Steps cut by the bound — wholesale queue drains plus per-step
    /// register-bound cuts. `expanded + cut == feasible`, always.
    cut_steps: u64,
    /// Candidates whose cheap bound was computed at an expanded step.
    bound_evals: u64,
    /// Bound-evaluated candidates cut before full scoring.
    /// `bound_evals == cut_instances + full evaluations`, always.
    cut_instances: u64,
}

impl PruneStats {
    fn flush(&self, instr: &mut Instrument<'_>) {
        instr.inc("mfsa.steps.feasible", self.feasible_steps);
        instr.inc("mfsa.steps.expanded", self.expanded_steps);
        instr.inc("mfsa.prune.cut_steps", self.cut_steps);
        instr.inc("mfsa.bound.evals", self.bound_evals);
        instr.inc("mfsa.prune.cut_instances", self.cut_instances);
    }
}

/// Runs Move Frame Scheduling-Allocation on `dfg` under `spec` and
/// `config`.
///
/// Each operation, in priority order, is offered every feasible
/// `(control step, ALU)` position inside its move frame, where the ALU
/// may be an existing compatible instance (`f_ALU = 0`), an existing
/// instance *upgraded* to a multifunction kind covering its current
/// operations plus the new one (`f_ALU =` the area difference — this is
/// how function merging "can significantly decrease the overall ALU
/// cost", §2.3), or a fresh instance of any capable kind
/// (`f_ALU =` its area). The dynamic Liapunov function picks the
/// cheapest position; ties break towards earlier steps, reuse before
/// upgrade before creation, then lower instance numbers.
///
/// # Errors
///
/// * [`MoveFrameError::Schedule`] — infeasible time constraint;
/// * [`MoveFrameError::NoCapableAlu`] — the library cannot perform some
///   operation;
/// * [`MoveFrameError::NoPosition`] — no dependency-feasible step exists
///   (only possible for adversarial partial orders);
/// * [`MoveFrameError::Dfg`] — folded loop bodies must be scheduled
///   hierarchically (see [`crate::loops`]), not passed to MFSA.
pub fn schedule(
    dfg: &Dfg,
    spec: &TimingSpec,
    config: &MfsaConfig,
) -> Result<MfsaOutcome, MoveFrameError> {
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    schedule_traced(
        dfg,
        spec,
        config,
        &mut Instrument::new(&mut sink, &mut metrics),
    )
}

/// [`schedule`] with instrumentation: phase spans, counters and (when
/// the sink is enabled) per-candidate trace events flow into `instr`.
///
/// Event conventions (see `hls-telemetry`):
///
/// * `EnergyEvaluated` — one per *fully scored* candidate, `pos =
///   (instance, step)` 1-based (a new instance gets the next free
///   number) and `v` the dynamic `f_TIME + f_ALU + f_MUX + f_REG`.
///   Candidates cut by the branch-and-bound emit no event — the cut
///   proves they lose, so the committed moves (and every `v` actually
///   emitted) are identical to the exhaustive search's;
/// * `MoveCommitted` — the winning candidate; `from`/`system_v` are
///   `None` (MFSA moves operations out of a conceptual unplaced pool, so
///   there is no prior grid cell and the dynamic terms are incremental).
///
/// Counters split committed moves by flavour (`mfsa.reuse_moves`,
/// `mfsa.upgrade_moves`, `mfsa.new_instances` — the §2.3 function-merging
/// signal), and the `mfsa.candidates` histogram records how many
/// positions each operation was actually scored at.
///
/// The branch-and-bound search is accounted exactly by five counters:
/// `mfsa.steps.feasible == mfsa.steps.expanded + mfsa.prune.cut_steps`
/// (every dependency-feasible step is either expanded or cut) and
/// `mfsa.bound.evals == mfsa.energy_evaluations +
/// mfsa.prune.cut_instances` (every candidate whose bound was computed
/// at an expanded step is either fully scored or cut). Both invariants
/// are enforced per run by `tests/mfsa_prune_differential.rs`.
///
/// Instrumentation is write-only: the returned outcome is bit-identical
/// to [`schedule`]'s for any sink.
///
/// # Errors
///
/// As for [`schedule`].
pub fn schedule_traced(
    dfg: &Dfg,
    spec: &TimingSpec,
    config: &MfsaConfig,
    instr: &mut Instrument<'_>,
) -> Result<MfsaOutcome, MoveFrameError> {
    schedule_traced_with_frames(dfg, spec, config, None, instr)
}

/// [`schedule_traced`] with optionally precomputed time frames.
///
/// Batch harnesses (the `hls-explore` engine) compute ASAP/ALAP frames
/// once per `(dfg, spec, cs, clock)` and share them across every design
/// point at that time constraint; passing them here skips the
/// `mfsa.frames` phase. The frames **must** come from the same graph,
/// timing spec, clock setting and time constraint as this run — as a
/// guard, frames whose control-step count differs from
/// `config.control_steps()` are discarded and recomputed. The outcome is
/// bit-identical to [`schedule_traced`]'s either way.
///
/// # Errors
///
/// As for [`schedule`].
pub fn schedule_traced_with_frames(
    dfg: &Dfg,
    spec: &TimingSpec,
    config: &MfsaConfig,
    precomputed: Option<TimeFrames>,
    instr: &mut Instrument<'_>,
) -> Result<MfsaOutcome, MoveFrameError> {
    let cs = config.control_steps();
    let library = config.library();
    config.cancel().checkpoint()?;

    for (id, node) in dfg.nodes() {
        if matches!(node.kind(), NodeKind::LoopBody { .. }) {
            return Err(MoveFrameError::Dfg(hls_dfg::DfgError::EmptyLoop(
                match node.kind() {
                    NodeKind::LoopBody { loop_id, .. } => loop_id,
                    _ => unreachable!(),
                },
            )));
        }
        // Memory accesses run on bank ports declared in the graph, not
        // on library ALUs — no capability check applies.
        if node.kind().is_mem_access() {
            continue;
        }
        let op = base_op(dfg, id);
        if library.alus_supporting(op).next().is_none() {
            return Err(MoveFrameError::NoCapableAlu { node: id });
        }
    }

    let frames = instr.span("mfsa.frames", |instr| {
        match precomputed.filter(|f| f.control_steps() == cs) {
            Some(frames) => {
                instr.inc("mfsa.frames.reused", 1);
                Ok(frames)
            }
            None => match config.clock() {
                Some(clock) => Ok(chained_frames(dfg, spec, clock, cs)?.into_frames()),
                None => TimeFrames::compute(dfg, spec, cs),
            },
        }
    })?;
    let order = instr.span("mfsa.priority", |_| priority_order(dfg, spec, &frames));
    let model = CostModel::new(library, config.weights());

    let wrap = |step: u32| match config.latency() {
        Some(l) => (step - 1) % l + 1,
        None => step,
    };

    let mut sched = Schedule::new(dfg, cs);
    let mut offsets: Vec<Delay> = vec![Delay::ZERO; dfg.node_count()];
    let mut bounds = BoundsCache::new(dfg, spec, config.clock());
    let mut instances: Vec<Instance> = Vec::new();
    // Cached unweighted mux-pair cost of each instance's *committed*
    // packing — the `before` term of every f_MUX delta. Only a commit
    // changes an instance's operation set, so the entry survives whole
    // node scans and each candidate evaluation packs once, not twice.
    // `None` = stale (instance just grew).
    let mut mux_before: Vec<Option<u64>> = Vec::new();
    // The committed packing's refcount seed per instance, for the safe
    // one-op insertion rule: a candidate whose operand lines are
    // already carried by the instance is priced f_MUX = 0 without any
    // repack, and a committed move covered by the rule extends the
    // seed in place instead of invalidating it.
    let mut mux_seed: Vec<Option<PackSeed<EstSource>>> = Vec::new();
    // Bank-port occupancy: (bank, 1-based port, wrapped step) → nodes.
    let mut mem_busy: BTreeMap<(BankId, u32, u32), Vec<NodeId>> = BTreeMap::new();
    let mut reg_est = RegEstimate::new();
    let mut trace = Vec::new();

    instr.span("mfsa.move_loop", |instr| {
        for node in order {
            config.cancel().checkpoint()?;

            // Memory accesses: the candidate positions are (step, bank
            // port) pairs. Ports are free hardware once the bank exists,
            // so only the time and register terms of the Liapunov
            // function apply; the declared port count is a hard limit,
            // which makes every committed schedule port-safe by
            // construction.
            if dfg.node(node).kind().is_mem_access() {
                let FuClass::Mem(bank) = dfg.node(node).kind().fu_class() else {
                    unreachable!("mem accesses have a Mem class");
                };
                let ports = dfg.bank_ports(bank);
                // (total, step, port, f_time, f_reg), min by (total,
                // step, port).
                let mut best: Option<(u64, CStep, u32, u64, u64)> = None;
                let mut n_candidates = 0u64;
                let mut prune = PruneStats::default();
                let (cycles, offset) = {
                    let ctx = FrameCtx {
                        dfg,
                        spec,
                        frames: &frames,
                        schedule: &sched,
                        clock: config.clock(),
                        offsets: &offsets,
                        bounds: &bounds,
                    };
                    let (earliest, latest) = feasible_step_range(&ctx, node);
                    let cycles = ctx.effective_cycles(node);
                    // Feasible steps, ordered by their f_TIME lower
                    // bound (ties towards earlier steps). f_TIME is
                    // non-decreasing in the step, so the queue pops
                    // steps in ascending order — the same order the
                    // exhaustive scan visits them.
                    let mut queue: BinaryHeap<Reverse<(u64, CStep)>> = BinaryHeap::new();
                    let mut step = earliest;
                    while step <= latest {
                        if ctx.dep_feasible(node, step) && step.finish(cycles).get() <= cs {
                            queue.push(Reverse((model.lower_bound(step.get(), 0), step)));
                        }
                        step = step.offset(1);
                    }
                    prune.feasible_steps = queue.len() as u64;
                    while let Some(&Reverse((f_time, step))) = queue.peek() {
                        // Wholesale cut: every remaining step's best
                        // case — port 0 is below any real port — is no
                        // better than this one's.
                        if let Some((bt, bs, bp, ..)) = best {
                            if (f_time, step, 0u32) >= (bt, bs, bp) {
                                prune.cut_steps += queue.len() as u64;
                                break;
                            }
                        }
                        queue.pop();
                        let extensions = reg_extensions(dfg, &sched, spec, node, step, config);
                        let f_reg = model.f_reg(
                            reg_est
                                .count_with(&extensions)
                                .saturating_sub(reg_est.count()),
                        );
                        // Step-level cut with the exact register term:
                        // a port candidate's energy is exactly
                        // f_TIME + f_REG, so this cut only skips
                        // candidates that would lose the tie-break.
                        if let Some((bt, bs, bp, ..)) = best {
                            if (f_time + f_reg, step, 0u32) >= (bt, bs, bp) {
                                prune.cut_steps += 1;
                                continue;
                            }
                        }
                        prune.expanded_steps += 1;
                        for port in 1..=ports {
                            let free = (0..cycles as u32).all(|k| {
                                mem_busy
                                    .get(&(bank, port, wrap(step.get() + k)))
                                    .is_none_or(|occ| {
                                        occ.iter().all(|&o| dfg.mutually_exclusive(node, o))
                                    })
                            });
                            if !free {
                                continue;
                            }
                            n_candidates += 1;
                            prune.bound_evals += 1;
                            let total = f_time + f_reg;
                            if instr.enabled() {
                                instr.emit(TraceEvent::EnergyEvaluated {
                                    op: node.index() as u32,
                                    pos: (port, step.get()),
                                    v: total,
                                });
                            }
                            let better = match best {
                                None => true,
                                Some((bt, bs, bp, ..)) => (total, step, port) < (bt, bs, bp),
                            };
                            if better {
                                best = Some((total, step, port, f_time, f_reg));
                            }
                        }
                    }
                    let offset = match best {
                        Some((_, step, ..)) => ctx.offset_after(node, step),
                        None => Delay::ZERO,
                    };
                    (cycles, offset)
                };
                prune.flush(instr);
                instr.inc("mfsa.energy_evaluations", n_candidates);
                instr.observe("mfsa.candidates", n_candidates);
                let Some((total, step, port, f_time, f_reg)) = best else {
                    return Err(MoveFrameError::NoPosition {
                        node,
                        class: FuClass::Mem(bank),
                        max_fu: ports,
                    });
                };
                for k in 0..cycles as u32 {
                    mem_busy
                        .entry((bank, port, wrap(step.get() + k)))
                        .or_default()
                        .push(node);
                }
                sched.assign(
                    node,
                    Slot {
                        step,
                        unit: UnitId::Fu {
                            class: FuClass::Mem(bank),
                            index: FuIndex::new(port),
                        },
                    },
                );
                offsets[node.index()] = offset;
                bounds.on_assign(dfg, node, step);
                let extensions = reg_extensions(dfg, &sched, spec, node, step, config);
                reg_est.commit(&extensions);
                instr.inc("mfsa.moves_committed", 1);
                instr.inc("mfsa.mem_moves", 1);
                if instr.enabled() {
                    instr.emit(TraceEvent::MoveCommitted {
                        op: node.index() as u32,
                        from: None,
                        to: (port, step.get()),
                        v: total,
                        system_v: None,
                    });
                }
                if config.records_trace() {
                    trace.push(IterationTrace {
                        node,
                        step,
                        instance: port,
                        new_instance: false,
                        f_time,
                        f_alu: 0,
                        f_mux: 0,
                        f_reg,
                    });
                }
                continue;
            }

            let op = base_op(dfg, node);
            let commutative = match dfg.node(node).kind() {
                NodeKind::Op(k) => k.is_commutative(),
                NodeKind::Stage { base, index, .. } => index == 0 && base.is_commutative(),
                _ => unreachable!("loops rejected above, mem accesses handled above"),
            };

            let mut best: Option<Candidate> = None;
            let mut n_candidates = 0u64;
            let mut memo_hits = 0u64;
            let mut memo_fills = 0u64;
            let mut memo_insert_hits = 0u64;
            let mut memo_insert_fallbacks = 0u64;
            let mut prune = PruneStats::default();
            let next_instance = instances.len() as u32 + 1;

            let (cycles, mux_op, offset) = {
                let ctx = FrameCtx {
                    dfg,
                    spec,
                    frames: &frames,
                    schedule: &sched,
                    clock: config.clock(),
                    offsets: &offsets,
                    bounds: &bounds,
                };
                let (earliest, latest) = feasible_step_range(&ctx, node);
                let cycles = ctx.effective_cycles(node);
                // Operand sources for the f_MUX estimate (independent of the
                // candidate position in this model).
                let est = |sig: SignalId| -> EstSource {
                    match dfg.signal(sig).source() {
                        SignalSource::PrimaryInput | SignalSource::Constant(_) => {
                            EstSource::External(sig)
                        }
                        SignalSource::Node(p) => {
                            if config.shares_interconnect() {
                                match sched.slot(p).map(|s| s.unit) {
                                    Some(UnitId::Alu { instance }) => EstSource::FromAlu(instance),
                                    _ => EstSource::Signal(sig),
                                }
                            } else {
                                EstSource::Signal(sig)
                            }
                        }
                    }
                };
                let inputs = dfg.node(node).inputs();
                let mux_op = MuxOp {
                    left: est(inputs[0]),
                    right: inputs.get(1).map(|&s| est(s)),
                    commutative,
                };

                // ALU-level candidate terms (style check + kind
                // search), memoized per instance: they depend only on
                // the instance state, which is frozen while this node
                // scans its frame. Filled lazily on the first step
                // where the instance is actually free. `Some(None)` =
                // the instance can never host this op.
                let mut alu_costs: Vec<Option<AluCost>> = vec![None; instances.len()];
                // Mux-repacking deltas, also step-invariant but far
                // more expensive — memoized separately and computed
                // only for candidates whose ALU-level bound survives
                // the incumbent cut.
                let mut mux_costs: Vec<Option<u64>> = vec![None; instances.len()];
                let fresh_mux = model.f_mux(&[], mux_op);
                let new_kinds: Vec<(usize, u64)> = library
                    .alus()
                    .iter()
                    .enumerate()
                    .filter(|(_, k)| k.supports(op))
                    .map(|(kind_index, k)| (kind_index, model.f_alu(k.area())))
                    .collect();

                // Feasible steps, ordered by their f_TIME lower bound
                // (ties towards earlier steps). f_TIME is
                // non-decreasing in the step, so the queue pops steps
                // in ascending order and candidates are examined in
                // exactly the exhaustive loop's order — equal-key ties
                // resolve identically under the strict-`<` tie-break.
                let mut queue: BinaryHeap<Reverse<(u64, CStep)>> = BinaryHeap::new();
                let mut step = earliest;
                while step <= latest {
                    if ctx.dep_feasible(node, step) && step.finish(cycles).get() <= cs {
                        queue.push(Reverse((model.lower_bound(step.get(), 0), step)));
                    }
                    step = step.offset(1);
                }
                prune.feasible_steps = queue.len() as u64;

                while let Some(&Reverse((f_time, step))) = queue.peek() {
                    // (a) Wholesale cut: every remaining queued step
                    // bounds ≥ this one's, so once the best case at
                    // the cheapest remaining step cannot beat the
                    // incumbent, nothing left in the queue can.
                    if cut(&best, (f_time, step, 0, 0, 0)) {
                        prune.cut_steps += queue.len() as u64;
                        break;
                    }
                    queue.pop();
                    let extensions = reg_extensions(dfg, &sched, spec, node, step, config);
                    let f_reg = model.f_reg(
                        reg_est
                            .count_with(&extensions)
                            .saturating_sub(reg_est.count()),
                    );
                    // (b) Step-level cut with the exact register term
                    // folded into the bound.
                    if cut(&best, (model.lower_bound(step.get(), f_reg), step, 0, 0, 0)) {
                        prune.cut_steps += 1;
                        continue;
                    }
                    prune.expanded_steps += 1;

                    // Existing instances: reuse or upgrade.
                    for (i, inst) in instances.iter().enumerate() {
                        if !instance_free(inst, dfg, node, step, cycles, &wrap) {
                            continue;
                        }
                        let alu = alu_costs[i].get_or_insert_with(|| {
                            if config.style() == DesignStyle::NoSelfLoop {
                                let related = inst.ops.iter().any(|&o| {
                                    dfg.preds(node).contains(&o) || dfg.succs(node).contains(&o)
                                });
                                if related {
                                    return None;
                                }
                            }
                            let cur_kind = &library.alus()[inst.kind_index];
                            if cur_kind.supports(op) {
                                Some((inst.kind_index, 0, 0))
                            } else {
                                // Cheapest superset kind covering old
                                // ops + op.
                                library
                                    .alus()
                                    .iter()
                                    .enumerate()
                                    .filter(|(_, k)| {
                                        k.supports(op) && cur_kind.ops().all(|o| k.supports(o))
                                    })
                                    .min_by_key(|(idx, k)| (k.area(), *idx))
                                    .map(|(kind_index, kind)| {
                                        (
                                            kind_index,
                                            model
                                                .f_alu(kind.area().saturating_sub(cur_kind.area())),
                                            1,
                                        )
                                    })
                            }
                        });
                        let Some((kind_index, f_alu, flavour)) = *alu else {
                            continue;
                        };
                        prune.bound_evals += 1;
                        // (c) Instance-level cut: everything but the
                        // mux term is exact here, so the bound is the
                        // candidate's own key minus f_MUX ≥ 0.
                        if cut(
                            &best,
                            (f_time + f_reg + f_alu, step, flavour, i, kind_index),
                        ) {
                            prune.cut_instances += 1;
                            continue;
                        }
                        if mux_costs[i].is_some() {
                            memo_hits += 1;
                        } else {
                            memo_fills += 1;
                        }
                        let f_mux = *mux_costs[i].get_or_insert_with(|| {
                            // Safe one-op insertion: a candidate whose
                            // operand lines the committed packing
                            // already carries is provably cost-neutral
                            // — priced zero with no repack.
                            let seed = mux_seed[i].get_or_insert_with(|| pack_seed(&inst.mux_ops));
                            if seed.neutral_insertion(&mux_op).is_some() {
                                memo_insert_hits += 1;
                                return 0;
                            }
                            memo_insert_fallbacks += 1;
                            let before = *mux_before[i]
                                .get_or_insert_with(|| model.mux_pair_cost(&inst.mux_ops));
                            model.f_mux_from(before, &inst.mux_ops, mux_op)
                        });
                        let c = Candidate {
                            step,
                            instance: Some(i),
                            kind_index,
                            f_time,
                            f_alu,
                            f_mux,
                            f_reg,
                            flavour,
                        };
                        n_candidates += 1;
                        if instr.enabled() {
                            instr.emit(TraceEvent::EnergyEvaluated {
                                op: node.index() as u32,
                                pos: (i as u32 + 1, c.step.get()),
                                v: c.total(),
                            });
                        }
                        consider(&mut best, c);
                    }

                    // New instances of every capable kind. The fresh
                    // mux cost is precomputed, so the bound is the
                    // exact key — the cut skips only sure losers.
                    for &(kind_index, f_alu) in &new_kinds {
                        prune.bound_evals += 1;
                        let total = f_time + f_reg + f_alu + fresh_mux;
                        if cut(&best, (total, step, 2, usize::MAX, kind_index)) {
                            prune.cut_instances += 1;
                            continue;
                        }
                        let c = Candidate {
                            step,
                            instance: None,
                            kind_index,
                            f_time,
                            f_alu,
                            f_mux: fresh_mux,
                            f_reg,
                            flavour: 2,
                        };
                        n_candidates += 1;
                        if instr.enabled() {
                            instr.emit(TraceEvent::EnergyEvaluated {
                                op: node.index() as u32,
                                pos: (next_instance, c.step.get()),
                                v: c.total(),
                            });
                        }
                        consider(&mut best, c);
                    }
                }
                let offset = match &best {
                    Some(c) => ctx.offset_after(node, c.step),
                    None => Delay::ZERO,
                };
                (cycles, mux_op, offset)
            };

            prune.flush(instr);
            instr.inc("mfsa.energy_evaluations", n_candidates);
            instr.observe("mfsa.candidates", n_candidates);
            instr.inc("mfsa.reuse_memo.hits", memo_hits);
            instr.inc("mfsa.reuse_memo.fills", memo_fills);
            instr.inc("mfsa.reuse_memo.insert_hits", memo_insert_hits);
            instr.inc("mfsa.reuse_memo.insert_fallbacks", memo_insert_fallbacks);
            let Some(chosen) = best else {
                return Err(MoveFrameError::NoPosition {
                    node,
                    class: dfg.node(node).kind().fu_class(),
                    max_fu: instances.len() as u32,
                });
            };

            // Commit the move.
            let instance_idx = match chosen.instance {
                Some(i) => {
                    instances[i].kind_index = chosen.kind_index;
                    // A committed move covered by the insertion rule
                    // extends the seed in place — its pair cost is
                    // unchanged, so `mux_before` stays valid too.
                    let absorbed = mux_seed[i]
                        .as_mut()
                        .is_some_and(|seed| seed.try_insert(&mux_op));
                    if !absorbed {
                        mux_seed[i] = None;
                        mux_before[i] = None;
                    }
                    i
                }
                None => {
                    instances.push(Instance {
                        kind_index: chosen.kind_index,
                        ops: Vec::new(),
                        mux_ops: Vec::new(),
                        busy: BTreeMap::new(),
                        busy_bits: Vec::new(),
                    });
                    mux_before.push(None);
                    mux_seed.push(None);
                    instances.len() - 1
                }
            };
            let inst = &mut instances[instance_idx];
            inst.ops.push(node);
            inst.mux_ops.push(mux_op);
            for k in 0..cycles as u32 {
                let s = wrap(chosen.step.get() + k);
                inst.busy.entry(s).or_default().push(node);
                let word = s as usize / 64;
                if inst.busy_bits.len() <= word {
                    inst.busy_bits.resize(word + 1, 0);
                }
                inst.busy_bits[word] |= 1 << (s % 64);
            }
            sched.assign(
                node,
                Slot {
                    step: chosen.step,
                    unit: UnitId::Alu {
                        instance: instance_idx as u32,
                    },
                },
            );
            offsets[node.index()] = offset;
            bounds.on_assign(dfg, node, chosen.step);
            let extensions = reg_extensions(dfg, &sched, spec, node, chosen.step, config);
            reg_est.commit(&extensions);
            instr.inc("mfsa.moves_committed", 1);
            instr.inc(
                match chosen.flavour {
                    0 => "mfsa.reuse_moves",
                    1 => "mfsa.upgrade_moves",
                    _ => "mfsa.new_instances",
                },
                1,
            );
            if instr.enabled() {
                instr.emit(TraceEvent::MoveCommitted {
                    op: node.index() as u32,
                    from: None,
                    to: (instance_idx as u32 + 1, chosen.step.get()),
                    v: chosen.total(),
                    system_v: None,
                });
            }
            if config.records_trace() {
                trace.push(IterationTrace {
                    node,
                    step: chosen.step,
                    instance: instance_idx as u32,
                    new_instance: chosen.flavour != 0,
                    f_time: chosen.f_time,
                    f_alu: chosen.f_alu,
                    f_mux: chosen.f_mux,
                    f_reg: chosen.f_reg,
                });
            }
        }
        Ok(())
    })?;

    // Assemble the data path.
    config.cancel().checkpoint()?;
    let mut allocation = AluAllocation::new();
    for inst in &instances {
        allocation.push(library.alus()[inst.kind_index].clone());
    }
    let (datapath, cost) = instr.span("mfsa.datapath", |_| {
        let datapath = Datapath::build(dfg, &sched, &allocation, spec)
            .expect("MFSA produces structurally sound bindings");
        let cost = CostReport::compute(&datapath, library);
        (datapath, cost)
    });

    Ok(MfsaOutcome {
        schedule: sched,
        allocation,
        datapath,
        cost,
        frames,
        trace,
    })
}

/// The operator an ALU must support to execute `node`.
pub(crate) fn base_op(dfg: &Dfg, node: NodeId) -> hls_celllib::OpKind {
    match dfg.node(node).kind() {
        NodeKind::Op(k) => k,
        NodeKind::Stage { base, .. } => base,
        _ => unreachable!("loops and mem accesses never reach base_op"),
    }
}

/// Whether `inst` can host `node` starting at `step` for `cycles` steps.
pub(crate) fn instance_free(
    inst: &Instance,
    dfg: &Dfg,
    node: NodeId,
    step: CStep,
    cycles: u8,
    wrap: &impl Fn(u32) -> u32,
) -> bool {
    let occupied = (0..cycles as u32).any(|k| {
        let s = wrap(step.get() + k);
        inst.busy_bits
            .get(s as usize / 64)
            .is_some_and(|w| w >> (s % 64) & 1 == 1)
    });
    if !occupied {
        return true;
    }
    // Occupied steps are only survivable through mutual exclusion.
    if !dfg.has_exclusions(node) {
        return false;
    }
    for k in 0..cycles as u32 {
        if let Some(occ) = inst.busy.get(&wrap(step.get() + k)) {
            if occ.iter().any(|&o| !dfg.mutually_exclusive(node, o)) {
                return false;
            }
        }
    }
    true
}

/// The register-span extensions placing `node` at `step` would cause
/// (inputs only, per §4.1).
pub(crate) fn reg_extensions(
    dfg: &Dfg,
    sched: &Schedule,
    spec: &TimingSpec,
    node: NodeId,
    step: CStep,
    config: &MfsaConfig,
) -> Vec<(SignalId, u32, u32)> {
    let _ = config;
    let mut out = Vec::new();
    for &sig in dfg.node(node).inputs() {
        match dfg.signal(sig).source() {
            SignalSource::Constant(_) => {}
            SignalSource::PrimaryInput => out.push((sig, 1, step.get())),
            SignalSource::Node(p) => {
                if let Some(p_finish) = sched.finish(p, dfg, spec) {
                    if step > p_finish {
                        out.push((sig, p_finish.get() + 1, step.get()));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mfsa::Weights;
    use hls_celllib::{Library, OpKind};
    use hls_dfg::DfgBuilder;
    use hls_rtl::verify_datapath;
    use hls_schedule::{verify, VerifyOptions};

    fn assert_sound(dfg: &Dfg, spec: &TimingSpec, out: &MfsaOutcome, opts: VerifyOptions) {
        let v = verify(dfg, &out.schedule, spec, opts);
        assert!(v.is_empty(), "schedule violations: {v:?}");
        let rv = verify_datapath(dfg, &out.schedule, &out.datapath, spec);
        assert!(rv.is_empty(), "datapath violations: {rv:?}");
    }

    fn add_sub_chain() -> Dfg {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.op("a", OpKind::Add, &[x, y]).unwrap();
        b.op("s", OpKind::Sub, &[a, y]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn merges_add_and_sub_into_one_multifunction_alu() {
        let g = add_sub_chain();
        let spec = TimingSpec::uniform_single_cycle();
        let lib = Library::ncr_like();
        let out = schedule(&g, &spec, &MfsaConfig::new(2, lib.clone())).unwrap();
        assert_sound(&g, &spec, &out, VerifyOptions::default());
        // Upgrading (+) to (+-) costs ~350 vs a fresh (-) at 2330: the
        // Liapunov function must merge.
        assert_eq!(out.allocation.len(), 1);
        assert_eq!(out.datapath.alu_signature(), "(+-)");
        let merged = lib.alu_by_name("add_sub").unwrap().area();
        assert_eq!(out.cost.alu_area, merged);
    }

    #[test]
    fn parallel_ops_get_parallel_alus() {
        // Two independent adds forced into one step need two ALUs.
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("a1", OpKind::Add, &[x, x]).unwrap();
        b.op("a2", OpKind::Add, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let out = schedule(&g, &spec, &MfsaConfig::new(1, Library::ncr_like())).unwrap();
        assert_sound(&g, &spec, &out, VerifyOptions::default());
        assert_eq!(out.allocation.len(), 2);
    }

    #[test]
    fn sequential_same_type_ops_reuse_one_alu() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let a = b.op("a1", OpKind::Add, &[x, x]).unwrap();
        let c = b.op("a2", OpKind::Add, &[a, x]).unwrap();
        b.op("a3", OpKind::Add, &[c, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let out = schedule(&g, &spec, &MfsaConfig::new(3, Library::ncr_like())).unwrap();
        assert_sound(&g, &spec, &out, VerifyOptions::default());
        assert_eq!(out.allocation.len(), 1);
        assert_eq!(out.datapath.alu_signature(), "(+)");
    }

    #[test]
    fn style2_forbids_dependent_ops_on_one_alu() {
        let g = add_sub_chain();
        let spec = TimingSpec::uniform_single_cycle();
        let config = MfsaConfig::new(2, Library::ncr_like()).with_style(DesignStyle::NoSelfLoop);
        let out = schedule(&g, &spec, &config).unwrap();
        assert_sound(&g, &spec, &out, VerifyOptions::default());
        // a feeds s, so they may not share an ALU: two instances.
        assert_eq!(out.allocation.len(), 2);
    }

    #[test]
    fn style2_costs_at_least_style1() {
        let g = add_sub_chain();
        let spec = TimingSpec::uniform_single_cycle();
        let lib = Library::ncr_like();
        let s1 = schedule(&g, &spec, &MfsaConfig::new(2, lib.clone())).unwrap();
        let s2 = schedule(
            &g,
            &spec,
            &MfsaConfig::new(2, lib).with_style(DesignStyle::NoSelfLoop),
        )
        .unwrap();
        assert!(s2.cost.total() >= s1.cost.total());
    }

    #[test]
    fn earlier_steps_win_when_free() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("only", OpKind::Add, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let out = schedule(&g, &spec, &MfsaConfig::new(5, Library::ncr_like())).unwrap();
        let only = g.node_by_name("only").unwrap();
        assert_eq!(out.schedule.start(only), Some(CStep::new(1)));
    }

    #[test]
    fn zero_time_weight_trades_steps_for_area() {
        // Two independent adds, cs = 2. With w_TIME = 1 both land in
        // step 1 on two ALUs; with w_TIME = 0 the second add reuses the
        // single ALU in step 2.
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("a1", OpKind::Add, &[x, x]).unwrap();
        b.op("a2", OpKind::Add, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let lib = Library::ncr_like();
        let fast = schedule(&g, &spec, &MfsaConfig::new(2, lib.clone())).unwrap();
        assert_eq!(fast.allocation.len(), 2);
        let cheap = schedule(
            &g,
            &spec,
            &MfsaConfig::new(2, lib).with_weights(Weights {
                time: 0,
                alu: 1,
                mux: 1,
                reg: 1,
            }),
        )
        .unwrap();
        assert_eq!(cheap.allocation.len(), 1);
        assert!(cheap.cost.alu_area < fast.cost.alu_area);
    }

    #[test]
    fn trace_records_monotone_liapunov_terms() {
        let g = add_sub_chain();
        let spec = TimingSpec::uniform_single_cycle();
        let config = MfsaConfig::new(2, Library::ncr_like()).with_trace();
        let out = schedule(&g, &spec, &config).unwrap();
        assert_eq!(out.trace.len(), 2);
        for t in &out.trace {
            assert!(t.f_total() >= t.f_time);
        }
    }

    #[test]
    fn restricted_library_errors_on_unsupported_ops() {
        let g = add_sub_chain();
        let spec = TimingSpec::uniform_single_cycle();
        let lib = Library::ncr_like().restricted(|a| !a.supports(OpKind::Sub));
        let config = MfsaConfig::new(2, lib);
        assert!(matches!(
            schedule(&g, &spec, &config),
            Err(MoveFrameError::NoCapableAlu { .. })
        ));
    }

    #[test]
    fn multicycle_ops_hold_their_alu() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("m1", OpKind::Mul, &[x, x]).unwrap();
        b.op("m2", OpKind::Mul, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        // cs = 2: both multiplies overlap, so two multiplier ALUs.
        let out = schedule(&g, &spec, &MfsaConfig::new(2, Library::ncr_like())).unwrap();
        assert_sound(&g, &spec, &out, VerifyOptions::default());
        assert_eq!(out.allocation.len(), 2);
        // cs = 4: sequential reuse of one multiplier is cheaper.
        let out = schedule(&g, &spec, &MfsaConfig::new(4, Library::ncr_like())).unwrap();
        assert_sound(&g, &spec, &out, VerifyOptions::default());
        assert_eq!(out.allocation.len(), 2, "time term still dominates");
        // With w_TIME = 0 the cost term forces reuse.
        let cheap = schedule(
            &g,
            &spec,
            &MfsaConfig::new(4, Library::ncr_like()).with_weights(Weights {
                time: 0,
                alu: 1,
                mux: 1,
                reg: 1,
            }),
        )
        .unwrap();
        assert_sound(&g, &spec, &cheap, VerifyOptions::default());
        assert_eq!(cheap.allocation.len(), 1);
    }

    #[test]
    fn mutually_exclusive_ops_share_an_alu_in_one_step() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let branch = b.begin_branch();
        b.enter_arm(branch, 0);
        b.op("t", OpKind::Add, &[x, x]).unwrap();
        b.exit_arm();
        b.enter_arm(branch, 1);
        b.op("e", OpKind::Add, &[x, x]).unwrap();
        b.exit_arm();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let out = schedule(&g, &spec, &MfsaConfig::new(1, Library::ncr_like())).unwrap();
        assert_sound(&g, &spec, &out, VerifyOptions::default());
        assert_eq!(out.allocation.len(), 1);
    }

    #[test]
    fn functional_pipelining_shares_modulo_latency() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        for i in 0..4 {
            b.op(&format!("m{i}"), OpKind::Mul, &[x, x]).unwrap();
        }
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let config = MfsaConfig::new(4, Library::ncr_like()).with_latency(2);
        let out = schedule(&g, &spec, &config).unwrap();
        let opts = VerifyOptions {
            latency: Some(2),
            ..Default::default()
        };
        assert_sound(&g, &spec, &out, opts);
        // Steps {1,3} and {2,4} collide: at least 2 multipliers.
        assert!(out.allocation.len() >= 2);
    }
}
