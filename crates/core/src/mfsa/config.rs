//! MFSA configuration: design styles, Liapunov weights, features.

use hls_celllib::{ClockPeriod, Library};

use crate::CancelToken;

/// The RTL design styles of the paper's §4.2 / Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DesignStyle {
    /// Style 1: "conventional data path design style (unrestricted RTL
    /// structure)".
    #[default]
    Unrestricted,
    /// Style 2: "RTL structure without a self loop around ALU's … no
    /// operation is allowed to be with its successors or predecessors
    /// within the same ALU" — the SYNTEST self-testability restriction.
    NoSelfLoop,
}

impl std::fmt::Display for DesignStyle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignStyle::Unrestricted => f.write_str("style 1 (unrestricted)"),
            DesignStyle::NoSelfLoop => f.write_str("style 2 (no ALU self-loop)"),
        }
    }
}

/// The weights of the weighted Liapunov function (paper §4.1):
/// `f = w_TIME·f_TIME + w_ALU·f_ALU + w_MUX·f_MUX + w_REG·f_REG`.
/// "w_TIME = w_ALU = w_MUX = w_REG = 1 gives an overall optimizer
/// without emphasising any particular factor."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Weights {
    /// Weight of the control-step term.
    pub time: u32,
    /// Weight of the incremental ALU-area term.
    pub alu: u32,
    /// Weight of the incremental multiplexer-area term.
    pub mux: u32,
    /// Weight of the incremental register-area term.
    pub reg: u32,
}

impl Default for Weights {
    fn default() -> Self {
        Weights {
            time: 1,
            alu: 1,
            mux: 1,
            reg: 1,
        }
    }
}

/// Configuration of one MFSA run.
///
/// ```
/// use hls_celllib::Library;
/// use moveframe::mfsa::{DesignStyle, MfsaConfig};
///
/// let config = MfsaConfig::new(4, Library::ncr_like())
///     .with_style(DesignStyle::NoSelfLoop);
/// assert_eq!(config.control_steps(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct MfsaConfig {
    cs: u32,
    library: Library,
    style: DesignStyle,
    weights: Weights,
    clock: Option<ClockPeriod>,
    latency: Option<u32>,
    share_interconnect: bool,
    record_trace: bool,
    cancel: CancelToken,
}

impl MfsaConfig {
    /// Time-constrained mixed scheduling-allocation in `cs` steps using
    /// `library`'s ALU kinds and cost curves.
    ///
    /// # Panics
    ///
    /// Panics if `cs` is zero.
    pub fn new(cs: u32, library: Library) -> Self {
        assert!(cs >= 1, "at least one control step is required");
        MfsaConfig {
            cs,
            library,
            style: DesignStyle::Unrestricted,
            weights: Weights::default(),
            clock: None,
            latency: None,
            share_interconnect: true,
            record_trace: false,
            cancel: CancelToken::never(),
        }
    }

    /// Selects the RTL design style.
    pub fn with_style(mut self, style: DesignStyle) -> Self {
        self.style = style;
        self
    }

    /// Overrides the Liapunov weights.
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// Enables chaining with the given clock period.
    pub fn with_chaining(mut self, clock: ClockPeriod) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Enables functional pipelining with the given initiation interval.
    pub fn with_latency(mut self, latency: u32) -> Self {
        assert!(latency >= 1, "latency must be positive");
        self.latency = Some(latency);
        self
    }

    /// Disables interconnect line sharing in the `f_MUX` estimate
    /// (paper §5.7 ablation: every signal then counts as its own mux
    /// input line).
    pub fn without_interconnect_sharing(mut self) -> Self {
        self.share_interconnect = false;
        self
    }

    /// Records a per-iteration trace of the chosen Liapunov terms.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Attaches a cooperative cancellation token; the scheduler polls
    /// it at checkpoints (frame computation, every placement, data-path
    /// assembly) and aborts with [`crate::MoveFrameError::Cancelled`]
    /// once it fires. Cancellation never changes a completed result.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The attached cancellation token ([`CancelToken::never`] by
    /// default).
    pub fn cancel(&self) -> &CancelToken {
        &self.cancel
    }

    /// The time constraint.
    pub fn control_steps(&self) -> u32 {
        self.cs
    }

    /// The cell library.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// The design style.
    pub fn style(&self) -> DesignStyle {
        self.style
    }

    /// The Liapunov weights.
    pub fn weights(&self) -> Weights {
        self.weights
    }

    /// The chaining clock, if any.
    pub fn clock(&self) -> Option<ClockPeriod> {
        self.clock
    }

    /// The functional-pipelining latency, if any.
    pub fn latency(&self) -> Option<u32> {
        self.latency
    }

    /// Whether interconnect sharing informs `f_MUX`.
    pub fn shares_interconnect(&self) -> bool {
        self.share_interconnect
    }

    /// Whether iteration tracing is on.
    pub fn records_trace(&self) -> bool {
        self.record_trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = MfsaConfig::new(4, Library::ncr_like());
        assert_eq!(c.style(), DesignStyle::Unrestricted);
        assert_eq!(
            c.weights(),
            Weights {
                time: 1,
                alu: 1,
                mux: 1,
                reg: 1
            }
        );
        assert!(c.shares_interconnect());
        assert!(!c.records_trace());
    }

    #[test]
    fn builder_options() {
        let c = MfsaConfig::new(4, Library::ncr_like())
            .with_style(DesignStyle::NoSelfLoop)
            .with_weights(Weights {
                time: 2,
                alu: 1,
                mux: 0,
                reg: 0,
            })
            .with_latency(2)
            .without_interconnect_sharing()
            .with_trace();
        assert_eq!(c.style(), DesignStyle::NoSelfLoop);
        assert_eq!(c.weights().time, 2);
        assert_eq!(c.latency(), Some(2));
        assert!(!c.shares_interconnect());
        assert!(c.records_trace());
        assert!(c.style().to_string().contains("style 2"));
    }
}
