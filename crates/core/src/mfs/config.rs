//! MFS configuration.

use std::collections::BTreeMap;

use hls_celllib::ClockPeriod;
use hls_dfg::FuClass;
use hls_schedule::PriorityRule;

use crate::{CancelToken, MfsObjective};

/// Configuration of one MFS run.
///
/// The two primary modes mirror the paper's two Liapunov functions:
///
/// * [`MfsConfig::time_constrained`] — fixed control-step budget,
///   minimise concurrency (the Table-1 experiments);
/// * [`MfsConfig::resource_constrained`] — fixed per-type unit budgets,
///   minimise control steps within an upper bound.
///
/// Optional features: per-type unit caps (always hard limits), a
/// functional-pipelining latency (modulo-`L` resource sharing), a
/// chaining clock period, and frame-snapshot recording for the Figure-2
/// renderer.
///
/// ```
/// use hls_celllib::OpKind;
/// use hls_dfg::FuClass;
/// use moveframe::mfs::MfsConfig;
///
/// let config = MfsConfig::time_constrained(4)
///     .with_fu_limit(FuClass::Op(OpKind::Mul), 2)
///     .with_latency(2);
/// assert_eq!(config.control_steps(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct MfsConfig {
    objective: MfsObjective,
    cs: u32,
    fu_limits: BTreeMap<FuClass, u32>,
    latency: Option<u32>,
    clock: Option<ClockPeriod>,
    record_frames: bool,
    priority_rule: PriorityRule,
    lazy_columns: bool,
    cancel: CancelToken,
}

impl MfsConfig {
    /// Time-constrained scheduling in exactly `cs` control steps.
    ///
    /// # Panics
    ///
    /// Panics if `cs` is zero.
    pub fn time_constrained(cs: u32) -> Self {
        assert!(cs >= 1, "at least one control step is required");
        MfsConfig {
            objective: MfsObjective::TimeConstrained,
            cs,
            fu_limits: BTreeMap::new(),
            latency: None,
            clock: None,
            record_frames: false,
            priority_rule: PriorityRule::default(),
            lazy_columns: false,
            cancel: CancelToken::never(),
        }
    }

    /// Resource-constrained scheduling: unit budgets are given by
    /// [`MfsConfig::with_fu_limit`] calls, `cs_bound` caps the schedule
    /// length (the paper's `cs` upper bound in `V = cs·x + y`).
    ///
    /// # Panics
    ///
    /// Panics if `cs_bound` is zero.
    pub fn resource_constrained(cs_bound: u32) -> Self {
        assert!(cs_bound >= 1, "the step bound must be positive");
        MfsConfig {
            objective: MfsObjective::ResourceConstrained,
            cs: cs_bound,
            fu_limits: BTreeMap::new(),
            latency: None,
            clock: None,
            record_frames: false,
            priority_rule: PriorityRule::default(),
            lazy_columns: false,
            cancel: CancelToken::never(),
        }
    }

    /// Caps the number of units of `class` (a hard constraint; without
    /// it the bound is derived from ASAP/ALAP concurrency and may grow).
    pub fn with_fu_limit(mut self, class: FuClass, max: u32) -> Self {
        assert!(max >= 1, "a unit budget must be positive");
        self.fu_limits.insert(class, max);
        self
    }

    /// Enables functional pipelining with initiation interval `latency`:
    /// operations at steps `t` and `t + k·latency` share units.
    pub fn with_latency(mut self, latency: u32) -> Self {
        assert!(latency >= 1, "latency must be positive");
        self.latency = Some(latency);
        self
    }

    /// Enables chaining with the given clock period; ASAP/ALAP and the
    /// forbidden frame then follow operation delays (paper §5.4).
    pub fn with_chaining(mut self, clock: ClockPeriod) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Records a [`crate::FrameSnapshot`] for every placement (used by
    /// the Figure-2 harness and the tests).
    pub fn with_frame_recording(mut self) -> Self {
        self.record_frames = true;
        self
    }

    /// Overrides the priority rule (ablation: the paper's
    /// ALAP-then-mobility order vs a plain mobility list).
    pub fn with_priority_rule(mut self, rule: PriorityRule) -> Self {
        self.priority_rule = rule;
        self
    }

    /// Starts every class at `current_j = 1` instead of the paper's
    /// `⌈N_j / cs⌉` (ablation of the redundant-frame initialisation:
    /// lazier starts force more local reschedulings).
    pub fn with_lazy_columns(mut self) -> Self {
        self.lazy_columns = true;
        self
    }

    /// Attaches a cooperative cancellation token; the scheduler polls
    /// it at checkpoints (frame computation, pass restarts, every
    /// placement) and aborts with [`crate::MoveFrameError::Cancelled`]
    /// once it fires. Cancellation never changes a completed result.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The attached cancellation token ([`CancelToken::never`] by
    /// default).
    pub fn cancel(&self) -> &CancelToken {
        &self.cancel
    }

    /// The control-step budget (time-constrained) or bound
    /// (resource-constrained).
    pub fn control_steps(&self) -> u32 {
        self.cs
    }

    /// The scheduling objective.
    pub fn objective(&self) -> MfsObjective {
        self.objective
    }

    /// The per-class unit cap, if configured.
    pub fn fu_limit(&self, class: FuClass) -> Option<u32> {
        self.fu_limits.get(&class).copied()
    }

    /// All configured unit caps.
    pub fn fu_limits(&self) -> &BTreeMap<FuClass, u32> {
        &self.fu_limits
    }

    /// The functional-pipelining latency, if any.
    pub fn latency(&self) -> Option<u32> {
        self.latency
    }

    /// The chaining clock period, if any.
    pub fn clock(&self) -> Option<ClockPeriod> {
        self.clock
    }

    /// Whether frame snapshots are recorded.
    pub fn records_frames(&self) -> bool {
        self.record_frames
    }

    /// The configured priority rule.
    pub fn priority_rule(&self) -> PriorityRule {
        self.priority_rule
    }

    /// Whether `current_j` starts at 1 (see
    /// [`MfsConfig::with_lazy_columns`]).
    pub fn lazy_columns(&self) -> bool {
        self.lazy_columns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;

    #[test]
    fn builder_accumulates_options() {
        let c = MfsConfig::time_constrained(5)
            .with_fu_limit(FuClass::Op(OpKind::Add), 2)
            .with_latency(2)
            .with_chaining(ClockPeriod::new(100))
            .with_frame_recording();
        assert_eq!(c.control_steps(), 5);
        assert_eq!(c.fu_limit(FuClass::Op(OpKind::Add)), Some(2));
        assert_eq!(c.fu_limit(FuClass::Op(OpKind::Mul)), None);
        assert_eq!(c.latency(), Some(2));
        assert!(c.clock().is_some());
        assert!(c.records_frames());
    }

    #[test]
    fn objectives() {
        assert_eq!(
            MfsConfig::time_constrained(3).objective(),
            MfsObjective::TimeConstrained
        );
        assert_eq!(
            MfsConfig::resource_constrained(9).objective(),
            MfsObjective::ResourceConstrained
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_latency_panics() {
        let _ = MfsConfig::time_constrained(3).with_latency(0);
    }
}
