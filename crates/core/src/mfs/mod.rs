//! Move Frame Scheduling (paper §3): scheduling onto single-function
//! units under a time or resource constraint, guided by a static
//! Liapunov function.

mod config;
mod scheduler;

pub use config::MfsConfig;
pub use scheduler::{
    minimize_steps, schedule, schedule_traced, schedule_traced_with_frames, MfsOutcome,
};
