//! The MFS move loop (paper §3.2).

use std::collections::BTreeMap;

use hls_celllib::{Delay, TimingSpec};
use hls_dfg::{Dfg, FuClass, NodeId};
use hls_schedule::{
    chained_frames, priority_order_with, CStep, Grid, Schedule, Slot, TimeFrames, UnitId,
};

use hls_telemetry::{Instrument, Metrics, NullSink, TraceEvent};

use crate::frame::{compute_move_frame, BoundsCache, FrameCtx, FrameSnapshot};
use crate::mfs::MfsConfig;
use crate::{MoveFrameError, StaticLiapunov};

/// The result of an MFS run.
#[derive(Debug, Clone)]
pub struct MfsOutcome {
    /// The complete schedule (every unit is a [`UnitId::Fu`]).
    pub schedule: Schedule,
    /// The per-class placement grids (Figure-1 state).
    pub grids: BTreeMap<FuClass, Grid>,
    /// The ASAP/ALAP frames the run was based on.
    pub frames: TimeFrames,
    /// How many local reschedulings (`current_j` bumps) occurred.
    pub reschedule_count: u32,
    /// Frame snapshots per placement, in scheduling order (only when
    /// [`MfsConfig::with_frame_recording`] was set).
    pub snapshots: Vec<FrameSnapshot>,
}

impl MfsOutcome {
    /// Units used per class — the paper's Table-1 numbers.
    pub fn fu_counts(&self) -> BTreeMap<FuClass, u32> {
        self.schedule.fu_counts()
    }

    /// The number of control steps actually used (last finish step).
    pub fn steps_used(&self, dfg: &Dfg, spec: &TimingSpec) -> u32 {
        dfg.node_ids()
            .filter_map(|n| self.schedule.finish(n, dfg, spec))
            .map(CStep::get)
            .max()
            .unwrap_or(0)
    }
}

/// Peak per-class concurrency of an ASAP or ALAP schedule — the paper's
/// default `max_j` "upper bound" when the user gives no resource
/// constraint.
fn peak_concurrency(
    dfg: &Dfg,
    starts: impl Fn(NodeId) -> CStep,
    cycles_of: impl Fn(NodeId) -> u8,
    cs: u32,
) -> BTreeMap<FuClass, u32> {
    let mut per_step: BTreeMap<(FuClass, u32), u32> = BTreeMap::new();
    for id in dfg.node_ids() {
        let class = dfg.node(id).kind().fu_class();
        let start = starts(id).get();
        for k in 0..cycles_of(id) as u32 {
            let step = (start + k).min(cs);
            *per_step.entry((class, step)).or_insert(0) += 1;
        }
    }
    let mut peaks = BTreeMap::new();
    for ((class, _), count) in per_step {
        let p = peaks.entry(class).or_insert(0);
        *p = (*p).max(count);
    }
    peaks
}

/// Runs Move Frame Scheduling on `dfg` under `spec` and `config`.
///
/// The four steps of §3.2: (1) ASAP/ALAP frames, (2) `max_j` and
/// priorities, (3) the per-operation frame tables, (4) the move loop —
/// each operation takes the minimum-Liapunov position of its move frame,
/// with `current_j` grown (*local rescheduling*) whenever the frame is
/// empty.
///
/// # Errors
///
/// * [`MoveFrameError::Schedule`] if the time constraint is below the
///   critical path;
/// * [`MoveFrameError::NoPosition`] if a user resource limit (or, for
///   derived limits, the graph size bound) leaves some operation without
///   a valid position.
pub fn schedule(
    dfg: &Dfg,
    spec: &TimingSpec,
    config: &MfsConfig,
) -> Result<MfsOutcome, MoveFrameError> {
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    schedule_traced(
        dfg,
        spec,
        config,
        &mut Instrument::new(&mut sink, &mut metrics),
    )
}

/// [`schedule`] with instrumentation: phase spans, counters and (when
/// the sink is enabled) per-move trace events flow into `instr`.
///
/// Event conventions (see `hls-telemetry`):
///
/// * `FrameComputed` — one per placement attempt, with the PF length,
///   hidden RF columns, FF step count and the move-frame size;
/// * `EnergyEvaluated` — one per free cell of the move frame;
/// * `MoveCommitted` — `from` is the present position `O^p` (the ALFAP
///   corner at the current column), `to` the committed cell, `v` its
///   static Liapunov energy, and `system_v` the total system energy
///   after the move (placed operations at their committed energy,
///   unplaced ones at their grid's worst cell) — non-increasing over a
///   pass by construction;
/// * `LocalReschedule` — one per empty-frame retry, with the widened
///   `current_j`.
///
/// Instrumentation is write-only: the returned outcome is bit-identical
/// to [`schedule`]'s for any sink.
///
/// # Errors
///
/// As for [`schedule`].
pub fn schedule_traced(
    dfg: &Dfg,
    spec: &TimingSpec,
    config: &MfsConfig,
    instr: &mut Instrument<'_>,
) -> Result<MfsOutcome, MoveFrameError> {
    schedule_traced_with_frames(dfg, spec, config, None, instr)
}

/// [`schedule_traced`] with optionally precomputed time frames.
///
/// Batch harnesses (the `hls-explore` engine) compute ASAP/ALAP frames
/// once per `(dfg, spec, cs, clock)` and share them across every design
/// point at that time constraint; passing them here skips step 1. The
/// frames **must** come from the same graph, timing spec, clock setting
/// and time constraint as this run — as a guard, frames whose
/// control-step count differs from `config.control_steps()` are
/// discarded and recomputed. The outcome is bit-identical to
/// [`schedule_traced`]'s either way.
///
/// # Errors
///
/// As for [`schedule`].
pub fn schedule_traced_with_frames(
    dfg: &Dfg,
    spec: &TimingSpec,
    config: &MfsConfig,
    precomputed: Option<TimeFrames>,
    instr: &mut Instrument<'_>,
) -> Result<MfsOutcome, MoveFrameError> {
    let cs = config.control_steps();
    config.cancel().checkpoint()?;

    // Step 1: time frames (chaining-aware when a clock is given),
    // unless the caller already has them.
    let frames = instr.span("mfs.frames", |instr| {
        match precomputed.filter(|f| f.control_steps() == cs) {
            Some(frames) => {
                instr.inc("mfs.frames.reused", 1);
                Ok(frames)
            }
            None => match config.clock() {
                Some(clock) => Ok(chained_frames(dfg, spec, clock, cs)?.into_frames()),
                None => TimeFrames::compute(dfg, spec, cs),
            },
        }
    })?;

    // Effective cycles (chaining can stretch slow ops over steps) live in
    // the dependency-bounds cache; a pristine copy doubles as the
    // template each pass clones (passes start from an empty schedule).
    let bounds_template = BoundsCache::new(dfg, spec, config.clock());

    // Step 2: max_j per class (user constraint, else ASAP/ALAP peak).
    // A memory bank's declared port count is a *hard* column budget, just
    // like a user FU limit: the grid never grows past the ports that
    // physically exist, and local rescheduling can only widen `current_j`
    // up to it.
    let hard_limit = |class: FuClass| -> Option<u32> {
        let user = config.fu_limit(class);
        match class {
            FuClass::Mem(bank) => {
                let ports = dfg.bank_ports(bank);
                Some(user.map_or(ports, |u| u.min(ports)))
            }
            _ => user,
        }
    };
    let class_counts = dfg.class_counts();
    let asap_peak = peak_concurrency(dfg, |n| frames.asap(n), |n| bounds_template.cycles(n), cs);
    let alap_peak = peak_concurrency(dfg, |n| frames.alap(n), |n| bounds_template.cycles(n), cs);
    let mut max_fu: BTreeMap<FuClass, u32> = BTreeMap::new();
    for &class in class_counts.keys() {
        let derived = asap_peak
            .get(&class)
            .copied()
            .unwrap_or(1)
            .max(alap_peak.get(&class).copied().unwrap_or(1))
            .max(1);
        max_fu.insert(class, hard_limit(class).unwrap_or(derived));
    }

    // The Liapunov weight n: the paper's "presummed big number" upper
    // bound on any max_j, so earlier steps always dominate even when a
    // derived max_j later grows.
    let n_bound = max_fu
        .values()
        .copied()
        .max()
        .unwrap_or(1)
        .max(dfg.node_count() as u32)
        + 1;
    let liapunov = StaticLiapunov::new(config.objective(), n_bound, cs);

    // Step 3: grids (the ASNAP/ALFAP tables reduce to per-class grids
    // bounded by [1, cs] × [1, max_j]).
    let mut grids: BTreeMap<FuClass, Grid> = max_fu
        .iter()
        .map(|(&class, &m)| {
            let grid = Grid::new(class, cs, m);
            let grid = match config.latency() {
                Some(l) => grid.with_latency(l),
                None => grid,
            };
            (class, grid)
        })
        .collect();

    // current_j = ⌈N_j / cs⌉ (clamped into [1, max_j]).
    let mut current: BTreeMap<FuClass, u32> = class_counts
        .iter()
        .map(|(&class, &n)| {
            let c = if config.lazy_columns() {
                1
            } else {
                ((n as u32).div_ceil(cs)).clamp(1, max_fu[&class])
            };
            (class, c)
        })
        .collect();

    // Step 2 (cont.): priority order.
    let order = instr.span("mfs.priority", |_| {
        priority_order_with(dfg, spec, &frames, config.priority_rule())
    });

    // Step 4: the move loop. When an operation's move frame is empty,
    // `current_j` grows and the pass restarts — the paper's local
    // rescheduling "by going back to step 3" (the tables are rebuilt
    // with the wider visible column range).
    let mut reschedule_count = 0u32;
    // A derived max_j may grow at most to the operation count; a user
    // limit never grows.
    let growth_bound = dfg.node_count() as u32 + 1;

    instr.span("mfs.move_loop", |instr| {
        'restart: loop {
            config.cancel().checkpoint()?;
            let mut sched = Schedule::new(dfg, cs);
            let mut offsets: Vec<Delay> = vec![Delay::ZERO; dfg.node_count()];
            let mut bounds = bounds_template.clone();
            let mut snapshots = Vec::new();
            let mut pass_grids = grids.clone();

            // System energy of this pass: placed operations contribute their
            // committed V, unplaced ones their grid's worst cell. Every
            // commit replaces a worst-cell term with a no-larger chosen-cell
            // term, so the trace is non-increasing by construction.
            let mut system_v = if instr.enabled() {
                dfg.node_ids()
                    .map(|n| {
                        let class = dfg.node(n).kind().fu_class();
                        liapunov.value(max_fu[&class], cs)
                    })
                    .sum::<u64>()
            } else {
                0
            };

            for &node in &order {
                config.cancel().checkpoint()?;
                let class = dfg.node(node).kind().fu_class();
                let cycles = bounds.cycles(node);
                let snap = {
                    let ctx = FrameCtx {
                        dfg,
                        spec,
                        frames: &frames,
                        schedule: &sched,
                        clock: config.clock(),
                        offsets: &offsets,
                        bounds: &bounds,
                    };
                    compute_move_frame(&ctx, node, &pass_grids[&class], current[&class])
                };
                instr.inc("mfs.frames_computed", 1);
                {
                    // Which bound derivation ran: the O(1) cached formula,
                    // or the chaining boundary walk (a scheduled
                    // predecessor finishes inside the primary frame)?
                    let m = bounds.pred_finish(node);
                    let (asap_b, alap_b) = snap.primary;
                    if m != 0 && m >= asap_b.get() && m <= alap_b.get() {
                        instr.inc("mfs.bounds.boundary_walks", 1);
                    } else {
                        instr.inc("mfs.bounds.fast_path", 1);
                    }
                }
                instr.inc("mfs.energy_evaluations", snap.movable.len() as u64);
                instr.observe("mfs.mf_size", snap.movable.len() as u64);
                if !snap.af_steps.is_empty() {
                    // Bank-port saturation carved steps out of this frame.
                    instr.inc("mem.port_conflicts", 1);
                    instr.inc("mem.af_steps_excluded", snap.af_steps.len() as u64);
                }
                if instr.enabled() {
                    let (asap, alap) = snap.primary;
                    // Forbidden steps: [ASAP, earliest) and (latest, ALAP].
                    let ff = snap.earliest_feasible.get().saturating_sub(asap.get())
                        + alap.get().saturating_sub(snap.latest_feasible.get());
                    instr.emit(TraceEvent::FrameComputed {
                        op: node.index() as u32,
                        pf: alap.get() - asap.get() + 1,
                        rf: snap.max_fu - snap.current_fu,
                        ff,
                        mf_size: snap.movable.len() as u32,
                    });
                    for p in &snap.movable {
                        instr.emit(TraceEvent::EnergyEvaluated {
                            op: node.index() as u32,
                            pos: (p.fu.get(), p.step.get()),
                            v: liapunov.value(p.fu.get(), p.step.get()),
                        });
                    }
                }
                let best = snap
                    .movable
                    .iter()
                    .min_by_key(|p| (liapunov.value(p.fu.get(), p.step.get()), p.step, p.fu))
                    .copied();
                match best {
                    Some(pos) => {
                        let offset = {
                            let ctx = FrameCtx {
                                dfg,
                                spec,
                                frames: &frames,
                                schedule: &sched,
                                clock: config.clock(),
                                offsets: &offsets,
                                bounds: &bounds,
                            };
                            ctx.offset_after(node, pos.step)
                        };
                        pass_grids
                            .get_mut(&class)
                            .expect("grid exists for every class")
                            .occupy(node, pos.step, pos.fu, cycles);
                        sched.assign(
                            node,
                            Slot {
                                step: pos.step,
                                unit: UnitId::Fu {
                                    class,
                                    index: pos.fu,
                                },
                            },
                        );
                        offsets[node.index()] = offset;
                        bounds.on_assign(dfg, node, pos.step);
                        instr.inc("mfs.moves_committed", 1);
                        if instr.enabled() {
                            let v = liapunov.value(pos.fu.get(), pos.step.get());
                            system_v -= liapunov.value(max_fu[&class], cs) - v;
                            instr.emit(TraceEvent::MoveCommitted {
                                op: node.index() as u32,
                                // O^p: the ALFAP corner of the frame at the
                                // current column (paper §3.2).
                                from: Some((snap.current_fu, snap.primary.1.get())),
                                to: (pos.fu.get(), pos.step.get()),
                                v,
                                system_v: Some(system_v),
                            });
                        }
                        if config.records_frames() {
                            snapshots.push(snap);
                        }
                    }
                    None => {
                        // Local rescheduling: widen the visible columns and
                        // go back to step 3.
                        reschedule_count += 1;
                        instr.inc("mfs.local_reschedules", 1);
                        if matches!(class, FuClass::Mem(_)) {
                            instr.inc("mem.port_reschedules", 1);
                        }
                        let cur = current.get_mut(&class).expect("class present");
                        let max = max_fu.get_mut(&class).expect("class present");
                        if *cur < *max {
                            *cur += 1;
                        } else if hard_limit(class).is_none() && *max < growth_bound {
                            *max += 1;
                            *cur = *max;
                            grids
                                .get_mut(&class)
                                .expect("grid exists")
                                .grow_max_fu(*max);
                        } else {
                            return Err(MoveFrameError::NoPosition {
                                node,
                                class,
                                max_fu: *max,
                            });
                        }
                        if instr.enabled() {
                            instr.emit(TraceEvent::LocalReschedule {
                                op_kind: class.to_string(),
                                current_j: *current.get(&class).expect("class present"),
                            });
                        }
                        continue 'restart;
                    }
                }
            }

            return Ok(MfsOutcome {
                schedule: sched,
                grids: pass_grids,
                frames,
                reschedule_count,
                snapshots,
            });
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::{ClockPeriod, OpKind};
    use hls_dfg::DfgBuilder;
    use hls_schedule::{verify, VerifyOptions};

    fn assert_valid(dfg: &Dfg, spec: &TimingSpec, outcome: &MfsOutcome, opts: VerifyOptions) {
        let violations = verify(dfg, &outcome.schedule, spec, opts);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn balanced_schedule_of_independent_adds() {
        // 6 independent adds in 3 steps: current_+ = 2, perfectly
        // balanced, no rescheduling.
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        for i in 0..6 {
            b.op(&format!("a{i}"), OpKind::Add, &[x, x]).unwrap();
        }
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let out = schedule(&g, &spec, &MfsConfig::time_constrained(3)).unwrap();
        assert_valid(&g, &spec, &out, VerifyOptions::default());
        assert_eq!(out.fu_counts()[&FuClass::Op(OpKind::Add)], 2);
        assert_eq!(out.reschedule_count, 0);
    }

    #[test]
    fn rescheduling_grows_units_when_dependencies_force_concurrency() {
        // Two adds pinned to step 1 by successors at step 2, cs = 2:
        // current_+ starts at 1 and must grow to 2.
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let a1 = b.op("a1", OpKind::Add, &[x, x]).unwrap();
        let a2 = b.op("a2", OpKind::Add, &[x, x]).unwrap();
        b.op("s1", OpKind::Sub, &[a1, x]).unwrap();
        b.op("s2", OpKind::Sub, &[a2, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let out = schedule(&g, &spec, &MfsConfig::time_constrained(2)).unwrap();
        assert_valid(&g, &spec, &out, VerifyOptions::default());
        assert_eq!(out.fu_counts()[&FuClass::Op(OpKind::Add)], 2);
        assert!(out.reschedule_count >= 1);
    }

    #[test]
    fn user_limit_is_respected_or_fails() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        for i in 0..4 {
            b.op(&format!("a{i}"), OpKind::Add, &[x, x]).unwrap();
        }
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        // 4 adds, 2 steps, limit 1 adder: impossible.
        let config = MfsConfig::time_constrained(2).with_fu_limit(FuClass::Op(OpKind::Add), 1);
        assert!(matches!(
            schedule(&g, &spec, &config),
            Err(MoveFrameError::NoPosition { .. })
        ));
        // Limit 2 adders: exactly feasible.
        let config = MfsConfig::time_constrained(2).with_fu_limit(FuClass::Op(OpKind::Add), 2);
        let out = schedule(&g, &spec, &config).unwrap();
        assert_valid(&g, &spec, &out, VerifyOptions::default());
        assert_eq!(out.fu_counts()[&FuClass::Op(OpKind::Add)], 2);
    }

    #[test]
    fn resource_constrained_minimises_steps_on_existing_units() {
        // 4 independent adds, 1 adder, bound 6 steps: uses steps 1–4.
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        for i in 0..4 {
            b.op(&format!("a{i}"), OpKind::Add, &[x, x]).unwrap();
        }
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let config = MfsConfig::resource_constrained(6).with_fu_limit(FuClass::Op(OpKind::Add), 1);
        let out = schedule(&g, &spec, &config).unwrap();
        assert_valid(&g, &spec, &out, VerifyOptions::default());
        assert_eq!(out.fu_counts()[&FuClass::Op(OpKind::Add)], 1);
        assert_eq!(out.steps_used(&g, &spec), 4);
    }

    #[test]
    fn time_constrained_uses_early_steps() {
        // A single op with full mobility must land in step 1 (the
        // Liapunov function prefers earlier steps).
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("only", OpKind::Add, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let out = schedule(&g, &spec, &MfsConfig::time_constrained(5)).unwrap();
        let only = g.node_by_name("only").unwrap();
        assert_eq!(out.schedule.start(only), Some(CStep::new(1)));
    }

    #[test]
    fn mutually_exclusive_ops_share_one_unit() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let branch = b.begin_branch();
        b.enter_arm(branch, 0);
        b.op("t", OpKind::Add, &[x, x]).unwrap();
        b.exit_arm();
        b.enter_arm(branch, 1);
        b.op("e", OpKind::Add, &[x, x]).unwrap();
        b.exit_arm();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let out = schedule(&g, &spec, &MfsConfig::time_constrained(1)).unwrap();
        assert_valid(&g, &spec, &out, VerifyOptions::default());
        assert_eq!(out.fu_counts()[&FuClass::Op(OpKind::Add)], 1);
    }

    #[test]
    fn multicycle_multiplies_occupy_consecutive_steps() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let m = b.op("m", OpKind::Mul, &[x, x]).unwrap();
        b.op("a", OpKind::Add, &[m, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let out = schedule(&g, &spec, &MfsConfig::time_constrained(3)).unwrap();
        assert_valid(&g, &spec, &out, VerifyOptions::default());
        let m = g.node_by_name("m").unwrap();
        let a = g.node_by_name("a").unwrap();
        assert_eq!(out.schedule.start(m), Some(CStep::new(1)));
        assert_eq!(out.schedule.start(a), Some(CStep::new(3)));
    }

    #[test]
    fn functional_pipelining_latency_is_respected() {
        // 4 independent multiplies, cs=4, latency 2: steps {1,3} and
        // {2,4} collide, so 2 multipliers are needed.
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        for i in 0..4 {
            b.op(&format!("m{i}"), OpKind::Mul, &[x, x]).unwrap();
        }
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let config = MfsConfig::time_constrained(4).with_latency(2);
        let out = schedule(&g, &spec, &config).unwrap();
        let opts = VerifyOptions {
            latency: Some(2),
            ..Default::default()
        };
        assert_valid(&g, &spec, &out, opts);
        assert_eq!(out.fu_counts()[&FuClass::Op(OpKind::Mul)], 2);
    }

    #[test]
    fn chaining_packs_dependent_adds_into_one_step() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.op("a", OpKind::Add, &[x, y]).unwrap();
        b.op("c", OpKind::Add, &[a, y]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::with_delays();
        let clock = ClockPeriod::new(100);
        let config = MfsConfig::time_constrained(1).with_chaining(clock);
        let out = schedule(&g, &spec, &config).unwrap();
        let opts = VerifyOptions {
            clock: Some(clock),
            ..Default::default()
        };
        assert_valid(&g, &spec, &out, opts);
        // Both in step 1, on different adders.
        let a = g.node_by_name("a").unwrap();
        let c = g.node_by_name("c").unwrap();
        assert_eq!(out.schedule.start(a), Some(CStep::new(1)));
        assert_eq!(out.schedule.start(c), Some(CStep::new(1)));
        assert_eq!(out.fu_counts()[&FuClass::Op(OpKind::Add)], 2);
    }

    #[test]
    fn infeasible_time_constraint_errors() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let a = b.op("a", OpKind::Add, &[x, x]).unwrap();
        b.op("c", OpKind::Add, &[a, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        assert!(matches!(
            schedule(&g, &spec, &MfsConfig::time_constrained(1)),
            Err(MoveFrameError::Schedule(_))
        ));
    }

    #[test]
    fn frame_recording_captures_one_snapshot_per_op() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let a = b.op("a", OpKind::Add, &[x, x]).unwrap();
        b.op("c", OpKind::Sub, &[a, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let config = MfsConfig::time_constrained(2).with_frame_recording();
        let out = schedule(&g, &spec, &config).unwrap();
        assert_eq!(out.snapshots.len(), 2);
        assert!(out.snapshots.iter().all(|s| !s.movable.is_empty()));
    }

    #[test]
    fn stage_nodes_schedule_consecutively_and_overlap() {
        use hls_dfg::transform::expand_structural_stages;
        // Two 2-cycle multiplies on a pipelined multiplier: stages let
        // them overlap so ONE pipelined unit (per stage class) suffices
        // in 3 steps.
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("m1", OpKind::Mul, &[x, x]).unwrap();
        b.op("m2", OpKind::Mul, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let (expanded, _) =
            expand_structural_stages(&g, &spec, &[OpKind::Mul].into_iter().collect()).unwrap();
        let out = schedule(&expanded, &spec, &MfsConfig::time_constrained(3)).unwrap();
        assert_valid(&expanded, &spec, &out, VerifyOptions::default());
        for (class, count) in out.fu_counts() {
            assert_eq!(count, 1, "stage class {class} should need one unit");
        }
        // Stage 2 of each op directly follows its stage 1.
        for base in ["m1", "m2"] {
            let s1 = expanded.node_by_name(&format!("{base}.s1")).unwrap();
            let s2 = expanded.node_by_name(&format!("{base}.s2")).unwrap();
            let t1 = out.schedule.start(s1).unwrap().get();
            let t2 = out.schedule.start(s2).unwrap().get();
            assert_eq!(t2, t1 + 1);
        }
    }
}

/// Finds the smallest time constraint for which `config_at(cs)` admits a
/// schedule, searching `cs` in `[lower, upper]` by bisection (the
/// feasibility predicate is monotone in `cs`), and returns it with the
/// outcome.
///
/// The classic use is minimum-latency-under-resources: build the config
/// with hard [`MfsConfig::with_fu_limit`] budgets.
///
/// ```
/// use hls_celllib::{OpKind, TimingSpec};
/// use hls_dfg::{DfgBuilder, FuClass};
/// use moveframe::mfs::{minimize_steps, MfsConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new("g");
/// let x = b.input("x");
/// for i in 0..4 {
///     b.op(&format!("a{i}"), OpKind::Add, &[x, x])?;
/// }
/// let dfg = b.finish()?;
/// let spec = TimingSpec::uniform_single_cycle();
/// // One adder: 4 independent adds need exactly 4 steps.
/// let (cs, _) = minimize_steps(&dfg, &spec, 1, 16, |cs| {
///     MfsConfig::time_constrained(cs).with_fu_limit(FuClass::Op(OpKind::Add), 1)
/// })?;
/// assert_eq!(cs, 4);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns the `upper`-bound attempt's error when even `upper` steps are
/// infeasible under the configuration.
pub fn minimize_steps(
    dfg: &Dfg,
    spec: &TimingSpec,
    lower: u32,
    upper: u32,
    config_at: impl Fn(u32) -> MfsConfig,
) -> Result<(u32, MfsOutcome), MoveFrameError> {
    assert!(lower >= 1 && lower <= upper, "need 1 <= lower <= upper");
    // Feasibility first: if even `upper` fails, surface that error.
    let mut best = match schedule(dfg, spec, &config_at(upper)) {
        Ok(outcome) => (upper, outcome),
        Err(e) => return Err(e),
    };
    let (mut lo, mut hi) = (lower, upper);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match schedule(dfg, spec, &config_at(mid)) {
            Ok(outcome) => {
                best = (mid, outcome);
                hi = mid;
            }
            Err(_) => lo = mid + 1,
        }
    }
    Ok(best)
}

#[cfg(test)]
mod minimize_tests {
    use super::*;
    use hls_celllib::OpKind;
    use hls_dfg::DfgBuilder;

    #[test]
    fn finds_the_critical_path_without_limits() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let p = b.op("p", OpKind::Add, &[x, x]).unwrap();
        let q = b.op("q", OpKind::Add, &[p, x]).unwrap();
        b.op("r", OpKind::Add, &[q, x]).unwrap();
        let dfg = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let (cs, out) = minimize_steps(&dfg, &spec, 1, 10, MfsConfig::time_constrained).unwrap();
        assert_eq!(cs, 3);
        assert!(out.schedule.is_complete());
    }

    #[test]
    fn resource_limits_stretch_the_minimum() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        for i in 0..6 {
            b.op(&format!("m{i}"), OpKind::Mul, &[x, x]).unwrap();
        }
        let dfg = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let (cs, _) = minimize_steps(&dfg, &spec, 1, 16, |cs| {
            MfsConfig::time_constrained(cs).with_fu_limit(FuClass::Op(OpKind::Mul), 2)
        })
        .unwrap();
        assert_eq!(cs, 3);
        let (cs, _) = minimize_steps(&dfg, &spec, 1, 16, |cs| {
            MfsConfig::time_constrained(cs).with_fu_limit(FuClass::Op(OpKind::Mul), 3)
        })
        .unwrap();
        assert_eq!(cs, 2);
    }

    #[test]
    fn infeasible_upper_bound_errors() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let p = b.op("p", OpKind::Add, &[x, x]).unwrap();
        b.op("q", OpKind::Add, &[p, x]).unwrap();
        let dfg = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        assert!(minimize_steps(&dfg, &spec, 1, 1, MfsConfig::time_constrained).is_err());
    }
}
