//! Structural and functional pipelining drivers (paper §5.5).

use std::collections::{BTreeMap, BTreeSet};

use hls_celllib::{OpKind, TimingSpec};
use hls_dfg::transform::{duplicate_instances, expand_structural_stages, StageExpansion};
use hls_dfg::{Dfg, FuClass, NodeId};
use hls_schedule::{CStep, Schedule, Slot};

use crate::mfs::{self, MfsConfig, MfsOutcome};
use crate::MoveFrameError;

/// Structural pipelining (§5.5.1): expands multi-cycle operations with
/// pipelined implementations into per-stage single-cycle nodes, then
/// runs MFS. Returns the expanded graph (ids differ from the input!),
/// the expansion report and the outcome.
///
/// Once expanded, "different stages of pipelined operations can be
/// concurrent but must be scheduled in consecutive control steps" — the
/// stage nodes' dependency chain plus the per-stage FU classes enforce
/// exactly that, and two operations may overlap on one physical
/// pipelined unit because they occupy *different* stages.
///
/// # Errors
///
/// Propagates graph and scheduling errors from the expansion and MFS.
pub fn schedule_structural(
    dfg: &Dfg,
    spec: &TimingSpec,
    config: &MfsConfig,
    pipelined: &BTreeSet<OpKind>,
) -> Result<(Dfg, StageExpansion, MfsOutcome), MoveFrameError> {
    let (expanded, report) = expand_structural_stages(dfg, spec, pipelined)?;
    let outcome = mfs::schedule(&expanded, spec, config)?;
    Ok((expanded, report, outcome))
}

/// [`schedule_structural`] with instrumentation: the stage expansion is
/// timed as the `mfs.stage_expansion` phase span and the inner run uses
/// [`mfs::schedule_traced`].
///
/// # Errors
///
/// As for [`schedule_structural`].
pub fn schedule_structural_traced(
    dfg: &Dfg,
    spec: &TimingSpec,
    config: &MfsConfig,
    pipelined: &BTreeSet<OpKind>,
    instr: &mut hls_telemetry::Instrument<'_>,
) -> Result<(Dfg, StageExpansion, MfsOutcome), MoveFrameError> {
    let (expanded, report) = instr.span("mfs.stage_expansion", |_| {
        expand_structural_stages(dfg, spec, pipelined)
    })?;
    let outcome = mfs::schedule_traced(&expanded, spec, config, instr)?;
    Ok((expanded, report, outcome))
}

/// Folds the per-stage FU counts of a structurally pipelined schedule
/// back into whole pipelined units: a k-stage multiplier exists once per
/// `max` over its stage classes.
pub fn pipelined_fu_counts(outcome: &MfsOutcome) -> BTreeMap<FuClass, u32> {
    let mut merged: BTreeMap<FuClass, u32> = BTreeMap::new();
    for (class, count) in outcome.fu_counts() {
        let key = match class {
            FuClass::Stage { base, .. } => FuClass::Op(base),
            other => other,
        };
        let entry = merged.entry(key).or_insert(0);
        *entry = (*entry).max(count);
    }
    merged
}

/// The result of the paper's two-instance functional-pipelining
/// procedure (§5.5.2).
#[derive(Debug, Clone)]
pub struct TwoInstanceOutcome {
    /// `DFG_double`: two disjoint instances of the loop body.
    pub doubled: Dfg,
    /// A schedule of `DFG_double` over `cs + latency` steps in which the
    /// two instances are identical, offset by the latency.
    pub doubled_schedule: Schedule,
    /// The underlying single-instance (modulo-latency) outcome.
    pub kernel: MfsOutcome,
    /// The §5.5.2 partition boundary `⌈(cs + L) / 2⌉`.
    pub partition_boundary: u32,
    /// The initiation interval.
    pub latency: u32,
}

impl TwoInstanceOutcome {
    /// Per-class unit counts of the pipelined kernel.
    pub fn fu_counts(&self) -> BTreeMap<FuClass, u32> {
        self.kernel.fu_counts()
    }
}

/// Functional pipelining by the paper's two-instance construction.
///
/// The paper builds `DFG_double` (two instances, `L` cycles apart),
/// partitions it at `d = ⌈(cs+L)/2⌉`, schedules partition 1, *adjusts*
/// the result so both instances are identical, and schedules the rest.
/// The defining post-conditions are: (a) both instances run the same
/// schedule offset by `L`, and (b) no resource conflict anywhere in the
/// overlap — which is precisely a modulo-`L` schedule of the single
/// body ("operations scheduled into control step `t + k·L` run
/// concurrently"). This driver therefore schedules the body once on
/// wrap-around grids (the kernel) and *derives* the identical-instance
/// double schedule from it; the partition boundary is reported for
/// comparison with the paper's construction, and the resulting double
/// schedule is exactly what steps 1–5 produce when they succeed.
///
/// ```
/// use hls_celllib::{OpKind, TimingSpec};
/// use hls_dfg::DfgBuilder;
/// use moveframe::pipeline::schedule_two_instance;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new("body");
/// let x = b.input("x");
/// let t = b.op("t", OpKind::Mul, &[x, x])?;
/// let _u = b.op("u", OpKind::Add, &[t, x])?;
/// let body = b.finish()?;
/// let spec = TimingSpec::uniform_single_cycle();
/// let out = schedule_two_instance(&body, &spec, 2, 1)?;
/// assert_eq!(out.partition_boundary, 2); // ⌈(2+1)/2⌉
/// assert!(out.doubled_schedule.is_complete());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// [`MoveFrameError::InvalidLatency`] when `latency` is zero or exceeds
/// `cs`; otherwise propagates MFS errors on the wrapped kernel.
pub fn schedule_two_instance(
    dfg: &Dfg,
    spec: &TimingSpec,
    cs: u32,
    latency: u32,
) -> Result<TwoInstanceOutcome, MoveFrameError> {
    if latency == 0 || latency > cs {
        return Err(MoveFrameError::InvalidLatency { latency, cs });
    }
    // Step "kernel": modulo-L schedule of the single body.
    let config = MfsConfig::time_constrained(cs).with_latency(latency);
    let kernel = mfs::schedule(dfg, spec, &config)?;

    // Steps 1–5 equivalent: materialise DFG_double and mirror.
    let (doubled, instances) = duplicate_instances(dfg, 2)?;
    let mut doubled_schedule = Schedule::new(&doubled, cs + latency);
    let topo: Vec<NodeId> = dfg.topo_order().to_vec();
    for (copy_index, copy) in instances.iter().enumerate() {
        let offset = copy_index as u32 * latency;
        for (orig, &new_id) in topo.iter().zip(&copy.nodes) {
            let slot = kernel.schedule.slot(*orig).expect("kernel is complete");
            doubled_schedule.assign(
                new_id,
                Slot {
                    step: CStep::new(slot.step.get() + offset),
                    unit: slot.unit,
                },
            );
        }
    }

    Ok(TwoInstanceOutcome {
        doubled,
        doubled_schedule,
        kernel,
        partition_boundary: (cs + latency).div_ceil(2),
        latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_dfg::DfgBuilder;
    use hls_schedule::{verify, VerifyOptions};

    fn filter_body() -> Dfg {
        // A small filter-ish body: 2 multiplies into 2 adds.
        let mut b = DfgBuilder::new("body");
        let x = b.input("x");
        let c1 = b.constant("c1", 3);
        let c2 = b.constant("c2", 5);
        let m1 = b.op("m1", OpKind::Mul, &[x, c1]).unwrap();
        let m2 = b.op("m2", OpKind::Mul, &[x, c2]).unwrap();
        let a1 = b.op("a1", OpKind::Add, &[m1, m2]).unwrap();
        b.op("a2", OpKind::Add, &[a1, x]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn two_instance_schedule_is_conflict_free_and_identical() {
        let body = filter_body();
        let spec = TimingSpec::uniform_single_cycle();
        let out = schedule_two_instance(&body, &spec, 3, 1).unwrap();
        // The doubled schedule must verify with explicit instances (no
        // latency option: overlaps are materialised).
        let v = verify(
            &out.doubled,
            &out.doubled_schedule,
            &spec,
            VerifyOptions::default(),
        );
        assert!(v.is_empty(), "{v:?}");
        // Instances identical, offset by L.
        for (_, node) in out.doubled.nodes() {
            if let Some(base) = node.name().strip_suffix("@2") {
                let orig = out.doubled.node_by_name(base).unwrap();
                let here = out.doubled.node_by_name(node.name()).unwrap();
                let t0 = out.doubled_schedule.start(orig).unwrap().get();
                let t1 = out.doubled_schedule.start(here).unwrap().get();
                assert_eq!(t1, t0 + out.latency);
            }
        }
    }

    #[test]
    fn lower_latency_needs_more_units() {
        let body = filter_body();
        let spec = TimingSpec::uniform_single_cycle();
        let relaxed = schedule_two_instance(&body, &spec, 4, 4).unwrap();
        let tight = schedule_two_instance(&body, &spec, 4, 1).unwrap();
        let units = |o: &TwoInstanceOutcome| o.fu_counts().values().sum::<u32>();
        assert!(units(&tight) >= units(&relaxed));
        // Latency 1 folds every step together: with 2 multiplies, at
        // least 2 multipliers.
        assert!(tight.fu_counts()[&FuClass::Op(OpKind::Mul)] >= 2);
    }

    #[test]
    fn invalid_latency_is_rejected() {
        let body = filter_body();
        let spec = TimingSpec::uniform_single_cycle();
        assert!(matches!(
            schedule_two_instance(&body, &spec, 3, 0),
            Err(MoveFrameError::InvalidLatency { .. })
        ));
        assert!(matches!(
            schedule_two_instance(&body, &spec, 3, 4),
            Err(MoveFrameError::InvalidLatency { .. })
        ));
    }

    #[test]
    fn structural_pipelining_keeps_stage_pairs_adjacent() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let m1 = b.op("m1", OpKind::Mul, &[x, x]).unwrap();
        b.op("m2", OpKind::Mul, &[m1, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let config = MfsConfig::time_constrained(4);
        let (expanded, report, outcome) =
            schedule_structural(&g, &spec, &config, &[OpKind::Mul].into_iter().collect()).unwrap();
        assert_eq!(report.count(), 2);
        let v = verify(
            &expanded,
            &outcome.schedule,
            &spec,
            VerifyOptions::default(),
        );
        assert!(v.is_empty(), "{v:?}");
        let merged = pipelined_fu_counts(&outcome);
        assert_eq!(merged[&FuClass::Op(OpKind::Mul)], 1);
    }

    #[test]
    fn pipelined_unit_overlaps_independent_ops() {
        // 3 independent 2-cycle multiplies in 4 steps: non-pipelined
        // needs 2 multipliers; one pipelined multiplier suffices.
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        for i in 0..3 {
            b.op(&format!("m{i}"), OpKind::Mul, &[x, x]).unwrap();
        }
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let plain = mfs::schedule(&g, &spec, &MfsConfig::time_constrained(4)).unwrap();
        assert_eq!(plain.fu_counts()[&FuClass::Op(OpKind::Mul)], 2);
        let (_, _, piped) = schedule_structural(
            &g,
            &spec,
            &MfsConfig::time_constrained(4),
            &[OpKind::Mul].into_iter().collect(),
        )
        .unwrap();
        assert_eq!(pipelined_fu_counts(&piped)[&FuClass::Op(OpKind::Mul)], 1);
    }
}
