//! Cooperative cancellation for long-running scheduling passes.
//!
//! A [`CancelToken`] is threaded into a run through
//! [`crate::mfs::MfsConfig::with_cancel`] /
//! [`crate::mfsa::MfsaConfig::with_cancel`]. The schedulers poll it at
//! *checkpoints* — before frame computation, at every pass restart and
//! once per operation placement — and abort with
//! [`crate::MoveFrameError::Cancelled`] when it fires. Serving stacks
//! use this for per-request deadlines and graceful shutdown; a token
//! that never fires ([`CancelToken::never`], the default) makes every
//! checkpoint a branch on a `None`, so batch runs pay nothing.
//!
//! Cancellation is strictly an early *exit*, never a different answer:
//! a run that completes under a token is bit-identical to one without.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::MoveFrameError;

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation token with an optional deadline.
///
/// Clones share one flag: cancelling any clone cancels them all.
///
/// ```
/// use moveframe::CancelToken;
///
/// let token = CancelToken::manual();
/// assert!(!token.is_cancelled());
/// token.cancel();
/// assert!(token.is_cancelled());
/// assert!(token.checkpoint().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never fires; checkpoints against it are free.
    pub const fn never() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A token fired only by an explicit [`CancelToken::cancel`] call.
    pub fn manual() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that fires once `timeout` has elapsed from now (or on an
    /// explicit [`CancelToken::cancel`] call, whichever comes first).
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        Self::deadline_at(Instant::now() + timeout)
    }

    /// A token that fires at the absolute instant `deadline`.
    pub fn deadline_at(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// Fires the token: every clone reports cancelled from now on.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Release);
        }
    }

    /// Whether the token has fired (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.flag.load(Ordering::Acquire)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// The scheduler-side poll: `Err(MoveFrameError::Cancelled)` once
    /// the token has fired, `Ok(())` before.
    pub fn checkpoint(&self) -> Result<(), MoveFrameError> {
        if self.is_cancelled() {
            Err(MoveFrameError::Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_is_free_and_never_fires() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        assert!(t.checkpoint().is_ok());
        assert!(CancelToken::default().checkpoint().is_ok());
    }

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::manual();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
        assert!(matches!(a.checkpoint(), Err(MoveFrameError::Cancelled)));
    }

    #[test]
    fn expired_deadline_fires_immediately() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }
}
