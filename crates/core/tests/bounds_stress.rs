//! Randomized stress: the incrementally-maintained `BoundsCache` (and
//! the chaining offset table it repairs on vacate) must agree with a
//! cold rebuild after any interleaving of probe-driven placements and
//! vacates, for every node, under plain, multicycle and chained specs.

use hls_celllib::{ClockPeriod, Delay, OpKind, TimingSpec};
use hls_dfg::{Dfg, DfgBuilder, NodeId, SignalId, SignalSource};
use hls_schedule::{chained_frames, CStep, FuIndex, Grid, Schedule, Slot, TimeFrames, UnitId};
use moveframe::{probe_move_frame, BoundsCache};
use proptest::prelude::*;

/// A cold cache for the current schedule: replay every live assignment
/// onto a fresh cache (the monotone merges then yield the true bounds).
fn cold(dfg: &Dfg, spec: &TimingSpec, clock: Option<ClockPeriod>, sched: &Schedule) -> BoundsCache {
    let mut b = BoundsCache::new(dfg, spec, clock);
    for id in dfg.node_ids() {
        if let Some(step) = sched.start(id) {
            b.on_assign(dfg, id, step);
        }
    }
    b
}

/// The true finish offsets of the current schedule, recomputed from
/// scratch in dependency (index) order: a chainable scheduled node
/// accumulates the largest offset among same-step chainable
/// predecessors plus its own delay.
fn cold_offsets(
    dfg: &Dfg,
    spec: &TimingSpec,
    clock: Option<ClockPeriod>,
    bounds: &BoundsCache,
    sched: &Schedule,
) -> Vec<Delay> {
    let chainable = |n: NodeId| {
        clock.is_some() && bounds.cycles(n) == 1 && dfg.node(n).kind().delay(spec).as_u32() > 0
    };
    let mut offsets = vec![Delay::ZERO; dfg.node_count()];
    for q in dfg.node_ids() {
        let Some(start) = sched.start(q) else {
            continue;
        };
        if !chainable(q) {
            continue;
        }
        let mut base = Delay::ZERO;
        for &p in dfg.preds(q) {
            if !chainable(p) {
                continue;
            }
            if let Some(ps) = sched.start(p) {
                if ps.finish(bounds.cycles(p)) == start {
                    base = base.max(offsets[p.index()]);
                }
            }
        }
        offsets[q.index()] = base + dfg.node(q).kind().delay(spec);
    }
    offsets
}

fn assert_state_matches(
    dfg: &Dfg,
    warm: &BoundsCache,
    warm_offsets: &[Delay],
    cold: &BoundsCache,
    cold_offsets: &[Delay],
    trail: &str,
) {
    for id in dfg.node_ids() {
        assert_eq!(
            warm.pred_finish(id),
            cold.pred_finish(id),
            "stale pred_finish for {} after {trail}",
            dfg.node(id).name()
        );
        assert_eq!(
            warm.succ_start(id),
            cold.succ_start(id),
            "stale succ_start for {} after {trail}",
            dfg.node(id).name()
        );
        assert_eq!(
            warm_offsets[id.index()],
            cold_offsets[id.index()],
            "stale chaining offset for {} after {trail}",
            dfg.node(id).name()
        );
    }
}

/// A small layered DAG whose shape is driven by `seed`.
fn random_dag(seed: u64, layers: usize, width: usize) -> Dfg {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move |m: usize| -> usize {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % m as u64) as usize
    };
    let mut b = DfgBuilder::new("stress");
    let mut values: Vec<SignalId> = (0..3).map(|i| b.input(&format!("in{i}"))).collect();
    for l in 0..layers {
        let mut layer = Vec::new();
        for w in 0..width {
            let kinds = [OpKind::Add, OpKind::Sub, OpKind::Mul];
            let kind = kinds[next(kinds.len())];
            let a = values[next(values.len())];
            let c = values[next(values.len())];
            layer.push(b.op(&format!("l{l}n{w}"), kind, &[a, c]).unwrap());
        }
        values.extend(layer);
    }
    b.finish().unwrap()
}

/// A banked-memory DAG: a burst of loads feeds an arithmetic layer
/// whose results are stored back, with the builder's hazard tokens
/// serialising the accesses — the shape the iterate splice path
/// re-frames under the access-conflict frame.
fn random_banked_dag(seed: u64, ports: u32) -> Dfg {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move |m: usize| -> usize {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % m as u64) as usize
    };
    let mut b = DfgBuilder::new("banked");
    let i = b.input("i");
    let bank = b.declare_bank("ram", ports);
    let arr = b.declare_array("buf", 16, bank);
    let mut values = vec![i];
    for k in 0..2 + next(3) {
        values.push(b.load(&format!("ld{k}"), arr, i).unwrap());
    }
    for k in 0..2 + next(4) {
        let kinds = [OpKind::Add, OpKind::Sub, OpKind::Mul];
        let kind = kinds[next(kinds.len())];
        let a = values[next(values.len())];
        let c = values[next(values.len())];
        values.push(b.op(&format!("op{k}"), kind, &[a, c]).unwrap());
    }
    for k in 0..1 + next(2) {
        let v = values[next(values.len())];
        b.store(&format!("st{k}"), arr, i, v).unwrap();
    }
    b.finish().unwrap()
}

fn node_of(dfg: &Dfg, sig: SignalId) -> NodeId {
    match dfg.signal(sig).source() {
        SignalSource::Node(n) => n,
        _ => unreachable!(),
    }
}

fn stress(dfg: &Dfg, spec: &TimingSpec, clock: Option<ClockPeriod>, seed: u64, cs: u32) {
    let frames = match clock {
        Some(t) => chained_frames(dfg, spec, t, cs).unwrap().into_frames(),
        None => TimeFrames::compute(dfg, spec, cs).unwrap(),
    };
    let mut warm = BoundsCache::new(dfg, spec, clock);
    let mut sched = Schedule::new(dfg, cs);
    let mut offsets = vec![Delay::ZERO; dfg.node_count()];
    let ids: Vec<NodeId> = dfg.node_ids().collect();
    let mut state = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1;
    let mut next = move |m: u64| -> u64 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % m
    };
    let mut trail = String::new();
    for _ in 0..64 {
        let id = ids[next(ids.len() as u64) as usize];
        if sched.start(id).is_some() {
            sched.unassign(id);
            warm.on_unassign(dfg, &sched, &mut offsets, id);
            trail.push_str(&format!("vacate({}) ", dfg.node(id).name()));
        } else {
            // Probe the dependency-feasible range and pick a random step
            // inside it — the placements a real scheduler would make.
            let class = dfg.node(id).kind().fu_class();
            let probe_grid = Grid::new(class, cs, 1);
            let snap = probe_move_frame(
                dfg,
                spec,
                &frames,
                &sched,
                clock,
                &offsets,
                &warm,
                id,
                &probe_grid,
                1,
            );
            if snap.earliest_feasible > snap.latest_feasible {
                continue;
            }
            let span = u64::from(snap.latest_feasible.get() - snap.earliest_feasible.get()) + 1;
            let step = CStep::new(snap.earliest_feasible.get() + next(span) as u32);
            if step.finish(warm.cycles(id)).get() > cs {
                continue;
            }
            // The accumulated chain offset this placement would carry.
            let chain_base = dfg
                .preds(id)
                .iter()
                .filter_map(|&p| {
                    let ps = sched.start(p)?;
                    let chains = clock.is_some()
                        && warm.cycles(p) == 1
                        && dfg.node(p).kind().delay(spec).as_u32() > 0
                        && ps.finish(warm.cycles(p)) == step;
                    chains.then_some(offsets[p.index()])
                })
                .max()
                .unwrap_or(Delay::ZERO);
            let chainable = clock.is_some()
                && warm.cycles(id) == 1
                && dfg.node(id).kind().delay(spec).as_u32() > 0;
            sched.assign(
                id,
                Slot {
                    step,
                    unit: UnitId::Fu {
                        class,
                        index: FuIndex::new(1),
                    },
                },
            );
            warm.on_assign(dfg, id, step);
            offsets[id.index()] = if chainable {
                chain_base + dfg.node(id).kind().delay(spec)
            } else {
                Delay::ZERO
            };
            trail.push_str(&format!("place({}@{}) ", dfg.node(id).name(), step.get()));
        }
        let reference = cold(dfg, spec, clock, &sched);
        let reference_offsets = cold_offsets(dfg, spec, clock, &reference, &sched);
        assert_state_matches(dfg, &warm, &offsets, &reference, &reference_offsets, &trail);
    }
}

proptest! {
    #[test]
    fn warm_bounds_and_offsets_match_cold_rebuild(
        seed in 0u64..100_000,
        layers in 1usize..4,
        width in 1usize..4,
        spec_idx in 0usize..3,
    ) {
        let dfg = random_dag(seed, layers, width);
        let (spec, clock) = match spec_idx {
            0 => (TimingSpec::uniform_single_cycle(), None),
            1 => (TimingSpec::two_cycle_multiply(), None),
            _ => (TimingSpec::with_delays(), Some(ClockPeriod::new(100))),
        };
        stress(&dfg, &spec, clock, seed, 12);
    }

    /// Same contract under memory banks: hazard-token edges and the
    /// access-conflict frame must not leave the warm cache or offset
    /// table stale through any vacate/place interleaving.
    #[test]
    fn warm_bounds_match_cold_rebuild_under_banks(
        seed in 0u64..100_000,
        ports in 1u32..3,
        spec_idx in 0usize..2,
    ) {
        let dfg = random_banked_dag(seed, ports);
        let spec = match spec_idx {
            0 => TimingSpec::uniform_single_cycle(),
            _ => TimingSpec::two_cycle_multiply(),
        };
        stress(&dfg, &spec, None, seed, 12);
    }
}

/// The simplest staleness shape: a node whose only predecessor is
/// vacated must see its bound reset immediately.
#[test]
fn vacating_the_only_predecessor_resets_the_bound() {
    let mut b = DfgBuilder::new("g");
    let x = b.input("x");
    let p = b.op("p", OpKind::Add, &[x, x]).unwrap();
    let q = b.op("q", OpKind::Add, &[p, x]).unwrap();
    let dfg = b.finish().unwrap();
    let (p, q) = (node_of(&dfg, p), node_of(&dfg, q));
    let spec = TimingSpec::uniform_single_cycle();
    let mut sched = Schedule::new(&dfg, 8);
    let mut bounds = BoundsCache::new(&dfg, &spec, None);
    let mut offsets = vec![Delay::ZERO; dfg.node_count()];
    sched.assign(
        p,
        Slot {
            step: CStep::new(3),
            unit: UnitId::Fu {
                class: dfg.node(p).kind().fu_class(),
                index: FuIndex::new(1),
            },
        },
    );
    bounds.on_assign(&dfg, p, CStep::new(3));
    assert_eq!(bounds.pred_finish(q), 3);
    sched.unassign(p);
    bounds.on_unassign(&dfg, &sched, &mut offsets, p);
    assert_eq!(bounds.pred_finish(q), 0, "stale bound after vacate");
    assert_eq!(bounds.succ_start(p), u32::MAX);
}
