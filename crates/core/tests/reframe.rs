//! Vacate/re-frame determinism: removing an operation from the dense
//! scheduler state (schedule slot, bounds cache, occupancy grid, offset
//! table) and re-placing it identically must reproduce the *exact*
//! `FrameSnapshot` a cold rebuild computes — including the chaining
//! boundary step and the memory `af_steps`. This is the contract that
//! lets local rescheduling mutate state in place instead of rebuilding.

use hls_celllib::{ClockPeriod, Delay, OpKind, TimingSpec};
use hls_dfg::{Dfg, DfgBuilder, FuClass, NodeId, SignalSource};
use hls_schedule::{chained_frames, CStep, FuIndex, Grid, Schedule, Slot, TimeFrames, UnitId};
use moveframe::{probe_move_frame, BoundsCache};

/// Dense scheduler state for one grid class, mutated in lock-step.
struct State {
    sched: Schedule,
    bounds: BoundsCache,
    grid: Grid,
    offsets: Vec<Delay>,
}

impl State {
    fn new(dfg: &Dfg, spec: &TimingSpec, clock: Option<ClockPeriod>, grid: Grid, cs: u32) -> State {
        State {
            sched: Schedule::new(dfg, cs),
            bounds: BoundsCache::new(dfg, spec, clock),
            grid,
            offsets: vec![Delay::ZERO; dfg.node_count()],
        }
    }

    fn place(&mut self, dfg: &Dfg, node: NodeId, step: CStep, fu: FuIndex, offset: Delay) {
        let class = dfg.node(node).kind().fu_class();
        self.sched.assign(
            node,
            Slot {
                step,
                unit: UnitId::Fu { class, index: fu },
            },
        );
        self.bounds.on_assign(dfg, node, step);
        self.grid.occupy(node, step, fu, self.bounds.cycles(node));
        self.offsets[node.index()] = offset;
    }

    fn vacate(&mut self, dfg: &Dfg, node: NodeId) {
        self.sched.unassign(node);
        self.bounds
            .on_unassign(dfg, &self.sched, &mut self.offsets, node);
        self.grid.vacate(node);
    }
}

fn node_of(dfg: &Dfg, sig: hls_dfg::SignalId) -> NodeId {
    match dfg.signal(sig).source() {
        SignalSource::Node(n) => n,
        _ => unreachable!("op outputs come from nodes"),
    }
}

#[test]
fn reframe_after_vacate_matches_cold_recompute_with_chaining() {
    // a = x + y ; c = a + y ; d = c + y, under a 100ns clock with 48ns
    // adds: a and c chain into step 1, so d's frame opens at the chained
    // boundary (step 1 is infeasible — 3 × 48 > 100 — but step 2 is not
    // gated by a full extra step).
    let mut b = DfgBuilder::new("g");
    let x = b.input("x");
    let y = b.input("y");
    let a = b.op("a", OpKind::Add, &[x, y]).unwrap();
    let c = b.op("c", OpKind::Add, &[a, y]).unwrap();
    let d = b.op("d", OpKind::Add, &[c, y]).unwrap();
    let dfg = b.finish().unwrap();
    let (a, c, d) = (node_of(&dfg, a), node_of(&dfg, c), node_of(&dfg, d));
    let spec = TimingSpec::with_delays();
    let clock = ClockPeriod::new(100);
    let cs = 3;
    let frames = chained_frames(&dfg, &spec, clock, cs)
        .unwrap()
        .into_frames();
    let class = FuClass::Op(OpKind::Add);

    let probe = |st: &State| {
        probe_move_frame(
            &dfg,
            &spec,
            &frames,
            &st.sched,
            Some(clock),
            &st.offsets,
            &st.bounds,
            d,
            &st.grid,
            2,
        )
    };
    let place_a =
        |st: &mut State| st.place(&dfg, a, CStep::new(1), FuIndex::new(1), Delay::new(48));
    let place_c =
        |st: &mut State| st.place(&dfg, c, CStep::new(1), FuIndex::new(2), Delay::new(96));

    // Warm state: place a and c, snapshot d's frame.
    let mut warm = State::new(&dfg, &spec, Some(clock), Grid::new(class, cs, 2), cs);
    place_a(&mut warm);
    place_c(&mut warm);
    let before = probe(&warm);
    // The chained boundary must actually be in play for this test to
    // mean anything: step 1 is excluded only by the clock budget.
    assert_eq!(before.earliest_feasible, CStep::new(2));

    // Vacate c, then re-place it identically: the incremental state must
    // round-trip.
    warm.vacate(&dfg, c);
    let widened = probe(&warm);
    assert_eq!(
        widened.earliest_feasible,
        CStep::new(2),
        "with only a placed, d still sits above a's successor chain"
    );
    place_c(&mut warm);
    let after = probe(&warm);
    assert_eq!(before, after, "vacate + identical re-place must round-trip");

    // Cold rebuild from scratch must agree bit-for-bit.
    let mut cold = State::new(&dfg, &spec, Some(clock), Grid::new(class, cs, 2), cs);
    place_a(&mut cold);
    place_c(&mut cold);
    assert_eq!(before, probe(&cold), "cold recompute must match");
}

#[test]
fn vacated_chain_source_does_not_leave_a_stale_feasible_range() {
    // Regression: a = x + y ; c = a + y ; d = c + y under a 100ns clock
    // with 48ns adds, with a and c chained into step 2 (one step past
    // their ASAP, so the static frame cannot mask the boundary check).
    // c's finish offset is 96 and d's frame opens at step 3
    // (96 + 48 > 100). After vacating a, c's true chain offset drops to
    // 48, so d fits into step 2 (48 + 48 ≤ 100). `on_unassign` used to
    // repair only the pred/succ step bounds and leave c's accumulated
    // offset at 96, making a probe of d report `earliest_feasible = 3`
    // — one step stale — until c itself was touched.
    let mut b = DfgBuilder::new("g");
    let x = b.input("x");
    let y = b.input("y");
    let a = b.op("a", OpKind::Add, &[x, y]).unwrap();
    let c = b.op("c", OpKind::Add, &[a, y]).unwrap();
    let d = b.op("d", OpKind::Add, &[c, y]).unwrap();
    let dfg = b.finish().unwrap();
    let (a, c, d) = (node_of(&dfg, a), node_of(&dfg, c), node_of(&dfg, d));
    let spec = TimingSpec::with_delays();
    let clock = ClockPeriod::new(100);
    let cs = 3;
    let frames = chained_frames(&dfg, &spec, clock, cs)
        .unwrap()
        .into_frames();
    let class = FuClass::Op(OpKind::Add);

    let probe = |st: &State| {
        probe_move_frame(
            &dfg,
            &spec,
            &frames,
            &st.sched,
            Some(clock),
            &st.offsets,
            &st.bounds,
            d,
            &st.grid,
            2,
        )
    };

    let mut st = State::new(&dfg, &spec, Some(clock), Grid::new(class, cs, 2), cs);
    st.place(&dfg, a, CStep::new(2), FuIndex::new(1), Delay::new(48));
    st.place(&dfg, c, CStep::new(2), FuIndex::new(2), Delay::new(96));
    assert_eq!(probe(&st).earliest_feasible, CStep::new(3));

    st.vacate(&dfg, a);
    assert_eq!(
        st.offsets[c.index()],
        Delay::new(48),
        "vacating a must rebase c's chained offset"
    );
    assert_eq!(
        probe(&st).earliest_feasible,
        CStep::new(2),
        "with a gone, d chains after c inside step 2"
    );

    // A cold rebuild of the post-vacate state agrees bit-for-bit.
    let mut cold = State::new(&dfg, &spec, Some(clock), Grid::new(class, cs, 2), cs);
    cold.place(&dfg, c, CStep::new(2), FuIndex::new(2), Delay::new(48));
    assert_eq!(probe(&st), probe(&cold), "cold recompute must match");
}

#[test]
fn reframe_after_vacate_matches_cold_recompute_with_af_steps() {
    // One single-port bank, three loads: with two loads saturating steps
    // 1 and 2, the third load's frame carves both steps into `af_steps`.
    let mut b = DfgBuilder::new("mem");
    let i = b.input("i");
    let bank = b.declare_bank("ram", 1);
    let arr = b.declare_array("buf", 16, bank);
    let l0 = b.load("l0", arr, i).unwrap();
    let l1 = b.load("l1", arr, i).unwrap();
    let l2 = b.load("l2", arr, i).unwrap();
    let dfg = b.finish().unwrap();
    let (l0, l1, l2) = (node_of(&dfg, l0), node_of(&dfg, l1), node_of(&dfg, l2));
    let spec = TimingSpec::uniform_single_cycle();
    let cs = 4;
    let frames = TimeFrames::compute(&dfg, &spec, cs).unwrap();
    let class = dfg.node(l0).kind().fu_class();

    let probe = |st: &State| {
        probe_move_frame(
            &dfg,
            &spec,
            &frames,
            &st.sched,
            None,
            &st.offsets,
            &st.bounds,
            l2,
            &st.grid,
            1,
        )
    };

    let mut warm = State::new(&dfg, &spec, None, Grid::new(class, cs, 1), cs);
    warm.place(&dfg, l0, CStep::new(1), FuIndex::new(1), Delay::ZERO);
    warm.place(&dfg, l1, CStep::new(2), FuIndex::new(1), Delay::ZERO);
    let before = probe(&warm);
    assert_eq!(
        before.af_steps,
        vec![CStep::new(1), CStep::new(2)],
        "saturated port steps belong to the access-conflict frame"
    );

    warm.vacate(&dfg, l1);
    let widened = probe(&warm);
    assert_eq!(
        widened.af_steps,
        vec![CStep::new(1)],
        "vacating frees step 2 for the probe"
    );
    warm.place(&dfg, l1, CStep::new(2), FuIndex::new(1), Delay::ZERO);
    let after = probe(&warm);
    assert_eq!(before, after, "vacate + identical re-place must round-trip");

    let mut cold = State::new(&dfg, &spec, None, Grid::new(class, cs, 1), cs);
    cold.place(&dfg, l0, CStep::new(1), FuIndex::new(1), Delay::ZERO);
    cold.place(&dfg, l1, CStep::new(2), FuIndex::new(1), Delay::ZERO);
    assert_eq!(before, probe(&cold), "cold recompute must match");
}

#[test]
fn region_vacate_and_replace_matches_cold_recompute_under_banks() {
    // The iterate splice shape: vacate a whole region of bank accesses
    // at once, then re-place it in topo order at *different* (earlier)
    // slots. The incrementally-maintained state after the re-place must
    // be bit-identical to a cold rebuild of the new placement — af_steps
    // included — independently of hls-partition's stitcher.
    let mut b = DfgBuilder::new("mem");
    let i = b.input("i");
    let bank = b.declare_bank("ram", 1);
    let arr = b.declare_array("buf", 16, bank);
    let l0 = b.load("l0", arr, i).unwrap();
    let l1 = b.load("l1", arr, i).unwrap();
    let l2 = b.load("l2", arr, i).unwrap();
    let l3 = b.load("l3", arr, i).unwrap();
    let dfg = b.finish().unwrap();
    let (l0, l1, l2, l3) = (
        node_of(&dfg, l0),
        node_of(&dfg, l1),
        node_of(&dfg, l2),
        node_of(&dfg, l3),
    );
    let spec = TimingSpec::uniform_single_cycle();
    let cs = 5;
    let frames = TimeFrames::compute(&dfg, &spec, cs).unwrap();
    let class = dfg.node(l0).kind().fu_class();

    // l3 stays unscheduled and is the probe target throughout.
    let probe = |st: &State| {
        probe_move_frame(
            &dfg,
            &spec,
            &frames,
            &st.sched,
            None,
            &st.offsets,
            &st.bounds,
            l3,
            &st.grid,
            1,
        )
    };

    let mut warm = State::new(&dfg, &spec, None, Grid::new(class, cs, 1), cs);
    warm.place(&dfg, l0, CStep::new(1), FuIndex::new(1), Delay::ZERO);
    warm.place(&dfg, l1, CStep::new(3), FuIndex::new(1), Delay::ZERO);
    warm.place(&dfg, l2, CStep::new(4), FuIndex::new(1), Delay::ZERO);
    assert_eq!(
        probe(&warm).af_steps,
        vec![CStep::new(1), CStep::new(3), CStep::new(4)],
        "every occupied port step is access-conflict for l3"
    );

    // Whole-region vacate: both nodes leave before anything returns.
    warm.vacate(&dfg, l2);
    warm.vacate(&dfg, l1);
    assert_eq!(
        probe(&warm).af_steps,
        vec![CStep::new(1)],
        "a vacated region frees all its port slots at once"
    );

    // Re-place compressed (the Earlier sweep): l1 and l2 move up a step.
    warm.place(&dfg, l1, CStep::new(2), FuIndex::new(1), Delay::ZERO);
    warm.place(&dfg, l2, CStep::new(3), FuIndex::new(1), Delay::ZERO);
    let after = probe(&warm);
    assert_eq!(
        after.af_steps,
        vec![CStep::new(1), CStep::new(2), CStep::new(3)],
        "re-placed region claims its new port slots"
    );

    // Cold rebuild of the compressed placement agrees bit-for-bit.
    let mut cold = State::new(&dfg, &spec, None, Grid::new(class, cs, 1), cs);
    cold.place(&dfg, l0, CStep::new(1), FuIndex::new(1), Delay::ZERO);
    cold.place(&dfg, l1, CStep::new(2), FuIndex::new(1), Delay::ZERO);
    cold.place(&dfg, l2, CStep::new(3), FuIndex::new(1), Delay::ZERO);
    assert_eq!(after, probe(&cold), "cold recompute must match");
}

#[test]
fn store_hazard_tokens_survive_region_reframe() {
    // load → store → load on one array: the hazard tokens serialise the
    // accesses, so after vacating the store+second-load region the first
    // load alone bounds the region, and an identical re-place restores
    // the exact pre-vacate frame for a trailing probe.
    let mut b = DfgBuilder::new("mem");
    let i = b.input("i");
    let bank = b.declare_bank("ram", 1);
    let arr = b.declare_array("buf", 16, bank);
    let l0 = b.load("l0", arr, i).unwrap();
    let s0 = b.store("s0", arr, i, l0).unwrap();
    let l1 = b.load("l1", arr, i).unwrap();
    let l2 = b.load("l2", arr, i).unwrap();
    let dfg = b.finish().unwrap();
    let (l0, s0, l1, l2) = (
        node_of(&dfg, l0),
        node_of(&dfg, s0),
        node_of(&dfg, l1),
        node_of(&dfg, l2),
    );
    let spec = TimingSpec::uniform_single_cycle();
    let cs = 5;
    let frames = TimeFrames::compute(&dfg, &spec, cs).unwrap();
    let class = dfg.node(l0).kind().fu_class();

    let probe = |st: &State| {
        probe_move_frame(
            &dfg,
            &spec,
            &frames,
            &st.sched,
            None,
            &st.offsets,
            &st.bounds,
            l2,
            &st.grid,
            1,
        )
    };

    let mut warm = State::new(&dfg, &spec, None, Grid::new(class, cs, 1), cs);
    warm.place(&dfg, l0, CStep::new(1), FuIndex::new(1), Delay::ZERO);
    warm.place(&dfg, s0, CStep::new(2), FuIndex::new(1), Delay::ZERO);
    warm.place(&dfg, l1, CStep::new(3), FuIndex::new(1), Delay::ZERO);
    let before = probe(&warm);
    assert_eq!(
        before.earliest_feasible,
        CStep::new(3),
        "the WAR token chains l2 behind the store"
    );
    assert_eq!(
        before.af_steps,
        vec![CStep::new(3)],
        "only the dependency-feasible saturated step is access-conflict"
    );

    warm.vacate(&dfg, l1);
    warm.vacate(&dfg, s0);
    let widened = probe(&warm);
    assert_eq!(
        widened.earliest_feasible,
        CStep::new(3),
        "the static frame still floors l2 at its token-chain ASAP"
    );
    assert!(
        widened.af_steps.is_empty(),
        "the vacated region frees every in-range port slot"
    );

    warm.place(&dfg, s0, CStep::new(2), FuIndex::new(1), Delay::ZERO);
    warm.place(&dfg, l1, CStep::new(3), FuIndex::new(1), Delay::ZERO);
    let after = probe(&warm);
    assert_eq!(before, after, "vacate + identical re-place must round-trip");

    let mut cold = State::new(&dfg, &spec, None, Grid::new(class, cs, 1), cs);
    cold.place(&dfg, l0, CStep::new(1), FuIndex::new(1), Delay::ZERO);
    cold.place(&dfg, s0, CStep::new(2), FuIndex::new(1), Delay::ZERO);
    cold.place(&dfg, l1, CStep::new(3), FuIndex::new(1), Delay::ZERO);
    assert_eq!(before, probe(&cold), "cold recompute must match");
}
