//! Cost accounting — Table 2's `Cost`, `REG`, `MUX` and `MUXin` columns.

use std::fmt;

use hls_celllib::{Area, Library};

use crate::Datapath;

/// The area breakdown of a data path under a cell library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostReport {
    /// Total ALU area.
    pub alu_area: Area,
    /// Total register area.
    pub reg_area: Area,
    /// Total multiplexer area.
    pub mux_area: Area,
    /// Number of registers.
    pub reg_count: usize,
    /// Number of real (≥ 2 input) multiplexers.
    pub mux_count: usize,
    /// Total inputs over real multiplexers.
    pub mux_inputs: usize,
}

impl CostReport {
    /// Computes the report for `datapath` under `library`.
    pub fn compute(datapath: &Datapath, library: &Library) -> CostReport {
        let alu_area = datapath.alus().iter().map(|a| a.kind.area()).sum();
        let reg_count = datapath.register_count();
        let reg_area = library.register_area() * reg_count as u64;
        let mux_area = datapath
            .muxes()
            .iter()
            .filter(|m| m.is_real())
            .map(|m| library.mux().cost(m.sources.len()))
            .sum();
        CostReport {
            alu_area,
            reg_area,
            mux_area,
            reg_count,
            mux_count: datapath.mux_count(),
            mux_inputs: datapath.mux_inputs(),
        }
    }

    /// The overall cost (ALU + REG + MUX area) — Table 2's `Cost`.
    pub fn total(&self) -> Area {
        self.alu_area + self.reg_area + self.mux_area
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cost {} (ALU {}, REG {} x{}, MUX {} x{}/{} inputs)",
            self.total(),
            self.alu_area,
            self.reg_area,
            self.reg_count,
            self.mux_area,
            self.mux_count,
            self.mux_inputs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::AluAllocation;
    use hls_celllib::{OpKind, TimingSpec};
    use hls_dfg::DfgBuilder;
    use hls_schedule::{CStep, Schedule, Slot, UnitId};

    #[test]
    fn report_adds_up() {
        let lib = Library::ncr_like();
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let p = b.op("p", OpKind::Add, &[x, y]).unwrap();
        b.op("q", OpKind::Add, &[p, x]).unwrap();
        let g = b.finish().unwrap();
        let mut s = Schedule::new(&g, 2);
        s.assign(
            g.node_by_name("p").unwrap(),
            Slot {
                step: CStep::new(1),
                unit: UnitId::Alu { instance: 0 },
            },
        );
        s.assign(
            g.node_by_name("q").unwrap(),
            Slot {
                step: CStep::new(2),
                unit: UnitId::Alu { instance: 0 },
            },
        );
        let mut alloc = AluAllocation::new();
        alloc.push(lib.alu_by_name("add").unwrap().clone());
        let dp = Datapath::build(&g, &s, &alloc, &TimingSpec::uniform_single_cycle()).unwrap();
        let report = CostReport::compute(&dp, &lib);
        assert_eq!(
            report.total(),
            report.alu_area + report.reg_area + report.mux_area
        );
        assert_eq!(report.alu_area, lib.fu_area(OpKind::Add).unwrap());
        assert_eq!(
            report.reg_area,
            lib.register_area() * report.reg_count as u64
        );
        assert!(report.total() > Area::ZERO);
        assert!(report.to_string().contains("cost"));
    }
}
