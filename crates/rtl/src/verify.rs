//! Independent structural verification of a data path.

use std::collections::BTreeMap;

use hls_celllib::TimingSpec;
use hls_dfg::{Dfg, NodeId, NodeKind, SignalId, SignalSource};
use hls_schedule::Schedule;

use crate::{AluId, Datapath, NetSource};

/// A structural defect found by [`verify_datapath`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtlViolation {
    /// Two non-exclusive operations execute on the same ALU in
    /// overlapping steps.
    AluConflict {
        /// First operation.
        a: NodeId,
        /// Second operation.
        b: NodeId,
        /// The contended instance.
        alu: AluId,
    },
    /// An operation's operand source is missing from the corresponding
    /// mux input list.
    MuxMissingSource {
        /// The operation.
        node: NodeId,
        /// The port (1 or 2) whose mux lacks the source.
        port: u8,
    },
    /// A stored signal's register holds an overlapping life span.
    RegisterOverlap {
        /// The register with colliding spans.
        register: crate::RegId,
    },
    /// A signal consumed strictly after production has no register.
    Unstored {
        /// The signal.
        signal: SignalId,
        /// The consumer.
        consumer: NodeId,
    },
    /// Two non-exclusive memory accesses execute on the same bank port
    /// in the same control step.
    PortConflict {
        /// First access.
        a: NodeId,
        /// Second access.
        b: NodeId,
        /// The contended bank.
        bank: hls_dfg::BankId,
        /// The contended port.
        port: u32,
    },
}

/// Re-derives every structural requirement of `datapath` from the graph
/// and schedule, independently of how it was built.
pub fn verify_datapath(
    dfg: &Dfg,
    schedule: &Schedule,
    datapath: &Datapath,
    spec: &TimingSpec,
) -> Vec<RtlViolation> {
    let mut violations = Vec::new();

    // ALU occupancy.
    for alu in datapath.alus() {
        for (i, &a) in alu.ops.iter().enumerate() {
            for &b in &alu.ops[i + 1..] {
                if dfg.mutually_exclusive(a, b) {
                    continue;
                }
                let (Some(sa), Some(sb)) = (schedule.start(a), schedule.start(b)) else {
                    continue;
                };
                let fa = sa.finish(dfg.node(a).kind().cycles(spec));
                let fb = sb.finish(dfg.node(b).kind().cycles(spec));
                if sa <= fb && sb <= fa {
                    violations.push(RtlViolation::AluConflict { a, b, alu: alu.id });
                }
            }
        }
    }

    // Mux coverage: each op's oriented sources must be on its ALU ports.
    let mut mux_of: BTreeMap<(AluId, u8), &crate::MuxInfo> = BTreeMap::new();
    for m in datapath.muxes() {
        mux_of.insert((m.alu, m.port), m);
    }
    for alu in datapath.alus() {
        for &op in &alu.ops {
            let Some((p1, p2)) = datapath.operand_sources(op) else {
                violations.push(RtlViolation::MuxMissingSource { node: op, port: 1 });
                continue;
            };
            let m1 = mux_of.get(&(alu.id, 1));
            if !m1.is_some_and(|m| m.sources.contains(&p1)) {
                violations.push(RtlViolation::MuxMissingSource { node: op, port: 1 });
            }
            if let Some(p2) = p2 {
                let m2 = mux_of.get(&(alu.id, 2));
                if !m2.is_some_and(|m| m.sources.contains(&p2)) {
                    violations.push(RtlViolation::MuxMissingSource { node: op, port: 2 });
                }
            }
        }
    }

    // Bank-port occupancy: single-cycle accesses, so a conflict is two
    // accesses sharing a step on one port.
    for p in datapath.mem_ports() {
        for (i, &a) in p.accesses.iter().enumerate() {
            for &b in &p.accesses[i + 1..] {
                if dfg.mutually_exclusive(a, b) {
                    continue;
                }
                if let (Some(sa), Some(sb)) = (schedule.start(a), schedule.start(b)) {
                    if sa == sb {
                        violations.push(RtlViolation::PortConflict {
                            a,
                            b,
                            bank: p.bank,
                            port: p.port,
                        });
                    }
                }
            }
        }
    }

    // Register life spans must not overlap within a register.
    for (reg, spans) in datapath.register_allocation().iter() {
        for (i, a) in spans.iter().enumerate() {
            for b in &spans[i + 1..] {
                if a.overlaps(b) {
                    violations.push(RtlViolation::RegisterOverlap { register: reg });
                }
            }
        }
    }

    // Every non-chained consumption must come from a register (and the
    // oriented operand sources must say so).
    for id in dfg.node_ids() {
        let node = dfg.node(id);
        if matches!(node.kind(), NodeKind::LoopBody { .. }) {
            continue;
        }
        let Some(c_start) = schedule.start(id) else {
            continue;
        };
        // A memory access's physical operands are its address (and, for
        // a store, its data); trailing ordering tokens are dependency
        // edges only and need no storage.
        let physical_inputs: &[SignalId] = if node.kind().is_mem_access() {
            let n = match node.kind() {
                NodeKind::Store { .. } => 2,
                _ => 1,
            };
            &node.inputs()[..n]
        } else {
            node.inputs()
        };
        for &sig in physical_inputs {
            if let SignalSource::Node(producer) = dfg.signal(sig).source() {
                let Some(p_finish) = schedule.finish(producer, dfg, spec) else {
                    continue;
                };
                if c_start > p_finish {
                    let stored = datapath.register_allocation().register_of(sig).is_some();
                    let sourced = datapath.operand_sources(id).is_some_and(|(a, b)| {
                        let want = datapath
                            .register_allocation()
                            .register_of(sig)
                            .map(NetSource::Register);
                        match want {
                            None => false,
                            Some(w) => a == w || b == Some(w),
                        }
                    });
                    if !stored || !sourced {
                        violations.push(RtlViolation::Unstored {
                            signal: sig,
                            consumer: id,
                        });
                    }
                }
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AluAllocation;
    use hls_celllib::{Library, OpKind};
    use hls_dfg::DfgBuilder;
    use hls_schedule::{CStep, Slot, UnitId};

    fn fixture() -> (Dfg, Schedule, AluAllocation, TimingSpec) {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let p = b.op("p", OpKind::Add, &[x, y]).unwrap();
        b.op("q", OpKind::Sub, &[p, y]).unwrap();
        let g = b.finish().unwrap();
        let mut s = Schedule::new(&g, 2);
        s.assign(
            g.node_by_name("p").unwrap(),
            Slot {
                step: CStep::new(1),
                unit: UnitId::Alu { instance: 0 },
            },
        );
        s.assign(
            g.node_by_name("q").unwrap(),
            Slot {
                step: CStep::new(2),
                unit: UnitId::Alu { instance: 0 },
            },
        );
        let lib = Library::ncr_like();
        let mut alloc = AluAllocation::new();
        alloc.push(lib.alu_by_name("add_sub").unwrap().clone());
        (g, s, alloc, TimingSpec::uniform_single_cycle())
    }

    #[test]
    fn well_formed_datapath_verifies_clean() {
        let (g, s, alloc, spec) = fixture();
        let dp = Datapath::build(&g, &s, &alloc, &spec).unwrap();
        assert!(verify_datapath(&g, &s, &dp, &spec).is_empty());
    }

    #[test]
    fn alu_conflict_is_detected_when_schedule_shifts() {
        let (g, mut s, alloc, spec) = fixture();
        let dp = Datapath::build(&g, &s, &alloc, &spec).unwrap();
        // Move q onto p's step after building: conflict.
        s.assign(
            g.node_by_name("q").unwrap(),
            Slot {
                step: CStep::new(1),
                unit: UnitId::Alu { instance: 0 },
            },
        );
        let v = verify_datapath(&g, &s, &dp, &spec);
        assert!(v
            .iter()
            .any(|x| matches!(x, RtlViolation::AluConflict { .. })));
    }
}
