//! Multiplexer input packing (paper §5.6).
//!
//! "MFSA uses a constructive algorithm which reads the set of operations
//! assigned to a specific ALU and their corresponding inputs and
//! constructs two lists of input signals L1 and L2 such that |L1| + |L2|
//! is minimum. Briefly, the algorithm first assigns the non-commutative
//! operations to the appropriate MUX's of an ALU and then checks two
//! possibilities for arranging input signals for each commutative
//! operation in L1 and L2."

use std::collections::{BTreeSet, HashMap, HashSet};
use std::hash::Hash;

/// One operation's operand sources as seen by the ALU's two input ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MuxOp<S> {
    /// First operand's source.
    pub left: S,
    /// Second operand's source (`None` for unary operations, which only
    /// use port 1).
    pub right: Option<S>,
    /// Whether the operand order may be swapped.
    pub commutative: bool,
}

/// The packing produced by [`pack`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxPacking<S> {
    /// Sources multiplexed onto ALU input port 1.
    pub l1: BTreeSet<S>,
    /// Sources multiplexed onto ALU input port 2.
    pub l2: BTreeSet<S>,
    /// Chosen orientation per input op: `true` = swapped.
    pub swapped: Vec<bool>,
}

impl<S: Ord> MuxPacking<S> {
    /// `|L1| + |L2|` — the quantity the packing minimises.
    pub fn total_inputs(&self) -> usize {
        self.l1.len() + self.l2.len()
    }
}

/// Packs the operand sources of an ALU's operations onto its two input
/// ports, following the paper's constructive algorithm: non-commutative
/// operations bind their operands to ports 1/2 verbatim; commutative
/// operations then greedily pick the orientation adding the fewest new
/// sources (preferring the unswapped order on ties, and re-examined in a
/// second pass once all sources are known).
///
/// ```
/// use hls_rtl::muxopt::{pack, MuxOp};
///
/// // sub(a,b) fixes a→L1, b→L2; add(b,a) can swap to reuse both lines.
/// let ops = [
///     MuxOp { left: "a", right: Some("b"), commutative: false },
///     MuxOp { left: "b", right: Some("a"), commutative: true },
/// ];
/// let packing = pack(&ops);
/// assert_eq!(packing.total_inputs(), 2);
/// assert!(packing.swapped[1]);
/// ```
pub fn pack<S: Ord + Hash + Clone>(ops: &[MuxOp<S>]) -> MuxPacking<S> {
    let p = pack_counts(ops);
    MuxPacking {
        l1: p.cnt1.into_keys().collect(),
        l2: p.cnt2.into_keys().collect(),
        swapped: p.swapped,
    }
}

/// The committed refcount state of a packed instance: per-port
/// contribution counts plus the chosen orientations. This is the state
/// the MFSA inner loop keeps alive between candidate evaluations —
/// [`pack_with_seed`] restarts from it instead of replaying the three
/// cold passes, and [`PackSeed::try_insert`] extends it by one op when
/// that is provably cost-neutral.
#[derive(Debug, Clone)]
pub struct PackSeed<S> {
    cnt1: HashMap<S, usize>,
    cnt2: HashMap<S, usize>,
    swapped: Vec<bool>,
    /// Port keys claimed by the fixed (pass-1) operations alone — the
    /// coverage a fixed insertion must have to leave passes 1–2
    /// undisturbed.
    fixed1: HashSet<S>,
    fixed2: HashSet<S>,
    /// Whether the refinement pass was a no-op, i.e. the greedy pass-2
    /// state *is* the committed fixpoint. Only then is an insertion's
    /// replay of the cold construction predictable, so only then does
    /// [`PackSeed::try_insert`] accept.
    stable: bool,
}

impl<S> PackSeed<S> {
    /// Number of operations the seed covers.
    pub fn len(&self) -> usize {
        self.swapped.len()
    }

    /// Whether the seed covers no operations.
    pub fn is_empty(&self) -> bool {
        self.swapped.is_empty()
    }

    /// `(|L1|, |L2|)` of the committed packing.
    pub fn cost(&self) -> (usize, usize) {
        (self.cnt1.len(), self.cnt2.len())
    }
}

impl<S: Ord + Hash + Clone> PackSeed<S> {
    /// The safe one-op insertion rule: decides whether appending `op`
    /// to the packed instance is **provably cost-neutral** — the cold
    /// three-pass pack of `ops ∪ {op}` commits the exact same source
    /// lists (and orientations) as the seed, so the mux cost delta is
    /// zero and no repack is needed. Returns the orientation the cold
    /// pack would choose (`Some(swapped)`), or `None` when neutrality
    /// cannot be established and the caller must fall back to a full
    /// repack.
    ///
    /// The proof obligations behind the `Some` cases:
    ///
    /// * the seed must be refinement-**stable** (pass 3 changed
    ///   nothing), so the greedy pass-2 state equals the committed
    ///   fixpoint and the cold replay below reasons about the same
    ///   state the seed stores;
    /// * a **commutative** candidate is appended last, so cold passes
    ///   1–2 replay the seed's decisions verbatim; if either
    ///   orientation finds both sources already on the respective
    ///   ports, greedy adds no lines (preferring unswapped on the
    ///   0-vs-0 tie, mirrored here);
    /// * a **fixed** (non-commutative or unary) candidate joins pass 1,
    ///   so its keys must already be claimed by the *fixed* ops —
    ///   then every `contains_key` query pass 2 makes is unchanged and
    ///   the earlier greedy decisions replay verbatim;
    /// * refinement stays a no-op afterwards: a covered insertion only
    ///   increments refcounts on existing lines, which can only turn
    ///   sole-contributor lines into shared ones — every flip delta
    ///   weakly increases, and the candidate's own flip cannot profit
    ///   because both its lines are shared (count ≥ 2).
    pub fn neutral_insertion(&self, op: &MuxOp<S>) -> Option<bool> {
        if !self.stable {
            return None;
        }
        if !op.commutative || op.right.is_none() {
            let right_ok = match &op.right {
                Some(r) => self.fixed2.contains(r),
                None => true,
            };
            return (self.fixed1.contains(&op.left) && right_ok).then_some(false);
        }
        let r = op.right.as_ref().expect("unary handled above");
        if self.cnt1.contains_key(&op.left) && self.cnt2.contains_key(r) {
            Some(false)
        } else if self.cnt1.contains_key(r) && self.cnt2.contains_key(&op.left) {
            Some(true)
        } else {
            None
        }
    }

    /// Applies [`Self::neutral_insertion`]: extends the seed by `op`
    /// without a repack when the insertion is provably cost-neutral
    /// (the seed then covers `ops ∪ {op}` and [`pack_with_seed`] on the
    /// extended list reproduces the cold pack exactly). Returns whether
    /// the op was absorbed; on `false` the seed is unchanged and the
    /// caller owns the full-repack fallback.
    pub fn try_insert(&mut self, op: &MuxOp<S>) -> bool {
        let Some(swap) = self.neutral_insertion(op) else {
            return false;
        };
        let (a, b) = if swap {
            (op.right.as_ref().expect("only binary ops swap"), &op.left)
        } else {
            (&op.left, op.right.as_ref().unwrap_or(&op.left))
        };
        add(&mut self.cnt1, a);
        if op.right.is_some() {
            add(&mut self.cnt2, b);
        }
        self.swapped.push(swap);
        true
    }
}

/// Packs `ops` and returns the committed refcount state instead of the
/// sorted source lists — the handle an instance keeps for later
/// [`pack_with_seed`] restarts and [`PackSeed::try_insert`] extensions.
pub fn pack_seed<S: Ord + Hash + Clone>(ops: &[MuxOp<S>]) -> PackSeed<S> {
    pack_counts(ops)
}

/// Re-packs an instance starting from its committed refcount multiset:
/// the seeded counts and orientations stand in for passes 1–2, and only
/// the refinement pass runs (a no-op when the seed is already the
/// pass-3 fixpoint [`pack`] commits, so the result is identical to the
/// cold pack — the proptest below pins this). Restarting is what makes
/// the state reusable across MFSA candidate evaluations; extending the
/// op list under a seed is [`PackSeed::try_insert`].
///
/// # Panics
///
/// Panics when the seed does not cover exactly `ops`.
pub fn pack_with_seed<S: Ord + Hash + Clone>(
    ops: &[MuxOp<S>],
    seed: &PackSeed<S>,
) -> MuxPacking<S> {
    assert_eq!(
        seed.len(),
        ops.len(),
        "pack_with_seed: seed covers {} op(s), instance has {}",
        seed.len(),
        ops.len()
    );
    let mut cnt1 = seed.cnt1.clone();
    let mut cnt2 = seed.cnt2.clone();
    let mut swapped = seed.swapped.clone();
    refine_orientations(ops, &mut cnt1, &mut cnt2, &mut swapped);
    MuxPacking {
        l1: cnt1.into_keys().collect(),
        l2: cnt2.into_keys().collect(),
        swapped,
    }
}

/// `(|L1|, |L2|)` of the packing [`pack`] would produce, without
/// materialising the sorted source lists. This is the candidate-pricing
/// entry point: the MFSA inner loop only needs the two line counts for
/// its `f_MUX` delta, and skipping the list construction keeps the hot
/// path allocation-free beyond the count maps themselves.
pub fn pack_cost<S: Ord + Hash + Clone>(ops: &[MuxOp<S>]) -> (usize, usize) {
    pack_counts(ops).cost()
}

/// The shared constructive core: contribution counts per port plus the
/// chosen orientations. The maps are hashed, not ordered — the algorithm
/// only ever point-queries them (`contains_key`, sole-contributor
/// checks), never iterates, so hashing cannot change any decision;
/// [`pack`] sorts the surviving keys at the end, which is where the
/// deterministic `l1`/`l2` order comes from.
fn pack_counts<S: Ord + Hash + Clone>(ops: &[MuxOp<S>]) -> PackSeed<S> {
    // Multiset view of the ports: every op contributes exactly one
    // source line to port 1 and (when binary) one to port 2 under its
    // current orientation; |L1| and |L2| are the distinct-key counts.
    // Keeping contribution *counts* instead of plain sets is what lets
    // the refinement pass price a flip in O(1) instead of re-packing
    // all k operations from scratch.
    let mut cnt1: HashMap<S, usize> = HashMap::with_capacity(ops.len());
    let mut cnt2: HashMap<S, usize> = HashMap::with_capacity(ops.len());
    let mut swapped = vec![false; ops.len()];

    // Pass 1: fixed (non-commutative and unary) operations.
    for op in ops {
        if !op.commutative || op.right.is_none() {
            add(&mut cnt1, &op.left);
            if let Some(r) = &op.right {
                add(&mut cnt2, r);
            }
        }
    }
    let fixed1: HashSet<S> = cnt1.keys().cloned().collect();
    let fixed2: HashSet<S> = cnt2.keys().cloned().collect();

    // Pass 2: commutative operations, greedy orientation. Like the
    // original set-based construction, each op only sees the lines the
    // fixed ops and *earlier* commutative ops have claimed.
    for (i, op) in ops.iter().enumerate() {
        if !op.commutative || op.right.is_none() {
            continue;
        }
        let r = op.right.as_ref().expect("checked above");
        let cost_plain =
            usize::from(!cnt1.contains_key(&op.left)) + usize::from(!cnt2.contains_key(r));
        let cost_swap =
            usize::from(!cnt1.contains_key(r)) + usize::from(!cnt2.contains_key(&op.left));
        if cost_swap < cost_plain {
            swapped[i] = true;
            add(&mut cnt1, r);
            add(&mut cnt2, &op.left);
        } else {
            add(&mut cnt1, &op.left);
            add(&mut cnt2, r);
        }
    }

    // Pass 3: re-examine orientations now that all sources are known.
    let stable = !refine_orientations(ops, &mut cnt1, &mut cnt2, &mut swapped);

    PackSeed {
        cnt1,
        cnt2,
        swapped,
        fixed1,
        fixed2,
        stable,
    }
}

fn add<S: Ord + Hash + Clone>(cnt: &mut HashMap<S, usize>, s: &S) {
    *cnt.entry(s.clone()).or_insert(0) += 1;
}

fn remove<S: Ord + Hash + Clone>(cnt: &mut HashMap<S, usize>, s: &S) {
    match cnt.get_mut(s) {
        Some(1) => {
            cnt.remove(s);
        }
        Some(n) => *n -= 1,
        None => unreachable!("removed a source that was never added"),
    }
}

/// The refinement pass shared by the cold pack (pass 3) and
/// [`pack_with_seed`]: re-examine orientations now that all sources are
/// known — an early greedy choice may have inserted a source a later op
/// made redundant. A flip is taken only when it strictly reduces the
/// total, so the pass terminates from any valid refcount state. The
/// flipped total is computed from the contribution counts: dropping
/// this op's current sources frees a line only when it was the sole
/// contributor, and its swapped sources cost a line only when nobody
/// else supplies them. Returns whether any flip was taken — `false`
/// means the input state already was the committed fixpoint, the
/// stability [`PackSeed::try_insert`] requires.
fn refine_orientations<S: Ord + Hash + Clone>(
    ops: &[MuxOp<S>],
    cnt1: &mut HashMap<S, usize>,
    cnt2: &mut HashMap<S, usize>,
    swapped: &mut [bool],
) -> bool {
    let mut any = false;
    let mut changed = true;
    while changed {
        changed = false;
        for (i, op) in ops.iter().enumerate() {
            if !op.commutative || op.right.is_none() {
                continue;
            }
            let r = op.right.as_ref().expect("checked above");
            let (cur_a, cur_b) = if swapped[i] {
                (r, &op.left)
            } else {
                (&op.left, r)
            };
            // Port 1 currently carries cur_a from this op; flipping
            // replaces that contribution with cur_b (and symmetrically
            // on port 2). Self-pairs (cur_a == cur_b) change nothing and
            // fall out as delta 0.
            let delta1 = if cur_a == cur_b {
                0
            } else {
                i64::from(!cnt1.contains_key(cur_b)) - i64::from(cnt1[cur_a] == 1)
            };
            let delta2 = if cur_a == cur_b {
                0
            } else {
                i64::from(!cnt2.contains_key(cur_a)) - i64::from(cnt2[cur_b] == 1)
            };
            if delta1 + delta2 < 0 {
                swapped[i] = !swapped[i];
                remove(cnt1, cur_a);
                add(cnt1, cur_b);
                remove(cnt2, cur_b);
                add(cnt2, cur_a);
                changed = true;
                any = true;
            }
        }
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn op(l: &str, r: &str, c: bool) -> MuxOp<String> {
        MuxOp {
            left: l.to_string(),
            right: Some(r.to_string()),
            commutative: c,
        }
    }

    /// The original set-based packing, kept verbatim as the oracle for
    /// the refcount-based production `pack`: identical greedy choices,
    /// with the refinement pass pricing each flip by rebuilding both
    /// trial lists from scratch.
    fn pack_reference<S: Ord + Clone>(ops: &[MuxOp<S>]) -> MuxPacking<S> {
        let mut l1: BTreeSet<S> = BTreeSet::new();
        let mut l2: BTreeSet<S> = BTreeSet::new();
        let mut swapped = vec![false; ops.len()];
        for op in ops {
            if !op.commutative || op.right.is_none() {
                l1.insert(op.left.clone());
                if let Some(r) = &op.right {
                    l2.insert(r.clone());
                }
            }
        }
        for (i, op) in ops.iter().enumerate() {
            if !op.commutative || op.right.is_none() {
                continue;
            }
            let r = op.right.as_ref().expect("checked above");
            let cost_plain = usize::from(!l1.contains(&op.left)) + usize::from(!l2.contains(r));
            let cost_swap = usize::from(!l1.contains(r)) + usize::from(!l2.contains(&op.left));
            if cost_swap < cost_plain {
                swapped[i] = true;
                l1.insert(r.clone());
                l2.insert(op.left.clone());
            } else {
                l1.insert(op.left.clone());
                l2.insert(r.clone());
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for (i, op) in ops.iter().enumerate() {
                if !op.commutative || op.right.is_none() {
                    continue;
                }
                let r = op.right.as_ref().expect("checked above");
                let (cur_a, cur_b) = if swapped[i] {
                    (r, &op.left)
                } else {
                    (&op.left, r)
                };
                let mut trial1 = BTreeSet::new();
                let mut trial2 = BTreeSet::new();
                for (j, oj) in ops.iter().enumerate() {
                    let (a, b) = if j == i {
                        (cur_b, oj.right.as_ref().map(|_| cur_a))
                    } else if swapped[j] && oj.right.is_some() {
                        (oj.right.as_ref().expect("some"), Some(&oj.left))
                    } else {
                        (&oj.left, oj.right.as_ref())
                    };
                    trial1.insert(a.clone());
                    if let Some(b) = b {
                        trial2.insert(b.clone());
                    }
                }
                if trial1.len() + trial2.len() < l1.len() + l2.len() {
                    swapped[i] = !swapped[i];
                    l1 = trial1;
                    l2 = trial2;
                    changed = true;
                }
            }
        }
        MuxPacking { l1, l2, swapped }
    }

    proptest! {
        /// The refcount-priced refinement must take the exact flips the
        /// trial-rebuild oracle takes: identical lists *and* identical
        /// orientations, so every downstream `f_MUX` value (and with it
        /// the MFSA tie-break order) is unchanged. Sources are drawn
        /// from a small alphabet to force heavy line sharing, self-pairs
        /// and duplicate ops.
        #[test]
        fn refcount_packing_matches_the_set_based_oracle(
            ops in proptest::collection::vec(
                (0u8..6, 0u8..6, 0u8..8),
                0..12,
            ),
        ) {
            let ops: Vec<MuxOp<u8>> = ops
                .iter()
                .map(|&(l, r, bits)| MuxOp {
                    // `bits` packs the op shape: 0 = unary (1 in 8, so
                    // most ops stay binary), bit 1 = commutative.
                    left: l,
                    right: (bits != 0).then_some(r),
                    commutative: bits & 2 != 0,
                })
                .collect();
            let fast = pack(&ops);
            let slow = pack_reference(&ops);
            prop_assert_eq!(pack_cost(&ops), (fast.l1.len(), fast.l2.len()));
            prop_assert_eq!(fast, slow);
        }

        /// Restarting from the committed refcount multiset must commit
        /// the exact packing the cold three-pass construction commits —
        /// lists and orientations — so an instance can keep its seed
        /// alive across candidate evaluations without ever drifting
        /// from the cold result.
        #[test]
        fn seeded_repack_matches_the_cold_pack(
            ops in proptest::collection::vec(
                (0u8..6, 0u8..6, 0u8..8),
                0..12,
            ),
        ) {
            let ops: Vec<MuxOp<u8>> = ops
                .iter()
                .map(|&(l, r, bits)| MuxOp {
                    left: l,
                    right: (bits != 0).then_some(r),
                    commutative: bits & 2 != 0,
                })
                .collect();
            let seed = pack_seed(&ops);
            prop_assert_eq!(seed.len(), ops.len());
            prop_assert_eq!(pack_with_seed(&ops, &seed), pack(&ops));
        }

        /// The one-op insertion rule differential: whenever
        /// `try_insert` accepts a candidate, the cold three-pass pack
        /// of the extended op list must commit the **identical**
        /// packing — same lists, same orientations, and in particular
        /// the same `(|L1|, |L2|)` as before the insertion (the
        /// cost-neutrality the MFSA pricing fast path relies on).
        /// Whenever it declines, the seed must be untouched.
        #[test]
        fn neutral_insertion_matches_the_cold_pack(
            ops in proptest::collection::vec(
                (0u8..6, 0u8..6, 0u8..8),
                0..12,
            ),
            candidate in (0u8..6, 0u8..6, 0u8..8),
        ) {
            let shape = |&(l, r, bits): &(u8, u8, u8)| MuxOp {
                left: l,
                right: (bits != 0).then_some(r),
                commutative: bits & 2 != 0,
            };
            let ops: Vec<MuxOp<u8>> = ops.iter().map(shape).collect();
            let c = shape(&candidate);
            let mut seed = pack_seed(&ops);
            let cost_before = seed.cost();
            let mut extended = ops.clone();
            extended.push(c);
            if seed.try_insert(&c) {
                prop_assert_eq!(seed.len(), extended.len());
                prop_assert_eq!(seed.cost(), cost_before);
                let cold = pack(&extended);
                prop_assert_eq!((cold.l1.len(), cold.l2.len()), cost_before);
                prop_assert_eq!(pack_with_seed(&extended, &seed), cold);
            } else {
                prop_assert_eq!(seed.len(), ops.len());
                prop_assert_eq!(seed.cost(), cost_before);
                prop_assert_eq!(pack_with_seed(&ops, &seed), pack(&ops));
            }
        }

        /// From an arbitrary (worst-orientation) refcount state the
        /// shared refinement pass must still terminate on a packing
        /// that covers every operation and is no worse than the state
        /// it started from — the soundness floor a future one-op
        /// insertion rule builds on.
        #[test]
        fn seeded_repack_from_any_orientation_is_sound(
            ops in proptest::collection::vec(
                (0u8..6, 0u8..6, 0u8..8, 0u8..2),
                0..12,
            ),
        ) {
            let (ops, flips): (Vec<MuxOp<u8>>, Vec<bool>) = ops
                .iter()
                .map(|&(l, r, bits, flip)| {
                    let flip = flip == 1;
                    let op = MuxOp {
                        left: l,
                        right: (bits != 0).then_some(r),
                        commutative: bits & 2 != 0,
                    };
                    let flippable = op.commutative && op.right.is_some();
                    (op, flip && flippable)
                })
                .unzip();
            let seed = seed_from_orientations(&ops, flips);
            let start = seed.cnt1.len() + seed.cnt2.len();
            let p = pack_with_seed(&ops, &seed);
            prop_assert!(p.total_inputs() <= start);
            for (i, o) in ops.iter().enumerate() {
                let (x, y) = if p.swapped[i] {
                    (o.right.expect("only binary ops flip"), o.left)
                } else {
                    (o.left, o.right.unwrap_or(o.left))
                };
                prop_assert!(p.l1.contains(&x), "op {} port-1 source missing", i);
                if o.right.is_some() {
                    prop_assert!(p.l2.contains(&y), "op {} port-2 source missing", i);
                }
            }
        }
    }

    /// Builds the refcount state a given orientation vector induces —
    /// the test-side stand-in for a seed produced by incremental edits
    /// rather than a cold pack.
    fn seed_from_orientations(ops: &[MuxOp<u8>], swapped: Vec<bool>) -> PackSeed<u8> {
        let mut cnt1: HashMap<u8, usize> = HashMap::new();
        let mut cnt2: HashMap<u8, usize> = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            let (a, b) = if swapped[i] {
                (op.right.expect("only binary ops flip"), Some(op.left))
            } else {
                (op.left, op.right)
            };
            *cnt1.entry(a).or_insert(0) += 1;
            if let Some(b) = b {
                *cnt2.entry(b).or_insert(0) += 1;
            }
        }
        let fixed1 = cnt1.keys().copied().collect();
        let fixed2 = cnt2.keys().copied().collect();
        PackSeed {
            cnt1,
            cnt2,
            swapped,
            fixed1,
            fixed2,
            // An arbitrary orientation vector is not a known fixpoint.
            stable: false,
        }
    }

    #[test]
    fn single_op_uses_two_inputs() {
        let p = pack(&[op("a", "b", true)]);
        assert_eq!(p.total_inputs(), 2);
    }

    #[test]
    fn identical_ops_share_everything() {
        let p = pack(&[op("a", "b", false), op("a", "b", false)]);
        assert_eq!(p.total_inputs(), 2);
    }

    #[test]
    fn commutative_swap_reuses_lines() {
        let p = pack(&[op("a", "b", false), op("b", "a", true)]);
        assert_eq!(p.total_inputs(), 2);
        assert!(p.swapped[1]);
    }

    #[test]
    fn non_commutative_mirror_needs_four_lines() {
        let p = pack(&[op("a", "b", false), op("b", "a", false)]);
        assert_eq!(p.total_inputs(), 4);
    }

    #[test]
    fn unary_ops_occupy_port_one_only() {
        let ops = [MuxOp {
            left: "x".to_string(),
            right: None,
            commutative: false,
        }];
        let p = pack(&ops);
        assert_eq!(p.l1.len(), 1);
        assert_eq!(p.l2.len(), 0);
    }

    #[test]
    fn refinement_pass_fixes_greedy_mistakes() {
        // Greedy on c1 = (a,b) picks a→L1, b→L2. Then nc = sub(b, a)
        // forces b→L1, a→L2. Flipping c1 in pass 3 reaches the optimum
        // of 2 total inputs.
        let ops = [op("a", "b", true), op("b", "a", false)];
        let p = pack(&ops);
        assert_eq!(p.total_inputs(), 2, "packing: {p:?}");
        assert!(p.swapped[0]);
    }

    #[test]
    fn packing_covers_every_operation() {
        // Whatever the orientation, each op's operands must be present
        // on the respective ports.
        let ops = [
            op("a", "b", true),
            op("c", "d", false),
            op("b", "c", true),
            op("d", "a", true),
        ];
        let p = pack(&ops);
        for (i, o) in ops.iter().enumerate() {
            let (x, y) = if p.swapped[i] {
                (o.right.clone().expect("binary"), o.left.clone())
            } else {
                (o.left.clone(), o.right.clone().expect("binary"))
            };
            assert!(p.l1.contains(&x), "op {i} port-1 source missing");
            assert!(p.l2.contains(&y), "op {i} port-2 source missing");
        }
    }

    #[test]
    fn insertion_accepts_covered_ops_and_declines_new_lines() {
        // sub(a,b) fixes a→L1, b→L2; add(b,a) swaps onto the same lines.
        let ops = [op("a", "b", false), op("b", "a", true)];
        let mut seed = pack_seed(&ops);
        assert_eq!(seed.cost(), (1, 1));

        // A commutative candidate whose swap orientation is covered.
        let covered = op("b", "a", true);
        assert_eq!(seed.neutral_insertion(&covered), Some(true));

        // A fixed candidate matching the pass-1 claims verbatim.
        let fixed = op("a", "b", false);
        assert_eq!(seed.neutral_insertion(&fixed), Some(false));

        // A unary candidate is covered by port 1 alone.
        let unary = MuxOp {
            left: "a".to_string(),
            right: None,
            commutative: false,
        };
        assert_eq!(seed.neutral_insertion(&unary), Some(false));

        // Any new source line forces the full-repack fallback.
        let fresh = op("c", "b", true);
        assert_eq!(seed.neutral_insertion(&fresh), None);
        assert!(!seed.try_insert(&fresh));
        assert_eq!(seed.len(), 2);

        // Absorbing the covered op keeps the cost and grows the seed.
        assert!(seed.try_insert(&covered));
        assert_eq!(seed.len(), 3);
        assert_eq!(seed.cost(), (1, 1));
    }

    #[test]
    fn insertion_is_conservative_without_a_known_fixpoint() {
        // A seed reconstructed from raw orientations is not a known
        // refinement fixpoint, so even a fully covered candidate must
        // be declined.
        let ops = vec![MuxOp {
            left: 1u8,
            right: Some(2),
            commutative: true,
        }];
        let seed = seed_from_orientations(&ops, vec![false]);
        assert_eq!(seed.neutral_insertion(&ops[0]), None);
    }

    #[test]
    fn fixed_insertion_requires_fixed_coverage() {
        // b→L1 and a→L2 are claimed only by the *commutative* op, so a
        // non-commutative sub(b,a) would join pass 1 and perturb the
        // greedy replay — the rule must decline even though the ports
        // cover it.
        let ops = [op("b", "a", true)];
        let seed = pack_seed(&ops);
        assert_eq!(seed.cost(), (1, 1));
        assert_eq!(seed.neutral_insertion(&op("b", "a", false)), None);
        // The commutative twin is covered and accepted.
        assert_eq!(seed.neutral_insertion(&op("b", "a", true)), Some(false));
    }

    #[test]
    fn empty_input_is_empty_packing() {
        let p = pack::<String>(&[]);
        assert_eq!(p.total_inputs(), 0);
        assert!(p.swapped.is_empty());
    }
}
