//! Multiplexer input packing (paper §5.6).
//!
//! "MFSA uses a constructive algorithm which reads the set of operations
//! assigned to a specific ALU and their corresponding inputs and
//! constructs two lists of input signals L1 and L2 such that |L1| + |L2|
//! is minimum. Briefly, the algorithm first assigns the non-commutative
//! operations to the appropriate MUX's of an ALU and then checks two
//! possibilities for arranging input signals for each commutative
//! operation in L1 and L2."

use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

/// One operation's operand sources as seen by the ALU's two input ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MuxOp<S> {
    /// First operand's source.
    pub left: S,
    /// Second operand's source (`None` for unary operations, which only
    /// use port 1).
    pub right: Option<S>,
    /// Whether the operand order may be swapped.
    pub commutative: bool,
}

/// The packing produced by [`pack`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxPacking<S> {
    /// Sources multiplexed onto ALU input port 1.
    pub l1: BTreeSet<S>,
    /// Sources multiplexed onto ALU input port 2.
    pub l2: BTreeSet<S>,
    /// Chosen orientation per input op: `true` = swapped.
    pub swapped: Vec<bool>,
}

impl<S: Ord> MuxPacking<S> {
    /// `|L1| + |L2|` — the quantity the packing minimises.
    pub fn total_inputs(&self) -> usize {
        self.l1.len() + self.l2.len()
    }
}

/// Packs the operand sources of an ALU's operations onto its two input
/// ports, following the paper's constructive algorithm: non-commutative
/// operations bind their operands to ports 1/2 verbatim; commutative
/// operations then greedily pick the orientation adding the fewest new
/// sources (preferring the unswapped order on ties, and re-examined in a
/// second pass once all sources are known).
///
/// ```
/// use hls_rtl::muxopt::{pack, MuxOp};
///
/// // sub(a,b) fixes a→L1, b→L2; add(b,a) can swap to reuse both lines.
/// let ops = [
///     MuxOp { left: "a", right: Some("b"), commutative: false },
///     MuxOp { left: "b", right: Some("a"), commutative: true },
/// ];
/// let packing = pack(&ops);
/// assert_eq!(packing.total_inputs(), 2);
/// assert!(packing.swapped[1]);
/// ```
pub fn pack<S: Ord + Hash + Clone>(ops: &[MuxOp<S>]) -> MuxPacking<S> {
    let (cnt1, cnt2, swapped) = pack_counts(ops);
    MuxPacking {
        l1: cnt1.into_keys().collect(),
        l2: cnt2.into_keys().collect(),
        swapped,
    }
}

/// `(|L1|, |L2|)` of the packing [`pack`] would produce, without
/// materialising the sorted source lists. This is the candidate-pricing
/// entry point: the MFSA inner loop only needs the two line counts for
/// its `f_MUX` delta, and skipping the list construction keeps the hot
/// path allocation-free beyond the count maps themselves.
pub fn pack_cost<S: Ord + Hash + Clone>(ops: &[MuxOp<S>]) -> (usize, usize) {
    let (cnt1, cnt2, _) = pack_counts(ops);
    (cnt1.len(), cnt2.len())
}

/// The shared constructive core: contribution counts per port plus the
/// chosen orientations. The maps are hashed, not ordered — the algorithm
/// only ever point-queries them (`contains_key`, sole-contributor
/// checks), never iterates, so hashing cannot change any decision;
/// [`pack`] sorts the surviving keys at the end, which is where the
/// deterministic `l1`/`l2` order comes from.
fn pack_counts<S: Ord + Hash + Clone>(
    ops: &[MuxOp<S>],
) -> (HashMap<S, usize>, HashMap<S, usize>, Vec<bool>) {
    // Multiset view of the ports: every op contributes exactly one
    // source line to port 1 and (when binary) one to port 2 under its
    // current orientation; |L1| and |L2| are the distinct-key counts.
    // Keeping contribution *counts* instead of plain sets is what lets
    // the refinement pass price a flip in O(1) instead of re-packing
    // all k operations from scratch.
    let mut cnt1: HashMap<S, usize> = HashMap::with_capacity(ops.len());
    let mut cnt2: HashMap<S, usize> = HashMap::with_capacity(ops.len());
    let mut swapped = vec![false; ops.len()];

    fn add<S: Ord + Hash + Clone>(cnt: &mut HashMap<S, usize>, s: &S) {
        *cnt.entry(s.clone()).or_insert(0) += 1;
    }
    fn remove<S: Ord + Hash + Clone>(cnt: &mut HashMap<S, usize>, s: &S) {
        match cnt.get_mut(s) {
            Some(1) => {
                cnt.remove(s);
            }
            Some(n) => *n -= 1,
            None => unreachable!("removed a source that was never added"),
        }
    }

    // Pass 1: fixed (non-commutative and unary) operations.
    for op in ops {
        if !op.commutative || op.right.is_none() {
            add(&mut cnt1, &op.left);
            if let Some(r) = &op.right {
                add(&mut cnt2, r);
            }
        }
    }

    // Pass 2: commutative operations, greedy orientation. Like the
    // original set-based construction, each op only sees the lines the
    // fixed ops and *earlier* commutative ops have claimed.
    for (i, op) in ops.iter().enumerate() {
        if !op.commutative || op.right.is_none() {
            continue;
        }
        let r = op.right.as_ref().expect("checked above");
        let cost_plain =
            usize::from(!cnt1.contains_key(&op.left)) + usize::from(!cnt2.contains_key(r));
        let cost_swap =
            usize::from(!cnt1.contains_key(r)) + usize::from(!cnt2.contains_key(&op.left));
        if cost_swap < cost_plain {
            swapped[i] = true;
            add(&mut cnt1, r);
            add(&mut cnt2, &op.left);
        } else {
            add(&mut cnt1, &op.left);
            add(&mut cnt2, r);
        }
    }

    // Pass 3: re-examine orientations now that all sources are known —
    // an early greedy choice may have inserted a source a later op made
    // redundant. A flip is taken only when it strictly reduces the
    // total, so the pass terminates. The flipped total is computed from
    // the contribution counts: dropping this op's current sources frees
    // a line only when it was the sole contributor, and its swapped
    // sources cost a line only when nobody else supplies them.
    let mut changed = true;
    while changed {
        changed = false;
        for (i, op) in ops.iter().enumerate() {
            if !op.commutative || op.right.is_none() {
                continue;
            }
            let r = op.right.as_ref().expect("checked above");
            let (cur_a, cur_b) = if swapped[i] {
                (r, &op.left)
            } else {
                (&op.left, r)
            };
            // Port 1 currently carries cur_a from this op; flipping
            // replaces that contribution with cur_b (and symmetrically
            // on port 2). Self-pairs (cur_a == cur_b) change nothing and
            // fall out as delta 0.
            let delta1 = if cur_a == cur_b {
                0
            } else {
                i64::from(!cnt1.contains_key(cur_b)) - i64::from(cnt1[cur_a] == 1)
            };
            let delta2 = if cur_a == cur_b {
                0
            } else {
                i64::from(!cnt2.contains_key(cur_a)) - i64::from(cnt2[cur_b] == 1)
            };
            if delta1 + delta2 < 0 {
                swapped[i] = !swapped[i];
                remove(&mut cnt1, cur_a);
                add(&mut cnt1, cur_b);
                remove(&mut cnt2, cur_b);
                add(&mut cnt2, cur_a);
                changed = true;
            }
        }
    }

    (cnt1, cnt2, swapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn op(l: &str, r: &str, c: bool) -> MuxOp<String> {
        MuxOp {
            left: l.to_string(),
            right: Some(r.to_string()),
            commutative: c,
        }
    }

    /// The original set-based packing, kept verbatim as the oracle for
    /// the refcount-based production `pack`: identical greedy choices,
    /// with the refinement pass pricing each flip by rebuilding both
    /// trial lists from scratch.
    fn pack_reference<S: Ord + Clone>(ops: &[MuxOp<S>]) -> MuxPacking<S> {
        let mut l1: BTreeSet<S> = BTreeSet::new();
        let mut l2: BTreeSet<S> = BTreeSet::new();
        let mut swapped = vec![false; ops.len()];
        for op in ops {
            if !op.commutative || op.right.is_none() {
                l1.insert(op.left.clone());
                if let Some(r) = &op.right {
                    l2.insert(r.clone());
                }
            }
        }
        for (i, op) in ops.iter().enumerate() {
            if !op.commutative || op.right.is_none() {
                continue;
            }
            let r = op.right.as_ref().expect("checked above");
            let cost_plain = usize::from(!l1.contains(&op.left)) + usize::from(!l2.contains(r));
            let cost_swap = usize::from(!l1.contains(r)) + usize::from(!l2.contains(&op.left));
            if cost_swap < cost_plain {
                swapped[i] = true;
                l1.insert(r.clone());
                l2.insert(op.left.clone());
            } else {
                l1.insert(op.left.clone());
                l2.insert(r.clone());
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for (i, op) in ops.iter().enumerate() {
                if !op.commutative || op.right.is_none() {
                    continue;
                }
                let r = op.right.as_ref().expect("checked above");
                let (cur_a, cur_b) = if swapped[i] {
                    (r, &op.left)
                } else {
                    (&op.left, r)
                };
                let mut trial1 = BTreeSet::new();
                let mut trial2 = BTreeSet::new();
                for (j, oj) in ops.iter().enumerate() {
                    let (a, b) = if j == i {
                        (cur_b, oj.right.as_ref().map(|_| cur_a))
                    } else if swapped[j] && oj.right.is_some() {
                        (oj.right.as_ref().expect("some"), Some(&oj.left))
                    } else {
                        (&oj.left, oj.right.as_ref())
                    };
                    trial1.insert(a.clone());
                    if let Some(b) = b {
                        trial2.insert(b.clone());
                    }
                }
                if trial1.len() + trial2.len() < l1.len() + l2.len() {
                    swapped[i] = !swapped[i];
                    l1 = trial1;
                    l2 = trial2;
                    changed = true;
                }
            }
        }
        MuxPacking { l1, l2, swapped }
    }

    proptest! {
        /// The refcount-priced refinement must take the exact flips the
        /// trial-rebuild oracle takes: identical lists *and* identical
        /// orientations, so every downstream `f_MUX` value (and with it
        /// the MFSA tie-break order) is unchanged. Sources are drawn
        /// from a small alphabet to force heavy line sharing, self-pairs
        /// and duplicate ops.
        #[test]
        fn refcount_packing_matches_the_set_based_oracle(
            ops in proptest::collection::vec(
                (0u8..6, 0u8..6, 0u8..8),
                0..12,
            ),
        ) {
            let ops: Vec<MuxOp<u8>> = ops
                .iter()
                .map(|&(l, r, bits)| MuxOp {
                    // `bits` packs the op shape: 0 = unary (1 in 8, so
                    // most ops stay binary), bit 1 = commutative.
                    left: l,
                    right: (bits != 0).then_some(r),
                    commutative: bits & 2 != 0,
                })
                .collect();
            let fast = pack(&ops);
            let slow = pack_reference(&ops);
            prop_assert_eq!(pack_cost(&ops), (fast.l1.len(), fast.l2.len()));
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn single_op_uses_two_inputs() {
        let p = pack(&[op("a", "b", true)]);
        assert_eq!(p.total_inputs(), 2);
    }

    #[test]
    fn identical_ops_share_everything() {
        let p = pack(&[op("a", "b", false), op("a", "b", false)]);
        assert_eq!(p.total_inputs(), 2);
    }

    #[test]
    fn commutative_swap_reuses_lines() {
        let p = pack(&[op("a", "b", false), op("b", "a", true)]);
        assert_eq!(p.total_inputs(), 2);
        assert!(p.swapped[1]);
    }

    #[test]
    fn non_commutative_mirror_needs_four_lines() {
        let p = pack(&[op("a", "b", false), op("b", "a", false)]);
        assert_eq!(p.total_inputs(), 4);
    }

    #[test]
    fn unary_ops_occupy_port_one_only() {
        let ops = [MuxOp {
            left: "x".to_string(),
            right: None,
            commutative: false,
        }];
        let p = pack(&ops);
        assert_eq!(p.l1.len(), 1);
        assert_eq!(p.l2.len(), 0);
    }

    #[test]
    fn refinement_pass_fixes_greedy_mistakes() {
        // Greedy on c1 = (a,b) picks a→L1, b→L2. Then nc = sub(b, a)
        // forces b→L1, a→L2. Flipping c1 in pass 3 reaches the optimum
        // of 2 total inputs.
        let ops = [op("a", "b", true), op("b", "a", false)];
        let p = pack(&ops);
        assert_eq!(p.total_inputs(), 2, "packing: {p:?}");
        assert!(p.swapped[0]);
    }

    #[test]
    fn packing_covers_every_operation() {
        // Whatever the orientation, each op's operands must be present
        // on the respective ports.
        let ops = [
            op("a", "b", true),
            op("c", "d", false),
            op("b", "c", true),
            op("d", "a", true),
        ];
        let p = pack(&ops);
        for (i, o) in ops.iter().enumerate() {
            let (x, y) = if p.swapped[i] {
                (o.right.clone().expect("binary"), o.left.clone())
            } else {
                (o.left.clone(), o.right.clone().expect("binary"))
            };
            assert!(p.l1.contains(&x), "op {i} port-1 source missing");
            assert!(p.l2.contains(&y), "op {i} port-2 source missing");
        }
    }

    #[test]
    fn empty_input_is_empty_packing() {
        let p = pack::<String>(&[]);
        assert_eq!(p.total_inputs(), 0);
        assert!(p.swapped.is_empty());
    }
}
