//! Multiplexer input packing (paper §5.6).
//!
//! "MFSA uses a constructive algorithm which reads the set of operations
//! assigned to a specific ALU and their corresponding inputs and
//! constructs two lists of input signals L1 and L2 such that |L1| + |L2|
//! is minimum. Briefly, the algorithm first assigns the non-commutative
//! operations to the appropriate MUX's of an ALU and then checks two
//! possibilities for arranging input signals for each commutative
//! operation in L1 and L2."

use std::collections::BTreeSet;

/// One operation's operand sources as seen by the ALU's two input ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MuxOp<S> {
    /// First operand's source.
    pub left: S,
    /// Second operand's source (`None` for unary operations, which only
    /// use port 1).
    pub right: Option<S>,
    /// Whether the operand order may be swapped.
    pub commutative: bool,
}

/// The packing produced by [`pack`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxPacking<S> {
    /// Sources multiplexed onto ALU input port 1.
    pub l1: BTreeSet<S>,
    /// Sources multiplexed onto ALU input port 2.
    pub l2: BTreeSet<S>,
    /// Chosen orientation per input op: `true` = swapped.
    pub swapped: Vec<bool>,
}

impl<S: Ord> MuxPacking<S> {
    /// `|L1| + |L2|` — the quantity the packing minimises.
    pub fn total_inputs(&self) -> usize {
        self.l1.len() + self.l2.len()
    }
}

/// Packs the operand sources of an ALU's operations onto its two input
/// ports, following the paper's constructive algorithm: non-commutative
/// operations bind their operands to ports 1/2 verbatim; commutative
/// operations then greedily pick the orientation adding the fewest new
/// sources (preferring the unswapped order on ties, and re-examined in a
/// second pass once all sources are known).
///
/// ```
/// use hls_rtl::muxopt::{pack, MuxOp};
///
/// // sub(a,b) fixes a→L1, b→L2; add(b,a) can swap to reuse both lines.
/// let ops = [
///     MuxOp { left: "a", right: Some("b"), commutative: false },
///     MuxOp { left: "b", right: Some("a"), commutative: true },
/// ];
/// let packing = pack(&ops);
/// assert_eq!(packing.total_inputs(), 2);
/// assert!(packing.swapped[1]);
/// ```
pub fn pack<S: Ord + Clone>(ops: &[MuxOp<S>]) -> MuxPacking<S> {
    let mut l1: BTreeSet<S> = BTreeSet::new();
    let mut l2: BTreeSet<S> = BTreeSet::new();
    let mut swapped = vec![false; ops.len()];

    // Pass 1: fixed (non-commutative and unary) operations.
    for op in ops {
        if !op.commutative || op.right.is_none() {
            l1.insert(op.left.clone());
            if let Some(r) = &op.right {
                l2.insert(r.clone());
            }
        }
    }

    // Pass 2: commutative operations, greedy orientation.
    for (i, op) in ops.iter().enumerate() {
        if !op.commutative || op.right.is_none() {
            continue;
        }
        let r = op.right.as_ref().expect("checked above");
        let cost_plain = usize::from(!l1.contains(&op.left)) + usize::from(!l2.contains(r));
        let cost_swap = usize::from(!l1.contains(r)) + usize::from(!l2.contains(&op.left));
        if cost_swap < cost_plain {
            swapped[i] = true;
            l1.insert(r.clone());
            l2.insert(op.left.clone());
        } else {
            l1.insert(op.left.clone());
            l2.insert(r.clone());
        }
    }

    // Pass 3: re-examine orientations now that all sources are known —
    // an early greedy choice may have inserted a source a later op made
    // redundant. A flip is taken only when it strictly reduces the
    // total, so the pass terminates.
    let mut changed = true;
    while changed {
        changed = false;
        for (i, op) in ops.iter().enumerate() {
            if !op.commutative || op.right.is_none() {
                continue;
            }
            let r = op.right.as_ref().expect("checked above");
            let (cur_a, cur_b) = if swapped[i] {
                (r, &op.left)
            } else {
                (&op.left, r)
            };
            // Would flipping reduce the packing?
            let mut trial1 = BTreeSet::new();
            let mut trial2 = BTreeSet::new();
            for (j, oj) in ops.iter().enumerate() {
                let (a, b) = if j == i {
                    (cur_b, oj.right.as_ref().map(|_| cur_a))
                } else if swapped[j] && oj.right.is_some() {
                    (oj.right.as_ref().expect("some"), Some(&oj.left))
                } else {
                    (&oj.left, oj.right.as_ref())
                };
                trial1.insert(a.clone());
                if let Some(b) = b {
                    trial2.insert(b.clone());
                }
            }
            if trial1.len() + trial2.len() < l1.len() + l2.len() {
                swapped[i] = !swapped[i];
                l1 = trial1;
                l2 = trial2;
                changed = true;
            }
        }
    }

    MuxPacking { l1, l2, swapped }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(l: &str, r: &str, c: bool) -> MuxOp<String> {
        MuxOp {
            left: l.to_string(),
            right: Some(r.to_string()),
            commutative: c,
        }
    }

    #[test]
    fn single_op_uses_two_inputs() {
        let p = pack(&[op("a", "b", true)]);
        assert_eq!(p.total_inputs(), 2);
    }

    #[test]
    fn identical_ops_share_everything() {
        let p = pack(&[op("a", "b", false), op("a", "b", false)]);
        assert_eq!(p.total_inputs(), 2);
    }

    #[test]
    fn commutative_swap_reuses_lines() {
        let p = pack(&[op("a", "b", false), op("b", "a", true)]);
        assert_eq!(p.total_inputs(), 2);
        assert!(p.swapped[1]);
    }

    #[test]
    fn non_commutative_mirror_needs_four_lines() {
        let p = pack(&[op("a", "b", false), op("b", "a", false)]);
        assert_eq!(p.total_inputs(), 4);
    }

    #[test]
    fn unary_ops_occupy_port_one_only() {
        let ops = [MuxOp {
            left: "x".to_string(),
            right: None,
            commutative: false,
        }];
        let p = pack(&ops);
        assert_eq!(p.l1.len(), 1);
        assert_eq!(p.l2.len(), 0);
    }

    #[test]
    fn refinement_pass_fixes_greedy_mistakes() {
        // Greedy on c1 = (a,b) picks a→L1, b→L2. Then nc = sub(b, a)
        // forces b→L1, a→L2. Flipping c1 in pass 3 reaches the optimum
        // of 2 total inputs.
        let ops = [op("a", "b", true), op("b", "a", false)];
        let p = pack(&ops);
        assert_eq!(p.total_inputs(), 2, "packing: {p:?}");
        assert!(p.swapped[0]);
    }

    #[test]
    fn packing_covers_every_operation() {
        // Whatever the orientation, each op's operands must be present
        // on the respective ports.
        let ops = [
            op("a", "b", true),
            op("c", "d", false),
            op("b", "c", true),
            op("d", "a", true),
        ];
        let p = pack(&ops);
        for (i, o) in ops.iter().enumerate() {
            let (x, y) = if p.swapped[i] {
                (o.right.clone().expect("binary"), o.left.clone())
            } else {
                (o.left.clone(), o.right.clone().expect("binary"))
            };
            assert!(p.l1.contains(&x), "op {i} port-1 source missing");
            assert!(p.l2.contains(&y), "op {i} port-2 source missing");
        }
    }

    #[test]
    fn empty_input_is_empty_packing() {
        let p = pack::<String>(&[]);
        assert_eq!(p.total_inputs(), 0);
        assert!(p.swapped.is_empty());
    }
}
