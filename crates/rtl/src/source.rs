//! Identifiers of data-path elements and net sources.

use std::fmt;

use hls_dfg::SignalId;

/// Identifier of an ALU instance in a [`crate::Datapath`]. Matches the
/// `instance` number of [`hls_schedule::UnitId::Alu`] bindings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AluId(pub u32);

impl fmt::Display for AluId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ALU{}", self.0)
    }
}

/// Identifier of a register in a [`crate::Datapath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegId(pub u32);

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// What physically drives a multiplexer input line.
///
/// Two operand signals that resolve to the same source share one mux
/// input — this is where the paper's interconnect optimisation (§5.7)
/// surfaces: values stored in the same register, or produced by the same
/// ALU and consumed in the producing step (chaining), arrive over one
/// line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetSource {
    /// A primary input or constant port.
    External(SignalId),
    /// A register output.
    Register(RegId),
    /// A direct (unregistered) ALU output, for same-step chained
    /// consumption.
    Alu(AluId),
}

impl fmt::Display for NetSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetSource::External(s) => write!(f, "in:{s}"),
            NetSource::Register(r) => write!(f, "{r}"),
            NetSource::Alu(a) => write!(f, "{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v = vec![
            NetSource::Alu(AluId(1)),
            NetSource::Register(RegId(0)),
            NetSource::Alu(AluId(0)),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                NetSource::Register(RegId(0)),
                NetSource::Alu(AluId(0)),
                NetSource::Alu(AluId(1)),
            ]
        );
    }

    #[test]
    fn display() {
        assert_eq!(AluId(2).to_string(), "ALU2");
        assert_eq!(RegId(5).to_string(), "R5");
        assert_eq!(NetSource::Register(RegId(1)).to_string(), "R1");
    }
}
