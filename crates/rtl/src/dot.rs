//! Graphviz export of a data path.

use std::fmt::Write as _;

use hls_dfg::Dfg;

use crate::Datapath;

impl Datapath {
    /// Renders the data path in Graphviz DOT: ALUs as boxes, registers
    /// as records, muxes as trapezoid-ish diamonds, with the selected
    /// net sources as edges.
    pub fn to_dot(&self, dfg: &Dfg) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}-datapath\" {{", dfg.name());
        let _ = writeln!(out, "  rankdir=LR;");
        for alu in self.alus() {
            let ops: Vec<&str> = alu.ops.iter().map(|&n| dfg.node(n).name()).collect();
            let _ = writeln!(
                out,
                "  \"{}\" [shape=box, label=\"{} {}\\n{}\"];",
                alu.id,
                alu.id,
                alu.kind,
                ops.join(",")
            );
        }
        for reg in self.registers() {
            let names: Vec<&str> = reg.signals.iter().map(|&s| dfg.signal(s).name()).collect();
            let _ = writeln!(
                out,
                "  \"{}\" [shape=record, label=\"{}|{}\"];",
                reg.id,
                reg.id,
                names.join("\\n")
            );
        }
        for mux in self.muxes().iter().filter(|m| m.is_real()) {
            let mux_name = format!("{}_mux{}", mux.alu, mux.port);
            let _ = writeln!(out, "  \"{mux_name}\" [shape=invtrapezium, label=\"mux\"];");
            let _ = writeln!(out, "  \"{mux_name}\" -> \"{}\";", mux.alu);
            for src in &mux.sources {
                let _ = writeln!(out, "  \"{src}\" -> \"{mux_name}\";");
            }
        }
        // Direct (mux-less) connections.
        for mux in self.muxes().iter().filter(|m| !m.is_real()) {
            for src in &mux.sources {
                let _ = writeln!(out, "  \"{src}\" -> \"{}\";", mux.alu);
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::AluAllocation;
    use crate::Datapath;
    use hls_celllib::{Library, OpKind, TimingSpec};
    use hls_dfg::DfgBuilder;
    use hls_schedule::{CStep, Schedule, Slot, UnitId};

    #[test]
    fn dot_mentions_alus_and_registers() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let p = b.op("p", OpKind::Add, &[x, x]).unwrap();
        b.op("q", OpKind::Add, &[p, x]).unwrap();
        let g = b.finish().unwrap();
        let mut s = Schedule::new(&g, 2);
        s.assign(
            g.node_by_name("p").unwrap(),
            Slot {
                step: CStep::new(1),
                unit: UnitId::Alu { instance: 0 },
            },
        );
        s.assign(
            g.node_by_name("q").unwrap(),
            Slot {
                step: CStep::new(2),
                unit: UnitId::Alu { instance: 0 },
            },
        );
        let lib = Library::ncr_like();
        let mut alloc = AluAllocation::new();
        alloc.push(lib.alu_by_name("add").unwrap().clone());
        let dp = Datapath::build(&g, &s, &alloc, &TimingSpec::uniform_single_cycle()).unwrap();
        let dot = dp.to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("ALU0"));
        assert!(dot.contains("R0"));
        assert!(dot.ends_with("}\n"));
    }
}
