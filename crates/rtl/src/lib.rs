//! RTL data-path substrate for the `moveframe-hls` workspace.
//!
//! MFSA (the paper's mixed scheduling-allocation algorithm) produces a
//! register-transfer-level structure: ALU instances fed by two input
//! multiplexers each, registers holding signal life spans, and the
//! interconnect between them. This crate owns that structure and the
//! algorithms the paper uses to optimise it:
//!
//! * [`muxopt`] — the constructive input-signal packing that builds the
//!   two multiplexer input lists `L1`/`L2` of an ALU with `|L1| + |L2|`
//!   minimal (paper §5.6), trying both operand orders of commutative
//!   operations;
//! * [`regalloc`] — signal life spans and the left-edge /
//!   activity-selection register allocation (paper §5.8, after REAL);
//! * [`Datapath`] — the assembled netlist with its cost report
//!   (Table 2's `Cost`/`REG`/`MUX`/`MUXin` columns) and an independent
//!   structural verifier.
//!
//! The data path is *derived deterministically* from a schedule whose
//! operations are bound to ALU instances ([`hls_schedule::UnitId::Alu`])
//! plus the instance→kind allocation: MFSA's incremental Liapunov terms
//! estimate these costs during the search, and this crate recomputes them
//! from scratch as the single source of truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod datapath;
mod dot;
mod error;
pub mod muxopt;
pub mod regalloc;
mod source;
mod verify;

pub use cost::CostReport;
pub use datapath::{AluAllocation, AluInstance, Datapath, MemPort, MuxInfo, RegisterInfo};
pub use error::RtlError;
pub use source::{AluId, NetSource, RegId};
pub use verify::{verify_datapath, RtlViolation};
