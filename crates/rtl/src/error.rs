//! Error type for data-path construction.

use std::fmt;

use hls_dfg::{NodeId, SignalId};

use crate::AluId;

/// Error produced while assembling a [`crate::Datapath`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtlError {
    /// An operation has no slot in the schedule.
    UnboundNode(NodeId),
    /// An operation is bound to a single-function FU, not an ALU
    /// instance (an MFS schedule was passed where an MFSA one is
    /// expected).
    NotAluBound(NodeId),
    /// An operation references an instance the allocation does not have.
    UnknownInstance {
        /// The operation.
        node: NodeId,
        /// The missing instance number.
        instance: u32,
    },
    /// An operation is bound to an ALU that cannot perform it.
    IncapableAlu {
        /// The operation.
        node: NodeId,
        /// The incapable instance.
        alu: AluId,
    },
    /// A consumed signal has no register covering its consumption step.
    MissingStorage {
        /// The unstored signal.
        signal: SignalId,
    },
    /// The node kind cannot appear in a data path (folded loop bodies
    /// must be expanded back before RTL generation).
    UnsupportedNode(NodeId),
    /// A memory access is not bound to a bank port
    /// ([`hls_schedule::UnitId::Fu`] with a `Mem` class).
    NotPortBound(NodeId),
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::UnboundNode(n) => write!(f, "operation {n} is not scheduled"),
            RtlError::NotAluBound(n) => {
                write!(
                    f,
                    "operation {n} is bound to a plain FU, not an ALU instance"
                )
            }
            RtlError::UnknownInstance { node, instance } => {
                write!(
                    f,
                    "operation {node} references unknown ALU instance {instance}"
                )
            }
            RtlError::IncapableAlu { node, alu } => {
                write!(f, "ALU {alu} cannot perform operation {node}")
            }
            RtlError::MissingStorage { signal } => {
                write!(
                    f,
                    "signal {signal} has no register covering its consumption"
                )
            }
            RtlError::UnsupportedNode(n) => {
                write!(f, "node {n} cannot be realised in a data path")
            }
            RtlError::NotPortBound(n) => {
                write!(f, "memory access {n} is not bound to a bank port")
            }
        }
    }
}

impl std::error::Error for RtlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_are_informative() {
        let e = RtlError::IncapableAlu {
            node: hls_dfg_stub_node(),
            alu: AluId(3),
        };
        assert!(e.to_string().contains("ALU3"));
    }

    fn hls_dfg_stub_node() -> NodeId {
        use hls_celllib::OpKind;
        let mut b = hls_dfg::DfgBuilder::new("stub");
        let x = b.input("x");
        b.op("t", OpKind::Inc, &[x]).unwrap();
        b.finish().unwrap().node_ids().next().unwrap()
    }
}
