//! Signal life spans and register allocation (paper §5.8).
//!
//! "We use an expanded version of the activity selection algorithm … a
//! greedy algorithm capable of finding the best solution for one register
//! in Θ(m) … the signal with the smallest death time is selected and if
//! it is compatible (no time conflict) with other signals in the register
//! it will be assigned to that register" — i.e. the left-edge algorithm
//! of REAL, which is optimal for interval graphs.

use std::collections::BTreeMap;

use hls_celllib::TimingSpec;
use hls_dfg::{Dfg, SignalId, SignalSource};
use hls_schedule::Schedule;

use crate::RegId;

/// The life span of one stored signal: the register is occupied during
/// control steps `[birth, death]`, both inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifetime {
    /// The stored signal.
    pub signal: SignalId,
    /// First step the value sits in a register (the step after its
    /// producer finishes; step 1 for primary inputs).
    pub birth: u32,
    /// Last step the value is read.
    pub death: u32,
}

impl Lifetime {
    /// Whether two life spans overlap (cannot share a register).
    pub fn overlaps(&self, other: &Lifetime) -> bool {
        self.birth <= other.death && other.birth <= self.death
    }
}

/// Computes the life span of every signal that needs storage under the
/// given (complete) schedule.
///
/// Rules (documented in `DESIGN.md`):
///
/// * an operation result is born one step after its producer finishes
///   and dies at its last consumer's start step; consumers reading in
///   the producer's own finish step (chaining) read the ALU output
///   directly and do not extend the span;
/// * results nobody consumes (design outputs) are held for one step;
/// * primary inputs are born at step 1 and die at their last consumer
///   (they occupy registers, matching the paper's REG counts);
/// * constants are hardwired and never stored.
pub fn signal_lifetimes(dfg: &Dfg, schedule: &Schedule, spec: &TimingSpec) -> Vec<Lifetime> {
    let mut lifetimes = Vec::new();
    for (sid, sig) in dfg.signals() {
        let consumers = dfg.consumers(sid);
        match sig.source() {
            SignalSource::Constant(_) => {}
            SignalSource::PrimaryInput => {
                let death = consumers
                    .iter()
                    .filter_map(|&c| schedule.start(c))
                    .map(|s| s.get())
                    .max();
                if let Some(death) = death {
                    lifetimes.push(Lifetime {
                        signal: sid,
                        birth: 1,
                        death,
                    });
                }
            }
            SignalSource::Node(producer) => {
                let Some(finish) = schedule.finish(producer, dfg, spec) else {
                    continue;
                };
                let birth = finish.get() + 1;
                let death = consumers
                    .iter()
                    .filter_map(|&c| schedule.start(c))
                    .map(|s| s.get())
                    // Same-step (chained) consumers read the ALU output.
                    .filter(|&s| s > finish.get())
                    .max();
                match death {
                    Some(death) => lifetimes.push(Lifetime {
                        signal: sid,
                        birth,
                        death,
                    }),
                    None if consumers.is_empty() => {
                        // A design output: latch it for one step.
                        lifetimes.push(Lifetime {
                            signal: sid,
                            birth,
                            death: birth,
                        });
                    }
                    None => {} // all consumers chained: no storage
                }
            }
        }
    }
    lifetimes
}

/// A register allocation: which signals share which register.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegAllocation {
    /// Signals per register, in allocation order.
    registers: Vec<Vec<Lifetime>>,
    map: BTreeMap<SignalId, RegId>,
}

impl RegAllocation {
    /// Number of registers used.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// The register holding `signal`, if it is stored at all.
    pub fn register_of(&self, signal: SignalId) -> Option<RegId> {
        self.map.get(&signal).copied()
    }

    /// The life spans packed into register `reg`.
    pub fn contents(&self, reg: RegId) -> &[Lifetime] {
        &self.registers[reg.0 as usize]
    }

    /// Iterates `(register, life spans)`.
    pub fn iter(&self) -> impl Iterator<Item = (RegId, &[Lifetime])> {
        self.registers
            .iter()
            .enumerate()
            .map(|(i, l)| (RegId(i as u32), l.as_slice()))
    }
}

/// Left-edge register allocation: sorts life spans by birth and greedily
/// packs each into the first register whose previous occupant has died.
/// Optimal for interval lifetimes: the register count equals the peak
/// number of simultaneously live values.
pub fn left_edge(lifetimes: &[Lifetime]) -> RegAllocation {
    let mut sorted: Vec<Lifetime> = lifetimes.to_vec();
    sorted.sort_by_key(|l| (l.birth, l.death, l.signal));
    let mut registers: Vec<Vec<Lifetime>> = Vec::new();
    let mut map = BTreeMap::new();
    for life in sorted {
        let slot = registers
            .iter_mut()
            .enumerate()
            .find(|(_, reg)| reg.last().is_none_or(|prev| prev.death < life.birth));
        match slot {
            Some((i, reg)) => {
                reg.push(life);
                map.insert(life.signal, RegId(i as u32));
            }
            None => {
                map.insert(life.signal, RegId(registers.len() as u32));
                registers.push(vec![life]);
            }
        }
    }
    RegAllocation { registers, map }
}

/// The interval-graph lower bound: the peak number of simultaneously
/// live values. [`left_edge`] always meets it exactly; the property
/// tests assert this.
pub fn peak_live(lifetimes: &[Lifetime]) -> usize {
    let max_step = lifetimes.iter().map(|l| l.death).max().unwrap_or(0);
    (1..=max_step)
        .map(|step| {
            lifetimes
                .iter()
                .filter(|l| l.birth <= step && step <= l.death)
                .count()
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;
    use hls_dfg::DfgBuilder;
    use hls_schedule::{CStep, FuIndex, Slot, UnitId};

    fn life(signal_stub: SignalId, birth: u32, death: u32) -> Lifetime {
        Lifetime {
            signal: signal_stub,
            birth,
            death,
        }
    }

    #[test]
    fn left_edge_packs_disjoint_lifetimes() {
        let mut b = DfgBuilder::new("stub");
        let ids: Vec<SignalId> = (0..3).map(|i| b.input(&format!("s{i}"))).collect();
        let lifetimes = [life(ids[0], 1, 2), life(ids[1], 3, 4), life(ids[2], 2, 3)];
        let alloc = left_edge(&lifetimes);
        assert_eq!(alloc.register_count(), 2);
        assert_eq!(alloc.register_count(), peak_live(&lifetimes));
        // s0 and s1 share a register (1–2 then 3–4).
        assert_eq!(alloc.register_of(ids[0]), alloc.register_of(ids[1]));
        assert_ne!(alloc.register_of(ids[0]), alloc.register_of(ids[2]));
    }

    #[test]
    fn left_edge_matches_peak_on_heavy_overlap() {
        let mut b = DfgBuilder::new("stub");
        let ids: Vec<SignalId> = (0..4).map(|i| b.input(&format!("s{i}"))).collect();
        let lifetimes: Vec<Lifetime> = ids.iter().map(|&s| life(s, 1, 5)).collect();
        let alloc = left_edge(&lifetimes);
        assert_eq!(alloc.register_count(), 4);
        assert_eq!(peak_live(&lifetimes), 4);
    }

    fn schedule_linear(dfg: &Dfg, steps: &[(&str, u32)]) -> Schedule {
        let mut s = Schedule::new(dfg, steps.iter().map(|&(_, t)| t).max().unwrap_or(1));
        for &(name, t) in steps {
            let id = dfg.node_by_name(name).unwrap();
            s.assign(
                id,
                Slot {
                    step: CStep::new(t),
                    unit: UnitId::Fu {
                        class: dfg.node(id).kind().fu_class(),
                        index: FuIndex::new(1),
                    },
                },
            );
        }
        s
    }

    #[test]
    fn lifetimes_span_producer_to_last_consumer() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let p = b.op("p", OpKind::Inc, &[x]).unwrap();
        b.op("q", OpKind::Dec, &[p]).unwrap();
        b.op("r", OpKind::Neg, &[p]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let s = schedule_linear(&g, &[("p", 1), ("q", 2), ("r", 4)]);
        let lifetimes = signal_lifetimes(&g, &s, &spec);
        let p_sig = g.signal_by_name("p").unwrap();
        let p_life = lifetimes.iter().find(|l| l.signal == p_sig).unwrap();
        assert_eq!((p_life.birth, p_life.death), (2, 4));
        // Primary input x: born at 1, dies at its only consumer (step 1).
        let x_life = lifetimes.iter().find(|l| l.signal == x).unwrap();
        assert_eq!((x_life.birth, x_life.death), (1, 1));
    }

    #[test]
    fn constants_are_never_stored() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let k = b.constant("k", 3);
        b.op("p", OpKind::Add, &[x, k]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let s = schedule_linear(&g, &[("p", 1)]);
        let lifetimes = signal_lifetimes(&g, &s, &spec);
        assert!(lifetimes.iter().all(|l| l.signal != k));
    }

    #[test]
    fn outputs_are_latched_one_step() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("p", OpKind::Inc, &[x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let s = schedule_linear(&g, &[("p", 2)]);
        let lifetimes = signal_lifetimes(&g, &s, &spec);
        let p_sig = g.signal_by_name("p").unwrap();
        let p_life = lifetimes.iter().find(|l| l.signal == p_sig).unwrap();
        assert_eq!((p_life.birth, p_life.death), (3, 3));
    }

    #[test]
    fn multicycle_producers_delay_the_birth() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let m = b.op("m", OpKind::Mul, &[x, x]).unwrap();
        b.op("a", OpKind::Add, &[m, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let s = schedule_linear(&g, &[("m", 1), ("a", 4)]);
        let lifetimes = signal_lifetimes(&g, &s, &spec);
        let m_sig = g.signal_by_name("m").unwrap();
        let m_life = lifetimes.iter().find(|l| l.signal == m_sig).unwrap();
        // mul finishes at step 2 → born at 3.
        assert_eq!((m_life.birth, m_life.death), (3, 4));
    }

    #[test]
    fn overlap_predicate() {
        let mut b = DfgBuilder::new("stub");
        let s0 = b.input("s0");
        let s1 = b.input("s1");
        assert!(life(s0, 1, 3).overlaps(&life(s1, 3, 5)));
        assert!(!life(s0, 1, 2).overlaps(&life(s1, 3, 5)));
    }
}
