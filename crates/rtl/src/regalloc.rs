//! Register allocation (paper §5.8).
//!
//! "We use an expanded version of the activity selection algorithm … a
//! greedy algorithm capable of finding the best solution for one register
//! in Θ(m) … the signal with the smallest death time is selected and if
//! it is compatible (no time conflict) with other signals in the register
//! it will be assigned to that register" — i.e. the left-edge algorithm
//! of REAL, which is optimal for interval graphs.
//!
//! The life spans themselves ([`Lifetime`], [`signal_lifetimes`],
//! [`peak_live`]) live in `hls-schedule` so that [`ScheduleStats`]'s
//! register counting and this allocator share one definition; they are
//! re-exported here for compatibility.
//!
//! [`ScheduleStats`]: hls_schedule::ScheduleStats

use std::collections::BTreeMap;

use hls_dfg::SignalId;

pub use hls_schedule::{peak_live, signal_lifetimes, Lifetime};

use crate::RegId;

/// A register allocation: which signals share which register.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegAllocation {
    /// Signals per register, in allocation order.
    registers: Vec<Vec<Lifetime>>,
    map: BTreeMap<SignalId, RegId>,
}

impl RegAllocation {
    /// Number of registers used.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// The register holding `signal`, if it is stored at all.
    pub fn register_of(&self, signal: SignalId) -> Option<RegId> {
        self.map.get(&signal).copied()
    }

    /// The life spans packed into register `reg`.
    pub fn contents(&self, reg: RegId) -> &[Lifetime] {
        &self.registers[reg.0 as usize]
    }

    /// Iterates `(register, life spans)`.
    pub fn iter(&self) -> impl Iterator<Item = (RegId, &[Lifetime])> {
        self.registers
            .iter()
            .enumerate()
            .map(|(i, l)| (RegId(i as u32), l.as_slice()))
    }
}

/// Left-edge register allocation: sorts life spans by birth and greedily
/// packs each into the first register whose previous occupant has died.
/// Optimal for interval lifetimes: the register count equals the peak
/// number of simultaneously live values.
pub fn left_edge(lifetimes: &[Lifetime]) -> RegAllocation {
    let mut sorted: Vec<Lifetime> = lifetimes.to_vec();
    sorted.sort_by_key(|l| (l.birth, l.death, l.signal));
    let mut registers: Vec<Vec<Lifetime>> = Vec::new();
    let mut map = BTreeMap::new();
    for life in sorted {
        let slot = registers
            .iter_mut()
            .enumerate()
            .find(|(_, reg)| reg.last().is_none_or(|prev| prev.death < life.birth));
        match slot {
            Some((i, reg)) => {
                reg.push(life);
                map.insert(life.signal, RegId(i as u32));
            }
            None => {
                map.insert(life.signal, RegId(registers.len() as u32));
                registers.push(vec![life]);
            }
        }
    }
    RegAllocation { registers, map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_dfg::DfgBuilder;

    fn life(signal_stub: SignalId, birth: u32, death: u32) -> Lifetime {
        Lifetime {
            signal: signal_stub,
            birth,
            death,
        }
    }

    #[test]
    fn left_edge_packs_disjoint_lifetimes() {
        let mut b = DfgBuilder::new("stub");
        let ids: Vec<SignalId> = (0..3).map(|i| b.input(&format!("s{i}"))).collect();
        let lifetimes = [life(ids[0], 1, 2), life(ids[1], 3, 4), life(ids[2], 2, 3)];
        let alloc = left_edge(&lifetimes);
        assert_eq!(alloc.register_count(), 2);
        assert_eq!(alloc.register_count(), peak_live(&lifetimes));
        // s0 and s1 share a register (1–2 then 3–4).
        assert_eq!(alloc.register_of(ids[0]), alloc.register_of(ids[1]));
        assert_ne!(alloc.register_of(ids[0]), alloc.register_of(ids[2]));
    }

    #[test]
    fn left_edge_matches_peak_on_heavy_overlap() {
        let mut b = DfgBuilder::new("stub");
        let ids: Vec<SignalId> = (0..4).map(|i| b.input(&format!("s{i}"))).collect();
        let lifetimes: Vec<Lifetime> = ids.iter().map(|&s| life(s, 1, 5)).collect();
        let alloc = left_edge(&lifetimes);
        assert_eq!(alloc.register_count(), 4);
        assert_eq!(peak_live(&lifetimes), 4);
    }
}
