//! The RTL structure MFSA produces.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use hls_celllib::{AluKind, TimingSpec};
use hls_dfg::{BankId, Dfg, FuClass, NodeId, NodeKind, SignalId, SignalSource};
use hls_schedule::{Schedule, UnitId};

use crate::muxopt::{pack, MuxOp};
use crate::regalloc::{left_edge, signal_lifetimes, RegAllocation};
use crate::{AluId, NetSource, RegId, RtlError};

/// The instance → ALU-kind mapping of an MFSA run: instance `i` of the
/// schedule's [`UnitId::Alu`] bindings has kind `kinds[i]`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AluAllocation {
    kinds: Vec<AluKind>,
}

impl AluAllocation {
    /// An empty allocation.
    pub fn new() -> Self {
        AluAllocation::default()
    }

    /// Adds an instance of `kind`, returning its id.
    pub fn push(&mut self, kind: AluKind) -> AluId {
        self.kinds.push(kind);
        AluId(self.kinds.len() as u32 - 1)
    }

    /// The kind of instance `id`, if it exists.
    pub fn kind(&self, id: AluId) -> Option<&AluKind> {
        self.kinds.get(id.0 as usize)
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether no instances exist.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Iterates `(id, kind)`.
    pub fn iter(&self) -> impl Iterator<Item = (AluId, &AluKind)> {
        self.kinds
            .iter()
            .enumerate()
            .map(|(i, k)| (AluId(i as u32), k))
    }
}

/// One ALU of the data path with the operations it executes.
#[derive(Debug, Clone, PartialEq)]
pub struct AluInstance {
    /// The instance id.
    pub id: AluId,
    /// Its library kind.
    pub kind: AluKind,
    /// Operations bound to it, in schedule order.
    pub ops: Vec<NodeId>,
}

/// One register with the signal life spans packed into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterInfo {
    /// The register id.
    pub id: RegId,
    /// Stored signals, in life-span order.
    pub signals: Vec<SignalId>,
}

/// One ALU input multiplexer and the net sources it selects between.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxInfo {
    /// The fed ALU.
    pub alu: AluId,
    /// Input port (1 or 2).
    pub port: u8,
    /// Distinct sources on this port.
    pub sources: BTreeSet<NetSource>,
}

impl MuxInfo {
    /// Whether a real multiplexer is needed (≥ 2 sources).
    pub fn is_real(&self) -> bool {
        self.sources.len() >= 2
    }
}

/// One port of a memory bank with the accesses it serves and the nets
/// feeding its address and write-data lines. The address mux plays the
/// same interconnect role as an ALU's operand muxes; the data mux only
/// exists on ports that serve stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemPort {
    /// The bank this port belongs to.
    pub bank: BankId,
    /// 1-based port number within the bank (≤ the declared port count).
    pub port: u32,
    /// Accesses bound to this port, in schedule order.
    pub accesses: Vec<NodeId>,
    /// Distinct nets on the address line.
    pub addr_sources: BTreeSet<NetSource>,
    /// Distinct nets on the write-data line (stores only).
    pub data_sources: BTreeSet<NetSource>,
}

/// A complete RTL data path: ALU instances, registers (via left-edge
/// allocation) and input multiplexers, derived deterministically from an
/// ALU-bound schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Datapath {
    alus: Vec<AluInstance>,
    regalloc: RegAllocation,
    muxes: Vec<MuxInfo>,
    /// Memory bank ports with their address/data interconnect.
    mem_ports: Vec<MemPort>,
    /// Per-op operand orientation chosen by the mux packer.
    swapped: BTreeMap<NodeId, bool>,
    /// Per-op operand sources `(port1, port2)` after orientation. For a
    /// load this is `(address, None)`; for a store `(address, data)`.
    op_sources: BTreeMap<NodeId, (NetSource, Option<NetSource>)>,
}

impl Datapath {
    /// Assembles the data path for a complete ALU-bound `schedule`.
    ///
    /// Signals consumed in their producer's finish step (chaining) are
    /// read directly from the producing ALU; everything else must have a
    /// register, which the embedded left-edge allocation provides.
    ///
    /// # Errors
    ///
    /// See [`RtlError`]: unbound or FU-bound operations, unknown or
    /// incapable instances, and folded-loop nodes are all rejected.
    pub fn build(
        dfg: &Dfg,
        schedule: &Schedule,
        allocation: &AluAllocation,
        spec: &TimingSpec,
    ) -> Result<Datapath, RtlError> {
        // Validate bindings and group ops by instance. Memory accesses
        // keep their FU binding (a bank port); everything else must be
        // on an ALU.
        let mut ops_of: BTreeMap<AluId, Vec<NodeId>> = BTreeMap::new();
        let mut accesses_of: BTreeMap<(BankId, u32), Vec<NodeId>> = BTreeMap::new();
        for id in dfg.node_ids() {
            let slot = schedule.slot(id).ok_or(RtlError::UnboundNode(id))?;
            if dfg.node(id).kind().is_mem_access() {
                match slot.unit {
                    UnitId::Fu {
                        class: FuClass::Mem(bank),
                        index,
                    } => {
                        accesses_of.entry((bank, index.get())).or_default().push(id);
                    }
                    _ => return Err(RtlError::NotPortBound(id)),
                }
                continue;
            }
            let instance = match slot.unit {
                UnitId::Alu { instance } => instance,
                UnitId::Fu { .. } => return Err(RtlError::NotAluBound(id)),
            };
            let alu = AluId(instance);
            let kind = allocation
                .kind(alu)
                .ok_or(RtlError::UnknownInstance { node: id, instance })?;
            let op = match dfg.node(id).kind() {
                NodeKind::Op(op) => op,
                NodeKind::Stage { base, .. } => base,
                _ => return Err(RtlError::UnsupportedNode(id)),
            };
            if !kind.supports(op) {
                return Err(RtlError::IncapableAlu { node: id, alu });
            }
            ops_of.entry(alu).or_default().push(id);
        }
        for ops in ops_of.values_mut() {
            ops.sort_by_key(|&n| (schedule.start(n), n));
        }
        for ops in accesses_of.values_mut() {
            ops.sort_by_key(|&n| (schedule.start(n), n));
        }

        // Registers from life spans.
        let lifetimes = signal_lifetimes(dfg, schedule, spec);
        let regalloc = left_edge(&lifetimes);

        // Per-operand net sources.
        let source_of = |consumer: NodeId, sig: SignalId| -> Result<NetSource, RtlError> {
            let signal = dfg.signal(sig);
            match signal.source() {
                SignalSource::PrimaryInput | SignalSource::Constant(_) => {
                    Ok(NetSource::External(sig))
                }
                SignalSource::Node(producer) => {
                    let c_start = schedule.start(consumer).expect("validated above");
                    let p_finish = schedule
                        .finish(producer, dfg, spec)
                        .expect("validated above");
                    if c_start <= p_finish {
                        // Chained: read the producing ALU directly.
                        match schedule.slot(producer).expect("validated").unit {
                            UnitId::Alu { instance } => Ok(NetSource::Alu(AluId(instance))),
                            UnitId::Fu { .. } => Err(RtlError::NotAluBound(producer)),
                        }
                    } else {
                        regalloc
                            .register_of(sig)
                            .map(NetSource::Register)
                            .ok_or(RtlError::MissingStorage { signal: sig })
                    }
                }
            }
        };

        // Mux packing per instance.
        let mut alus = Vec::new();
        let mut muxes = Vec::new();
        let mut swapped = BTreeMap::new();
        let mut op_sources = BTreeMap::new();
        for (alu, ops) in &ops_of {
            let kind = allocation.kind(*alu).expect("validated").clone();
            let mut mux_ops: Vec<MuxOp<NetSource>> = Vec::with_capacity(ops.len());
            for &op in ops {
                let node = dfg.node(op);
                let inputs = node.inputs();
                let left = source_of(op, inputs[0])?;
                let right = match inputs.get(1) {
                    Some(&s) => Some(source_of(op, s)?),
                    None => None,
                };
                let commutative = match node.kind() {
                    NodeKind::Op(k) => k.is_commutative(),
                    NodeKind::Stage { base, index, .. } => index == 0 && base.is_commutative(),
                    _ => unreachable!("rejected above"),
                };
                mux_ops.push(MuxOp {
                    left,
                    right,
                    commutative,
                });
            }
            let packing = pack(&mux_ops);
            for (i, &op) in ops.iter().enumerate() {
                swapped.insert(op, packing.swapped[i]);
                let (a, b) = if packing.swapped[i] {
                    (
                        mux_ops[i].right.expect("swapped implies binary"),
                        Some(mux_ops[i].left),
                    )
                } else {
                    (mux_ops[i].left, mux_ops[i].right)
                };
                op_sources.insert(op, (a, b));
            }
            muxes.push(MuxInfo {
                alu: *alu,
                port: 1,
                sources: packing.l1,
            });
            muxes.push(MuxInfo {
                alu: *alu,
                port: 2,
                sources: packing.l2,
            });
            alus.push(AluInstance {
                id: *alu,
                kind,
                ops: ops.clone(),
            });
        }

        // Bank ports: address (and, for stores, write-data) nets. The
        // trailing ordering-token inputs of a load/store are dependency
        // edges only — they never reach hardware.
        let mut mem_ports = Vec::new();
        for ((bank, port), accesses) in &accesses_of {
            let mut addr_sources = BTreeSet::new();
            let mut data_sources = BTreeSet::new();
            for &op in accesses {
                let node = dfg.node(op);
                let addr = source_of(op, node.inputs()[0])?;
                addr_sources.insert(addr);
                let data = match node.kind() {
                    NodeKind::Store { .. } => {
                        let d = source_of(op, node.inputs()[1])?;
                        data_sources.insert(d);
                        Some(d)
                    }
                    _ => None,
                };
                op_sources.insert(op, (addr, data));
            }
            mem_ports.push(MemPort {
                bank: *bank,
                port: *port,
                accesses: accesses.clone(),
                addr_sources,
                data_sources,
            });
        }

        Ok(Datapath {
            alus,
            regalloc,
            muxes,
            mem_ports,
            swapped,
            op_sources,
        })
    }

    /// The memory bank ports, ordered by `(bank, port)`. Empty for
    /// designs without arrays.
    pub fn mem_ports(&self) -> &[MemPort] {
        &self.mem_ports
    }

    /// The ALU instances, in id order.
    pub fn alus(&self) -> &[AluInstance] {
        &self.alus
    }

    /// The register allocation.
    pub fn register_allocation(&self) -> &RegAllocation {
        &self.regalloc
    }

    /// The registers with their stored signals.
    pub fn registers(&self) -> Vec<RegisterInfo> {
        self.regalloc
            .iter()
            .map(|(id, lifetimes)| RegisterInfo {
                id,
                signals: lifetimes.iter().map(|l| l.signal).collect(),
            })
            .collect()
    }

    /// All ALU input multiplexers (two per ALU; trivial ones included —
    /// filter with [`MuxInfo::is_real`]).
    pub fn muxes(&self) -> &[MuxInfo] {
        &self.muxes
    }

    /// The oriented operand sources `(port 1, port 2)` of an operation.
    pub fn operand_sources(&self, node: NodeId) -> Option<(NetSource, Option<NetSource>)> {
        self.op_sources.get(&node).copied()
    }

    /// Whether the mux packer swapped `node`'s operands.
    pub fn operands_swapped(&self, node: NodeId) -> bool {
        self.swapped.get(&node).copied().unwrap_or(false)
    }

    /// Number of registers.
    pub fn register_count(&self) -> usize {
        self.regalloc.register_count()
    }

    /// Number of real multiplexers (≥ 2 inputs) — Table 2's `MUX`.
    pub fn mux_count(&self) -> usize {
        self.muxes.iter().filter(|m| m.is_real()).count()
    }

    /// Total inputs over real multiplexers — Table 2's `MUXin`.
    pub fn mux_inputs(&self) -> usize {
        self.muxes
            .iter()
            .filter(|m| m.is_real())
            .map(|m| m.sources.len())
            .sum()
    }

    /// The ALU-set signature in the paper's notation, grouping identical
    /// kinds: e.g. `2(+-*),(+)`.
    pub fn alu_signature(&self) -> String {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for alu in &self.alus {
            *counts.entry(alu.kind.signature()).or_insert(0) += 1;
        }
        let mut parts: Vec<(String, usize)> = counts.into_iter().collect();
        // Larger groups first, then lexicographic, for stable output.
        parts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        parts
            .into_iter()
            .map(|(sig, n)| if n > 1 { format!("{n}{sig}") } else { sig })
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl fmt::Display for Datapath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "datapath: {} ALU(s) {}, {} register(s), {} mux(es) with {} input(s)",
            self.alus.len(),
            self.alu_signature(),
            self.register_count(),
            self.mux_count(),
            self.mux_inputs(),
        )?;
        for alu in &self.alus {
            writeln!(f, "  {} {}: {} op(s)", alu.id, alu.kind, alu.ops.len())?;
        }
        for p in &self.mem_ports {
            writeln!(
                f,
                "  {}.p{}: {} access(es)",
                p.bank,
                p.port,
                p.accesses.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::{Area, Library, OpKind};
    use hls_dfg::DfgBuilder;
    use hls_schedule::{CStep, Slot};

    /// A two-ALU fixture: mul on ALU0, two adds sharing ALU1.
    fn fixture() -> (Dfg, Schedule, AluAllocation, TimingSpec) {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.op("m", OpKind::Mul, &[x, y]).unwrap();
        let a1 = b.op("a1", OpKind::Add, &[m, y]).unwrap();
        b.op("a2", OpKind::Add, &[a1, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let mut s = Schedule::new(&g, 3);
        let assign = |s: &mut Schedule, name: &str, step: u32, inst: u32| {
            s.assign(
                g.node_by_name(name).unwrap(),
                Slot {
                    step: CStep::new(step),
                    unit: UnitId::Alu { instance: inst },
                },
            );
        };
        assign(&mut s, "m", 1, 0);
        assign(&mut s, "a1", 2, 1);
        assign(&mut s, "a2", 3, 1);
        let lib = Library::ncr_like();
        let mut alloc = AluAllocation::new();
        alloc.push(lib.alu_by_name("mul").unwrap().clone());
        alloc.push(lib.alu_by_name("add").unwrap().clone());
        (g, s, alloc, spec)
    }

    #[test]
    fn build_assembles_all_components() {
        let (g, s, alloc, spec) = fixture();
        let dp = Datapath::build(&g, &s, &alloc, &spec).unwrap();
        assert_eq!(dp.alus().len(), 2);
        assert_eq!(dp.alus()[1].ops.len(), 2);
        // Registers: x lives 1..=3, y 1..=2, m 2..=2, a1 3..=3, a2 latch.
        assert!(dp.register_count() >= 2);
        assert!(dp.mux_count() >= 1, "the shared adder needs muxes");
        assert!(dp.alu_signature().contains("(+)"));
        assert!(dp.to_string().contains("ALU0"));
    }

    #[test]
    fn incapable_alu_is_rejected() {
        let (g, s, _, spec) = fixture();
        let lib = Library::ncr_like();
        let mut alloc = AluAllocation::new();
        // Both instances adders: the multiply cannot run.
        alloc.push(lib.alu_by_name("add").unwrap().clone());
        alloc.push(lib.alu_by_name("add").unwrap().clone());
        assert!(matches!(
            Datapath::build(&g, &s, &alloc, &spec),
            Err(RtlError::IncapableAlu { .. })
        ));
    }

    #[test]
    fn unknown_instance_is_rejected() {
        let (g, s, _, spec) = fixture();
        let alloc = AluAllocation::new();
        assert!(matches!(
            Datapath::build(&g, &s, &alloc, &spec),
            Err(RtlError::UnknownInstance { .. })
        ));
    }

    #[test]
    fn incomplete_schedule_is_rejected() {
        let (g, mut s, alloc, spec) = fixture();
        s.unassign(g.node_by_name("a2").unwrap());
        assert!(matches!(
            Datapath::build(&g, &s, &alloc, &spec),
            Err(RtlError::UnboundNode(_))
        ));
    }

    #[test]
    fn operand_sources_cover_every_op() {
        let (g, s, alloc, spec) = fixture();
        let dp = Datapath::build(&g, &s, &alloc, &spec).unwrap();
        for id in g.node_ids() {
            let (p1, p2) = dp.operand_sources(id).expect("sourced");
            // Binary ops have both ports.
            assert!(p2.is_some());
            let mux1 = dp
                .muxes()
                .iter()
                .find(|m| {
                    m.port == 1
                        && m.alu
                            == match s.slot(id).unwrap().unit {
                                UnitId::Alu { instance } => AluId(instance),
                                _ => unreachable!(),
                            }
                })
                .unwrap();
            assert!(mux1.sources.contains(&p1));
        }
    }

    #[test]
    fn alu_signature_groups_identical_kinds() {
        let lib = Library::ncr_like();
        let mut alloc = AluAllocation::new();
        let add = lib.alu_by_name("add").unwrap().clone();
        alloc.push(add.clone());
        alloc.push(add);
        alloc.push(AluKind::new("x", [OpKind::Sub], Area::new(10)));
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("p", OpKind::Add, &[x, x]).unwrap();
        b.op("q", OpKind::Add, &[x, x]).unwrap();
        b.op("r", OpKind::Sub, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let mut s = Schedule::new(&g, 2);
        for (i, (id, _)) in g.nodes().enumerate() {
            s.assign(
                id,
                Slot {
                    step: CStep::new(1),
                    unit: UnitId::Alu { instance: i as u32 },
                },
            );
        }
        let dp = Datapath::build(&g, &s, &alloc, &TimingSpec::uniform_single_cycle()).unwrap();
        assert_eq!(dp.alu_signature(), "2(+),(-)");
    }
}
