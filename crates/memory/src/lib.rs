//! Memory-aware analysis for `moveframe-hls` synthesis results.
//!
//! The schedulers treat every memory bank's port count as a hard
//! per-control-step concurrency limit (the access-conflict frame `AF`
//! of the move-frame computation). This crate closes the loop from the
//! *outside*: given a data-flow graph with memory declarations and a
//! finished schedule, it recomputes per-bank port pressure from first
//! principles and checks — independently of the scheduler that produced
//! the schedule — that no step oversubscribes a bank and no two
//! accesses share one physical port in one step.
//!
//! * [`access_bindings`] — the flat list of scheduled memory accesses
//!   with their bank/port bindings;
//! * [`port_pressure`] — per-bank, per-step access counts plus peaks;
//! * [`check_port_safety`] — typed violations (oversubscribed steps,
//!   double-booked ports, out-of-range ports);
//! * [`bank_usage`] — a per-bank summary (loads, stores, peak pressure,
//!   utilisation) for reports and the explorer's `point_json`.
//!
//! ```
//! use hls_celllib::TimingSpec;
//! use hls_dfg::parse_dfg;
//! use hls_mem::{check_port_safety, port_pressure};
//! use moveframe::mfs::{self, MfsConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dfg = parse_dfg(
//!     "input i
//!      array a[8] @ bank0(ports=2)
//!      load x = a[i]
//!      op y = inc(x)
//!      store a[i] = y",
//! )?;
//! let spec = TimingSpec::uniform_single_cycle();
//! let out = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(4))?;
//! let safety = check_port_safety(&dfg, &out.schedule)?;
//! assert!(safety.is_empty(), "schedulers are port-safe by construction");
//! let pressure = port_pressure(&dfg, &out.schedule)?;
//! let bank = dfg.memory().banks()[0].id();
//! assert!(pressure.peak(bank) <= 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

use hls_dfg::{ArrayId, BankId, Dfg, FuClass, NodeId, NodeKind};
use hls_schedule::{CStep, Schedule, UnitId};

/// A scheduled memory access with its physical binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessBinding {
    /// The load or store node.
    pub node: NodeId,
    /// The array it touches.
    pub array: ArrayId,
    /// The bank holding that array.
    pub bank: BankId,
    /// 1-based port of the bank the access is bound to.
    pub port: u32,
    /// Control step the access issues in.
    pub step: CStep,
    /// `true` for stores, `false` for loads.
    pub write: bool,
}

impl fmt::Display for AccessBinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} @ s{} on {}.p{}",
            if self.write { "st" } else { "ld" },
            self.array,
            self.step.get(),
            self.bank,
            self.port
        )
    }
}

/// Why a schedule's memory bindings could not be analysed at all
/// (distinct from a *violation*, which is a well-formed but unsafe
/// binding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// A load/store node has no slot in the schedule.
    Unscheduled(NodeId),
    /// A load/store node is bound to a unit that is not a memory port
    /// of its own bank (e.g. an ALU, or another bank's port).
    NotPortBound(NodeId),
    /// A load/store node references an array the graph never declared
    /// (impossible via the builder/parser; guards hand-built graphs).
    UnknownArray(NodeId),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unscheduled(n) => write!(f, "memory access {n} is unscheduled"),
            MemError::NotPortBound(n) => {
                write!(f, "memory access {n} is not bound to a port of its bank")
            }
            MemError::UnknownArray(n) => {
                write!(f, "memory access {n} references an undeclared array")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// A port-safety violation found by [`check_port_safety`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortViolation {
    /// More accesses issue on a bank in one step than the bank has
    /// ports.
    Oversubscribed {
        /// The oversubscribed bank.
        bank: BankId,
        /// The step in question.
        step: CStep,
        /// Accesses issuing on the bank that step.
        nodes: Vec<NodeId>,
        /// The bank's declared port count.
        ports: u32,
    },
    /// Two or more accesses are bound to the same physical port in the
    /// same step.
    DoubleBooked {
        /// The bank.
        bank: BankId,
        /// The contested port.
        port: u32,
        /// The step in question.
        step: CStep,
        /// The accesses sharing the port.
        nodes: Vec<NodeId>,
    },
    /// An access is bound to a port index above the bank's port count
    /// (ports are 1-based: valid indices are `1..=ports`).
    PortOutOfRange {
        /// The offending access.
        node: NodeId,
        /// The bank.
        bank: BankId,
        /// The out-of-range port index.
        port: u32,
        /// The bank's declared port count.
        ports: u32,
    },
}

impl fmt::Display for PortViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortViolation::Oversubscribed {
                bank,
                step,
                nodes,
                ports,
            } => write!(
                f,
                "bank {bank} has {} accesses in step {} but only {ports} port(s)",
                nodes.len(),
                step.get()
            ),
            PortViolation::DoubleBooked {
                bank, port, step, ..
            } => write!(
                f,
                "port {bank}.p{port} carries more than one access in step {}",
                step.get()
            ),
            PortViolation::PortOutOfRange {
                node,
                bank,
                port,
                ports,
            } => write!(
                f,
                "access {node} bound to {bank}.p{port} but the bank has only {ports} port(s)"
            ),
        }
    }
}

/// Extracts every scheduled memory access with its bank/port binding,
/// sorted by (step, bank, port).
///
/// Mutually-exclusive accesses (different branch arms) may legally
/// share a port in a step; they appear as separate bindings here —
/// [`check_port_safety`] is what knows about exclusion.
pub fn access_bindings(dfg: &Dfg, schedule: &Schedule) -> Result<Vec<AccessBinding>, MemError> {
    let mut out = Vec::new();
    for id in dfg.node_ids() {
        let node = dfg.node(id);
        let (array, write) = match node.kind() {
            NodeKind::Load { array, .. } => (array, false),
            NodeKind::Store { array, .. } => (array, true),
            _ => continue,
        };
        let decl = dfg
            .memory()
            .array(array)
            .ok_or(MemError::UnknownArray(id))?;
        let slot = schedule.slot(id).ok_or(MemError::Unscheduled(id))?;
        let UnitId::Fu {
            class: FuClass::Mem(bank),
            index,
        } = slot.unit
        else {
            return Err(MemError::NotPortBound(id));
        };
        if bank != decl.bank() {
            return Err(MemError::NotPortBound(id));
        }
        out.push(AccessBinding {
            node: id,
            array,
            bank,
            port: index.get(),
            step: slot.step,
            write,
        });
    }
    out.sort_by_key(|a| (a.step, a.bank, a.port, a.node));
    Ok(out)
}

/// Per-bank, per-step access pressure of a schedule.
///
/// `pressure` counts *simultaneous* demand: a set of pairwise
/// mutually-exclusive accesses on one port counts once, because only
/// one of them executes in any run. Peak pressure on a port-safe
/// schedule therefore never exceeds the bank's port count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortPressure {
    steps: u32,
    per_bank: BTreeMap<BankId, Vec<u32>>,
}

impl PortPressure {
    /// The schedule length the pressure profile covers.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// Banks with a profile (every declared bank, even if unused).
    pub fn banks(&self) -> impl Iterator<Item = BankId> + '_ {
        self.per_bank.keys().copied()
    }

    /// Pressure on `bank` at `step` (0 for unknown banks or steps past
    /// the schedule end).
    pub fn at(&self, bank: BankId, step: CStep) -> u32 {
        self.per_bank
            .get(&bank)
            .and_then(|v| v.get(step.get() as usize - 1))
            .copied()
            .unwrap_or(0)
    }

    /// Peak per-step pressure on `bank` over the whole schedule.
    pub fn peak(&self, bank: BankId) -> u32 {
        self.per_bank
            .get(&bank)
            .map(|v| v.iter().copied().max().unwrap_or(0))
            .unwrap_or(0)
    }

    /// The full per-step profile of `bank` (index 0 = step 1).
    pub fn profile(&self, bank: BankId) -> &[u32] {
        self.per_bank.get(&bank).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Computes the per-bank port-pressure profile of a schedule.
///
/// Fails (rather than under-reporting) if any memory access is
/// unscheduled or bound to a non-port unit.
pub fn port_pressure(dfg: &Dfg, schedule: &Schedule) -> Result<PortPressure, MemError> {
    let bindings = access_bindings(dfg, schedule)?;
    let steps = schedule.control_steps();
    let mut per_bank: BTreeMap<BankId, Vec<u32>> = dfg
        .memory()
        .banks()
        .iter()
        .map(|b| (b.id(), vec![0u32; steps as usize]))
        .collect();
    // Group by (bank, step), then count an exclusion-aware clique cover:
    // accesses that are pairwise mutually exclusive share demand.
    let mut groups: BTreeMap<(BankId, CStep), Vec<NodeId>> = BTreeMap::new();
    for b in &bindings {
        groups.entry((b.bank, b.step)).or_default().push(b.node);
    }
    for ((bank, step), nodes) in groups {
        let demand = simultaneous_demand(dfg, &nodes);
        if let Some(profile) = per_bank.get_mut(&bank) {
            if let Some(cell) = profile.get_mut(step.get() as usize - 1) {
                *cell = demand;
            }
        }
    }
    Ok(PortPressure { steps, per_bank })
}

/// Greedy clique cover under the mutual-exclusion relation: the number
/// of ports the group genuinely needs at once. Exact for the
/// branch-arm exclusion structure the builder produces (exclusion
/// classes are transitive within one branch).
fn simultaneous_demand(dfg: &Dfg, nodes: &[NodeId]) -> u32 {
    let mut cliques: Vec<Vec<NodeId>> = Vec::new();
    for &n in nodes {
        match cliques
            .iter_mut()
            .find(|c| c.iter().all(|&m| dfg.mutually_exclusive(n, m)))
        {
            Some(c) => c.push(n),
            None => cliques.push(vec![n]),
        }
    }
    cliques.len() as u32
}

/// Checks a schedule's memory bindings for port safety.
///
/// Returns every violation found: steps whose simultaneous demand on a
/// bank exceeds its port count, physical ports carrying two
/// non-exclusive accesses in one step, and port indices outside the
/// bank's declared range. An empty vector means the schedule is
/// port-safe. The schedulers guarantee this by construction; this
/// check is the independent witness.
pub fn check_port_safety(dfg: &Dfg, schedule: &Schedule) -> Result<Vec<PortViolation>, MemError> {
    let bindings = access_bindings(dfg, schedule)?;
    let mut violations = Vec::new();

    let mut by_bank_step: BTreeMap<(BankId, CStep), Vec<NodeId>> = BTreeMap::new();
    let mut by_port_step: BTreeMap<(BankId, u32, CStep), Vec<NodeId>> = BTreeMap::new();
    for b in &bindings {
        let ports = dfg.bank_ports(b.bank);
        if b.port == 0 || b.port > ports {
            violations.push(PortViolation::PortOutOfRange {
                node: b.node,
                bank: b.bank,
                port: b.port,
                ports,
            });
        }
        by_bank_step
            .entry((b.bank, b.step))
            .or_default()
            .push(b.node);
        by_port_step
            .entry((b.bank, b.port, b.step))
            .or_default()
            .push(b.node);
    }

    for ((bank, step), nodes) in &by_bank_step {
        let ports = dfg.bank_ports(*bank);
        if simultaneous_demand(dfg, nodes) > ports {
            violations.push(PortViolation::Oversubscribed {
                bank: *bank,
                step: *step,
                nodes: nodes.clone(),
                ports,
            });
        }
    }
    for ((bank, port, step), nodes) in &by_port_step {
        if simultaneous_demand(dfg, nodes) > 1 {
            violations.push(PortViolation::DoubleBooked {
                bank: *bank,
                port: *port,
                step: *step,
                nodes: nodes.clone(),
            });
        }
    }
    Ok(violations)
}

/// Per-bank usage summary of a schedule, for reports and JSON surfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankUsage {
    /// The bank.
    pub bank: BankId,
    /// The bank's name.
    pub name: String,
    /// Declared port count.
    pub ports: u32,
    /// Scheduled loads on the bank.
    pub loads: u32,
    /// Scheduled stores on the bank.
    pub stores: u32,
    /// Peak simultaneous per-step demand.
    pub peak_pressure: u32,
    /// Steps (out of the schedule length) with at least one access.
    pub busy_steps: u32,
}

impl BankUsage {
    /// Total accesses (loads + stores).
    pub fn accesses(&self) -> u32 {
        self.loads + self.stores
    }
}

/// Summarises every declared bank's usage under a schedule.
pub fn bank_usage(dfg: &Dfg, schedule: &Schedule) -> Result<Vec<BankUsage>, MemError> {
    let bindings = access_bindings(dfg, schedule)?;
    let pressure = port_pressure(dfg, schedule)?;
    let mut out = Vec::new();
    for bank in dfg.memory().banks() {
        let mine: Vec<_> = bindings.iter().filter(|b| b.bank == bank.id()).collect();
        out.push(BankUsage {
            bank: bank.id(),
            name: bank.name().to_string(),
            ports: bank.ports(),
            loads: mine.iter().filter(|b| !b.write).count() as u32,
            stores: mine.iter().filter(|b| b.write).count() as u32,
            peak_pressure: pressure.peak(bank.id()),
            busy_steps: pressure
                .profile(bank.id())
                .iter()
                .filter(|&&p| p > 0)
                .count() as u32,
        });
    }
    Ok(out)
}

/// Renders a small fixed-width port-pressure report, one row per bank:
///
/// ```text
/// bank    ports  peak  loads  stores  profile
/// bank0       2     2      4       1  1 2 2 1 0 0
/// ```
pub fn render_port_report(dfg: &Dfg, schedule: &Schedule) -> Result<String, MemError> {
    let usage = bank_usage(dfg, schedule)?;
    let pressure = port_pressure(dfg, schedule)?;
    let mut out = String::new();
    out.push_str("bank        ports  peak  loads  stores  profile\n");
    for u in &usage {
        let profile: Vec<String> = pressure
            .profile(u.bank)
            .iter()
            .map(|p| p.to_string())
            .collect();
        out.push_str(&format!(
            "{:<12}{:>5}{:>6}{:>7}{:>8}  {}\n",
            u.name,
            u.ports,
            u.peak_pressure,
            u.loads,
            u.stores,
            profile.join(" ")
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_dfg::DfgBuilder;
    use hls_schedule::{FuIndex, Slot};

    fn mem_graph() -> Dfg {
        let mut b = DfgBuilder::new("g");
        let i = b.input("i");
        let j = b.input("j");
        let bank = b.declare_bank("bank0", 2);
        let a = b.declare_array("a", 8, bank);
        let x = b.load("x", a, i).unwrap();
        let _y = b.load("y", a, j).unwrap();
        let _s = b.store("s", a, i, x).unwrap();
        b.finish().unwrap()
    }

    fn slot(step: u32, bank: BankId, port: u32) -> Slot {
        Slot {
            step: CStep::new(step),
            unit: UnitId::Fu {
                class: FuClass::Mem(bank),
                index: FuIndex::new(port),
            },
        }
    }

    #[test]
    fn bindings_pressure_and_safety_on_a_legal_schedule() {
        let g = mem_graph();
        let bank = g.memory().banks()[0].id();
        let mut s = Schedule::new(&g, 3);
        s.assign(g.node_by_name("x").unwrap(), slot(1, bank, 1));
        s.assign(g.node_by_name("y").unwrap(), slot(1, bank, 2));
        s.assign(g.node_by_name("s").unwrap(), slot(2, bank, 1));

        let b = access_bindings(&g, &s).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b[0].port, 1);
        assert!(!b[0].write);
        assert!(b[2].write);
        assert_eq!(b[2].to_string(), "st a0 @ s2 on b0.p1");

        let p = port_pressure(&g, &s).unwrap();
        assert_eq!(p.peak(bank), 2);
        assert_eq!(p.profile(bank), &[2, 1, 0]);
        assert_eq!(p.at(bank, CStep::new(2)), 1);
        assert_eq!(p.at(bank, CStep::new(9)), 0);

        assert!(check_port_safety(&g, &s).unwrap().is_empty());

        let usage = bank_usage(&g, &s).unwrap();
        assert_eq!(usage.len(), 1);
        assert_eq!(usage[0].loads, 2);
        assert_eq!(usage[0].stores, 1);
        assert_eq!(usage[0].accesses(), 3);
        assert_eq!(usage[0].peak_pressure, 2);
        assert_eq!(usage[0].busy_steps, 2);

        let report = render_port_report(&g, &s).unwrap();
        assert!(report.contains("bank0"));
        assert!(report.contains("2 1 0"));
    }

    #[test]
    fn oversubscription_and_double_booking_are_reported() {
        let g = mem_graph();
        let bank = g.memory().banks()[0].id();
        let mut s = Schedule::new(&g, 3);
        // All three on one step; two of them on the same port.
        s.assign(g.node_by_name("x").unwrap(), slot(1, bank, 1));
        s.assign(g.node_by_name("y").unwrap(), slot(1, bank, 1));
        s.assign(g.node_by_name("s").unwrap(), slot(1, bank, 2));

        let v = check_port_safety(&g, &s).unwrap();
        assert!(v
            .iter()
            .any(|x| matches!(x, PortViolation::Oversubscribed { ports: 2, .. })));
        assert!(v
            .iter()
            .any(|x| matches!(x, PortViolation::DoubleBooked { port: 1, .. })));
        for violation in &v {
            assert!(!violation.to_string().is_empty());
        }
    }

    #[test]
    fn out_of_range_ports_are_reported() {
        let g = mem_graph();
        let bank = g.memory().banks()[0].id();
        let mut s = Schedule::new(&g, 3);
        s.assign(g.node_by_name("x").unwrap(), slot(1, bank, 3));
        s.assign(g.node_by_name("y").unwrap(), slot(2, bank, 1));
        s.assign(g.node_by_name("s").unwrap(), slot(3, bank, 1));
        let v = check_port_safety(&g, &s).unwrap();
        assert!(v.iter().any(|x| matches!(
            x,
            PortViolation::PortOutOfRange {
                port: 3,
                ports: 2,
                ..
            }
        )));
    }

    #[test]
    fn analysis_errors_are_typed() {
        let g = mem_graph();
        let mut s = Schedule::new(&g, 3);
        assert!(matches!(
            access_bindings(&g, &s),
            Err(MemError::Unscheduled(_))
        ));
        // Bind a load to an ALU: not a port binding.
        s.assign(
            g.node_by_name("x").unwrap(),
            Slot {
                step: CStep::new(1),
                unit: UnitId::Alu { instance: 0 },
            },
        );
        let bank = g.memory().banks()[0].id();
        s.assign(g.node_by_name("y").unwrap(), slot(1, bank, 2));
        s.assign(g.node_by_name("s").unwrap(), slot(2, bank, 1));
        assert!(matches!(
            access_bindings(&g, &s),
            Err(MemError::NotPortBound(_))
        ));
        for e in [
            MemError::Unscheduled(g.node_by_name("x").unwrap()),
            MemError::NotPortBound(g.node_by_name("x").unwrap()),
            MemError::UnknownArray(g.node_by_name("x").unwrap()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn exclusive_branch_arms_share_a_port() {
        let mut b = DfgBuilder::new("g");
        let i = b.input("i");
        let c = b.input("c");
        let bank = b.declare_bank("m", 1);
        let a = b.declare_array("a", 4, bank);
        let _cmp = b.op("cmp", hls_celllib::OpKind::Gt, &[c, i]).unwrap();
        let br = b.begin_branch();
        b.enter_arm(br, 0);
        let t = b.load("t", a, i).unwrap();
        b.exit_arm();
        b.enter_arm(br, 1);
        let e = b.load("e", a, i).unwrap();
        b.exit_arm();
        b.op("z", hls_celllib::OpKind::Add, &[t, e]).unwrap();
        let g = b.finish().unwrap();

        let mut s = Schedule::new(&g, 3);
        s.assign(
            g.node_by_name("cmp").unwrap(),
            Slot {
                step: CStep::new(1),
                unit: UnitId::Alu { instance: 0 },
            },
        );
        s.assign(g.node_by_name("t").unwrap(), slot(2, bank, 1));
        s.assign(g.node_by_name("e").unwrap(), slot(2, bank, 1));
        s.assign(
            g.node_by_name("z").unwrap(),
            Slot {
                step: CStep::new(3),
                unit: UnitId::Alu { instance: 0 },
            },
        );
        // Same port, same step — but mutually exclusive, so legal and
        // pressure 1.
        assert!(check_port_safety(&g, &s).unwrap().is_empty());
        let p = port_pressure(&g, &s).unwrap();
        assert_eq!(p.peak(bank), 1);
    }
}
