//! A small textual format for data-flow graphs.
//!
//! The grammar, one statement per line (`#` starts a comment):
//!
//! ```text
//! dfg NAME                     # optional header; defaults to "dfg"
//! input  a, b, c
//! const  three = 3
//! op     t1 = mul(a, b)                # op NAME = KIND(ARGS)
//! op     t2 = add(t1, c) @branch(0.1)  # optional branch annotation
//! ```
//!
//! Operation kinds accept both short names (`mul`) and symbols (`*`).
//! Branch annotations give the full nested path as dot pairs separated by
//! slashes: `@branch(0.0/1.2)` means arm 0 of branch 0, then arm 2 of
//! branch 1. Loops are not expressible in the text format; use
//! [`crate::DfgBuilder`] for hierarchical graphs.

use std::collections::BTreeMap;

use hls_celllib::OpKind;

use crate::signal::{BranchArm, BranchId, BranchPath};
use crate::{Dfg, DfgBuilder, DfgError, SignalId};

fn err(line: usize, message: impl Into<String>) -> DfgError {
    DfgError::Parse {
        line,
        message: message.into(),
    }
}

/// Parses the textual DFG format described in the module docs.
///
/// ```
/// let text = "
///     dfg demo
///     input x, dx
///     const three = 3
///     op t1 = mul(x, dx)
///     op t2 = add(t1, three)
/// ";
/// let dfg = hls_dfg::parse_dfg(text)?;
/// assert_eq!(dfg.name(), "demo");
/// assert_eq!(dfg.node_count(), 2);
/// # Ok::<(), hls_dfg::DfgError>(())
/// ```
///
/// # Errors
///
/// Returns [`DfgError::Parse`] with the offending 1-based line for any
/// syntax problem, and the usual structural errors ([`DfgError::UnknownSignal`],
/// [`DfgError::DuplicateName`], …) for semantic ones.
pub fn parse_dfg(text: &str) -> Result<Dfg, DfgError> {
    let mut name = String::from("dfg");
    let mut signals: BTreeMap<String, SignalId> = BTreeMap::new();
    // The builder tracks the branch stack itself, but the text format
    // gives absolute paths per op; collect ops first, then build.
    struct PendingOp {
        line: usize,
        name: String,
        kind: OpKind,
        args: Vec<String>,
        branch: BranchPath,
    }
    let mut inputs: Vec<String> = Vec::new();
    let mut constants: Vec<(String, i64)> = Vec::new();
    let mut ops: Vec<PendingOp> = Vec::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (head, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match head {
            "dfg" => {
                if rest.is_empty() {
                    return Err(err(lineno, "expected a name after `dfg`"));
                }
                name = rest.to_string();
            }
            "input" => {
                for n in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    inputs.push(n.to_string());
                }
            }
            "const" => {
                let (n, v) = rest
                    .split_once('=')
                    .ok_or_else(|| err(lineno, "expected `const NAME = VALUE`"))?;
                let value: i64 = v
                    .trim()
                    .parse()
                    .map_err(|_| err(lineno, format!("invalid constant value `{}`", v.trim())))?;
                constants.push((n.trim().to_string(), value));
            }
            "op" => {
                let (op_name, call) = rest
                    .split_once('=')
                    .ok_or_else(|| err(lineno, "expected `op NAME = KIND(ARGS)`"))?;
                let call = call.trim();
                let (call_part, branch) = match call.split_once('@') {
                    None => (call, BranchPath::top_level()),
                    Some((c, ann)) => {
                        let ann = ann.trim();
                        let inner = ann
                            .strip_prefix("branch(")
                            .and_then(|s| s.strip_suffix(')'))
                            .ok_or_else(|| err(lineno, "expected `@branch(B.A/…)`"))?;
                        let mut arms = Vec::new();
                        for pair in inner.split('/') {
                            let (b, a) = pair
                                .split_once('.')
                                .ok_or_else(|| err(lineno, "branch arm must be `B.A`"))?;
                            let branch: u32 = b
                                .trim()
                                .parse()
                                .map_err(|_| err(lineno, "branch id must be an integer"))?;
                            let arm: u32 = a
                                .trim()
                                .parse()
                                .map_err(|_| err(lineno, "arm id must be an integer"))?;
                            arms.push(BranchArm {
                                branch: BranchId::new(branch),
                                arm,
                            });
                        }
                        (c.trim(), BranchPath::from_arms(arms))
                    }
                };
                let open = call_part
                    .find('(')
                    .ok_or_else(|| err(lineno, "expected `KIND(ARGS)`"))?;
                let close = call_part
                    .rfind(')')
                    .ok_or_else(|| err(lineno, "missing `)`"))?;
                if close < open {
                    return Err(err(lineno, "mismatched parentheses"));
                }
                let kind: OpKind = call_part[..open]
                    .trim()
                    .parse()
                    .map_err(|e| err(lineno, format!("{e}")))?;
                let args: Vec<String> = call_part[open + 1..close]
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                ops.push(PendingOp {
                    line: lineno,
                    name: op_name.trim().to_string(),
                    kind,
                    args,
                    branch,
                });
            }
            other => {
                return Err(err(
                    lineno,
                    format!("unknown statement `{other}` (expected dfg/input/const/op)"),
                ));
            }
        }
    }

    let mut b = DfgBuilder::new(name);
    for n in &inputs {
        if signals.contains_key(n) {
            return Err(DfgError::DuplicateName(n.clone()));
        }
        let id = b.input(n);
        signals.insert(n.clone(), id);
    }
    for (n, v) in &constants {
        if signals.contains_key(n) {
            return Err(DfgError::DuplicateName(n.clone()));
        }
        let id = b.constant(n, *v);
        signals.insert(n.clone(), id);
    }
    for op in &ops {
        let mut arg_ids = Vec::with_capacity(op.args.len());
        for a in &op.args {
            let id = signals
                .get(a)
                .copied()
                .ok_or_else(|| DfgError::UnknownSignal(a.clone()))?;
            arg_ids.push(id);
        }
        if arg_ids.len() != op.kind.arity() {
            return Err(err(
                op.line,
                format!(
                    "`{}` expects {} argument(s), got {}",
                    op.kind,
                    op.kind.arity(),
                    arg_ids.len()
                ),
            ));
        }
        // Reproduce the builder's branch bookkeeping with an absolute
        // path: temporarily push the arms around the single op.
        for arm in op.branch.arms() {
            b.enter_arm(arm.branch, arm.arm);
        }
        let out = b.op(&op.name, op.kind, &arg_ids)?;
        for _ in op.branch.arms() {
            b.exit_arm();
        }
        signals.insert(op.name.clone(), out);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_small_graph() {
        let g = parse_dfg(
            "dfg demo\n\
             input a, b\n\
             const k = 7\n\
             op p = *(a, b)\n\
             op q = add(p, k)  # trailing comment\n",
        )
        .unwrap();
        assert_eq!(g.name(), "demo");
        assert_eq!(g.node_count(), 2);
        let p = g.node_by_name("p").unwrap();
        let q = g.node_by_name("q").unwrap();
        assert_eq!(g.preds(q), &[p]);
    }

    #[test]
    fn branch_annotations_create_exclusive_ops() {
        let g = parse_dfg(
            "input a, b\n\
             op t = add(a, b) @branch(0.0)\n\
             op e = sub(a, b) @branch(0.1)\n",
        )
        .unwrap();
        let t = g.node_by_name("t").unwrap();
        let e = g.node_by_name("e").unwrap();
        assert!(g.mutually_exclusive(t, e));
    }

    #[test]
    fn nested_branch_paths() {
        let g = parse_dfg(
            "input a\n\
             op t = inc(a) @branch(0.0/1.0)\n\
             op u = dec(a) @branch(0.0/1.1)\n",
        )
        .unwrap();
        let t = g.node_by_name("t").unwrap();
        assert_eq!(g.node(t).branch().arms().len(), 2);
        let u = g.node_by_name("u").unwrap();
        assert!(g.mutually_exclusive(t, u));
    }

    #[test]
    fn unknown_signal_is_reported() {
        let e = parse_dfg("input a\nop t = add(a, missing)\n").unwrap_err();
        assert_eq!(e, DfgError::UnknownSignal("missing".into()));
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let e = parse_dfg("input a\nop t = add a\n").unwrap_err();
        assert!(matches!(e, DfgError::Parse { line: 2, .. }));
        let e = parse_dfg("bogus statement\n").unwrap_err();
        assert!(matches!(e, DfgError::Parse { line: 1, .. }));
        let e = parse_dfg("const k = x\n").unwrap_err();
        assert!(matches!(e, DfgError::Parse { line: 1, .. }));
    }

    #[test]
    fn arity_errors_are_caught_at_parse_time() {
        let e = parse_dfg("input a\nop t = add(a)\n").unwrap_err();
        assert!(matches!(e, DfgError::Parse { line: 2, .. }));
    }

    #[test]
    fn unknown_op_kind_is_reported() {
        let e = parse_dfg("input a, b\nop t = frobnicate(a, b)\n").unwrap_err();
        assert!(matches!(e, DfgError::Parse { line: 2, .. }));
    }

    #[test]
    fn ops_can_feed_later_ops_by_name() {
        let g = parse_dfg(
            "input a\n\
             op t = inc(a)\n\
             op u = inc(t)\n\
             op v = add(t, u)\n",
        )
        .unwrap();
        assert_eq!(g.node_count(), 3);
        let v = g.node_by_name("v").unwrap();
        assert_eq!(g.preds(v).len(), 2);
    }
}
