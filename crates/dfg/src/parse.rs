//! A small textual format for data-flow graphs.
//!
//! The grammar, one statement per line (`#` starts a comment):
//!
//! ```text
//! dfg NAME                     # optional header; defaults to "dfg"
//! input  a, b, c
//! const  three = 3
//! op     t1 = mul(a, b)                # op NAME = KIND(ARGS)
//! op     t2 = add(t1, c) @branch(0.1)  # optional branch annotation
//! bank   ram(ports=2)                  # a memory bank with 2 ports
//! array  a[16] @ ram                   # 16 elements living in `ram`
//! array  c[8] @ bank0(ports=1)         # array + implicit bank decl
//! load   v = a[i]                      # index: signal or literal
//! store  a[i] = v                      # auto-named store
//! store  s0 = a[3], v                  # named store, literal index
//! ```
//!
//! Operation kinds accept both short names (`mul`) and symbols (`*`).
//! Branch annotations give the full nested path as dot pairs separated by
//! slashes: `@branch(0.0/1.2)` means arm 0 of branch 0, then arm 2 of
//! branch 1. Loops are not expressible in the text format; use
//! [`crate::DfgBuilder`] for hierarchical graphs.
//!
//! Loads and stores execute in statement order per array: the parser
//! (via [`crate::DfgBuilder`]) threads ordering tokens so RAW/WAW/WAR
//! hazards become data dependencies, while independent accesses stay
//! free to share a multi-port bank's control step.

use std::collections::BTreeMap;

use hls_celllib::OpKind;

use crate::memory::ArrayId;
use crate::signal::{BranchArm, BranchId, BranchPath};
use crate::{Dfg, DfgBuilder, DfgError, SignalId};

fn err(line: usize, message: impl Into<String>) -> DfgError {
    DfgError::Parse {
        line,
        message: message.into(),
    }
}

/// Parses the textual DFG format described in the module docs.
///
/// ```
/// let text = "
///     dfg demo
///     input x, dx
///     const three = 3
///     op t1 = mul(x, dx)
///     op t2 = add(t1, three)
/// ";
/// let dfg = hls_dfg::parse_dfg(text)?;
/// assert_eq!(dfg.name(), "demo");
/// assert_eq!(dfg.node_count(), 2);
/// # Ok::<(), hls_dfg::DfgError>(())
/// ```
///
/// # Errors
///
/// Returns [`DfgError::Parse`] with the offending 1-based line for any
/// syntax problem, and the usual structural errors ([`DfgError::UnknownSignal`],
/// [`DfgError::DuplicateName`], …) for semantic ones.
pub fn parse_dfg(text: &str) -> Result<Dfg, DfgError> {
    let mut name = String::from("dfg");
    let mut signals: BTreeMap<String, SignalId> = BTreeMap::new();
    // The builder tracks the branch stack itself, but the text format
    // gives absolute paths per op; collect ops first, then build.
    struct PendingOp {
        line: usize,
        name: String,
        kind: OpKind,
        args: Vec<String>,
        branch: BranchPath,
    }
    /// An array index: a literal (range-checked against the declaration)
    /// or a signal reference.
    enum IndexExpr {
        Literal(i64),
        Signal(String),
    }
    /// One executable statement, kept in textual order so memory-access
    /// ordering tokens thread correctly.
    enum Stmt {
        Op(PendingOp),
        Load {
            name: String,
            array: String,
            index: IndexExpr,
        },
        Store {
            name: String,
            array: String,
            index: IndexExpr,
            value: String,
        },
    }
    /// Parses `ARRAY[IDX]`.
    fn parse_access(lineno: usize, s: &str) -> Result<(String, IndexExpr), DfgError> {
        let open = s
            .find('[')
            .ok_or_else(|| err(lineno, "expected `ARRAY[INDEX]`"))?;
        let close = s.rfind(']').ok_or_else(|| err(lineno, "missing `]`"))?;
        if close < open {
            return Err(err(lineno, "mismatched brackets"));
        }
        let array = s[..open].trim().to_string();
        if array.is_empty() {
            return Err(err(lineno, "expected an array name before `[`"));
        }
        let idx = s[open + 1..close].trim();
        if idx.is_empty() {
            return Err(err(lineno, "expected an index inside `[]`"));
        }
        let index = match idx.parse::<i64>() {
            Ok(v) => IndexExpr::Literal(v),
            Err(_) => IndexExpr::Signal(idx.to_string()),
        };
        Ok((array, index))
    }
    /// Parses `BANK` or `BANK(ports=N)`.
    fn parse_bank_ref(lineno: usize, s: &str) -> Result<(String, Option<u32>), DfgError> {
        let s = s.trim();
        match s.find('(') {
            None => {
                if s.is_empty() {
                    return Err(err(lineno, "expected a bank name"));
                }
                Ok((s.to_string(), None))
            }
            Some(open) => {
                let close = s
                    .rfind(')')
                    .ok_or_else(|| err(lineno, "missing `)` after the port count"))?;
                if close < open {
                    return Err(err(lineno, "mismatched parentheses"));
                }
                let bank = s[..open].trim().to_string();
                let inner = s[open + 1..close].trim();
                let ports_str = inner
                    .strip_prefix("ports")
                    .map(str::trim_start)
                    .and_then(|r| r.strip_prefix('='))
                    .ok_or_else(|| err(lineno, "expected `(ports=N)`"))?;
                let ports: u32 = ports_str.trim().parse().map_err(|_| {
                    err(lineno, format!("invalid port count `{}`", ports_str.trim()))
                })?;
                Ok((bank, Some(ports)))
            }
        }
    }
    let mut inputs: Vec<String> = Vec::new();
    let mut constants: Vec<(String, i64)> = Vec::new();
    let mut stmts: Vec<Stmt> = Vec::new();
    // Bank declarations (name → ports) in first-declaration order, and
    // array declarations in textual order.
    let mut banks: Vec<(String, u32)> = Vec::new();
    let mut arrays: Vec<(usize, String, u32, String, Option<u32>)> = Vec::new();
    // Every declared name, for early duplicate detection across the
    // signal / array / bank namespaces.
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut store_counter: BTreeMap<String, u32> = BTreeMap::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (head, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match head {
            "dfg" => {
                if rest.is_empty() {
                    return Err(err(lineno, "expected a name after `dfg`"));
                }
                name = rest.to_string();
            }
            "input" => {
                for n in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    if !seen.insert(n.to_string()) {
                        return Err(DfgError::DuplicateName(n.to_string()));
                    }
                    inputs.push(n.to_string());
                }
            }
            "const" => {
                let (n, v) = rest
                    .split_once('=')
                    .ok_or_else(|| err(lineno, "expected `const NAME = VALUE`"))?;
                let value: i64 = v
                    .trim()
                    .parse()
                    .map_err(|_| err(lineno, format!("invalid constant value `{}`", v.trim())))?;
                if !seen.insert(n.trim().to_string()) {
                    return Err(DfgError::DuplicateName(n.trim().to_string()));
                }
                constants.push((n.trim().to_string(), value));
            }
            "bank" => {
                let (bank, ports) = parse_bank_ref(lineno, rest)?;
                let ports = ports.unwrap_or(1);
                if ports == 0 {
                    return Err(DfgError::BadPortCount(bank));
                }
                if !seen.insert(bank.clone()) {
                    return Err(DfgError::DuplicateName(bank));
                }
                banks.push((bank, ports));
            }
            "array" => {
                let (decl, bank_ref) = rest
                    .split_once('@')
                    .ok_or_else(|| err(lineno, "expected `array NAME[SIZE] @ BANK`"))?;
                let (array, size) = parse_access(lineno, decl.trim())?;
                let size = match size {
                    IndexExpr::Literal(v) if v >= 1 && v <= u32::MAX as i64 => v as u32,
                    IndexExpr::Literal(v) => {
                        return Err(err(lineno, format!("invalid array size `{v}`")))
                    }
                    IndexExpr::Signal(s) => {
                        return Err(err(
                            lineno,
                            format!("array size must be a literal, got `{s}`"),
                        ))
                    }
                };
                let (bank, ports) = parse_bank_ref(lineno, bank_ref)?;
                if ports == Some(0) {
                    return Err(DfgError::BadPortCount(bank));
                }
                if !seen.insert(array.clone()) {
                    return Err(DfgError::DuplicateName(array));
                }
                arrays.push((lineno, array, size, bank, ports));
            }
            "load" => {
                let (load_name, access) = rest
                    .split_once('=')
                    .ok_or_else(|| err(lineno, "expected `load NAME = ARRAY[INDEX]`"))?;
                let load_name = load_name.trim().to_string();
                if load_name.is_empty() || load_name.contains('[') {
                    return Err(err(lineno, "expected `load NAME = ARRAY[INDEX]`"));
                }
                let (array, index) = parse_access(lineno, access.trim())?;
                if !seen.insert(load_name.clone()) {
                    return Err(DfgError::DuplicateName(load_name));
                }
                stmts.push(Stmt::Load {
                    name: load_name,
                    array,
                    index,
                });
            }
            "store" => {
                let (lhs, rhs) = rest
                    .split_once('=')
                    .ok_or_else(|| err(lineno, "expected `store ARRAY[INDEX] = VALUE`"))?;
                let (lhs, rhs) = (lhs.trim(), rhs.trim());
                let (store_name, array, index, value) = if lhs.contains('[') {
                    // `store a[i] = v` — auto-named.
                    let (array, index) = parse_access(lineno, lhs)?;
                    let value = rhs.to_string();
                    if value.is_empty() || value.contains(',') {
                        return Err(err(lineno, "expected a single value after `=`"));
                    }
                    let n = store_counter.entry(array.clone()).or_insert(0);
                    let mut candidate = format!("{array}.store{n}");
                    while seen.contains(&candidate) {
                        *n += 1;
                        candidate = format!("{array}.store{n}");
                    }
                    *n += 1;
                    (candidate, array, index, value)
                } else {
                    // `store NAME = a[i], v` — the named (writer) form.
                    let close = rhs
                        .rfind(']')
                        .ok_or_else(|| err(lineno, "expected `ARRAY[INDEX], VALUE`"))?;
                    let tail = rhs[close + 1..].trim_start();
                    let value = tail
                        .strip_prefix(',')
                        .map(str::trim)
                        .ok_or_else(|| err(lineno, "expected `, VALUE` after the index"))?;
                    if value.is_empty() {
                        return Err(err(lineno, "expected a value after `,`"));
                    }
                    let (array, index) = parse_access(lineno, &rhs[..=close])?;
                    (lhs.to_string(), array, index, value.to_string())
                };
                if !seen.insert(store_name.clone()) {
                    return Err(DfgError::DuplicateName(store_name));
                }
                stmts.push(Stmt::Store {
                    name: store_name,
                    array,
                    index,
                    value,
                });
            }
            "op" => {
                let (op_name, call) = rest
                    .split_once('=')
                    .ok_or_else(|| err(lineno, "expected `op NAME = KIND(ARGS)`"))?;
                let call = call.trim();
                let (call_part, branch) = match call.split_once('@') {
                    None => (call, BranchPath::top_level()),
                    Some((c, ann)) => {
                        let ann = ann.trim();
                        let inner = ann
                            .strip_prefix("branch(")
                            .and_then(|s| s.strip_suffix(')'))
                            .ok_or_else(|| err(lineno, "expected `@branch(B.A/…)`"))?;
                        let mut arms = Vec::new();
                        for pair in inner.split('/') {
                            let (b, a) = pair
                                .split_once('.')
                                .ok_or_else(|| err(lineno, "branch arm must be `B.A`"))?;
                            let branch: u32 = b
                                .trim()
                                .parse()
                                .map_err(|_| err(lineno, "branch id must be an integer"))?;
                            let arm: u32 = a
                                .trim()
                                .parse()
                                .map_err(|_| err(lineno, "arm id must be an integer"))?;
                            arms.push(BranchArm {
                                branch: BranchId::new(branch),
                                arm,
                            });
                        }
                        (c.trim(), BranchPath::from_arms(arms))
                    }
                };
                let open = call_part
                    .find('(')
                    .ok_or_else(|| err(lineno, "expected `KIND(ARGS)`"))?;
                let close = call_part
                    .rfind(')')
                    .ok_or_else(|| err(lineno, "missing `)`"))?;
                if close < open {
                    return Err(err(lineno, "mismatched parentheses"));
                }
                let kind: OpKind = call_part[..open]
                    .trim()
                    .parse()
                    .map_err(|e| err(lineno, format!("{e}")))?;
                let args: Vec<String> = call_part[open + 1..close]
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                stmts.push(Stmt::Op(PendingOp {
                    line: lineno,
                    name: op_name.trim().to_string(),
                    kind,
                    args,
                    branch,
                }));
            }
            other => {
                return Err(err(
                    lineno,
                    format!(
                        "unknown statement `{other}` \
                         (expected dfg/input/const/bank/array/op/load/store)"
                    ),
                ));
            }
        }
    }

    let mut b = DfgBuilder::new(name);
    for n in &inputs {
        let id = b.input(n);
        signals.insert(n.clone(), id);
    }
    for (n, v) in &constants {
        let id = b.constant(n, *v);
        signals.insert(n.clone(), id);
    }
    // Banks: explicit declarations first, then implicit ones from array
    // statements carrying a port count, in textual order.
    let mut bank_ids: BTreeMap<String, crate::BankId> = BTreeMap::new();
    let mut bank_ports: BTreeMap<String, u32> = BTreeMap::new();
    for (bname, ports) in &banks {
        let id = b.declare_bank(bname, *ports);
        bank_ids.insert(bname.clone(), id);
        bank_ports.insert(bname.clone(), *ports);
    }
    for (line, _, _, bname, ports) in &arrays {
        let Some(&ports) = ports.as_ref() else {
            continue;
        };
        match bank_ports.get(bname) {
            Some(&existing) if existing != ports => {
                return Err(err(
                    *line,
                    format!("bank `{bname}` already declared with ports={existing}"),
                ));
            }
            Some(_) => {}
            None => {
                if seen.contains(bname) {
                    return Err(DfgError::DuplicateName(bname.clone()));
                }
                seen.insert(bname.clone());
                let id = b.declare_bank(bname, ports);
                bank_ids.insert(bname.clone(), id);
                bank_ports.insert(bname.clone(), ports);
            }
        }
    }
    // Arrays, in textual order.
    let mut array_ids: BTreeMap<String, (ArrayId, u32)> = BTreeMap::new();
    for (_, aname, size, bname, _) in &arrays {
        let bank = *bank_ids
            .get(bname)
            .ok_or_else(|| DfgError::UnknownBank(bname.clone()))?;
        let id = b.declare_array(aname, *size, bank);
        array_ids.insert(aname.clone(), (id, *size));
    }
    // An array index: a named signal, or a literal turned into a fresh
    // range-checked constant next to the access.
    let resolve_index = |b: &mut DfgBuilder,
                         signals: &BTreeMap<String, SignalId>,
                         seen: &mut std::collections::BTreeSet<String>,
                         node: &str,
                         aname: &str,
                         size: u32,
                         index: &IndexExpr|
     -> Result<SignalId, DfgError> {
        match index {
            IndexExpr::Signal(s) => signals
                .get(s)
                .copied()
                .ok_or_else(|| DfgError::UnknownSignal(s.clone())),
            IndexExpr::Literal(v) => {
                if *v < 0 || *v >= size as i64 {
                    return Err(DfgError::IndexOutOfRange {
                        array: aname.to_string(),
                        index: *v,
                        size,
                    });
                }
                let mut cname = format!("{node}.idx");
                let mut k = 1u32;
                while !seen.insert(cname.clone()) {
                    cname = format!("{node}.idx{k}");
                    k += 1;
                }
                Ok(b.constant(&cname, *v))
            }
        }
    };
    for stmt in &stmts {
        match stmt {
            Stmt::Op(op) => {
                let mut arg_ids = Vec::with_capacity(op.args.len());
                for a in &op.args {
                    let id = signals
                        .get(a)
                        .copied()
                        .ok_or_else(|| DfgError::UnknownSignal(a.clone()))?;
                    arg_ids.push(id);
                }
                if arg_ids.len() != op.kind.arity() {
                    return Err(err(
                        op.line,
                        format!(
                            "`{}` expects {} argument(s), got {}",
                            op.kind,
                            op.kind.arity(),
                            arg_ids.len()
                        ),
                    ));
                }
                // Reproduce the builder's branch bookkeeping with an
                // absolute path: temporarily push the arms around the op.
                for arm in op.branch.arms() {
                    b.enter_arm(arm.branch, arm.arm);
                }
                let out = b.op(&op.name, op.kind, &arg_ids)?;
                for _ in op.branch.arms() {
                    b.exit_arm();
                }
                signals.insert(op.name.clone(), out);
            }
            Stmt::Load { name, array, index } => {
                let &(aid, size) = array_ids
                    .get(array)
                    .ok_or_else(|| DfgError::UnknownArray(array.clone()))?;
                let idx = resolve_index(&mut b, &signals, &mut seen, name, array, size, index)?;
                let out = b.load(name, aid, idx)?;
                signals.insert(name.clone(), out);
            }
            Stmt::Store {
                name,
                array,
                index,
                value,
            } => {
                let &(aid, size) = array_ids
                    .get(array)
                    .ok_or_else(|| DfgError::UnknownArray(array.clone()))?;
                let idx = resolve_index(&mut b, &signals, &mut seen, name, array, size, index)?;
                let val = signals
                    .get(value)
                    .copied()
                    .ok_or_else(|| DfgError::UnknownSignal(value.clone()))?;
                let out = b.store(name, aid, idx, val)?;
                signals.insert(name.clone(), out);
            }
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_small_graph() {
        let g = parse_dfg(
            "dfg demo\n\
             input a, b\n\
             const k = 7\n\
             op p = *(a, b)\n\
             op q = add(p, k)  # trailing comment\n",
        )
        .unwrap();
        assert_eq!(g.name(), "demo");
        assert_eq!(g.node_count(), 2);
        let p = g.node_by_name("p").unwrap();
        let q = g.node_by_name("q").unwrap();
        assert_eq!(g.preds(q), &[p]);
    }

    #[test]
    fn branch_annotations_create_exclusive_ops() {
        let g = parse_dfg(
            "input a, b\n\
             op t = add(a, b) @branch(0.0)\n\
             op e = sub(a, b) @branch(0.1)\n",
        )
        .unwrap();
        let t = g.node_by_name("t").unwrap();
        let e = g.node_by_name("e").unwrap();
        assert!(g.mutually_exclusive(t, e));
    }

    #[test]
    fn nested_branch_paths() {
        let g = parse_dfg(
            "input a\n\
             op t = inc(a) @branch(0.0/1.0)\n\
             op u = dec(a) @branch(0.0/1.1)\n",
        )
        .unwrap();
        let t = g.node_by_name("t").unwrap();
        assert_eq!(g.node(t).branch().arms().len(), 2);
        let u = g.node_by_name("u").unwrap();
        assert!(g.mutually_exclusive(t, u));
    }

    #[test]
    fn unknown_signal_is_reported() {
        let e = parse_dfg("input a\nop t = add(a, missing)\n").unwrap_err();
        assert_eq!(e, DfgError::UnknownSignal("missing".into()));
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let e = parse_dfg("input a\nop t = add a\n").unwrap_err();
        assert!(matches!(e, DfgError::Parse { line: 2, .. }));
        let e = parse_dfg("bogus statement\n").unwrap_err();
        assert!(matches!(e, DfgError::Parse { line: 1, .. }));
        let e = parse_dfg("const k = x\n").unwrap_err();
        assert!(matches!(e, DfgError::Parse { line: 1, .. }));
    }

    #[test]
    fn arity_errors_are_caught_at_parse_time() {
        let e = parse_dfg("input a\nop t = add(a)\n").unwrap_err();
        assert!(matches!(e, DfgError::Parse { line: 2, .. }));
    }

    #[test]
    fn unknown_op_kind_is_reported() {
        let e = parse_dfg("input a, b\nop t = frobnicate(a, b)\n").unwrap_err();
        assert!(matches!(e, DfgError::Parse { line: 2, .. }));
    }

    #[test]
    fn parses_memory_declarations_and_accesses() {
        let g = parse_dfg(
            "dfg mem\n\
             input i, v\n\
             bank ram(ports=2)\n\
             array a[16] @ ram\n\
             load x = a[i]\n\
             store a[i] = v\n\
             load y = a[3]\n",
        )
        .unwrap();
        assert!(g.has_memory());
        let ram = g.memory().bank_by_name("ram").unwrap();
        assert_eq!(ram.ports(), 2);
        assert_eq!(g.bank_ports(ram.id()), 2);
        let a = g.memory().array_by_name("a").unwrap();
        assert_eq!(a.size(), 16);
        let x = g.node_by_name("x").unwrap();
        let st = g.node_by_name("a.store0").unwrap();
        let y = g.node_by_name("y").unwrap();
        assert!(matches!(g.node(x).kind(), crate::NodeKind::Load { .. }));
        assert!(matches!(g.node(st).kind(), crate::NodeKind::Store { .. }));
        // RAW: the load after the store is ordered behind it; the load
        // before it is not ordered against anything.
        assert!(g.preds(y).contains(&st));
        assert!(g.preds(x).is_empty());
        // WAR: the store waits for the earlier load of the same array.
        assert!(g.preds(st).contains(&x));
    }

    #[test]
    fn implicit_bank_declaration_via_array() {
        let g = parse_dfg("input i\narray c[8] @ bank0(ports=4)\nload v = c[i]\n").unwrap();
        let b = g.memory().bank_by_name("bank0").unwrap();
        assert_eq!(b.ports(), 4);
    }

    #[test]
    fn loads_between_stores_stay_independent() {
        let g = parse_dfg(
            "input i, j, v\n\
             array a[8] @ m(ports=2)\n\
             store a[i] = v\n\
             load x = a[i]\n\
             load y = a[j]\n",
        )
        .unwrap();
        let x = g.node_by_name("x").unwrap();
        let y = g.node_by_name("y").unwrap();
        // Both loads depend on the store (RAW) but not on each other, so
        // a two-port bank can serve them in the same control step.
        assert!(!g.preds(y).contains(&x));
        assert!(!g.preds(x).contains(&y));
    }

    #[test]
    fn literal_index_out_of_range_is_reported() {
        let e = parse_dfg("input v\narray a[4] @ m(ports=1)\nstore a[4] = v\n").unwrap_err();
        assert_eq!(
            e,
            DfgError::IndexOutOfRange {
                array: "a".into(),
                index: 4,
                size: 4
            }
        );
    }

    #[test]
    fn unknown_array_is_reported() {
        let e = parse_dfg("input i\narray a[4] @ m(ports=1)\nload v = b[i]\n").unwrap_err();
        assert_eq!(e, DfgError::UnknownArray("b".into()));
    }

    #[test]
    fn array_on_undeclared_bank_is_reported() {
        // `@ ghost` never declares ports, explicitly or implicitly.
        let e = parse_dfg("input i, v\narray a[4] @ ghost\nstore a[i] = v\n").unwrap_err();
        assert_eq!(e, DfgError::UnknownBank("ghost".into()));
    }

    #[test]
    fn zero_ports_is_reported() {
        let e = parse_dfg("bank ram(ports=0)\n").unwrap_err();
        assert_eq!(e, DfgError::BadPortCount("ram".into()));
        let e = parse_dfg("array a[4] @ m(ports=0)\n").unwrap_err();
        assert_eq!(e, DfgError::BadPortCount("m".into()));
    }

    #[test]
    fn conflicting_implicit_port_counts_are_reported() {
        let e = parse_dfg("array a[4] @ m(ports=2)\narray b[4] @ m(ports=1)\n").unwrap_err();
        assert!(matches!(e, DfgError::Parse { line: 2, .. }));
    }

    #[test]
    fn named_store_form_parses() {
        let g = parse_dfg(
            "input v\n\
             array a[8] @ m(ports=1)\n\
             store s0 = a[3], v\n",
        )
        .unwrap();
        let s0 = g.node_by_name("s0").unwrap();
        assert!(matches!(g.node(s0).kind(), crate::NodeKind::Store { .. }));
    }

    #[test]
    fn ops_can_feed_later_ops_by_name() {
        let g = parse_dfg(
            "input a\n\
             op t = inc(a)\n\
             op u = inc(t)\n\
             op v = add(t, u)\n",
        )
        .unwrap();
        assert_eq!(g.node_count(), 3);
        let v = g.node_by_name("v").unwrap();
        assert_eq!(g.preds(v).len(), 2);
    }
}
